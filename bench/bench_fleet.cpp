// Fleet-scale hierarchical appraisal benchmark: does delegation keep
// detection fast and appraiser load flat as the fleet grows 100 -> 10k?
//
// Each cell builds a fleet topology (n switches behind fanout-bounded
// regional appraisers), runs the hierarchical control plane, hot-swaps
// one victim switch's program mid-run, and measures:
//
//   * detection latency — swap to the victim's first Quarantined
//     transition at the root
//   * control messages per switch per wave — total wire messages
//     normalised by fleet size and waves launched (storm indicator)
//   * peak per-appraiser concurrent load — root direct rounds and every
//     regional's member window high-water mark
//
// Exit gates (the bench fails the build when violated):
//
//   G1  detection latency at 10k switches <= 2x the 100-switch baseline
//       (same fanout, same loss) — hierarchy amortises scale
//   G2  peak concurrent appraisal load <= fanout at the root AND at
//       every regional, in every cell — fan-out bounded at every tier
//   G3  the hierarchy's recovered verdicts match flat per-switch central
//       appraisal bit-for-bit on the parity cell
//
// Flags: --smoke (one small cell + gates G2/G3), --json=PATH.
// Unknown flags are ignored. Results land in BENCH_fleet.json
// (committed).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/attacks.h"
#include "core/deployment.h"
#include "dataplane/builder.h"
#include "fleet/controller.h"
#include "netsim/topology.h"

namespace {

using namespace pera;

constexpr netsim::SimTime kSwapAt = 300 * netsim::kMillisecond;
constexpr netsim::SimTime kDeadline = 5 * netsim::kSecond;

struct RunResult {
  bool detected = false;
  bool load_ok = false;
  bool parity_ok = true;  // only evaluated when check_parity is set
  double detect_ms = 0.0;
  double msgs_per_switch_per_wave = 0.0;
  std::size_t peak_root_load = 0;
  std::size_t peak_regional_load = 0;
  std::uint64_t waves = 0;
  std::uint64_t aggregates_valid = 0;
  std::uint64_t aggregates_invalid = 0;
};

RunResult run_once(std::size_t n, std::size_t fanout, double loss,
                   std::uint64_t seed, bool check_parity) {
  core::DeploymentOptions dopt;
  dopt.seed = seed;
  // One shared router program across the fleet: at 10k switches the
  // per-node program build would dominate setup for no measurement gain.
  const auto shared_router = dataplane::make_router();
  dopt.program_for = [shared_router](const netsim::NodeInfo&) {
    return shared_router;
  };
  core::Deployment dep(netsim::topo::fleet(n, fanout), dopt);
  dep.provision_goldens();
  if (loss > 0) dep.network().set_loss(loss, seed + 7);

  fleet::FleetConfig cfg;
  cfg.fanout = fanout;
  cfg.wave.interval = 100 * netsim::kMillisecond;
  cfg.wave_timeout = 75 * netsim::kMillisecond;
  cfg.transport.timeout = 20 * netsim::kMillisecond;
  cfg.root_transport.timeout = 20 * netsim::kMillisecond;
  cfg.trust.quarantine_after = 3;
  cfg.trust.reinstate_after = 2;
  cfg.admit_burst = static_cast<double>(fanout);
  // The bench measures steady-state scaling, not blast-radius surgery.
  cfg.split_after_failures = 1000;

  fleet::FleetController controller(
      dep, "root",
      fleet::DelegationTree::build(fleet::fleet_switch_names(n),
                                   fleet::fleet_regional_names(n, fanout),
                                   {fanout}),
      cfg, seed);

  const std::string victim = "sw" + std::to_string(n / 2);
  auto& net = dep.network();
  net.events().schedule_at(kSwapAt, [&] {
    adversary::program_swap_attack(dep, victim);
  });

  controller.start();
  std::optional<netsim::SimTime> detected_at;
  for (netsim::SimTime t = 100 * netsim::kMillisecond; t <= kDeadline;
       t += 100 * netsim::kMillisecond) {
    net.run(t);
    const auto q =
        controller.first_transition(victim, ctrl::TrustState::kQuarantined);
    if (q && *q >= kSwapAt) {
      detected_at = *q;
      break;
    }
  }
  controller.stop();
  net.run();

  RunResult r;
  if (detected_at) {
    r.detected = true;
    r.detect_ms = static_cast<double>(*detected_at - kSwapAt) / 1e6;
  }
  r.waves = controller.stats().waves_launched;
  r.aggregates_valid = controller.stats().aggregates_valid;
  r.aggregates_invalid = controller.stats().aggregates_invalid;
  if (r.waves > 0) {
    r.msgs_per_switch_per_wave =
        static_cast<double>(net.stats().messages_sent) /
        static_cast<double>(n) / static_cast<double>(r.waves);
  }
  r.peak_root_load = controller.peak_root_inflight();
  for (const auto& a : controller.tree().appraisers()) {
    r.peak_regional_load =
        std::max(r.peak_regional_load, controller.regional(a).peak_inflight());
  }
  r.load_ok =
      r.peak_root_load <= fanout && r.peak_regional_load <= fanout;

  if (check_parity) {
    // G3: the hierarchy's recovered verdicts vs flat central appraisal.
    ra::Appraiser& root = dep.appraiser().appraiser();
    for (const auto& m : controller.tree().all_members()) {
      const crypto::Nonce nonce{crypto::sha256("flat-" + m)};
      const auto ev = dep.switch_node(m).pera().attest_challenge(
          cfg.detail, nonce, /*hash_before_sign=*/false);
      const bool flat = root.appraise(ev, nonce, /*certify=*/false,
                                      static_cast<std::int64_t>(net.now()),
                                      /*enforce_freshness=*/false)
                            .ok;
      const auto it = controller.last_verdicts().find(m);
      if (it == controller.last_verdicts().end() || it->second != flat) {
        r.parity_ok = false;
        std::fprintf(stderr, "parity violation at %s\n", m.c_str());
      }
    }
  }
  return r;
}

struct Cell {
  std::size_t switches = 0;
  std::size_t fanout = 0;
  double loss = 0.0;
  RunResult r;
};

void print_cell(const Cell& c) {
  std::printf(
      "n=%6zu fanout=%3zu loss=%.2f  detect=%8.1f ms  "
      "msgs/sw/wave=%6.2f  load root=%zu regional=%zu  "
      "agg=%llu/%llu valid/invalid%s\n",
      c.switches, c.fanout, c.loss, c.r.detect_ms,
      c.r.msgs_per_switch_per_wave, c.r.peak_root_load,
      c.r.peak_regional_load,
      static_cast<unsigned long long>(c.r.aggregates_valid),
      static_cast<unsigned long long>(c.r.aggregates_invalid),
      c.r.load_ok ? "" : "  LOAD-BOUND VIOLATED");
}

void write_cells(std::FILE* f, const std::vector<Cell>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"switches\": %zu, \"fanout\": %zu, \"loss\": %.2f, "
        "\"detected\": %s, \"detect_ms\": %.1f, "
        "\"msgs_per_switch_per_wave\": %.2f, \"peak_root_load\": %zu, "
        "\"peak_regional_load\": %zu, \"waves\": %llu, "
        "\"aggregates_valid\": %llu, \"aggregates_invalid\": %llu, "
        "\"load_ok\": %s}%s\n",
        c.switches, c.fanout, c.loss, c.r.detected ? "true" : "false",
        c.r.detect_ms, c.r.msgs_per_switch_per_wave, c.r.peak_root_load,
        c.r.peak_regional_load, static_cast<unsigned long long>(c.r.waves),
        static_cast<unsigned long long>(c.r.aggregates_valid),
        static_cast<unsigned long long>(c.r.aggregates_invalid),
        c.r.load_ok ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    // Unknown flags are ignored (harness-wide sweeps pass shared flags).
  }

  const std::uint64_t seed = 1000;
  std::vector<Cell> cells;
  bool gates_ok = true;
  std::string gate_report;

  if (smoke) {
    Cell c{100, 16, 0.01, run_once(100, 16, 0.01, seed, /*parity=*/true)};
    print_cell(c);
    cells.push_back(c);
    if (!c.r.detected) {
      gates_ok = false;
      gate_report += "FAIL smoke: victim not detected\n";
    }
  } else {
    for (const double loss : {0.0, 0.01}) {
      for (const std::size_t n : {std::size_t{100}, std::size_t{1000},
                                  std::size_t{10000}}) {
        const bool parity = n == 100;  // G3 on the small cell per loss rate
        Cell c{n, 32, loss, run_once(n, 32, loss, seed, parity)};
        print_cell(c);
        cells.push_back(c);
      }
    }
    // G1: scale gate per loss rate — 10k detection within 2x of 100.
    for (const double loss : {0.0, 0.01}) {
      const Cell* small = nullptr;
      const Cell* large = nullptr;
      for (const Cell& c : cells) {
        if (c.loss != loss) continue;
        if (c.switches == 100) small = &c;
        if (c.switches == 10000) large = &c;
      }
      if (small == nullptr || large == nullptr || !small->r.detected ||
          !large->r.detected) {
        gates_ok = false;
        gate_report += "FAIL G1: missing detection at loss=" +
                       std::to_string(loss) + "\n";
        continue;
      }
      if (large->r.detect_ms > 2.0 * small->r.detect_ms) {
        gates_ok = false;
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "FAIL G1: 10k detect %.1f ms > 2x 100-switch %.1f ms "
                      "(loss=%.2f)\n",
                      large->r.detect_ms, small->r.detect_ms, loss);
        gate_report += buf;
      }
    }
  }
  for (const Cell& c : cells) {
    if (!c.r.load_ok) {
      gates_ok = false;
      gate_report += "FAIL G2: appraiser load exceeded fanout at n=" +
                     std::to_string(c.switches) + "\n";
    }
    if (!c.r.parity_ok) {
      gates_ok = false;
      gate_report += "FAIL G3: verdict parity broken at n=" +
                     std::to_string(c.switches) + "\n";
    }
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_fleet: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"scenario\": \"victim program swap at %lld ms, "
               "hierarchical appraisal on topo::fleet\",\n"
               "  \"wave_interval_ms\": 100,\n  \"gates\": \"%s\",\n"
               "  \"cells\": [\n",
               static_cast<long long>(kSwapAt / netsim::kMillisecond),
               gates_ok ? "pass" : "FAIL");
  write_cells(f, cells);
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  if (!gates_ok) {
    std::fprintf(stderr, "%s", gate_report.c_str());
    std::printf("GATES FAILED\n");
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
