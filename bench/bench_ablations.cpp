// Ablation benches for the DESIGN.md design choices:
//   * batched Merkle signing vs per-item signatures (Fig. 3 D variant),
//   * guard "fail early" (§5.1) vs unconditional attestation,
//   * the NetKAT model of a program vs the switch itself (cost of the
//     verification-side substrate),
//   * Prim3 reachability checking cost by topology size.
#include <benchmark/benchmark.h>

#include "obs_bench_main.h"

#include <memory>

#include "core/deployment.h"
#include "core/netkat_bridge.h"
#include "core/reachability.h"
#include "crypto/keystore.h"
#include "pera/batcher.h"
#include "pera/pera_switch.h"

namespace {

using namespace pera;
using PeraSwitchT = ::pera::pera::PeraSwitch;

// --- batched signing -----------------------------------------------------------

void BM_Ablation_BatchSigning(benchmark::State& state) {
  const bool xmss = state.range(0) != 0;
  const std::size_t batch = static_cast<std::size_t>(state.range(1));
  crypto::KeyStore keys(51);
  // XMSS keys are finite; keep the tree small and renew on exhaustion so
  // the bench can run arbitrarily many iterations.
  std::unique_ptr<crypto::XmssSigner> xmss_signer;
  std::unique_ptr<crypto::HmacSigner> hmac_signer;
  crypto::Drbg rng(52);
  const auto fresh_signer = [&]() -> crypto::Signer& {
    if (xmss) {
      xmss_signer =
          std::make_unique<crypto::XmssSigner>(rng.digest(), 8);  // 256 sigs
      return *xmss_signer;
    }
    hmac_signer = std::make_unique<crypto::HmacSigner>(rng.digest());
    return *hmac_signer;
  };
  auto batcher = std::make_unique<::pera::pera::EvidenceBatcher>(
      fresh_signer(), batch);
  std::size_t receipt_bytes = 0;
  std::size_t produced = 0;
  std::size_t signed_in_tree = 0;
  for (auto _ : state) {
    if (xmss && signed_in_tree >= 250) {
      state.PauseTiming();
      batcher = std::make_unique<::pera::pera::EvidenceBatcher>(
          fresh_signer(), batch);
      signed_in_tree = 0;
      state.ResumeTiming();
    }
    const auto receipts = batcher->add(rng.digest());
    if (receipts) {
      ++signed_in_tree;
      receipt_bytes = (*receipts)[0].wire_size();
      produced += receipts->size();
    }
    benchmark::DoNotOptimize(receipts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(produced));
  state.counters["receipt_bytes"] = static_cast<double>(receipt_bytes);
  state.SetLabel(std::string(xmss ? "xmss" : "hmac") + " batch=" +
                 std::to_string(batch));
}
BENCHMARK(BM_Ablation_BatchSigning)
    ->ArgsProduct({{0, 1}, {1, 8, 64, 256}});

void BM_Ablation_BatchVerify(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  crypto::KeyStore keys(53);
  crypto::Signer& s = keys.provision_hmac("sw");
  const crypto::Verifier& v = *keys.verifier_for("sw");
  ::pera::pera::EvidenceBatcher batcher(s, batch);
  crypto::Drbg rng(54);
  std::vector<crypto::Digest> items;
  std::optional<std::vector<::pera::pera::BatchedSignature>> receipts;
  for (std::size_t i = 0; i < batch; ++i) {
    items.push_back(rng.digest());
    receipts = batcher.add(items.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t k = i++ % batch;
    benchmark::DoNotOptimize(
        ::pera::pera::EvidenceBatcher::verify(v, items[k], (*receipts)[k]));
  }
}
BENCHMARK(BM_Ablation_BatchVerify)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

// --- guard fail-early ---------------------------------------------------------------

void BM_Ablation_GuardFailEarly(benchmark::State& state) {
  const bool guard_passes = state.range(0) != 0;
  crypto::KeyStore keys(55);
  PeraSwitchT sw("sw1", dataplane::make_router(), keys.provision_hmac("sw1"));
  sw.set_guard("P", [guard_passes](const dataplane::ParsedPacket&) {
    return guard_passes;
  });
  nac::CompiledPolicy pol;
  nac::HopInstruction inst;
  inst.wildcard = true;
  inst.guard = "P";
  inst.detail = nac::EvidenceDetail::kProgram | nac::EvidenceDetail::kPacket;
  inst.sign_evidence = true;
  pol.hops = {inst};
  const nac::PolicyHeader hdr =
      nac::make_header(pol, crypto::Nonce{crypto::sha256("n")}, true);
  const dataplane::RawPacket pkt = dataplane::make_tcp_packet({});
  for (auto _ : state) {
    nac::EvidenceCarrier carrier;
    benchmark::DoNotOptimize(sw.process(pkt, &hdr, &carrier));
  }
  state.counters["sim_ns_per_pkt"] =
      static_cast<double>(sw.ra_stats().ra_time_total) /
      static_cast<double>(state.iterations());
  state.SetLabel(guard_passes ? "guard passes: full attestation"
                              : "guard fails early: test only");
}
BENCHMARK(BM_Ablation_GuardFailEarly)->Arg(1)->Arg(0);

// --- NetKAT model vs switch ------------------------------------------------------------

void BM_Ablation_NetkatModelEval(benchmark::State& state) {
  const auto program = dataplane::make_firewall();
  const netkat::PolicyPtr model = core::to_netkat(*program);
  dataplane::PisaSwitch sw(program);
  const auto parsed = sw.parse(dataplane::make_tcp_packet({}));
  const netkat::Packet input = core::abstract_packet(parsed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netkat::eval(model, input));
  }
  state.SetLabel("NetKAT model of firewall");
}
BENCHMARK(BM_Ablation_NetkatModelEval);

void BM_Ablation_TranslateProgram(benchmark::State& state) {
  const auto program = dataplane::make_firewall();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::to_netkat(*program));
  }
  state.SetLabel("to_netkat(firewall)");
}
BENCHMARK(BM_Ablation_TranslateProgram);

void BM_Ablation_TranslationValidation(benchmark::State& state) {
  const auto program = dataplane::make_firewall();
  const dataplane::RawPacket raw = dataplane::make_tcp_packet({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::behaviors_agree(program, raw));
  }
}
BENCHMARK(BM_Ablation_TranslationValidation);

// --- batched signing on the data path ---------------------------------------------------

void BM_Ablation_BatchedOobFlow(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const std::size_t packets = 64;
  double failures = 0;
  double certs = 0;
  for (auto _ : state) {
    core::DeploymentOptions opts;
    opts.pera_config.oob_batch_size = batch;
    core::Deployment dep(netsim::topo::chain(1), opts);
    dep.provision_goldens();
    const nac::CompiledPolicy pol = nac::compile(std::string(
        "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
        "@Appraiser [appraise]"));
    const core::FlowReport rep =
        dep.send_flow("client", "server", pol, packets, /*in_band=*/false);
    failures = static_cast<double>(rep.appraisal_failures);
    certs = static_cast<double>(rep.certificates);
    benchmark::DoNotOptimize(rep);
  }
  state.counters["appraised"] = certs;
  state.counters["failures"] = failures;
  state.SetLabel("oob batch=" + std::to_string(batch));
}
BENCHMARK(BM_Ablation_BatchedOobFlow)->Arg(1)->Arg(8)->Arg(32);

// --- Prim3 reachability cost ------------------------------------------------------------

void BM_Ablation_ReachabilityCheck(benchmark::State& state) {
  const std::size_t hops = static_cast<std::size_t>(state.range(0));
  const netsim::Topology topo = netsim::topo::chain(hops);
  const nac::CompiledPolicy pol = nac::compile(std::string(
      "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
      "@Appraiser [appraise]"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::check_collector_reachable(topo, pol));
  }
  state.counters["nodes"] = static_cast<double>(topo.node_count());
}
BENCHMARK(BM_Ablation_ReachabilityCheck)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

PERA_BENCH_MAIN();
