// Fig. 4 — Inertia, Detail and Composition: the PERA design space.
//
// Regenerates the figure's three axes as measured series:
//   * inertia  — per-packet cost of attesting each level with the cache on
//                vs off (high-inertia evidence caches; packets never do);
//   * sampling — attestation overhead at 1/2^k packet sampling;
//   * composition — chained vs pointwise evidence growth along a path.
// Counters report the simulated per-packet RA cost and cache hit rates.
#include <benchmark/benchmark.h>

#include "obs_bench_main.h"

#include "core/deployment.h"
#include "crypto/keystore.h"

namespace {

using namespace pera;
using PeraSwitchT = ::pera::pera::PeraSwitch;
using dataplane::make_tcp_packet;

nac::PolicyHeader header_for(nac::DetailMask detail,
                             std::uint8_t sampling_log2 = 0) {
  nac::CompiledPolicy pol;
  nac::HopInstruction inst;
  inst.wildcard = true;
  inst.detail = detail;
  inst.sign_evidence = true;
  pol.hops = {inst};
  pol.appraiser = "Appraiser";
  return nac::make_header(pol, crypto::Nonce{crypto::sha256("flow")},
                          /*in_band=*/true, sampling_log2);
}

// --- Inertia axis: one level at a time, cache on/off -------------------------

void BM_Fig4_InertiaLevel(benchmark::State& state) {
  const auto level = static_cast<nac::EvidenceDetail>(state.range(0));
  const bool cache = state.range(1) != 0;
  ::pera::pera::PeraConfig cfg;
  cfg.cache_enabled = cache;
  crypto::KeyStore keys(11);
  PeraSwitchT sw("sw1", dataplane::make_router(),
                      keys.provision_hmac("sw1"), cfg);
  const nac::PolicyHeader hdr = header_for(nac::mask_of(level));
  const dataplane::RawPacket pkt = make_tcp_packet({});
  for (auto _ : state) {
    nac::EvidenceCarrier carrier;
    benchmark::DoNotOptimize(sw.process(pkt, &hdr, &carrier));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_ns_per_pkt"] =
      static_cast<double>(sw.ra_stats().ra_time_total) /
      static_cast<double>(state.iterations());
  state.counters["cache_hit_rate"] = sw.cache().stats().hit_rate();
  state.SetLabel(nac::to_string(level) +
                 std::string(cache ? " cache=on" : " cache=off"));
}
BENCHMARK(BM_Fig4_InertiaLevel)
    ->ArgsProduct({{static_cast<long>(nac::EvidenceDetail::kHardware),
                    static_cast<long>(nac::EvidenceDetail::kProgram),
                    static_cast<long>(nac::EvidenceDetail::kTables),
                    static_cast<long>(nac::EvidenceDetail::kProgState),
                    static_cast<long>(nac::EvidenceDetail::kPacket)},
                   {1, 0}});

// Cache expiry under churn: control-plane table updates every k packets
// invalidate the Tables-level evidence — lower inertia, lower hit rate.
void BM_Fig4_InertiaChurn(benchmark::State& state) {
  const long update_every = state.range(0);
  crypto::KeyStore keys(12);
  PeraSwitchT sw("sw1", dataplane::make_router(),
                      keys.provision_hmac("sw1"));
  const nac::PolicyHeader hdr =
      header_for(nac::mask_of(nac::EvidenceDetail::kTables));
  const dataplane::RawPacket pkt = make_tcp_packet({});
  long i = 0;
  for (auto _ : state) {
    if (update_every > 0 && ++i % update_every == 0) {
      dataplane::TableEntry e;
      e.keys = {dataplane::KeyMatch::lpm(
          0xC0000000 | static_cast<std::uint64_t>(i), 32)};
      e.action = "forward";
      e.action_params = {1};
      sw.update_table("route", e);
    }
    nac::EvidenceCarrier carrier;
    benchmark::DoNotOptimize(sw.process(pkt, &hdr, &carrier));
  }
  state.counters["cache_hit_rate"] = sw.cache().stats().hit_rate();
  state.counters["sim_ns_per_pkt"] =
      static_cast<double>(sw.ra_stats().ra_time_total) /
      static_cast<double>(state.iterations());
  state.SetLabel(update_every == 0
                     ? "no table churn"
                     : "table update every " + std::to_string(update_every));
}
BENCHMARK(BM_Fig4_InertiaChurn)->Arg(0)->Arg(64)->Arg(8)->Arg(1);

// --- Sampling axis ---------------------------------------------------------------

void BM_Fig4_Sampling(benchmark::State& state) {
  const auto k = static_cast<std::uint8_t>(state.range(0));
  crypto::KeyStore keys(13);
  PeraSwitchT sw("sw1", dataplane::make_router(),
                      keys.provision_hmac("sw1"));
  // Packet-level detail: uncacheable, so sampling is the only relief.
  const nac::PolicyHeader hdr = header_for(
      nac::EvidenceDetail::kProgram | nac::EvidenceDetail::kPacket, k);
  const dataplane::RawPacket pkt = make_tcp_packet({});
  for (auto _ : state) {
    nac::EvidenceCarrier carrier;
    benchmark::DoNotOptimize(sw.process(pkt, &hdr, &carrier));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_ns_per_pkt"] =
      static_cast<double>(sw.ra_stats().ra_time_total) /
      static_cast<double>(state.iterations());
  state.counters["attest_fraction"] =
      static_cast<double>(sw.ra_stats().attestations) /
      static_cast<double>(state.iterations());
  state.SetLabel("sample 1/" + std::to_string(1u << k));
}
BENCHMARK(BM_Fig4_Sampling)->Arg(0)->Arg(1)->Arg(3)->Arg(5)->Arg(10);

// --- Composition axis -------------------------------------------------------------

void BM_Fig4_Composition(benchmark::State& state) {
  const bool chained = state.range(0) != 0;
  const std::size_t hops = static_cast<std::size_t>(state.range(1));
  const std::size_t packets = 16;
  double evidence_bytes = 0;
  double oob = 0;
  for (auto _ : state) {
    core::Deployment dep(netsim::topo::chain(hops));
    dep.provision_goldens();
    const nac::CompiledPolicy pol = nac::compile(
        std::string("*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
                    "@Appraiser [appraise]"),
        chained ? nac::CompositionMode::kChained
                : nac::CompositionMode::kPointwise);
    const core::FlowReport rep =
        dep.send_flow("client", "server", pol, packets, /*in_band=*/chained);
    evidence_bytes = static_cast<double>(rep.evidence_bytes_inband) / packets;
    oob = static_cast<double>(rep.oob_messages) / packets;
    benchmark::DoNotOptimize(rep);
  }
  state.counters["evidence_B_per_pkt"] = evidence_bytes;
  state.counters["appraiser_msgs_per_pkt"] = oob;
  state.SetLabel(chained ? "chained (in-band, evidence grows with path)"
                         : "pointwise (per-hop messages to appraiser)");
}
BENCHMARK(BM_Fig4_Composition)
    ->ArgsProduct({{1, 0}, {2, 4, 8}});

// --- Detail axis: cumulative masks on a fixed path ----------------------------------

void BM_Fig4_DetailSweep(benchmark::State& state) {
  const auto detail = static_cast<nac::DetailMask>(state.range(0));
  crypto::KeyStore keys(14);
  PeraSwitchT sw("sw1", dataplane::make_router(),
                      keys.provision_hmac("sw1"));
  const nac::PolicyHeader hdr = header_for(detail);
  const dataplane::RawPacket pkt = make_tcp_packet({});
  std::size_t evidence_bytes = 0;
  for (auto _ : state) {
    nac::EvidenceCarrier carrier;
    benchmark::DoNotOptimize(sw.process(pkt, &hdr, &carrier));
    if (!carrier.records.empty()) {
      evidence_bytes = carrier.records[0].evidence.size();
    }
  }
  state.counters["evidence_bytes"] = static_cast<double>(evidence_bytes);
  state.SetLabel(nac::describe_mask(detail));
}
BENCHMARK(BM_Fig4_DetailSweep)
    ->Arg(nac::mask_of(nac::EvidenceDetail::kHardware))
    ->Arg(nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram)
    ->Arg(nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram |
          nac::EvidenceDetail::kTables)
    ->Arg(nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram |
          nac::EvidenceDetail::kTables | nac::EvidenceDetail::kProgState)
    ->Arg(nac::kAllDetail);

}  // namespace

PERA_BENCH_MAIN();
