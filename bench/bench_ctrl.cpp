// Control-plane benchmark: what does continuous re-attestation buy, and
// what does it cost?
//
// For each (re-attestation interval, loss probability) cell the bench
// replays the core2 program-swap scenario on the ISP topology and
// measures, averaged over several seeds:
//
//   * detection latency — swap to first Quarantined transition of core2;
//     should fall monotonically as the re-attestation frequency rises
//     (and the acceptance gate below asserts exactly that, per loss rate)
//   * control overhead — control-plane messages and bytes per simulated
//     second (the bench injects no data traffic, so every message on the
//     wire is attestation control)
//
// A second sweep thins the *full-detail* (tables-level) rounds by
// 2^sampling_log2 while the cheap partial heartbeats stay at the base
// cadence: detection latency degrades with the full-detail sampling rate
// while message overhead barely moves.
//
// Flags: --smoke (one tiny cell), --seeds=N, --json=PATH,
//        --metrics-json=PATH (obs dump; "-" = stdout). Unknown flags are
//        ignored. Results land in BENCH_ctrl.json (committed).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "adversary/attacks.h"
#include "core/deployment.h"
#include "ctrl/controller.h"
#include "netsim/topology.h"
#include "obs/obs.h"

namespace {

using namespace pera;

constexpr netsim::SimTime kSwapAt = 500 * netsim::kMillisecond;
constexpr netsim::SimTime kDeadline = 30 * netsim::kSecond;

struct RunResult {
  bool detected = false;
  double detect_ms = 0.0;
  double ctl_msgs_per_s = 0.0;
  double ctl_kbytes_per_s = 0.0;
  double rounds_per_s = 0.0;
  double timeout_rate = 0.0;
};

RunResult run_once(std::int64_t interval_ms, double loss, int sampling_log2,
                   std::uint64_t seed) {
  core::DeploymentOptions dopt;
  dopt.seed = seed;
  core::Deployment dep(netsim::topo::isp(), dopt);
  dep.provision_goldens();
  if (loss > 0) dep.network().set_loss(loss, seed + 7);

  ctrl::ControllerConfig cfg;
  cfg.trust.quarantine_after = 2;
  cfg.trust.reinstate_after = 2;
  cfg.transport.max_attempts = 5;
  const netsim::SimTime base = interval_ms * netsim::kMillisecond;
  cfg.scheduler.cadence.hardware = base;
  cfg.scheduler.cadence.program = base;
  // Only tables-level rounds carry the full detail mask; thinning them is
  // the control plane's sampling knob.
  cfg.scheduler.cadence.tables = base << sampling_log2;
  cfg.transport.timeout = std::min<netsim::SimTime>(
      20 * netsim::kMillisecond, base / 2 > 0 ? base / 2 : base);
  ctrl::AttestationController controller(dep, "client", cfg, seed);

  auto& net = dep.network();
  net.events().schedule_at(kSwapAt, [&] {
    adversary::program_swap_attack(dep, "core2");
  });

  controller.start();
  std::optional<netsim::SimTime> detected_at;
  for (netsim::SimTime t = 100 * netsim::kMillisecond; t <= kDeadline;
       t += 100 * netsim::kMillisecond) {
    net.run(t);
    const auto q =
        controller.first_transition("core2", ctrl::TrustState::kQuarantined);
    if (q && *q >= kSwapAt) {
      detected_at = *q;
      break;
    }
  }
  controller.stop();
  net.run();

  RunResult r;
  const double sim_s = static_cast<double>(net.now()) / 1e9;
  const auto& stats = net.stats();
  const auto& tstats = controller.transport().stats();
  if (detected_at) {
    r.detected = true;
    r.detect_ms = static_cast<double>(*detected_at - kSwapAt) / 1e6;
  }
  if (sim_s > 0) {
    r.ctl_msgs_per_s = static_cast<double>(stats.messages_sent) / sim_s;
    r.ctl_kbytes_per_s =
        static_cast<double>(stats.bytes_sent) / 1024.0 / sim_s;
    r.rounds_per_s = static_cast<double>(tstats.rounds) / sim_s;
  }
  if (tstats.rounds > 0) {
    r.timeout_rate =
        static_cast<double>(tstats.rounds_timed_out) /
        static_cast<double>(tstats.rounds);
  }
  return r;
}

struct Cell {
  std::int64_t interval_ms = 0;
  double loss = 0.0;
  int sampling_log2 = 0;
  std::size_t seeds = 0;
  std::size_t detected = 0;
  double detect_ms_mean = 0.0;
  double detect_ms_min = 0.0;
  double detect_ms_max = 0.0;
  double ctl_msgs_per_s = 0.0;
  double ctl_kbytes_per_s = 0.0;
  double rounds_per_s = 0.0;
  double timeout_rate = 0.0;
};

Cell run_cell(std::int64_t interval_ms, double loss, int sampling_log2,
              std::size_t seeds) {
  Cell c;
  c.interval_ms = interval_ms;
  c.loss = loss;
  c.sampling_log2 = sampling_log2;
  c.seeds = seeds;
  double sum = 0.0;
  for (std::size_t s = 0; s < seeds; ++s) {
    const RunResult r = run_once(interval_ms, loss, sampling_log2, 1000 + s);
    if (r.detected) {
      if (c.detected == 0 || r.detect_ms < c.detect_ms_min)
        c.detect_ms_min = r.detect_ms;
      if (c.detected == 0 || r.detect_ms > c.detect_ms_max)
        c.detect_ms_max = r.detect_ms;
      sum += r.detect_ms;
      ++c.detected;
    }
    c.ctl_msgs_per_s += r.ctl_msgs_per_s / static_cast<double>(seeds);
    c.ctl_kbytes_per_s += r.ctl_kbytes_per_s / static_cast<double>(seeds);
    c.rounds_per_s += r.rounds_per_s / static_cast<double>(seeds);
    c.timeout_rate += r.timeout_rate / static_cast<double>(seeds);
  }
  if (c.detected > 0) c.detect_ms_mean = sum / static_cast<double>(c.detected);
  return c;
}

void print_cell(const char* tag, const Cell& c) {
  std::printf(
      "%s interval=%4lldms loss=%.2f s=%d  detect=%8.1f ms "
      "[%6.1f, %6.1f]  ctl=%7.0f msg/s %8.1f KiB/s  timeouts=%.3f\n",
      tag, static_cast<long long>(c.interval_ms), c.loss, c.sampling_log2,
      c.detect_ms_mean, c.detect_ms_min, c.detect_ms_max, c.ctl_msgs_per_s,
      c.ctl_kbytes_per_s, c.timeout_rate);
}

void write_cells(std::FILE* f, const std::vector<Cell>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"interval_ms\": %lld, \"loss\": %.2f, \"sampling_log2\": %d, "
        "\"seeds\": %zu, \"detected\": %zu, \"detect_ms_mean\": %.1f, "
        "\"detect_ms_min\": %.1f, \"detect_ms_max\": %.1f, "
        "\"ctl_msgs_per_s\": %.1f, \"ctl_kbytes_per_s\": %.1f, "
        "\"rounds_per_s\": %.1f, \"timeout_rate\": %.4f}%s\n",
        static_cast<long long>(c.interval_ms), c.loss, c.sampling_log2,
        c.seeds, c.detected, c.detect_ms_mean, c.detect_ms_min,
        c.detect_ms_max, c.ctl_msgs_per_s, c.ctl_kbytes_per_s, c.rounds_per_s,
        c.timeout_rate, i + 1 < cells.size() ? "," : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t seeds = 5;
  std::string json_path = "BENCH_ctrl.json";
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg.rfind("--seeds=", 0) == 0) seeds = std::strtoull(arg.c_str() + 8, nullptr, 10);
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else if (arg.rfind("--metrics-json=", 0) == 0) metrics_path = arg.substr(15);
    // Unknown flags are ignored (harness-wide sweeps pass shared flags).
  }
  if (seeds == 0) seeds = 1;

  if (!metrics_path.empty()) {
    obs::reset();
    obs::set_enabled(true);
  }

  std::vector<Cell> cells;
  std::vector<Cell> sampling_cells;
  if (smoke) {
    cells.push_back(run_cell(100, 0.02, 0, 1));
    print_cell("smoke", cells.back());
  } else {
    for (const double loss : {0.0, 0.02, 0.05}) {
      for (const std::int64_t interval : {50LL, 100LL, 200LL, 400LL}) {
        cells.push_back(run_cell(interval, loss, 0, seeds));
        print_cell("grid ", cells.back());
      }
    }
    for (const int s : {0, 1, 2}) {
      sampling_cells.push_back(run_cell(100, 0.02, s, seeds));
      print_cell("sampl", sampling_cells.back());
    }
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_ctrl: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"scenario\": \"core2 program swap on isp() at %lld ms\","
               "\n  \"seeds\": %zu,\n  \"cells\": [\n",
               static_cast<long long>(kSwapAt / netsim::kMillisecond), seeds);
  write_cells(f, cells);
  std::fprintf(f, "  ],\n  \"sampling_cells\": [\n");
  write_cells(f, sampling_cells);
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  if (!metrics_path.empty()) {
    const std::string json = obs::dump_json();
    if (metrics_path == "-") {
      std::fwrite(json.data(), 1, json.size(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
      if (mf != nullptr) {
        std::fwrite(json.data(), 1, json.size(), mf);
        std::fclose(mf);
      }
    }
  }

  // Acceptance gate: within every loss rate, mean detection latency must
  // rise with the interval (monotone in re-attestation frequency).
  bool monotone = true;
  if (!smoke) {
    for (const double loss : {0.0, 0.02, 0.05}) {
      double prev = -1.0;
      for (const Cell& c : cells) {
        if (c.loss != loss || c.detected == 0) continue;
        if (prev >= 0 && c.detect_ms_mean < prev) monotone = false;
        prev = c.detect_ms_mean;
      }
    }
    std::printf("detection latency monotone in interval: %s\n",
                monotone ? "yes" : "NO");
  }
  return monotone ? 0 : 1;
}
