// Connection-scaling soak for the real-socket evidence transport: one
// epoll appraiser server, a SwitchFleet load generator, loopback TCP.
//
// Two sweeps:
//
//   * connection scaling — establish N concurrent RA sessions (the
//     handshake storm is timed too), then run closed-loop evidence
//     rounds at pipeline depth 4 per connection and record rounds/s and
//     per-round latency percentiles. N rises to 1024 in the full run.
//   * reactor-shard scaling — fixed fleet, the server's reactor count
//     sweeps 1 / 2 / 4; rounds/s per cell shows what epoll sharding
//     buys (on a multi-core host) or costs (on one core).
//
// Acceptance gates (nonzero exit on violation):
//   1. the top connection cell establishes every session — ≥1000
//      concurrent RA sessions in the full run — and completes every
//      round with a true verdict;
//   2. reactor sharding must not collapse throughput: rounds/s at the
//      deployable 2-shard point ≥ floor × rounds/s at 1 reactor, where
//      the floor is host-aware (0.5 on a single hardware thread, where
//      extra reactors only add contention; 0.8 otherwise). The 4-shard
//      cell is recorded as data, not gated — on a small host it only
//      measures oversubscription;
//   3. a switch whose quote claims a tampered measurement is refused
//      admission (the transport's whole point).
//
// Flags: --smoke (small fleet), --json=PATH, --metrics-json=PATH.
// Results land in BENCH_net.json (committed).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "crypto/sha256.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/obs.h"
#include "pipeline/pipeline.h"

namespace {

using namespace pera;

crypto::Digest d(std::string_view label) {
  crypto::Sha256 h;
  h.update(label);
  return h.finish();
}

struct Keys {
  crypto::Digest quote_root = d("bench-net-quote-root");
  crypto::Digest golden = d("bench-net-golden");
  crypto::Digest evidence_root = d("bench-net-evidence-root");
  crypto::Digest cert_key = d("bench-net-cert-key");
  crypto::Digest appraiser_meas = d("bench-net-appraiser-meas");
};

struct Cell {
  std::size_t connections = 0;
  std::size_t reactors = 0;
  std::size_t established = 0;
  double establish_ms = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t verdict_failures = 0;
  std::uint64_t session_failures = 0;
  double rounds_per_s = 0.0;
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
};

double percentile(std::vector<float>& v, double p) {
  if (v.empty()) return 0.0;
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(p * double(v.size() - 1)));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return double(v[idx]);
}

Cell run_cell(const Keys& keys, std::size_t connections, std::size_t reactors,
              std::uint64_t total_rounds, std::size_t depth) {
  net::ServerConfig sc;
  sc.reactors = reactors;
  sc.appraiser_workers = 1;
  sc.quote_root_key = keys.quote_root;
  sc.golden_measurement = keys.golden;
  sc.evidence_root_key = keys.evidence_root;
  sc.cert_key = keys.cert_key;
  sc.appraiser_measurement = keys.appraiser_meas;
  net::AppraiserServer server(sc);
  server.start();

  net::SwitchFleet::Config fc;
  fc.port = server.port();
  fc.connections = connections;
  fc.depth = depth;
  fc.device_keys =
      pipeline::PeraPipeline::shard_keys(keys.evidence_root,
                                         "pera.net.device", 16);
  fc.quote_root_key = keys.quote_root;
  fc.measurement = keys.golden;
  net::SwitchFleet fleet(fc);

  Cell cell;
  cell.connections = connections;
  cell.reactors = reactors;
  const auto t0 = std::chrono::steady_clock::now();
  cell.established = fleet.establish(60'000);
  cell.establish_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  net::SwitchFleet::RunStats rs = fleet.run_rounds(total_rounds, 120'000);
  cell.rounds = rs.rounds_completed;
  cell.verdict_failures = rs.verdict_failures;
  cell.session_failures = rs.session_failures;
  cell.rounds_per_s =
      rs.wall_ns > 0 ? double(rs.rounds_completed) * 1e9 / double(rs.wall_ns)
                     : 0.0;
  cell.latency_p50_us = percentile(rs.latency_us, 0.50);
  cell.latency_p99_us = percentile(rs.latency_us, 0.99);
  fleet.shutdown();
  server.stop();
  return cell;
}

void print_cell(const char* tag, const Cell& c) {
  std::printf(
      "%s conns=%4zu reactors=%zu est=%4zu (%.0f ms)  rounds=%llu  "
      "%.0f rounds/s  p50=%.0fus p99=%.0fus  vfail=%llu sfail=%llu\n",
      tag, c.connections, c.reactors, c.established, c.establish_ms,
      static_cast<unsigned long long>(c.rounds), c.rounds_per_s,
      c.latency_p50_us, c.latency_p99_us,
      static_cast<unsigned long long>(c.verdict_failures),
      static_cast<unsigned long long>(c.session_failures));
}

void write_cells(std::FILE* f, const std::vector<Cell>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"connections\": %zu, \"reactors\": %zu, \"established\": %zu, "
        "\"establish_ms\": %.1f, \"rounds\": %llu, \"rounds_per_s\": %.1f, "
        "\"latency_p50_us\": %.1f, \"latency_p99_us\": %.1f, "
        "\"verdict_failures\": %llu, \"session_failures\": %llu}%s\n",
        c.connections, c.reactors, c.established, c.establish_ms,
        static_cast<unsigned long long>(c.rounds), c.rounds_per_s,
        c.latency_p50_us, c.latency_p99_us,
        static_cast<unsigned long long>(c.verdict_failures),
        static_cast<unsigned long long>(c.session_failures),
        i + 1 < cells.size() ? "," : "");
  }
}

// Gate 3: tampered measurement in the quote → refused at the door.
bool bad_quote_rejected(const Keys& keys) {
  net::ServerConfig sc;
  sc.quote_root_key = keys.quote_root;
  sc.golden_measurement = keys.golden;
  sc.evidence_root_key = keys.evidence_root;
  sc.cert_key = keys.cert_key;
  net::AppraiserServer server(sc);
  server.start();
  net::ClientIdentity id;
  id.place = "intruder";
  id.quote_root_key = keys.quote_root;
  id.measurement = d("tampered-program");
  id.device_key =
      pipeline::PeraPipeline::shard_keys(keys.evidence_root,
                                         "pera.net.device", 16)[0];
  net::SwitchClient client(id);
  const bool admitted = client.connect(server.port(), 2000);
  const bool rejected_right =
      !admitted && client.reject_reason() == net::RejectReason::kBadQuote;
  server.stop();
  return rejected_right;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_net.json";
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else if (arg.rfind("--metrics-json=", 0) == 0) metrics_path = arg.substr(15);
    // Unknown flags are ignored (harness-wide sweeps pass shared flags).
  }
  if (!metrics_path.empty()) {
    obs::reset();
    obs::set_enabled(true);
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const Keys keys;

  // Sweep 1: connection scaling at 2 reactors.
  const std::vector<std::size_t> conn_levels =
      smoke ? std::vector<std::size_t>{16, 64}
            : std::vector<std::size_t>{64, 256, 1024};
  std::vector<Cell> scaling;
  for (const std::size_t conns : conn_levels) {
    scaling.push_back(run_cell(keys, conns, 2, conns * 8, 4));
    print_cell("scale  ", scaling.back());
  }

  // Sweep 2: reactor shards at a fixed fleet.
  const std::size_t shard_conns = smoke ? 32 : 256;
  std::vector<Cell> shards;
  for (const std::size_t reactors : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
    shards.push_back(
        run_cell(keys, shard_conns, reactors, shard_conns * 8, 4));
    print_cell("shards ", shards.back());
  }

  const bool gate_reject = bad_quote_rejected(keys);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_net: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"transport\": \"loopback TCP, epoll reactors, "
               "RA-session handshake\",\n  \"host_threads\": %u,\n"
               "  \"scaling_cells\": [\n",
               hw);
  write_cells(f, scaling);
  std::fprintf(f, "  ],\n  \"reactor_cells\": [\n");
  write_cells(f, shards);
  std::fprintf(f, "  ],\n  \"bad_quote_rejected\": %s\n}\n",
               gate_reject ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  if (!metrics_path.empty()) {
    const std::string json = obs::dump_json();
    if (metrics_path == "-") {
      std::fwrite(json.data(), 1, json.size(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
      if (mf != nullptr) {
        std::fwrite(json.data(), 1, json.size(), mf);
        std::fclose(mf);
      }
    }
  }

  // Gate 1: the top cell establishes and completes everything.
  const Cell& top = scaling.back();
  const bool gate_scale = top.established == top.connections &&
                          top.rounds == top.connections * 8 &&
                          top.verdict_failures == 0 &&
                          top.session_failures == 0;
  std::printf("gate: %zu/%zu sessions established, all rounds true: %s\n",
              top.established, top.connections, gate_scale ? "yes" : "NO");

  // Gate 2: host-aware no-collapse floor for reactor sharding, judged at
  // the deployable 2-shard point (the 4-shard cell is recorded as data;
  // on a 1-thread host it only measures oversubscription). On one
  // hardware thread extra reactors cannot help, so the floor just
  // forbids collapse; with real parallelism the bar is higher.
  const double floor = hw >= 2 ? 0.8 : 0.5;
  const double base = shards.front().rounds_per_s;
  const double deployed = shards[1].rounds_per_s;
  const bool gate_shards = base > 0 && deployed >= floor * base;
  std::printf("gate: reactor sharding %.0f -> %.0f rounds/s at 2 shards "
              "(floor %.1fx on %u threads): %s\n",
              base, deployed, floor, hw, gate_shards ? "yes" : "NO");

  std::printf("gate: tampered quote refused admission: %s\n",
              gate_reject ? "yes" : "NO");

  return (gate_scale && gate_shards && gate_reject) ? 0 : 1;
}
