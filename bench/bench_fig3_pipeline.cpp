// Fig. 3 — An RA-capable programmable switch.
//
// Regenerates the per-stage cost breakdown of the PERA pipeline: parse
// (A), match+action (B/C), evidence create/compose (E) and sign/verify
// (D). Real CPU time per packet for a baseline PISA switch vs the PERA
// switch at increasing evidence detail, plus microbenches for the
// sign/verify unit under both signer schemes.
#include <benchmark/benchmark.h>

#include "obs_bench_main.h"

#include "crypto/keystore.h"
#include "nac/compiler.h"
#include "pera/pera_switch.h"

namespace {

using namespace pera;
using PeraSwitchT = ::pera::pera::PeraSwitch;
using dataplane::make_tcp_packet;

const dataplane::RawPacket& test_packet() {
  static const dataplane::RawPacket pkt = make_tcp_packet({});
  return pkt;
}

// (A) alone: the programmable parser.
void BM_Fig3_ParseOnly(benchmark::State& state) {
  const dataplane::ParserProgram parser = dataplane::standard_parser();
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.parse(test_packet()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig3_ParseOnly);

// (A)+(B)+(C): the full baseline PISA pipeline without RA.
void BM_Fig3_BaselinePipeline(benchmark::State& state) {
  dataplane::PisaSwitch sw(dataplane::make_router());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.process(test_packet()));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("PISA, no RA");
}
BENCHMARK(BM_Fig3_BaselinePipeline);

// Firewall variant (two tables, ternary ACL).
void BM_Fig3_BaselineFirewall(benchmark::State& state) {
  dataplane::PisaSwitch sw(dataplane::make_firewall());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.process(test_packet()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig3_BaselineFirewall);

nac::PolicyHeader header_for(nac::DetailMask detail, bool fresh_nonce_each,
                             int i = 0) {
  nac::CompiledPolicy pol;
  nac::HopInstruction inst;
  inst.wildcard = true;
  inst.detail = detail;
  inst.sign_evidence = true;
  pol.hops = {inst};
  pol.appraiser = "Appraiser";
  const crypto::Nonce n{crypto::sha256(
      fresh_nonce_each ? "nonce" + std::to_string(i) : "flow-nonce")};
  return nac::make_header(pol, n, /*in_band=*/true);
}

// (A)-(E): PERA with evidence creation at increasing detail. The cache is
// warm (per-flow nonce), so this is the steady-state per-packet cost.
void BM_Fig3_PeraPipeline(benchmark::State& state) {
  crypto::KeyStore keys(7);
  PeraSwitchT sw("sw1", dataplane::make_router(),
                      keys.provision_hmac("sw1"));
  const auto detail = static_cast<nac::DetailMask>(state.range(0));
  const nac::PolicyHeader hdr = header_for(detail, false);
  for (auto _ : state) {
    nac::EvidenceCarrier carrier;
    benchmark::DoNotOptimize(sw.process(test_packet(), &hdr, &carrier));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(nac::describe_mask(detail));
  state.counters["sim_ns_per_pkt"] =
      static_cast<double>(sw.ra_stats().ra_time_total) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Fig3_PeraPipeline)
    ->Arg(nac::mask_of(nac::EvidenceDetail::kHardware))
    ->Arg(nac::mask_of(nac::EvidenceDetail::kProgram))
    ->Arg(nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram)
    ->Arg(nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram |
          nac::EvidenceDetail::kTables)
    ->Arg(nac::kAllDetail);

// Worst case: packet-level evidence, uncacheable, every packet signed.
void BM_Fig3_PerPacketEvidence(benchmark::State& state) {
  crypto::KeyStore keys(7);
  PeraSwitchT sw("sw1", dataplane::make_router(),
                      keys.provision_hmac("sw1"));
  const nac::PolicyHeader hdr =
      header_for(nac::mask_of(nac::EvidenceDetail::kPacket), false);
  for (auto _ : state) {
    nac::EvidenceCarrier carrier;
    benchmark::DoNotOptimize(sw.process(test_packet(), &hdr, &carrier));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("per-packet, uncacheable");
}
BENCHMARK(BM_Fig3_PerPacketEvidence);

// (D) microbenches: the sign/verify unit.
void BM_Fig3_SignHmac(benchmark::State& state) {
  crypto::KeyStore keys(9);
  crypto::Signer& s = keys.provision_hmac("sw");
  const crypto::Digest d = crypto::sha256("evidence digest");
  for (auto _ : state) benchmark::DoNotOptimize(s.sign(d));
}
BENCHMARK(BM_Fig3_SignHmac);

void BM_Fig3_SignXmss(benchmark::State& state) {
  crypto::KeyStore keys(9);
  crypto::Signer& s = keys.provision_xmss("sw", 12);
  const crypto::Digest d = crypto::sha256("evidence digest");
  for (auto _ : state) benchmark::DoNotOptimize(s.sign(d));
}
BENCHMARK(BM_Fig3_SignXmss)->Iterations(2048);

void BM_Fig3_VerifyHmac(benchmark::State& state) {
  crypto::KeyStore keys(9);
  crypto::Signer& s = keys.provision_hmac("sw");
  const crypto::Digest d = crypto::sha256("evidence digest");
  const crypto::Signature sig = s.sign(d);
  const crypto::Verifier* v = keys.verifier_for("sw");
  for (auto _ : state) benchmark::DoNotOptimize(v->verify(d, sig));
}
BENCHMARK(BM_Fig3_VerifyHmac);

void BM_Fig3_VerifyXmss(benchmark::State& state) {
  crypto::KeyStore keys(9);
  crypto::Signer& s = keys.provision_xmss("sw", 10);
  const crypto::Digest d = crypto::sha256("evidence digest");
  const crypto::Signature sig = s.sign(d);
  const crypto::Verifier* v = keys.verifier_for("sw");
  for (auto _ : state) benchmark::DoNotOptimize(v->verify(d, sig));
}
BENCHMARK(BM_Fig3_VerifyXmss);

// (E) compose: folding a fresh record into accumulated path evidence.
void BM_Fig3_Compose(benchmark::State& state) {
  crypto::KeyStore keys(9);
  PeraSwitchT sw("sw1", dataplane::make_router(),
                      keys.provision_hmac("sw1"));
  const copland::EvidencePtr fresh = sw.attest_challenge(
      nac::mask_of(nac::EvidenceDetail::kProgram),
      crypto::Nonce{crypto::sha256("n")}, false);
  copland::EvidencePtr acc = copland::Evidence::empty();
  for (auto _ : state) {
    const auto r =
        sw.engine().compose(acc, fresh, nac::CompositionMode::kChained);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Fig3_Compose);

// SHA-256 throughput anchors the hash-unit cost model.
void BM_Fig3_Sha256(benchmark::State& state) {
  const crypto::Bytes data(static_cast<std::size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::sha256(crypto::BytesView{data.data(), data.size()}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fig3_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

PERA_BENCH_MAIN();
