// Sharded-pipeline throughput benchmark.
//
// Sweeps the shard count (1/2/4/8), evidence cache (on/off) and
// out-of-band signing batch (1/32) over a fixed multi-flow packet
// stream, emitting BENCH_throughput.json. Two measurements per cell:
//
//   * simulated packets/sec — the methodology-level number. The
//     dispatcher clock (serial fraction) and per-shard pipe clocks use
//     the same deterministic CostModel as the rest of the reproduction,
//     so this scales with shards regardless of host core count.
//   * wall-clock packets/sec — the host-dependent number, reported for
//     context (a 1-core container serializes the worker threads).
//
// Extra flags (stripped before Google Benchmark sees the rest):
//   --shards=N     restrict the sweep to one shard count
//   --packets=N    stream length per cell (default 4096)
//   --flows=N      distinct 5-tuples in the stream (default 64)
//   --warmup=N     unrecorded passes per cell before measuring (default 0)
//   --repeat=N     measured passes per cell; the median run (by wall-clock
//                  packets/sec) is the one reported (default 1)
//   --json=PATH    output path (default BENCH_throughput.json)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "obs_bench_main.h"
#include "pipeline/pipeline.h"
#include "pipeline/reassembler.h"

namespace {

using namespace pera;
using pipeline::PeraPipeline;
using pipeline::PipelineOptions;
using pipeline::PipelineReport;

struct SweepConfig {
  std::size_t packets = 4096;
  std::size_t flows = 64;
  std::size_t only_shards = 0;  // 0 = sweep 1/2/4/8
  std::size_t warmup = 0;       // discarded passes per cell
  std::size_t repeat = 1;       // measured passes; median reported
  std::string json_path = "BENCH_throughput.json";
};

std::vector<dataplane::RawPacket> make_stream(std::size_t packets,
                                              std::size_t flows) {
  std::vector<dataplane::RawPacket> out;
  out.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    dataplane::PacketSpec spec;
    spec.sport = static_cast<std::uint16_t>(40000 + i % flows);
    spec.ip_src = 0x0a000100 + static_cast<std::uint32_t>(i % flows);
    out.push_back(dataplane::make_tcp_packet(spec));
  }
  return out;
}

nac::PolicyHeader make_policy_header() {
  nac::HopInstruction inst;
  inst.detail = nac::mask_of(nac::EvidenceDetail::kProgram);
  inst.sign_evidence = true;
  inst.wildcard = true;
  inst.out_of_band = true;
  nac::CompiledPolicy pol;
  pol.hops = {inst};
  pol.appraiser = "Appraiser";
  return nac::make_header(pol, crypto::Nonce{crypto::sha256("bench")}, true);
}

struct CellResult {
  std::size_t shards = 0;
  bool cache = false;
  std::size_t batch = 0;
  PipelineReport report;
  double wall_pps = 0.0;
};

CellResult run_cell(std::size_t shards, bool cache, std::size_t batch,
                    const std::vector<dataplane::RawPacket>& stream,
                    const nac::PolicyHeader& hdr) {
  PipelineOptions opt;
  opt.shards = shards;
  opt.queue_capacity = 4096;
  opt.drop_on_full = false;
  opt.pera.cache_enabled = cache;
  opt.pera.oob_batch_size = batch;
  PeraPipeline pipe("sw1", [] { return dataplane::make_router(); },
                    crypto::sha256("bench-root"), opt);

  const auto t0 = std::chrono::steady_clock::now();
  pipe.start();
  for (const dataplane::RawPacket& raw : stream) (void)pipe.submit(raw, &hdr);
  pipe.stop();
  const auto t1 = std::chrono::steady_clock::now();

  CellResult cell;
  cell.shards = shards;
  cell.cache = cache;
  cell.batch = batch;
  cell.report = pipe.report();
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  if (wall_s > 0) {
    cell.wall_pps = static_cast<double>(cell.report.processed()) / wall_s;
  }
  return cell;
}

// Warmup passes are discarded; of the measured passes the median by
// wall-clock pps is reported, which is what actually varies between runs
// (the simulated numbers are deterministic).
CellResult run_cell_repeated(std::size_t shards, bool cache, std::size_t batch,
                             const std::vector<dataplane::RawPacket>& stream,
                             const nac::PolicyHeader& hdr,
                             const SweepConfig& cfg) {
  for (std::size_t i = 0; i < cfg.warmup; ++i) {
    (void)run_cell(shards, cache, batch, stream, hdr);
  }
  const std::size_t reps = cfg.repeat == 0 ? 1 : cfg.repeat;
  std::vector<CellResult> runs;
  runs.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    runs.push_back(run_cell(shards, cache, batch, stream, hdr));
  }
  std::sort(runs.begin(), runs.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.wall_pps < b.wall_pps;
            });
  return runs[runs.size() / 2];
}

void write_json(const std::vector<CellResult>& cells, const SweepConfig& cfg) {
  std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_throughput: cannot write %s\n",
                 cfg.json_path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"packets\": %zu,\n  \"flows\": %zu,\n"
               "  \"warmup\": %zu,\n  \"repeat\": %zu,\n"
               "  \"sha256_backend\": \"%s\",\n  \"cells\": [\n",
               cfg.packets, cfg.flows, cfg.warmup, cfg.repeat,
               crypto::engine::active().name);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        f,
        "    {\"shards\": %zu, \"cache\": %s, \"batch\": %zu, "
        "\"sim_packets_per_sec\": %.1f, "
        "\"sim_latency_p50_ns\": %lld, \"sim_latency_p99_ns\": %lld, "
        "\"sim_makespan_ns\": %lld, \"wall_packets_per_sec\": %.1f, "
        "\"processed\": %llu, \"dropped\": %llu}%s\n",
        c.shards, c.cache ? "true" : "false", c.batch,
        c.report.sim_packets_per_sec,
        static_cast<long long>(c.report.latency_percentile(0.50)),
        static_cast<long long>(c.report.latency_percentile(0.99)),
        static_cast<long long>(c.report.makespan), c.wall_pps,
        static_cast<unsigned long long>(c.report.processed()),
        static_cast<unsigned long long>(c.report.dropped),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int run_sweep(const SweepConfig& cfg) {
  const std::vector<dataplane::RawPacket> stream =
      make_stream(cfg.packets, cfg.flows);
  const nac::PolicyHeader hdr = make_policy_header();

  std::vector<CellResult> cells;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    if (cfg.only_shards != 0 && shards != cfg.only_shards) continue;
    for (const bool cache : {true, false}) {
      for (const std::size_t batch : {1u, 32u}) {
        cells.push_back(
            run_cell_repeated(shards, cache, batch, stream, hdr, cfg));
        const CellResult& c = cells.back();
        std::printf(
            "shards=%zu cache=%-3s batch=%-2zu  sim=%10.0f pps  "
            "p50=%6lld ns  p99=%6lld ns  wall=%9.0f pps\n",
            c.shards, c.cache ? "on" : "off", c.batch,
            c.report.sim_packets_per_sec,
            static_cast<long long>(c.report.latency_percentile(0.50)),
            static_cast<long long>(c.report.latency_percentile(0.99)),
            c.wall_pps);
      }
    }
  }
  write_json(cells, cfg);
  std::printf("wrote %s\n", cfg.json_path.c_str());
  return 0;
}

// A Google-Benchmark view of the same cell (wall time per full stream
// pass), so this binary also composes with the standard bench tooling.
void BM_PipelineStream(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::vector<dataplane::RawPacket> stream = make_stream(512, 32);
  const nac::PolicyHeader hdr = make_policy_header();
  double sim_pps = 0.0;
  for (auto _ : state) {
    const CellResult c = run_cell(shards, true, 1, stream, hdr);
    sim_pps = c.report.sim_packets_per_sec;
    benchmark::DoNotOptimize(c.report.makespan);
  }
  state.SetItemsProcessed(state.iterations() * 512);
  state.counters["sim_pps"] = sim_pps;
}
BENCHMARK(BM_PipelineStream)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  SweepConfig cfg;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const std::string& name) -> const char* {
      const std::string prefix = name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = value_of("--shards")) {
      cfg.only_shards = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value_of("--packets")) {
      cfg.packets = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value_of("--flows")) {
      cfg.flows = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value_of("--warmup")) {
      cfg.warmup = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value_of("--repeat")) {
      cfg.repeat = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value_of("--json")) {
      cfg.json_path = v;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  const int sweep_rc = run_sweep(cfg);
  if (sweep_rc != 0) return sweep_rc;
  return ::pera::obs_bench::run(argc, argv);
}
