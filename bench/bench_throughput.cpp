// Sharded-pipeline throughput benchmark — with in-pipeline parallel
// appraisal and per-stage wall-clock attribution.
//
// Sweeps the shard count (default 1/2/4/8; each cell also runs one
// appraiser worker per shard), evidence cache (on/off) and out-of-band
// signing batch (1/32) over a fixed multi-flow packet stream, emitting
// BENCH_throughput.json. Two measurements per cell:
//
//   * simulated packets/sec — the methodology-level number. The
//     dispatcher clock (serial fraction) and per-shard pipe clocks use
//     the same deterministic CostModel as the rest of the reproduction,
//     so this scales with shards regardless of host core count.
//   * wall-clock packets/sec — the host-dependent number. Unlike the
//     pre-appraiser bench, the wall window now covers the *whole* job:
//     dispatch + shard processing + concurrent appraisal + verdict
//     merge, so it is an end-to-end number, not a produce-only number.
//
// Asserted gates (exit nonzero on violation; docs/PERFORMANCE.md has the
// full rationale):
//   * sim scaling   — max-shard sim pps >= 3x the 1-shard sim pps, per
//                     (cache, batch) combo; checked when the sweep covers
//                     shards 1 and >= 8. Host-independent.
//   * wall scaling  — host-aware: on a C-core host the same ratio must
//                     reach min(3.0, C/2.0); on 1-2 cores that degrades
//                     to a no-collapse floor of 0.5 (threading overhead
//                     must not halve throughput when there is nothing to
//                     run in parallel on).
//   * bit-identity  — every cell's appraisal summary digest must be
//                     identical across shard counts for a fixed
//                     (cache, batch); checked whenever the sweep covers
//                     >= 2 shard counts.
//   * attribution   — with --profile-json, every cell's profiler
//                     accounted_share must be >= 0.95.
//
// Extra flags (stripped before Google Benchmark sees the rest):
//   --shards=LIST  comma-separated shard counts (e.g. 1,4; default 1,2,4,8)
//   --packets=N    stream length per cell (default 4096)
//   --flows=N      distinct 5-tuples in the stream (default 64)
//   --warmup=N     unrecorded passes per cell before measuring (default 0)
//   --repeat=N     measured passes per cell; the median run (by wall-clock
//                  packets/sec) is the one reported (default 1)
//   --scheme=S     evidence signature scheme: hmac (default) or xmss
//                  (WOTS chains through the multi-lane SHA-256 engine;
//                  mind the 2^height per-shard signature budget)
//   --pin          pin shard/appraiser threads round-robin over the cores
//   --json=PATH    output path (default BENCH_throughput.json)
//   --profile-json=PATH  enable the stage profiler and write the
//                  per-cell per-thread stage attribution JSON
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "obs_bench_main.h"
#include "pipeline/affinity.h"
#include "pipeline/pipeline.h"
#include "pipeline/reassembler.h"

namespace {

using namespace pera;
using pipeline::PeraPipeline;
using pipeline::PipelineOptions;
using pipeline::PipelineReport;
namespace prof = obs::profiler;

struct SweepConfig {
  std::size_t packets = 4096;
  std::size_t flows = 64;
  std::vector<std::size_t> shard_counts = {1, 2, 4, 8};
  std::size_t warmup = 0;  // discarded passes per cell
  std::size_t repeat = 1;  // measured passes; median reported
  crypto::SignatureScheme scheme = crypto::SignatureScheme::kHmacDeviceKey;
  bool pin = false;
  std::string json_path = "BENCH_throughput.json";
  std::string profile_path;  // non-empty = profiler on
};

std::vector<dataplane::RawPacket> make_stream(std::size_t packets,
                                              std::size_t flows) {
  std::vector<dataplane::RawPacket> out;
  out.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    dataplane::PacketSpec spec;
    spec.sport = static_cast<std::uint16_t>(40000 + i % flows);
    spec.ip_src = 0x0a000100 + static_cast<std::uint32_t>(i % flows);
    out.push_back(dataplane::make_tcp_packet(spec));
  }
  return out;
}

nac::PolicyHeader make_policy_header() {
  nac::HopInstruction inst;
  inst.detail = nac::mask_of(nac::EvidenceDetail::kProgram);
  inst.sign_evidence = true;
  inst.wildcard = true;
  inst.out_of_band = true;
  nac::CompiledPolicy pol;
  pol.hops = {inst};
  pol.appraiser = "Appraiser";
  return nac::make_header(pol, crypto::Nonce{crypto::sha256("bench")}, true);
}

struct CellResult {
  std::size_t shards = 0;
  bool cache = false;
  std::size_t batch = 0;
  PipelineReport report;
  double wall_pps = 0.0;
  // End-to-end appraisal results (inside the wall window).
  std::size_t appraised_flows = 0;
  std::uint64_t appraised_records = 0;
  std::string summary_hex;  // appraisal summary digest (shard-invariant)
  // Stage attribution for this pass (profiler enabled only).
  double accounted_share = 1.0;
  std::string profile_json;
};

CellResult run_cell(std::size_t shards, bool cache, std::size_t batch,
                    const std::vector<dataplane::RawPacket>& stream,
                    const nac::PolicyHeader& hdr, const SweepConfig& cfg) {
  PipelineOptions opt;
  opt.shards = shards;
  opt.queue_capacity = 4096;
  opt.drop_on_full = false;
  opt.pera.cache_enabled = cache;
  opt.pera.oob_batch_size = batch;
  opt.appraisers = shards;  // one appraiser worker per shard
  opt.scheme = cfg.scheme;
  opt.pin_cores = cfg.pin;
  PeraPipeline pipe("sw1", [] { return dataplane::make_router(); },
                    crypto::sha256("bench-root"), opt);

  const bool profiling = prof::enabled();
  if (profiling) prof::reset();

  const auto t0 = std::chrono::steady_clock::now();
  {
    // The submitting thread is the dispatch stage; its submit() calls
    // attribute to dispatch / ring_transit once registered.
    const prof::ScopedThread dispatcher("dispatch", prof::Stage::kIdle);
    pipe.start();
    for (const dataplane::RawPacket& raw : stream) {
      (void)pipe.submit(raw, &hdr);
    }
    pipe.stop();  // defined drain order: shards flush, appraiser merges
  }
  const auto t1 = std::chrono::steady_clock::now();

  CellResult cell;
  cell.shards = shards;
  cell.cache = cache;
  cell.batch = batch;
  cell.report = pipe.report();
  cell.appraised_flows = pipe.appraiser()->flows();
  cell.appraised_records = pipe.appraiser()->records();
  cell.summary_hex = pipe.appraiser()->summary().hex();
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  if (wall_s > 0) {
    cell.wall_pps = static_cast<double>(cell.report.processed()) / wall_s;
  }
  if (profiling) {
    cell.accounted_share = prof::totals().accounted_share();
    cell.profile_json = prof::to_json();
    // Fold this cell's totals into the metrics registry before the next
    // cell's reset() clears them; the --metrics-json export then carries
    // pipeline.stage.* accumulated across the whole sweep.
    prof::publish_metrics();
  }
  return cell;
}

// Warmup passes are discarded; of the measured passes the median by
// wall-clock pps is reported, which is what actually varies between runs
// (the simulated numbers and summary digests are deterministic).
CellResult run_cell_repeated(std::size_t shards, bool cache, std::size_t batch,
                             const std::vector<dataplane::RawPacket>& stream,
                             const nac::PolicyHeader& hdr,
                             const SweepConfig& cfg) {
  for (std::size_t i = 0; i < cfg.warmup; ++i) {
    (void)run_cell(shards, cache, batch, stream, hdr, cfg);
  }
  const std::size_t reps = cfg.repeat == 0 ? 1 : cfg.repeat;
  std::vector<CellResult> runs;
  runs.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    runs.push_back(run_cell(shards, cache, batch, stream, hdr, cfg));
  }
  std::sort(runs.begin(), runs.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.wall_pps < b.wall_pps;
            });
  return runs[runs.size() / 2];
}

void write_json(const std::vector<CellResult>& cells, const SweepConfig& cfg) {
  std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_throughput: cannot write %s\n",
                 cfg.json_path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"packets\": %zu,\n  \"flows\": %zu,\n"
               "  \"warmup\": %zu,\n  \"repeat\": %zu,\n"
               "  \"host_cores\": %u,\n"
               "  \"sha256_backend\": \"%s\",\n"
               "  \"scheme\": \"%s\",\n  \"cells\": [\n",
               cfg.packets, cfg.flows, cfg.warmup, cfg.repeat,
               pipeline::core_count(), crypto::engine::active().name,
               cfg.scheme == crypto::SignatureScheme::kXmss ? "xmss" : "hmac");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        f,
        "    {\"shards\": %zu, \"cache\": %s, \"batch\": %zu, "
        "\"sim_packets_per_sec\": %.1f, "
        "\"sim_latency_p50_ns\": %lld, \"sim_latency_p99_ns\": %lld, "
        "\"sim_makespan_ns\": %lld, \"wall_packets_per_sec\": %.1f, "
        "\"processed\": %llu, \"dropped\": %llu, "
        "\"appraised_flows\": %zu, \"appraised_records\": %llu, "
        "\"pool_reused\": %llu, \"pool_fresh\": %llu, "
        "\"summary\": \"%s\"}%s\n",
        c.shards, c.cache ? "true" : "false", c.batch,
        c.report.sim_packets_per_sec,
        static_cast<long long>(c.report.latency_percentile(0.50)),
        static_cast<long long>(c.report.latency_percentile(0.99)),
        static_cast<long long>(c.report.makespan), c.wall_pps,
        static_cast<unsigned long long>(c.report.processed()),
        static_cast<unsigned long long>(c.report.dropped),
        c.appraised_flows,
        static_cast<unsigned long long>(c.appraised_records),
        static_cast<unsigned long long>(c.report.pool_reused),
        static_cast<unsigned long long>(c.report.pool_fresh),
        c.summary_hex.c_str(), i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void write_profile_json(const std::vector<CellResult>& cells,
                        const SweepConfig& cfg) {
  std::FILE* f = std::fopen(cfg.profile_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_throughput: cannot write %s\n",
                 cfg.profile_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"cache\": %s, \"batch\": %zu, "
                 "\"profile\": %s}%s\n",
                 c.shards, c.cache ? "true" : "false", c.batch,
                 c.profile_json.c_str(), i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// The asserted gates. Returns the number of violations (0 = pass).
int check_gates(const std::vector<CellResult>& cells, const SweepConfig& cfg) {
  int violations = 0;
  std::size_t min_shards = SIZE_MAX, max_shards = 0;
  for (const CellResult& c : cells) {
    min_shards = std::min(min_shards, c.shards);
    max_shards = std::max(max_shards, c.shards);
  }
  if (cells.empty()) return 0;

  const auto find_cell = [&cells](std::size_t shards, bool cache,
                                  std::size_t batch) -> const CellResult* {
    for (const CellResult& c : cells) {
      if (c.shards == shards && c.cache == cache && c.batch == batch) {
        return &c;
      }
    }
    return nullptr;
  };

  // Bit-identity: the appraisal summary digest must not depend on the
  // shard count (and hence not on the appraiser count, which tracks it).
  if (min_shards < max_shards) {
    for (const CellResult& c : cells) {
      const CellResult* base = find_cell(min_shards, c.cache, c.batch);
      if (base == nullptr || base->summary_hex == c.summary_hex) continue;
      std::fprintf(stderr,
                   "GATE FAIL [bit-identity]: cache=%d batch=%zu summary "
                   "differs between %zu and %zu shards\n",
                   c.cache ? 1 : 0, c.batch, min_shards, c.shards);
      ++violations;
    }
  }

  // Scaling gates need the full span (1 shard and >= 8 shards).
  if (min_shards == 1 && max_shards >= 8) {
    const unsigned cores = pipeline::core_count();
    // Host-aware wall target: C/2 up to the asserted 3x; a 1-2 core host
    // cannot run threads in parallel, so only guard against collapse.
    const double wall_required =
        cores <= 2 ? 0.5 : std::min(3.0, static_cast<double>(cores) / 2.0);
    for (const bool cache : {true, false}) {
      for (const std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
        const CellResult* lo = find_cell(1, cache, batch);
        const CellResult* hi = find_cell(max_shards, cache, batch);
        if (lo == nullptr || hi == nullptr) continue;
        const double sim_x =
            lo->report.sim_packets_per_sec > 0
                ? hi->report.sim_packets_per_sec /
                      lo->report.sim_packets_per_sec
                : 0.0;
        if (sim_x < 3.0) {
          std::fprintf(stderr,
                       "GATE FAIL [sim-scaling]: cache=%d batch=%zu "
                       "sim %zux/%zux = %.2fx < 3.0x\n",
                       cache ? 1 : 0, batch, max_shards, std::size_t{1},
                       sim_x);
          ++violations;
        }
        const double wall_x =
            lo->wall_pps > 0 ? hi->wall_pps / lo->wall_pps : 0.0;
        if (wall_x < wall_required) {
          std::fprintf(stderr,
                       "GATE FAIL [wall-scaling]: cache=%d batch=%zu "
                       "wall %.2fx < %.2fx (host has %u cores)\n",
                       cache ? 1 : 0, batch, wall_x, wall_required, cores);
          ++violations;
        }
      }
    }
  }

  // Attribution: the named stages must cover >= 95% of every thread
  // window (otherwise the profiler is lying about where time goes).
  if (!cfg.profile_path.empty()) {
    for (const CellResult& c : cells) {
      if (c.accounted_share >= 0.95) continue;
      std::fprintf(stderr,
                   "GATE FAIL [attribution]: shards=%zu cache=%d batch=%zu "
                   "accounted_share %.3f < 0.95\n",
                   c.shards, c.cache ? 1 : 0, c.batch, c.accounted_share);
      ++violations;
    }
  }
  return violations;
}

int run_sweep(const SweepConfig& cfg) {
  const std::vector<dataplane::RawPacket> stream =
      make_stream(cfg.packets, cfg.flows);
  const nac::PolicyHeader hdr = make_policy_header();
  if (!cfg.profile_path.empty()) prof::set_enabled(true);

  std::vector<CellResult> cells;
  for (const std::size_t shards : cfg.shard_counts) {
    for (const bool cache : {true, false}) {
      for (const std::size_t batch : {1u, 32u}) {
        cells.push_back(
            run_cell_repeated(shards, cache, batch, stream, hdr, cfg));
        const CellResult& c = cells.back();
        std::printf(
            "shards=%zu cache=%-3s batch=%-2zu  sim=%10.0f pps  "
            "p50=%6lld ns  p99=%6lld ns  wall=%9.0f pps  flows=%zu\n",
            c.shards, c.cache ? "on" : "off", c.batch,
            c.report.sim_packets_per_sec,
            static_cast<long long>(c.report.latency_percentile(0.50)),
            static_cast<long long>(c.report.latency_percentile(0.99)),
            c.wall_pps, c.appraised_flows);
      }
    }
  }
  write_json(cells, cfg);
  std::printf("wrote %s\n", cfg.json_path.c_str());
  if (!cfg.profile_path.empty()) {
    write_profile_json(cells, cfg);
    std::printf("wrote %s\n", cfg.profile_path.c_str());
  }
  const int violations = check_gates(cells, cfg);
  if (violations != 0) {
    std::fprintf(stderr, "bench_throughput: %d gate violation(s)\n",
                 violations);
    return 1;
  }
  return 0;
}

// A Google-Benchmark view of the same cell (wall time per full stream
// pass), so this binary also composes with the standard bench tooling.
void BM_PipelineStream(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::vector<dataplane::RawPacket> stream = make_stream(512, 32);
  const nac::PolicyHeader hdr = make_policy_header();
  const SweepConfig cfg;
  double sim_pps = 0.0;
  for (auto _ : state) {
    const CellResult c = run_cell(shards, true, 1, stream, hdr, cfg);
    sim_pps = c.report.sim_packets_per_sec;
    benchmark::DoNotOptimize(c.report.makespan);
  }
  state.SetItemsProcessed(state.iterations() * 512);
  state.counters["sim_pps"] = sim_pps;
}
BENCHMARK(BM_PipelineStream)->Arg(1)->Arg(2)->Arg(4);

std::vector<std::size_t> parse_shard_list(const char* v) {
  std::vector<std::size_t> out;
  const std::string s = v;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (const long long n = std::atoll(tok.c_str()); n > 0) {
      out.push_back(static_cast<std::size_t>(n));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SweepConfig cfg;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const std::string& name) -> const char* {
      const std::string prefix = name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = value_of("--shards")) {
      if (std::vector<std::size_t> list = parse_shard_list(v); !list.empty()) {
        cfg.shard_counts = std::move(list);
      }
    } else if (const char* v = value_of("--packets")) {
      cfg.packets = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value_of("--flows")) {
      cfg.flows = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value_of("--warmup")) {
      cfg.warmup = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value_of("--repeat")) {
      cfg.repeat = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value_of("--scheme")) {
      cfg.scheme = std::string(v) == "xmss"
                       ? crypto::SignatureScheme::kXmss
                       : crypto::SignatureScheme::kHmacDeviceKey;
    } else if (arg == "--pin") {
      cfg.pin = true;
    } else if (const char* v = value_of("--json")) {
      cfg.json_path = v;
    } else if (const char* v = value_of("--profile-json")) {
      cfg.profile_path = v;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  const int sweep_rc = run_sweep(cfg);
  if (sweep_rc != 0) return sweep_rc;
  return ::pera::obs_bench::run(argc, argv);
}
