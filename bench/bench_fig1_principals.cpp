// Fig. 1 — Principals in Remote Attestation.
//
// Regenerates the cost structure of the Claim -> Evidence -> Result loop:
// evidence production at the attester (per claim count and signer scheme),
// appraisal at the appraiser, and the full RP-driven loop. The paper's
// figure is architectural; the series here quantify each arrow of it.
#include <benchmark/benchmark.h>

#include "obs_bench_main.h"

#include "ra/roles.h"

namespace {

using namespace pera;

struct Bed {
  explicit Bed(bool xmss, int claims)
      : keys(42),
        attester("switch1", xmss ? keys.provision_xmss("switch1", 12)
                                 : keys.provision_hmac("switch1")),
        appraiser("Appraiser", keys),
        rp("RP1", 43) {
    keys.provision_hmac("Appraiser");
    for (int i = 0; i < claims; ++i) {
      const std::string target = "component" + std::to_string(i);
      const crypto::Digest value = crypto::sha256("contents of " + target);
      attester.add_claim_source(
          {target, [value] { return value; }, "digest of " + target});
      appraiser.set_golden("switch1", target, value);
    }
  }

  crypto::KeyStore keys;
  ra::Attester attester;
  ra::Appraiser appraiser;
  ra::RelyingParty rp;
};

// ➀->➁ : the attester turns a claim set into signed evidence.
void BM_Fig1_ProduceEvidence(benchmark::State& state) {
  const bool xmss = state.range(0) != 0;
  const int claims = static_cast<int>(state.range(1));
  Bed bed(xmss, claims);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const crypto::Nonce n = bed.rp.challenge();
    const auto evidence = bed.attester.attest({}, n);
    benchmark::DoNotOptimize(evidence);
    bytes = copland::wire_size(evidence);
  }
  state.counters["evidence_bytes"] = static_cast<double>(bytes);
  state.SetLabel(xmss ? "xmss" : "hmac");
}
BENCHMARK(BM_Fig1_ProduceEvidence)
    ->ArgsProduct({{0, 1}, {1, 4, 16, 64}});

// ➂ : the appraiser verifies evidence against golden values.
void BM_Fig1_Appraise(benchmark::State& state) {
  const bool xmss = state.range(0) != 0;
  const int claims = static_cast<int>(state.range(1));
  Bed bed(xmss, claims);
  const crypto::Nonce n = bed.rp.challenge();
  const auto evidence = bed.attester.attest({}, n);
  for (auto _ : state) {
    const auto res = bed.appraiser.appraise(evidence, n, /*certify=*/true, 0,
                                            /*enforce_freshness=*/false);
    benchmark::DoNotOptimize(res);
  }
  state.SetLabel(xmss ? "xmss" : "hmac");
}
BENCHMARK(BM_Fig1_Appraise)->ArgsProduct({{0, 1}, {1, 4, 16, 64}});

// ➀->➃ : the complete loop including the RP's acceptance check.
void BM_Fig1_FullLoop(benchmark::State& state) {
  const bool xmss = state.range(0) != 0;
  Bed bed(xmss, 4);
  const crypto::Verifier& v = *bed.keys.verifier_for("Appraiser");
  std::size_t accepted = 0;
  for (auto _ : state) {
    const crypto::Nonce n = bed.rp.challenge();
    const auto evidence = bed.attester.attest({}, n);
    const auto res = bed.appraiser.appraise(evidence, n);
    if (res.certificate && bed.rp.accept(*res.certificate, v)) ++accepted;
  }
  state.counters["accept_rate"] =
      static_cast<double>(accepted) / static_cast<double>(state.iterations());
  state.SetLabel(xmss ? "xmss" : "hmac");
}
BENCHMARK(BM_Fig1_FullLoop)->Arg(0)->Arg(1);

// Certificate issue/verify, the ➃ arrow alone.
void BM_Fig1_CertificateVerify(benchmark::State& state) {
  Bed bed(false, 4);
  const crypto::Nonce n = bed.rp.challenge();
  const auto res = bed.appraiser.appraise(bed.attester.attest({}, n), n);
  const crypto::Verifier& v = *bed.keys.verifier_for("Appraiser");
  for (auto _ : state) {
    benchmark::DoNotOptimize(res.certificate->verify(v));
  }
  state.counters["cert_bytes"] =
      static_cast<double>(res.certificate->serialize().size());
}
BENCHMARK(BM_Fig1_CertificateVerify);

}  // namespace

PERA_BENCH_MAIN();
