// State-attestation benchmark: what does a measurement cost when the
// dataplane holds production-scale state?
//
// The workload is the StatefulNat NF (per-flow table entries + per-flow
// register state with LRU expiry). For each (table size n, churn rate)
// cell the bench builds n live flows, then per round expires/adds/touches
// n*churn of them and measures evidence production both ways:
//
//   * incremental — tables_digest() + state_digest(): O(changes) dirty
//     Merkle leaves rehashed since the previous measurement
//   * full        — tables_digest_full() + state_digest_full(): the O(n)
//     reference recompute
//
// Acceptance gates (exit code):
//   * roots bit-identical between the two paths in EVERY cell (always)
//   * incremental >= 10x faster than full at n = 1M for churn <= 1%
//     (full sweep only; smoke runs tiny sizes where the tree is trivial)
//
// A side sweep differential-tests and times Table's exact-match hash
// index against the reference linear scan (n <= 10k; the scan at 1M
// would dominate the bench runtime for no extra information).
//
// Flags: --smoke (tiny sizes), --rounds=N, --json=PATH,
//        --metrics-json=PATH (obs dump; "-" = stdout). Unknown flags are
//        ignored. Results land in BENCH_state.json (committed).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "dataplane/nf.h"
#include "obs/obs.h"

namespace {

using namespace pera;
using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

// Fresh, never-repeating flow keys (sport stays in [1024, 61024)).
dataplane::FlowKey nth_flow(std::uint64_t i) {
  return {static_cast<std::uint32_t>(0x0a000001 + i / 60000),
          static_cast<std::uint16_t>(1024 + i % 60000)};
}

struct Cell {
  std::size_t n = 0;
  double churn = 0.0;
  std::size_t rounds = 0;
  std::size_t dirty_per_round = 0;
  double incr_ns = 0.0;   // mean per round
  double full_ns = 0.0;   // mean per round
  double speedup = 0.0;
  bool root_match = true;
};

struct LookupCell {
  std::size_t n = 0;
  std::size_t probes = 0;
  double indexed_ns = 0.0;  // mean per probe
  double scan_ns = 0.0;     // mean per probe (0 when skipped)
  bool match = true;        // indexed result == scan result on every probe
};

// One NF instance per table size, reused across churn rates (the digest is
// over whatever state is live; only the churn volume matters per cell).
class Workload {
 public:
  explicit Workload(std::size_t n) : n_(n) {
    dataplane::StatefulNat::Config cfg;
    cfg.capacity = n + n / 10 + 16;  // headroom so adds never evict
    cfg.idle_timeout = ~std::uint64_t{0} >> 1;  // expiry driven explicitly
    nat_ = std::make_unique<dataplane::StatefulNat>(cfg);
    for (std::size_t i = 0; i < n; ++i) {
      nat_->add_flow(nth_flow(next_flow_++), now_++);
    }
    // Prime the incremental trees so rounds measure O(changes), not the
    // one-time O(n) tree build.
    (void)nat_->sw().program().tables_digest();
    (void)nat_->sw().registers().state_digest();
  }

  /// Expire the c oldest flows, add c fresh ones, touch c survivors.
  void churn(std::size_t c, std::mt19937_64& rng) {
    nat_->expire_oldest(c);
    for (std::size_t i = 0; i < c; ++i) {
      nat_->add_flow(nth_flow(next_flow_++), now_++);
    }
    std::uniform_int_distribution<std::uint64_t> pick(0, next_flow_ - 1);
    for (std::size_t i = 0; i < c; ++i) {
      (void)nat_->touch_flow(nth_flow(pick(rng)), now_);
    }
    ++now_;
  }

  Cell measure_round() {
    Cell r;
    auto& prog = nat_->sw().program();
    auto& regs = nat_->sw().registers();
    const auto t0 = Clock::now();
    const crypto::Digest ti = prog.tables_digest();
    const crypto::Digest ri = regs.state_digest();
    const auto t1 = Clock::now();
    const crypto::Digest tf = prog.tables_digest_full();
    const crypto::Digest rf = regs.state_digest_full();
    const auto t2 = Clock::now();
    r.incr_ns = static_cast<double>(elapsed_ns(t0, t1));
    r.full_ns = static_cast<double>(elapsed_ns(t1, t2));
    r.root_match = ti == tf && ri == rf;
    return r;
  }

  LookupCell lookup_probe(std::size_t probes, bool with_scan,
                          std::mt19937_64& rng) {
    LookupCell lc;
    lc.n = nat_->sw().program().table("nat")->entry_count();
    lc.probes = probes;
    dataplane::Table* nat = nat_->sw().program().table("nat");
    // Probe a mix of live flows and guaranteed misses.
    std::vector<dataplane::ParsedPacket> pkts;
    pkts.reserve(probes);
    std::uniform_int_distribution<std::uint64_t> pick(0, next_flow_ - 1);
    for (std::size_t i = 0; i < probes; ++i) {
      dataplane::FlowKey k =
          (i % 8 == 7) ? dataplane::FlowKey{0xDEAD0000u + static_cast<std::uint32_t>(i), 9}
                       : nth_flow(pick(rng));
      pkts.push_back(nat_->sw().parse(nat_->make_packet(k)));
    }
    std::uint64_t sink = 0;
    const auto t0 = Clock::now();
    for (auto& p : pkts) {
      const dataplane::TableEntry* e = nat->lookup(p);
      sink += e != nullptr ? e->action_params[0] : 0;
    }
    const auto t1 = Clock::now();
    lc.indexed_ns =
        static_cast<double>(elapsed_ns(t0, t1)) / static_cast<double>(probes);
    if (with_scan) {
      const auto s0 = Clock::now();
      for (auto& p : pkts) {
        const dataplane::TableEntry* e = nat->lookup_scan(p);
        sink += e != nullptr ? e->action_params[0] : 0;
      }
      const auto s1 = Clock::now();
      lc.scan_ns =
          static_cast<double>(elapsed_ns(s0, s1)) / static_cast<double>(probes);
      for (auto& p : pkts) {
        if (nat->lookup(p) != nat->lookup_scan(p)) lc.match = false;
      }
    }
    if (sink == 0xFFFFFFFFFFFFFFFFULL) std::printf("(unreachable)\n");
    return lc;
  }

 private:
  std::size_t n_;
  std::unique_ptr<dataplane::StatefulNat> nat_;
  std::uint64_t next_flow_ = 0;
  std::uint64_t now_ = 1;
};

Cell run_cell(Workload& w, std::size_t n, double churn, std::size_t rounds,
              std::mt19937_64& rng) {
  Cell c;
  c.n = n;
  c.churn = churn;
  c.rounds = rounds;
  c.dirty_per_round =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   static_cast<double>(n) * churn));
  for (std::size_t r = 0; r < rounds; ++r) {
    w.churn(c.dirty_per_round, rng);
    const Cell m = w.measure_round();
    c.incr_ns += m.incr_ns / static_cast<double>(rounds);
    c.full_ns += m.full_ns / static_cast<double>(rounds);
    c.root_match = c.root_match && m.root_match;
  }
  c.speedup = c.incr_ns > 0 ? c.full_ns / c.incr_ns : 0.0;
  return c;
}

void print_cell(const Cell& c) {
  std::printf(
      "n=%8zu churn=%.3f (%6zu flows/round)  incr=%10.0f ns  "
      "full=%12.0f ns  speedup=%8.1fx  roots=%s\n",
      c.n, c.churn, c.dirty_per_round, c.incr_ns, c.full_ns, c.speedup,
      c.root_match ? "match" : "MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t rounds = 3;
  std::string json_path = "BENCH_state.json";
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg.rfind("--rounds=", 0) == 0) rounds = std::strtoull(arg.c_str() + 9, nullptr, 10);
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else if (arg.rfind("--metrics-json=", 0) == 0) metrics_path = arg.substr(15);
    // Unknown flags are ignored (harness-wide sweeps pass shared flags).
  }
  if (rounds == 0) rounds = 1;

  if (!metrics_path.empty()) {
    obs::reset();
    obs::set_enabled(true);
  }

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{1000, 4000}
            : std::vector<std::size_t>{1000, 10000, 100000, 1000000};
  const std::vector<double> churns =
      smoke ? std::vector<double>{0.01}
            : std::vector<double>{0.001, 0.01, 0.1};

  std::mt19937_64 rng(0x5eedULL);
  std::vector<Cell> cells;
  std::vector<LookupCell> lookup_cells;
  for (const std::size_t n : sizes) {
    Workload w(n);
    for (const double churn : churns) {
      cells.push_back(run_cell(w, n, churn, rounds, rng));
      print_cell(cells.back());
    }
    if (n <= 10000) {
      lookup_cells.push_back(w.lookup_probe(std::min<std::size_t>(n, 1000),
                                            /*with_scan=*/true, rng));
      const LookupCell& lc = lookup_cells.back();
      std::printf(
          "n=%8zu lookup: indexed=%7.0f ns/probe  scan=%9.0f ns/probe  "
          "results=%s\n",
          lc.n, lc.indexed_ns, lc.scan_ns, lc.match ? "match" : "MISMATCH");
    }
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_state: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"scenario\": \"StatefulNat churn: evidence cost, "
               "incremental vs full recompute\",\n  \"rounds\": %zu,\n"
               "  \"cells\": [\n",
               rounds);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"n\": %zu, \"churn\": %.3f, \"dirty_per_round\": %zu, "
        "\"rounds\": %zu, \"incr_ns\": %.0f, \"full_ns\": %.0f, "
        "\"speedup\": %.2f, \"root_match\": %s}%s\n",
        c.n, c.churn, c.dirty_per_round, c.rounds, c.incr_ns, c.full_ns,
        c.speedup, c.root_match ? "true" : "false",
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"lookup_cells\": [\n");
  for (std::size_t i = 0; i < lookup_cells.size(); ++i) {
    const LookupCell& lc = lookup_cells[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"probes\": %zu, \"indexed_ns\": %.1f, "
                 "\"scan_ns\": %.1f, \"lookup_match\": %s}%s\n",
                 lc.n, lc.probes, lc.indexed_ns, lc.scan_ns,
                 lc.match ? "true" : "false",
                 i + 1 < lookup_cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  if (!metrics_path.empty()) {
    const std::string json = obs::dump_json();
    if (metrics_path == "-") {
      std::fwrite(json.data(), 1, json.size(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
      if (mf != nullptr) {
        std::fwrite(json.data(), 1, json.size(), mf);
        std::fclose(mf);
      }
    }
  }

  // Acceptance gates.
  bool ok = true;
  for (const Cell& c : cells) {
    if (!c.root_match) {
      std::printf("GATE: root mismatch at n=%zu churn=%.3f\n", c.n, c.churn);
      ok = false;
    }
  }
  for (const LookupCell& lc : lookup_cells) {
    if (!lc.match) {
      std::printf("GATE: lookup differential mismatch at n=%zu\n", lc.n);
      ok = false;
    }
  }
  if (!smoke) {
    for (const Cell& c : cells) {
      if (c.n == 1000000 && c.churn <= 0.01 && c.speedup < 10.0) {
        std::printf(
            "GATE: speedup %.1fx < 10x at n=%zu churn=%.3f\n",
            c.speedup, c.n, c.churn);
        ok = false;
      }
    }
  }
  std::printf("gates: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
