// Table 1 — Attestation Policies in Network-aware Copland (AP1-AP3).
//
// Regenerates the executable face of the table: for each policy, the cost
// to parse+compile it, the wire size of the resulting options header, the
// cost to bind it against concrete paths of increasing length, and the
// cost (and evidence size) of evaluating the bound policy end-to-end.
#include <benchmark/benchmark.h>

#include "obs_bench_main.h"

#include "copland/parser.h"
#include "copland/pretty.h"
#include "copland/semantics.h"
#include "copland/testbed.h"
#include "nac/binder.h"
#include "nac/header.h"

namespace {

using namespace pera;

const char* policy_source(int which) {
  switch (which) {
    case 1:
      return "*bank<n, X> : forall hop, client : "
             "(@hop [Khop |> attest(n, X) -> !] -<+ "
             "@Appraiser [appraise -> store(n)]) "
             "*=> @client [Kclient |> @ks [av us bmon -> !] -<- "
             "@us [bmon us exts -> !]]";
    case 2:
      return "*scanner<P> : @scanner [P |> attest(P) -> !] -<+ "
             "@Appraiser [appraise -> store]";
    case 3:
      return "*pathCheck<F1, F2, Peer1, Peer2> : "
             "forall p, q, r, peer1, peer2 : "
             "(@peer1 [Peer1 |> !] -<+ @p [attest(F1) -> !] -<+ "
             "@q [attest(F2) -> !] -<+ @Appraiser [appraise -> store]) *=> "
             "(@r [Q |> !] -<+ @peer2 [Peer2 |> !] -<+ "
             "@Appraiser [appraise -> store])";
    default:
      return "";
  }
}

// Parse + compile the policy into per-hop instructions.
void BM_Table1_Compile(benchmark::State& state) {
  const std::string src = policy_source(static_cast<int>(state.range(0)));
  std::size_t hops = 0;
  std::size_t header_bytes = 0;
  for (auto _ : state) {
    const nac::CompiledPolicy pol = nac::compile(src);
    hops = pol.hops.size();
    header_bytes =
        nac::make_header(pol, {}, true).wire_size();
    benchmark::DoNotOptimize(pol);
  }
  state.counters["hop_instructions"] = static_cast<double>(hops);
  state.counters["header_bytes"] = static_cast<double>(header_bytes);
  state.SetLabel("AP" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Table1_Compile)->Arg(1)->Arg(2)->Arg(3);

// Bind AP1 against concrete paths of increasing length (Prim1/Prim2).
void BM_Table1_BindAP1(benchmark::State& state) {
  const auto req = copland::parse_request(policy_source(1));
  const std::size_t hops = static_cast<std::size_t>(state.range(0));
  nac::PathBinding binding;
  for (std::size_t i = 1; i <= hops; ++i) {
    binding.hops.push_back("s" + std::to_string(i));
  }
  binding.bindings = {{"client", "laptop"}};
  std::size_t term_size = 0;
  for (auto _ : state) {
    const copland::TermPtr bound = nac::bind_path(req.body, binding);
    term_size = copland::size(bound);
    benchmark::DoNotOptimize(bound);
  }
  state.counters["bound_term_nodes"] = static_cast<double>(term_size);
}
BENCHMARK(BM_Table1_BindAP1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Full evaluation of the bound AP1 over a testbed path: evidence size and
// cost scale with path length (chained composition).
void BM_Table1_EvaluateAP1(benchmark::State& state) {
  const auto req = copland::parse_request(policy_source(1));
  const std::size_t hops = static_cast<std::size_t>(state.range(0));

  crypto::KeyStore keys(17);
  copland::TestbedPlatform platform(keys);
  crypto::NonceRegistry nonces(18);
  platform.install_default_funcs(nonces);
  nac::PathBinding binding;
  for (std::size_t i = 1; i <= hops; ++i) {
    const std::string name = "s" + std::to_string(i);
    binding.hops.push_back(name);
    platform.install(name, "n", "nonce echo");
    platform.install(name, "X", "program+tables property on " + name);
  }
  binding.bindings = {{"client", "laptop"}};
  platform.install("ks", "av", "antivirus");
  platform.install("us", "bmon", "browser monitor");
  platform.install("us", "exts", "extensions");

  const copland::TermPtr bound = nac::bind_path(req.body, binding);
  copland::Evaluator ev(platform);
  std::size_t evidence_bytes = 0;
  for (auto _ : state) {
    const copland::EvidencePtr e =
        ev.eval(bound, req.relying_party, copland::Evidence::empty());
    evidence_bytes = copland::wire_size(e);
    benchmark::DoNotOptimize(e);
  }
  state.counters["evidence_bytes"] = static_cast<double>(evidence_bytes);
  state.counters["signatures"] =
      static_cast<double>(ev.stats().signatures) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Table1_EvaluateAP1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// AP2: the scanner policy is a single-place policy; compilation plus
// guarded evaluation (pattern hit vs miss — "fail early").
void BM_Table1_EvaluateAP2(benchmark::State& state) {
  const bool pattern_hits = state.range(0) != 0;
  const auto req = copland::parse_request(policy_source(2));
  crypto::KeyStore keys(19);
  copland::TestbedPlatform platform(keys);
  crypto::NonceRegistry nonces(20);
  platform.install_default_funcs(nonces);
  platform.install("scanner", "P", "traffic pattern");
  platform.set_test("scanner", "P", pattern_hits);
  copland::Evaluator ev(platform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ev.eval(req.body, req.relying_party, copland::Evidence::empty()));
  }
  state.SetLabel(pattern_hits ? "pattern hit: attest+store"
                              : "pattern miss: fail early");
}
BENCHMARK(BM_Table1_EvaluateAP2)->Arg(1)->Arg(0);

// AP3: two attested path segments with pinned abstract places.
void BM_Table1_EvaluateAP3(benchmark::State& state) {
  const auto req = copland::parse_request(policy_source(3));
  crypto::KeyStore keys(23);
  copland::TestbedPlatform platform(keys);
  crypto::NonceRegistry nonces(24);
  platform.install_default_funcs(nonces);
  for (const char* place : {"alice", "s1", "s2", "s3", "bob"}) {
    platform.install(place, "F1", "fn F1");
    platform.install(place, "F2", "fn F2");
  }
  nac::PathBinding binding;
  binding.bindings = {{"p", "s1"},
                      {"q", "s2"},
                      {"r", "s3"},
                      {"peer1", "alice"},
                      {"peer2", "bob"}};
  const copland::TermPtr bound = nac::bind_path(req.body, binding);
  copland::Evaluator ev(platform);
  std::size_t evidence_bytes = 0;
  for (auto _ : state) {
    const copland::EvidencePtr e =
        ev.eval(bound, req.relying_party, copland::Evidence::empty());
    evidence_bytes = copland::wire_size(e);
    benchmark::DoNotOptimize(e);
  }
  state.counters["evidence_bytes"] = static_cast<double>(evidence_bytes);
}
BENCHMARK(BM_Table1_EvaluateAP3);

// Round-trip parse -> print -> parse, the language-tooling cost.
void BM_Table1_ParseRoundTrip(benchmark::State& state) {
  const std::string src = policy_source(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const copland::Request req = copland::parse_request(src);
    const std::string printed = copland::to_string(req);
    benchmark::DoNotOptimize(copland::parse_request(printed));
  }
  state.SetLabel("AP" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Table1_ParseRoundTrip)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

PERA_BENCH_MAIN();
