// Fig. 2 — PERA with in-band vs out-of-band evidence.
//
// Regenerates the trade-off the figure sketches: the out-of-band variant
// (expression (3)) needs an extra retrieval exchange before RP2 learns the
// result, while the in-band variant (expression (4)) delivers evidence on
// the traffic path. Series: simulated completion time, message count, and
// bytes on the wire, swept over path length.
#include <benchmark/benchmark.h>

#include "obs_bench_main.h"

#include "core/deployment.h"

namespace {

using namespace pera;

void BM_Fig2_OutOfBand(benchmark::State& state) {
  const std::size_t hops = static_cast<std::size_t>(state.range(0));
  double rtt_us = 0;
  double messages = 0;
  double bytes = 0;
  for (auto _ : state) {
    core::Deployment dep(netsim::topo::chain(hops));
    dep.provision_goldens();
    const core::ChallengeReport rep = dep.run_out_of_band(
        "client", "s" + std::to_string(hops),
        nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram,
        "server");
    rtt_us = netsim::to_us(rep.rtt);
    messages = static_cast<double>(rep.messages);
    bytes = static_cast<double>(rep.bytes_on_wire);
    benchmark::DoNotOptimize(rep);
  }
  state.counters["sim_rtt_us"] = rtt_us;
  state.counters["messages"] = messages;
  state.counters["wire_bytes"] = bytes;
  state.SetLabel("expr(3) out-of-band + RP2 retrieve");
}
BENCHMARK(BM_Fig2_OutOfBand)->DenseRange(1, 9, 2)->Arg(16);

void BM_Fig2_InBand(benchmark::State& state) {
  const std::size_t hops = static_cast<std::size_t>(state.range(0));
  double rtt_us = 0;
  double messages = 0;
  double bytes = 0;
  for (auto _ : state) {
    core::Deployment dep(netsim::topo::chain(hops));
    dep.provision_goldens();
    const core::ChallengeReport rep = dep.run_in_band(
        "client", "s" + std::to_string(hops), "server",
        nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram);
    rtt_us = netsim::to_us(rep.rtt);
    messages = static_cast<double>(rep.messages);
    bytes = static_cast<double>(rep.bytes_on_wire);
    benchmark::DoNotOptimize(rep);
  }
  state.counters["sim_rtt_us"] = rtt_us;
  state.counters["messages"] = messages;
  state.counters["wire_bytes"] = bytes;
  state.SetLabel("expr(4) in-band via RP2");
}
BENCHMARK(BM_Fig2_InBand)->DenseRange(1, 9, 2)->Arg(16);

// Per-flow variants: evidence rides with every packet (in-band) vs leaves
// at each hop (out-of-band). Series: per-packet wire bytes and oob load.
void BM_Fig2_FlowInBandVsOob(benchmark::State& state) {
  const bool in_band = state.range(0) != 0;
  const std::size_t packets = 32;
  double evidence_bytes = 0;
  double oob_messages = 0;
  double latency_us = 0;
  for (auto _ : state) {
    core::Deployment dep(netsim::topo::chain(4));
    dep.provision_goldens();
    const nac::CompiledPolicy pol = nac::compile(std::string(
        "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
        "@Appraiser [appraise]"));
    const core::FlowReport rep =
        dep.send_flow("client", "server", pol, packets, in_band);
    evidence_bytes =
        static_cast<double>(rep.evidence_bytes_inband) / packets;
    oob_messages = static_cast<double>(rep.oob_messages) / packets;
    latency_us = rep.mean_latency_us;
    benchmark::DoNotOptimize(rep);
  }
  state.counters["evidence_B_per_pkt"] = evidence_bytes;
  state.counters["oob_msgs_per_pkt"] = oob_messages;
  state.counters["sim_latency_us"] = latency_us;
  state.SetLabel(in_band ? "in-band carrier" : "out-of-band per hop");
}
BENCHMARK(BM_Fig2_FlowInBandVsOob)->Arg(1)->Arg(0);

}  // namespace

PERA_BENCH_MAIN();
