// Shared benchmark main with observability export.
//
// Every bench binary accepts, in addition to the standard Google
// Benchmark flags:
//
//   --metrics-json=PATH   enable the obs subsystem for the whole run and
//                         dump obs::dump_json() to PATH afterwards
//                         (PATH "-" writes to stdout)
//   --trace-capacity=N    resize the trace ring before the run
//
// Without --metrics-json, observability stays runtime-disabled and the
// instrumented paths cost one relaxed atomic load per site.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/obs.h"

namespace pera::obs_bench {

inline int run(int argc, char** argv) {
  std::string metrics_path;
  std::size_t trace_capacity = 0;

  // Strip our flags before benchmark::Initialize sees (and rejects) them.
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string kMetrics = "--metrics-json";
    const std::string kTrace = "--trace-capacity";
    if (arg.rfind(kMetrics + "=", 0) == 0) {
      metrics_path = arg.substr(kMetrics.size() + 1);
    } else if (arg == kMetrics && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg.rfind(kTrace + "=", 0) == 0) {
      trace_capacity =
          static_cast<std::size_t>(std::atoll(arg.c_str() + kTrace.size() + 1));
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  if (!metrics_path.empty()) {
    if (trace_capacity > 0) pera::obs::trace().set_capacity(trace_capacity);
    pera::obs::reset();
    pera::obs::set_enabled(true);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!metrics_path.empty()) {
    const std::string json = pera::obs::dump_json();
    if (metrics_path == "-") {
      std::fwrite(json.data(), 1, json.size(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::FILE* f = std::fopen(metrics_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write metrics to %s\n",
                     metrics_path.c_str());
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }
  return 0;
}

}  // namespace pera::obs_bench

/// Drop-in replacement for BENCHMARK_MAIN().
#define PERA_BENCH_MAIN()                                      \
  int main(int argc, char** argv) {                            \
    return ::pera::obs_bench::run(argc, argv);                 \
  }                                                            \
  int main(int, char**)
