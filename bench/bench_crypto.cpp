// Crypto hot-path benchmark: SHA-256 backends and WOTS chain stepping.
//
// Measures, for every backend compiled in and usable on this CPU:
//
//   * single-stream hash rate — one-block messages through the one-shot
//     sha256() path (the HMAC / evidence-digest shape);
//   * 8-wide multi-buffer rate — sha256_block_multi over batches of
//     64-byte blocks (the Merkle level-builder shape);
//   * WOTS sign / verify / sign+verify ops/sec (the batcher hot loop);
//   * derive_keys expansion of 67 chain secrets (WOTS keygen shape).
//
// A "scalar_legacy" row re-implements the pre-engine chain step (streaming
// context + heap-allocated header per step, scalar compression) so the
// committed JSON carries its own baseline: engine rows vs scalar_legacy is
// the speedup this subsystem bought, on the machine that recorded it.
//
// Extra flags (stripped before Google Benchmark sees the rest):
//   --smoke        tiny measurement windows; CI correctness/regression run
//   --json=PATH    output path (default BENCH_crypto.json)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha256_backend.h"
#include "crypto/sha256_backend_impl.h"
#include "crypto/wots.h"
#include "obs_bench_main.h"

namespace {

using namespace pera::crypto;

// --- pre-engine reference implementation ---------------------------------
// The hot path exactly as shipped before the backend engine: a streaming
// context whose finish() pads byte-at-a-time through update(), and a
// heap-allocated domain-separation header per chain step. Kept here (not
// in the library) purely as the benchmark baseline; it is measured with
// the scalar backend selected, matching the pre-engine compressor.
namespace legacy {

// The pre-engine block compression, verbatim (w[64] schedule, rotating
// round loop). Frozen here so the baseline stays the actual shipped code
// even as the library's scalar backend improves.
void compress(std::uint32_t state[8], const std::uint8_t block[64]) {
  using pera::crypto::engine::detail::kRound;
  const auto rotr = [](std::uint32_t x, int n) { return std::rotr(x, n); };
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

class LegacySha256 {
 public:
  LegacySha256() { std::memcpy(state_, engine::kInit, sizeof(state_)); }

  LegacySha256& update(BytesView data) {
    total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
    std::size_t i = 0;
    if (buffer_len_ > 0) {
      while (buffer_len_ < 64 && i < data.size()) {
        buffer_[buffer_len_++] = data[i++];
      }
      if (buffer_len_ == 64) {
        legacy::compress(state_, buffer_);
        buffer_len_ = 0;
      }
    }
    while (i + 64 <= data.size()) {
      legacy::compress(state_, data.data() + i);
      i += 64;
    }
    while (i < data.size() && buffer_len_ < 64) {
      buffer_[buffer_len_++] = data[i++];
    }
    return *this;
  }
  LegacySha256& update(const Digest& d) {
    return update(BytesView{d.v.data(), d.v.size()});
  }

  Digest finish() {
    const std::uint64_t bits = total_bits_;
    const std::uint8_t pad80 = 0x80;
    update(BytesView{&pad80, 1});
    const std::uint8_t zero = 0;
    while (buffer_len_ != 56) {
      update(BytesView{&zero, 1});
    }
    std::uint8_t len_be[8];
    for (int i = 0; i < 8; ++i) {
      len_be[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
    }
    update(BytesView{len_be, 8});
    Digest out;
    for (int i = 0; i < 8; ++i) {
      out.v[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
      out.v[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
      out.v[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
      out.v[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return out;
  }

 private:
  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

Digest chain_step(std::size_t chain, std::size_t position,
                  const Digest& value) {
  LegacySha256 h;
  Bytes hdr;
  append_u32(hdr, static_cast<std::uint32_t>(chain));
  append_u32(hdr, static_cast<std::uint32_t>(position));
  h.update(BytesView{hdr.data(), hdr.size()});
  h.update(value);
  return h.finish();
}

Digest chain(std::size_t chain_index, const Digest& start, std::size_t from,
             std::size_t steps) {
  Digest v = start;
  for (std::size_t i = 0; i < steps; ++i) {
    v = chain_step(chain_index, from + i, v);
  }
  return v;
}

wots::Signature sign(const wots::SecretKey& sk, const Digest& message) {
  const auto chunks = wots::chunk_message(message);
  wots::Signature sig;
  for (std::size_t i = 0; i < wots::kLen; ++i) {
    sig.chains[i] = chain(i, sk.chains[i], 0, chunks[i]);
  }
  return sig;
}

wots::PublicKey recover_public(const wots::Signature& sig,
                               const Digest& message) {
  const auto chunks = wots::chunk_message(message);
  LegacySha256 compress;
  for (std::size_t i = 0; i < wots::kLen; ++i) {
    compress.update(
        chain(i, sig.chains[i], chunks[i], wots::kW - 1 - chunks[i]));
  }
  return wots::PublicKey{compress.finish()};
}

}  // namespace legacy

// -------------------------------------------------------------------------

struct BenchConfig {
  bool smoke = false;
  std::string json_path = "BENCH_crypto.json";
};

// Time-targeted measurement: run `fn` (which performs `ops_per_call`
// operations) until the window elapses; repeat the window and keep the
// median, which shrugs off the scheduling stalls a shared 1-core host
// injects into any single window.
double ops_per_sec(const std::function<void()>& fn, double ops_per_call,
                   double window_s, std::size_t repeats = 3) {
  using clock = std::chrono::steady_clock;
  fn();  // untimed warmup call
  std::vector<double> rates;
  rates.reserve(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    double ops = 0.0;
    const auto t0 = clock::now();
    auto t1 = t0;
    do {
      fn();
      ops += ops_per_call;
      t1 = clock::now();
    } while (std::chrono::duration<double>(t1 - t0).count() < window_s);
    const double s = std::chrono::duration<double>(t1 - t0).count();
    rates.push_back(s > 0 ? ops / s : 0.0);
  }
  std::sort(rates.begin(), rates.end());
  return rates[rates.size() / 2];
}

struct BackendRow {
  std::string backend;
  double sha256_single_hps = 0.0;
  double sha256_multi8_hps = 0.0;
  double wots_sign_ops = 0.0;
  double wots_verify_ops = 0.0;
  double wots_signverify_ops = 0.0;
  double derive67_ops = 0.0;
};

BackendRow measure_backend(const std::string& name, const BenchConfig& cfg) {
  const double win = cfg.smoke ? 0.02 : 0.25;
  BackendRow row;
  row.backend = name;

  // Single stream: one-block (32-byte) messages, chained so the compiler
  // can't hoist anything.
  {
    Digest d = sha256("bench_crypto.single");
    row.sha256_single_hps = ops_per_sec(
        [&] {
          for (int i = 0; i < 256; ++i) {
            Sha256::digest_into(BytesView{d.v.data(), d.v.size()}, d);
          }
        },
        256.0, win);
    benchmark::DoNotOptimize(d);
  }

  // Multi-buffer: 64 independent 64-byte blocks per call.
  {
    constexpr std::size_t kBlocks = 64;
    alignas(32) std::uint8_t blocks[kBlocks][64];
    Digest out[kBlocks];
    for (std::size_t i = 0; i < kBlocks; ++i) {
      const Digest d = sha256("bench_crypto.multi." + std::to_string(i));
      std::memcpy(blocks[i], d.v.data(), 32);
      std::memcpy(blocks[i] + 32, d.v.data(), 32);
    }
    row.sha256_multi8_hps = ops_per_sec(
        [&] { sha256_block_multi(blocks, out, kBlocks); },
        static_cast<double>(kBlocks), win);
    benchmark::DoNotOptimize(out[0]);
  }

  // WOTS: one fixed keypair, fresh message digest per round.
  {
    const Digest seed = sha256("bench_crypto.seed");
    const auto sk = wots::keygen_secret(seed, 7);
    const auto pk = wots::derive_public(sk);
    Digest msg = sha256("bench_crypto.msg");
    row.wots_sign_ops = ops_per_sec(
        [&] {
          benchmark::DoNotOptimize(wots::sign(sk, msg));
          msg.v[0] ^= 1;
        },
        1.0, win);
    const auto sig = wots::sign(sk, msg);
    row.wots_verify_ops = ops_per_sec(
        [&] { benchmark::DoNotOptimize(wots::verify(pk, msg, sig)); }, 1.0,
        win);
    row.wots_signverify_ops = ops_per_sec(
        [&] {
          const auto s = wots::sign(sk, msg);
          benchmark::DoNotOptimize(wots::verify(pk, msg, s));
        },
        1.0, win);
    row.derive67_ops = ops_per_sec(
        [&] {
          std::array<Digest, wots::kLen> out;
          derive_keys_into(BytesView{seed.v.data(), seed.v.size()},
                           "pera.wots.chain", out.data(), out.size());
          benchmark::DoNotOptimize(out[0]);
        },
        1.0, win);
  }
  return row;
}

// The pre-engine baseline always runs on the scalar compressor — that is
// what every caller got before this subsystem existed.
BackendRow measure_legacy(const BenchConfig& cfg) {
  const double win = cfg.smoke ? 0.02 : 0.25;
  BackendRow row;
  row.backend = "scalar_legacy";

  {
    Digest d = sha256("bench_crypto.single");
    row.sha256_single_hps = ops_per_sec(
        [&] {
          for (int i = 0; i < 256; ++i) {
            legacy::LegacySha256 h;
            h.update(BytesView{d.v.data(), d.v.size()});
            d = h.finish();
          }
        },
        256.0, win);
    benchmark::DoNotOptimize(d);
  }

  const Digest seed = sha256("bench_crypto.seed");
  const auto sk = wots::keygen_secret(seed, 7);
  const auto pk = wots::derive_public(sk);
  Digest msg = sha256("bench_crypto.msg");
  row.wots_sign_ops = ops_per_sec(
      [&] {
        benchmark::DoNotOptimize(legacy::sign(sk, msg));
        msg.v[0] ^= 1;
      },
      1.0, win);
  const auto sig = legacy::sign(sk, msg);
  row.wots_verify_ops = ops_per_sec(
      [&] {
        benchmark::DoNotOptimize(legacy::recover_public(sig, msg) == pk);
      },
      1.0, win);
  row.wots_signverify_ops = ops_per_sec(
      [&] {
        const auto s = legacy::sign(sk, msg);
        benchmark::DoNotOptimize(legacy::recover_public(s, msg) == pk);
      },
      1.0, win);
  return row;
}

void write_json(const std::vector<BackendRow>& rows, const BenchConfig& cfg) {
  std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_crypto: cannot write %s\n",
                 cfg.json_path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"smoke\": %s,\n  \"cpu\": {\"shani\": %s, \"avx2\": "
               "%s},\n  \"auto_backend\": \"%s\",\n  \"results\": [\n",
               cfg.smoke ? "true" : "false",
               engine::cpu_has_shani() ? "true" : "false",
               engine::cpu_has_avx2() ? "true" : "false",
               engine::active().name);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BackendRow& r = rows[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"sha256_single_hps\": %.0f, "
                 "\"sha256_multi8_hps\": %.0f, \"wots_sign_ops\": %.1f, "
                 "\"wots_verify_ops\": %.1f, \"wots_signverify_ops\": %.1f, "
                 "\"derive_keys_67_ops\": %.1f}%s\n",
                 r.backend.c_str(), r.sha256_single_hps, r.sha256_multi8_hps,
                 r.wots_sign_ops, r.wots_verify_ops, r.wots_signverify_ops,
                 r.derive67_ops, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int run_suite(const BenchConfig& cfg) {
  // Resolve the auto choice once (for the JSON header) before the per-
  // backend select() calls overwrite it.
  const std::string auto_name = engine::active().name;

  std::vector<BackendRow> rows;
  for (const std::string& name : engine::available()) {
    if (!engine::select(name)) continue;
    rows.push_back(measure_backend(name, cfg));
    const BackendRow& r = rows.back();
    std::printf(
        "%-13s single=%10.0f h/s  multi8=%10.0f h/s  sign=%8.1f/s  "
        "verify=%8.1f/s  sign+verify=%8.1f/s  derive67=%8.1f/s\n",
        r.backend.c_str(), r.sha256_single_hps, r.sha256_multi8_hps,
        r.wots_sign_ops, r.wots_verify_ops, r.wots_signverify_ops,
        r.derive67_ops);
  }

  engine::select("scalar");
  rows.push_back(measure_legacy(cfg));
  {
    const BackendRow& r = rows.back();
    std::printf(
        "%-13s single=%10.0f h/s  %-24s sign=%8.1f/s  verify=%8.1f/s  "
        "sign+verify=%8.1f/s\n",
        r.backend.c_str(), r.sha256_single_hps, "", r.wots_sign_ops,
        r.wots_verify_ops, r.wots_signverify_ops);
  }
  engine::select(auto_name);

  write_json(rows, cfg);
  std::printf("wrote %s\n", cfg.json_path.c_str());
  return 0;
}

// Google-Benchmark view of the headline number, so the binary composes
// with the standard bench tooling.
void BM_WotsSignVerify(benchmark::State& state) {
  const Digest seed = sha256("bench_crypto.seed");
  const auto sk = wots::keygen_secret(seed, 7);
  const auto pk = wots::derive_public(sk);
  const Digest msg = sha256("bench_crypto.msg");
  for (auto _ : state) {
    const auto sig = wots::sign(sk, msg);
    benchmark::DoNotOptimize(wots::verify(pk, msg, sig));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WotsSignVerify);

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      cfg.json_path = arg.substr(7);
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  const int rc = run_suite(cfg);
  if (rc != 0) return rc;
  if (cfg.smoke) return 0;  // suite only; skip the Google Benchmark pass
  return ::pera::obs_bench::run(argc, argv);
}
