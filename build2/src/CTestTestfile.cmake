# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build2/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("obs")
subdirs("crypto")
subdirs("copland")
subdirs("netkat")
subdirs("dataplane")
subdirs("netsim")
subdirs("ra")
subdirs("nac")
subdirs("pera")
subdirs("pipeline")
subdirs("core")
subdirs("verify")
subdirs("adversary")
