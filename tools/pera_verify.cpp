// pera_verify — static policy verification CLI.
//
// Verifies a network-aware Copland policy against a topology and deployment
// model *before* compilation (checks V1-V9, see docs/VERIFY.md):
//
//   pera_verify policy.copland                        # against topo::isp()
//   pera_verify -e '*rp<n> : @edge1 [attest(Program) -> !] +<+ @Appraiser [appraise]'
//   pera_verify --topology chain:3 --bind client=client policy.copland
//   pera_verify --node Switch --node Appraiser:appraiser --link Switch-Appraiser ...
//   pera_verify --guard Ktest=false --json policy.copland
//   pera_verify --program nat --cadence prod.conf policy.copland   # V6-V9
//
// Exit status: 0 = policy verifies, 1 = verification errors (suppressed by
// --force), 2 = usage error.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "copland/ast.h"
#include "copland/parser.h"
#include "crypto/keystore.h"
#include "ctrl/cadence.h"
#include "dataplane/builder.h"
#include "dataplane/nf.h"
#include "dataplane/p4mini.h"
#include "dataplane/program.h"
#include "nac/compiler.h"
#include "nac/detail.h"
#include "netkat/policy.h"
#include "netsim/topology.h"
#include "verify/coverage.h"
#include "verify/verifier.h"

namespace {

using pera::verify::DiagnosticEngine;
using pera::verify::VerifyModel;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] (POLICY_FILE | - | -e EXPR)\n"
      << "\n"
      << "Statically verify a network-aware Copland policy against a\n"
      << "topology and deployment model (checks V1-V5, docs/VERIFY.md).\n"
      << "\n"
      << "policy input:\n"
      << "  POLICY_FILE           read the policy from a file ('-' = stdin)\n"
      << "  -e EXPR               inline policy text\n"
      << "\n"
      << "deployment model:\n"
      << "  --topology NAME       isp (default) | datacenter | chain:N | none\n"
      << "  --node NAME[:KIND]    add a custom-topology node (KIND: host,\n"
      << "                        switch (default), appliance, appraiser);\n"
      << "                        any --node replaces the canned topology\n"
      << "  --link A-B            add a custom-topology link\n"
      << "  --bind VAR=PLACE      pin a forall place to a topology element\n"
      << "  --ra LIST             comma-separated RA-capable elements\n"
      << "                        (--ra '' = none; default: all switches\n"
      << "                        and appliances)\n"
      << "  --flow SRC-DST        expected flow for wildcard-hop coverage\n"
      << "  --guard NAME=SPEC     model a '|>' guard: true | false |\n"
      << "                        FIELD:VALUE (NetKAT test)\n"
      << "  --packet F=V[,F=V]    add a packet to the dead-guard universe\n"
      << "  --no-key PLACE        drop PLACE from the default keystore\n"
      << "  --no-keys             provision no keys at all\n"
      << "\n"
      << "attestation coverage (enables checks V6/V7/V9; V8 always runs):\n"
      << "  --program SPEC        dataplane program the policy must cover:\n"
      << "                        nat[:CAPACITY] | router | firewall | acl |\n"
      << "                        monitor | rogue | PATH.p4 (P4-mini source)\n"
      << "  --cadence FILE        re-attestation cadence config (key=value:\n"
      << "                        hardware/program/tables/state/packet=DUR,\n"
      << "                        levels=..., budget=DUR, or a workload:\n"
      << "                        pps/table_updates_per_second/...)\n"
      << "  --staleness-budget D  max tolerated mutation-to-observation\n"
      << "                        window (e.g. 500ms); overrides the config\n"
      << "  --measures P=LEVELS   detail levels a request parameter attests,\n"
      << "                        e.g. X=Program+Tables (repeatable)\n"
      << "\n"
      << "output and behaviour:\n"
      << "  --json                machine-readable diagnostics\n"
      << "  --force               report diagnostics but exit 0\n"
      << "  --compile             also run nac::compile under the verifier\n"
      << "  -h, --help            this message\n";
  return 2;
}

int fail(const std::string& msg) {
  std::cerr << "pera_verify: " << msg << "\n";
  return 2;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 0);
  return end != nullptr && *end == '\0';
}

std::optional<pera::netsim::NodeKind> parse_kind(const std::string& s) {
  using pera::netsim::NodeKind;
  if (s == "host") return NodeKind::kHost;
  if (s == "switch") return NodeKind::kSwitch;
  if (s == "appliance") return NodeKind::kAppliance;
  if (s == "appraiser") return NodeKind::kAppraiser;
  return std::nullopt;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

struct Options {
  std::string policy_text;
  bool have_policy = false;

  std::string topology_name = "isp";
  std::vector<std::pair<std::string, pera::netsim::NodeKind>> custom_nodes;
  std::vector<std::pair<std::string, std::string>> custom_links;

  std::map<std::string, std::string> bindings;
  std::optional<std::set<std::string>> ra;
  std::vector<std::pair<std::string, std::string>> flows;
  std::map<std::string, pera::netkat::PredPtr> guards;
  std::vector<pera::netkat::Packet> packets;
  std::set<std::string> dropped_keys;
  bool no_keys = false;

  std::string program_spec;
  std::string cadence_file;
  std::optional<pera::netsim::SimTime> staleness_budget;
  std::map<std::string, pera::nac::DetailMask> measures;

  bool json = false;
  bool force = false;
  bool compile = false;
};

// Strict level-name parser for --measures (nac::detail_from_target maps
// unknown names to kProgram, which would silently hide a typo here).
bool parse_levels(const std::string& spec, pera::nac::DetailMask* out) {
  using pera::nac::EvidenceDetail;
  *out = 0;
  std::string cur;
  const auto flush = [&]() -> bool {
    if (cur.empty()) return true;
    if (cur == "Hardware") {
      *out |= static_cast<pera::nac::DetailMask>(EvidenceDetail::kHardware);
    } else if (cur == "Program") {
      *out |= static_cast<pera::nac::DetailMask>(EvidenceDetail::kProgram);
    } else if (cur == "Tables") {
      *out |= static_cast<pera::nac::DetailMask>(EvidenceDetail::kTables);
    } else if (cur == "State" || cur == "ProgState") {
      *out |= static_cast<pera::nac::DetailMask>(EvidenceDetail::kProgState);
    } else if (cur == "Packet") {
      *out |= static_cast<pera::nac::DetailMask>(EvidenceDetail::kPacket);
    } else {
      return false;
    }
    cur.clear();
    return true;
  };
  for (const char c : spec) {
    if (c == '+' || c == ',') {
      if (!flush()) return false;
    } else {
      cur.push_back(c);
    }
  }
  return flush() && *out != 0;
}

// Resolve --program SPEC into a live program. The returned holder keeps
// whatever owns the program (a StatefulNat for nat, a shared_ptr
// otherwise) alive for the duration of the analyses.
struct ProgramHolder {
  std::shared_ptr<pera::dataplane::DataplaneProgram> program;
  std::unique_ptr<pera::dataplane::StatefulNat> nat;

  [[nodiscard]] const pera::dataplane::DataplaneProgram* get() const {
    if (nat) return &nat->sw().program();
    return program.get();
  }
};

int build_program(const std::string& spec, ProgramHolder& holder) {
  using namespace pera::dataplane;
  try {
    if (spec == "nat" || spec.rfind("nat:", 0) == 0) {
      StatefulNat::Config cfg;
      if (spec.size() > 4) {
        std::uint64_t cap = 0;
        if (!parse_u64(spec.substr(4), &cap) || cap == 0) {
          return fail("--program nat:CAPACITY needs a positive capacity");
        }
        cfg.capacity = static_cast<std::size_t>(cap);
      }
      holder.nat = std::make_unique<StatefulNat>(cfg);
    } else if (spec == "router") {
      holder.program = make_router();
    } else if (spec == "firewall") {
      holder.program = make_firewall();
    } else if (spec == "acl") {
      holder.program = make_acl();
    } else if (spec == "monitor") {
      holder.program = make_monitor();
    } else if (spec == "rogue") {
      holder.program = make_rogue_router();
    } else if (spec.size() > 3 && spec.compare(spec.size() - 3, 3, ".p4") == 0) {
      std::ifstream in(spec);
      if (!in) return fail("--program: cannot open '" + spec + "'");
      std::ostringstream ss;
      ss << in.rdbuf();
      holder.program = compile_p4mini(ss.str());
    } else {
      return fail("--program: unknown program '" + spec +
                  "' (nat[:CAP], router, firewall, acl, monitor, rogue, "
                  "or a .p4 file)");
    }
  } catch (const P4MiniError& e) {
    return fail(std::string("--program: ") + e.what());
  }
  return 0;
}

// Returns 0 on success, 2 on usage error (with message already printed).
int parse_args(int argc, char** argv, Options& opt) {
  const auto value_of = [&](int& i, const std::string& flag,
                            std::string* out) -> bool {
    if (i + 1 >= argc) {
      fail("missing value for " + flag);
      return false;
    }
    *out = argv[++i];
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 2;
    } else if (arg == "-e") {
      if (!value_of(i, arg, &v)) return 2;
      opt.policy_text = v;
      opt.have_policy = true;
    } else if (arg == "--topology") {
      if (!value_of(i, arg, &v)) return 2;
      opt.topology_name = v;
    } else if (arg == "--node") {
      if (!value_of(i, arg, &v)) return 2;
      const auto colon = v.find(':');
      std::string name = v.substr(0, colon);
      auto kind = pera::netsim::NodeKind::kSwitch;
      if (colon != std::string::npos) {
        const auto parsed = parse_kind(v.substr(colon + 1));
        if (!parsed) return fail("--node: unknown kind in '" + v + "'");
        kind = *parsed;
      }
      if (name.empty()) return fail("--node: empty name");
      opt.custom_nodes.emplace_back(std::move(name), kind);
    } else if (arg == "--link") {
      if (!value_of(i, arg, &v)) return 2;
      const auto dash = v.find('-');
      if (dash == std::string::npos || dash == 0 || dash + 1 == v.size()) {
        return fail("--link: expected A-B, got '" + v + "'");
      }
      opt.custom_links.emplace_back(v.substr(0, dash), v.substr(dash + 1));
    } else if (arg == "--bind") {
      if (!value_of(i, arg, &v)) return 2;
      const auto eq = v.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == v.size()) {
        return fail("--bind: expected VAR=PLACE, got '" + v + "'");
      }
      opt.bindings[v.substr(0, eq)] = v.substr(eq + 1);
    } else if (arg == "--ra") {
      if (!value_of(i, arg, &v)) return 2;
      std::set<std::string> ra;
      for (const auto& e : split(v, ',')) {
        if (!e.empty()) ra.insert(e);
      }
      opt.ra = std::move(ra);
    } else if (arg == "--flow") {
      if (!value_of(i, arg, &v)) return 2;
      const auto dash = v.find('-');
      if (dash == std::string::npos || dash == 0 || dash + 1 == v.size()) {
        return fail("--flow: expected SRC-DST, got '" + v + "'");
      }
      opt.flows.emplace_back(v.substr(0, dash), v.substr(dash + 1));
    } else if (arg == "--guard") {
      if (!value_of(i, arg, &v)) return 2;
      const auto eq = v.find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail("--guard: expected NAME=SPEC, got '" + v + "'");
      }
      const std::string name = v.substr(0, eq);
      const std::string spec = v.substr(eq + 1);
      using pera::netkat::Predicate;
      if (spec == "true") {
        opt.guards[name] = Predicate::tru();
      } else if (spec == "false") {
        opt.guards[name] = Predicate::fls();
      } else {
        const auto colon = spec.find(':');
        std::uint64_t value = 0;
        if (colon == std::string::npos || colon == 0 ||
            !parse_u64(spec.substr(colon + 1), &value)) {
          return fail("--guard: SPEC must be true, false or FIELD:VALUE, "
                      "got '" + v + "'");
        }
        opt.guards[name] = Predicate::test(spec.substr(0, colon), value);
      }
    } else if (arg == "--packet") {
      if (!value_of(i, arg, &v)) return 2;
      pera::netkat::Packet pkt;
      for (const auto& fv : split(v, ',')) {
        const auto eq = fv.find('=');
        std::uint64_t value = 0;
        if (eq == std::string::npos || eq == 0 ||
            !parse_u64(fv.substr(eq + 1), &value)) {
          return fail("--packet: expected F=V[,F=V], got '" + v + "'");
        }
        pkt.set(fv.substr(0, eq), value);
      }
      opt.packets.push_back(std::move(pkt));
    } else if (arg == "--program") {
      if (!value_of(i, arg, &v)) return 2;
      opt.program_spec = v;
    } else if (arg == "--cadence") {
      if (!value_of(i, arg, &v)) return 2;
      opt.cadence_file = v;
    } else if (arg == "--staleness-budget") {
      if (!value_of(i, arg, &v)) return 2;
      try {
        opt.staleness_budget = pera::ctrl::parse_duration(v);
      } catch (const std::invalid_argument& e) {
        return fail(std::string("--staleness-budget: ") + e.what());
      }
    } else if (arg == "--measures") {
      if (!value_of(i, arg, &v)) return 2;
      const auto eq = v.find('=');
      pera::nac::DetailMask mask = 0;
      if (eq == std::string::npos || eq == 0 ||
          !parse_levels(v.substr(eq + 1), &mask)) {
        return fail("--measures: expected PARAM=LEVEL[+LEVEL...] with "
                    "levels from Hardware, Program, Tables, State, Packet; "
                    "got '" + v + "'");
      }
      opt.measures[v.substr(0, eq)] |= mask;
    } else if (arg == "--no-key") {
      if (!value_of(i, arg, &v)) return 2;
      opt.dropped_keys.insert(v);
    } else if (arg == "--no-keys") {
      opt.no_keys = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--force") {
      opt.force = true;
    } else if (arg == "--compile") {
      opt.compile = true;
    } else if (arg == "-" && !opt.have_policy) {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      opt.policy_text = ss.str();
      opt.have_policy = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return fail("unknown option '" + arg + "' (try --help)");
    } else if (!opt.have_policy) {
      std::ifstream in(arg);
      if (!in) return fail("cannot open policy file '" + arg + "'");
      std::ostringstream ss;
      ss << in.rdbuf();
      opt.policy_text = ss.str();
      opt.have_policy = true;
    } else {
      return fail("more than one policy given (try --help)");
    }
  }
  if (!opt.have_policy) {
    usage(argv[0]);
    return 2;
  }
  return 0;
}

std::optional<pera::netsim::Topology> build_topology(const Options& opt,
                                                     int* err) {
  *err = 0;
  if (!opt.custom_nodes.empty()) {
    pera::netsim::Topology topo;
    for (const auto& [name, kind] : opt.custom_nodes) topo.add_node(name, kind);
    for (const auto& [a, b] : opt.custom_links) {
      if (!topo.find(a) || !topo.find(b)) {
        *err = fail("--link " + a + "-" + b + ": unknown node");
        return std::nullopt;
      }
      topo.add_link(a, b);
    }
    return topo;
  }
  if (opt.topology_name == "none") return std::nullopt;
  if (opt.topology_name == "isp") return pera::netsim::topo::isp();
  if (opt.topology_name == "datacenter") {
    return pera::netsim::topo::datacenter();
  }
  if (opt.topology_name.rfind("chain:", 0) == 0) {
    std::uint64_t n = 0;
    if (!parse_u64(opt.topology_name.substr(6), &n) || n == 0 || n > 64) {
      *err = fail("--topology chain:N needs 1 <= N <= 64");
      return std::nullopt;
    }
    return pera::netsim::topo::chain(static_cast<std::size_t>(n));
  }
  *err = fail("--topology: unknown topology '" + opt.topology_name + "'");
  return std::nullopt;
}

// Default provisioning: every topology node, every concrete policy place
// and every binding target gets a device key — minus the --no-key drops.
// This mirrors a fully provisioned deployment so V5 only fires where the
// user punched a hole.
void provision_keys(const Options& opt,
                    const std::optional<pera::netsim::Topology>& topo,
                    pera::crypto::KeyStore& keys) {
  if (opt.no_keys) return;
  std::set<std::string> principals;
  if (topo) {
    for (const auto& n : topo->nodes()) principals.insert(n.name);
  }
  try {
    const auto req = pera::copland::parse_request(opt.policy_text);
    for (const auto& p : pera::copland::places_of(req.body)) {
      principals.insert(p);
    }
    principals.insert(req.relying_party);
  } catch (const pera::copland::ParseError&) {
    // verify_source will report this as a P0 diagnostic.
  }
  for (const auto& [var, place] : opt.bindings) principals.insert(place);
  for (const auto& p : principals) {
    if (!opt.dropped_keys.contains(p)) keys.provision_hmac(p);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const int rc = parse_args(argc, argv, opt); rc != 0) return rc;

  int err = 0;
  const std::optional<pera::netsim::Topology> topo = build_topology(opt, &err);
  if (err != 0) return err;

  pera::crypto::KeyStore keys(/*seed=*/42);
  provision_keys(opt, topo, keys);

  VerifyModel model;
  if (topo) model.topology = &*topo;
  model.ra_capable = opt.ra;
  model.bindings = opt.bindings;
  model.keys = &keys;
  model.guards = opt.guards;
  model.packet_universe = opt.packets;
  model.flows = opt.flows;

  ProgramHolder holder;
  if (!opt.program_spec.empty()) {
    if (const int rc = build_program(opt.program_spec, holder); rc != 0) {
      return rc;
    }
  }
  pera::verify::CoverageModel coverage;
  coverage.program = holder.get();
  coverage.staleness_budget = opt.staleness_budget;
  coverage.param_details = opt.measures;
  if (!opt.cadence_file.empty()) {
    std::ifstream in(opt.cadence_file);
    if (!in) return fail("--cadence: cannot open '" + opt.cadence_file + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
      coverage.cadence = pera::ctrl::parse_cadence(ss.str());
    } catch (const std::invalid_argument& e) {
      return fail("--cadence: " + opt.cadence_file + ": " + e.what());
    }
  }

  DiagnosticEngine de(opt.policy_text);
  bool ok = pera::verify::verify_source(opt.policy_text, model, de);

  // V6-V9 need the parsed request; a parse failure was already reported
  // as P0 above, so only run them when the policy parses.
  try {
    const auto req = pera::copland::parse_request(opt.policy_text);
    ok = pera::verify::check_coverage(req, coverage, de) && ok;
  } catch (const pera::copland::ParseError&) {
  }

  if (opt.compile && ok) {
    try {
      const pera::verify::ScopedCompileGuard guard(model, opt.force);
      const auto compiled = pera::nac::compile(opt.policy_text);
      if (!opt.json) {
        std::cout << "compiled: " << compiled.hops.size() << " hop(s), "
                  << compiled.wildcard_count() << " wildcard\n";
      }
    } catch (const pera::nac::CompileError& e) {
      de.error(pera::verify::kCodeWellFormed,
               std::string("compilation failed: ") + e.what());
    }
  }

  // Canonical output order: renderings are byte-identical regardless of
  // analysis scheduling or container iteration order.
  de.sort_stable();
  std::cout << (opt.json ? de.render_json() : de.render_human());
  if (!de.ok() && !opt.force) return 1;
  return 0;
}
