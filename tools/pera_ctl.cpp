// pera_ctl — closed-loop control-plane scenario runner.
//
// Replays the Athens-affair storyline against the ISP topology with the
// continuous attestation control plane engaged: the controller on
// "client" re-attests every switch; mid-run the adversary hot-swaps
// core2's dataplane program for the rogue lookalike; the control plane
// detects the digest change, walks core2 Trusted -> Suspect ->
// Quarantined, steers the client->pm_phone data path onto the core1-core3
// backup link, and — once the attacker restores the legitimate program —
// reinstates core2 and returns traffic to the primary path.
//
// Everything is seed-deterministic: the same flags print the same
// timeline, byte for byte. Exit code 0 iff the full story held.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "adversary/attacks.h"
#include "core/deployment.h"
#include "core/wire.h"
#include "ctrl/controller.h"
#include "netsim/topology.h"

using namespace pera;

namespace {

struct Options {
  std::uint64_t seed = 42;
  double loss = 0.05;
  std::int64_t interval_ms = 100;  // fastest (tables-level) cadence
  std::int64_t swap_at_ms = 1000;
  std::int64_t restore_at_ms = 4000;
  std::int64_t duration_ms = 10000;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto num = [&](const char* prefix) -> std::optional<double> {
      if (arg.rfind(prefix, 0) != 0) return std::nullopt;
      return std::strtod(arg.c_str() + std::strlen(prefix), nullptr);
    };
    if (const auto v = num("--seed=")) o.seed = static_cast<std::uint64_t>(*v);
    else if (const auto v = num("--loss=")) o.loss = *v;
    else if (const auto v = num("--interval-ms=")) o.interval_ms = static_cast<std::int64_t>(*v);
    else if (const auto v = num("--swap-at-ms=")) o.swap_at_ms = static_cast<std::int64_t>(*v);
    else if (const auto v = num("--restore-at-ms=")) o.restore_at_ms = static_cast<std::int64_t>(*v);
    else if (const auto v = num("--duration-ms=")) o.duration_ms = static_cast<std::int64_t>(*v);
    else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: pera_ctl [--seed=N] [--loss=P] [--interval-ms=N]\n"
          "                [--swap-at-ms=N] [--restore-at-ms=N] [--duration-ms=N]\n");
      std::exit(0);
    }
    // Unknown flags are ignored so harness-wide flag sweeps don't break us.
  }
  return o;
}

std::string data_path(core::Deployment& dep) {
  auto& topo = dep.network().topology();
  const auto path = topo.shortest_path_avoiding(
      topo.require("client"), topo.require("pm_phone"),
      dep.network().quarantined_nodes());
  if (path.empty()) return "(unreachable)";
  std::string out;
  for (const auto& name : topo.names(path)) {
    if (!out.empty()) out += " -> ";
    out += name;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const auto ms = [](std::int64_t v) { return v * netsim::kMillisecond; };

  core::DeploymentOptions dopt;
  dopt.seed = opt.seed;
  core::Deployment dep(netsim::topo::isp(), dopt);
  dep.provision_goldens();
  dep.network().set_loss(opt.loss, opt.seed + 7);

  ctrl::ControllerConfig cfg;
  cfg.trust.quarantine_after = 2;
  cfg.trust.reinstate_after = 2;
  // All three monitored levels on the same fast cadence: the demo is
  // about detection latency, not about per-level heartbeat economics.
  cfg.scheduler.cadence.hardware = ms(opt.interval_ms);
  cfg.scheduler.cadence.program = ms(opt.interval_ms);
  cfg.scheduler.cadence.tables = ms(opt.interval_ms);
  cfg.transport.timeout = ms(opt.interval_ms) / 2;
  ctrl::AttestationController controller(dep, "client", cfg, opt.seed);

  std::printf("== pera_ctl: Athens-affair closed loop ==\n");
  std::printf(
      "seed=%llu loss=%.2f interval=%lldms swap@%lldms restore@%lldms "
      "duration=%lldms\n",
      static_cast<unsigned long long>(opt.seed), opt.loss,
      static_cast<long long>(opt.interval_ms),
      static_cast<long long>(opt.swap_at_ms),
      static_cast<long long>(opt.restore_at_ms),
      static_cast<long long>(opt.duration_ms));
  std::printf("data path at start:   %s\n\n", data_path(dep).c_str());

  controller.on_transition([&](const std::string& place,
                               const ctrl::TrustTransition& t) {
    std::printf("t=%8.1f ms  %-6s %-11s -> %-11s  (%s)\n",
                static_cast<double>(t.at) / 1e6, place.c_str(),
                ctrl::to_string(t.from), ctrl::to_string(t.to),
                t.reason.c_str());
    if (t.to == ctrl::TrustState::kQuarantined ||
        t.from == ctrl::TrustState::kQuarantined) {
      std::printf("              data path now: %s\n", data_path(dep).c_str());
    }
  });

  auto& events = dep.network().events();

  // Background subscriber traffic, one packet every 20 ms: while core2 is
  // quarantined these packets detour over the core1-core3 backup link
  // (visible in stats.data_rerouted).
  const netsim::NodeId client_id = dep.network().topology().require("client");
  const netsim::NodeId phone_id = dep.network().topology().require("pm_phone");
  std::function<void()> inject = [&] {
    core::FlowBundle bundle;
    bundle.raw = dataplane::make_tcp_packet({});
    netsim::Message pkt;
    pkt.src = client_id;
    pkt.dst = phone_id;
    pkt.type = "data";
    bundle.to_message(pkt);
    dep.network().send(std::move(pkt));
    if (dep.network().now() + ms(20) < ms(opt.duration_ms)) {
      events.schedule_in(ms(20), [&] { inject(); });
    }
  };
  events.schedule_in(ms(20), [&] { inject(); });

  events.schedule_at(ms(opt.swap_at_ms), [&] {
    adversary::program_swap_attack(dep, "core2");
    std::printf("t=%8.1f ms  [adversary] rogue program hot-swapped on core2\n",
                static_cast<double>(dep.network().now()) / 1e6);
  });
  events.schedule_at(ms(opt.restore_at_ms), [&] {
    adversary::program_restore(dep, "core2");
    std::printf(
        "t=%8.1f ms  [adversary] legitimate program restored on core2\n",
        static_cast<double>(dep.network().now()) / 1e6);
  });

  controller.start();
  dep.network().run(ms(opt.duration_ms));
  controller.stop();
  dep.network().run();  // drain in-flight rounds; scheduler is stopped

  const auto quarantined_at =
      controller.first_transition("core2", ctrl::TrustState::kQuarantined);
  const auto reinstated_at =
      controller.first_transition("core2", ctrl::TrustState::kReinstated);

  std::printf("\ndata path at end:     %s\n", data_path(dep).c_str());
  std::printf("rounds: %llu pass, %llu fail, %llu timeout (%llu retries)\n",
              static_cast<unsigned long long>(controller.rounds_passed()),
              static_cast<unsigned long long>(controller.rounds_failed()),
              static_cast<unsigned long long>(controller.rounds_timed_out()),
              static_cast<unsigned long long>(
                  controller.transport().stats().retries));
  const auto& net_stats = dep.network().stats();
  std::printf("rerouted data hops: %llu (fallbacks: %llu)\n",
              static_cast<unsigned long long>(net_stats.data_rerouted),
              static_cast<unsigned long long>(net_stats.reroute_fallbacks));

  bool ok = true;
  if (!quarantined_at || *quarantined_at < ms(opt.swap_at_ms)) {
    std::printf("FAIL: core2 was not quarantined after the swap\n");
    ok = false;
  } else {
    std::printf("detection latency:  %.1f ms (swap -> quarantine)\n",
                static_cast<double>(*quarantined_at - ms(opt.swap_at_ms)) /
                    1e6);
  }
  if (!reinstated_at || *reinstated_at < ms(opt.restore_at_ms)) {
    std::printf("FAIL: core2 was not reinstated after the restore\n");
    ok = false;
  } else {
    std::printf("reinstatement lag:  %.1f ms (restore -> reinstated)\n",
                static_cast<double>(*reinstated_at - ms(opt.restore_at_ms)) /
                    1e6);
  }
  if (controller.trust("core2").state() == ctrl::TrustState::kQuarantined) {
    std::printf("FAIL: core2 still quarantined at end of run\n");
    ok = false;
  }
  std::printf("%s\n", ok ? "OK: closed loop held" : "SCENARIO FAILED");
  return ok ? 0 : 1;
}
