// pera_fleet — fleet-scale hierarchical appraisal scenario runner.
//
// A 24-switch fleet under delegated appraisal: the root on "root"
// partitions the switches into fanout-bounded regions, each served by a
// regional appraiser that runs paced member rounds and returns one
// signed composition tree per wave. Two adversaries strike mid-run:
//
//   1. A classic program hot-swap on one member switch. The regional's
//      next wave carries the bad verdict up in its aggregate and the
//      root walks the member Trusted -> Suspect -> Quarantined.
//
//   2. A compromised regional appraiser that starts vouching for one of
//      its members without challenging it (replaying stale evidence).
//      The root's derived-nonce freshness pass rejects every forged
//      aggregate, the regional's delegation trust drains to Quarantined,
//      its domains are re-homed onto a sibling appraiser, and the moved
//      members re-attest cleanly under the new regional.
//
// Everything is seed-deterministic: the same flags print the same
// timeline, byte for byte. Exit code 0 iff the full story held.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "adversary/attacks.h"
#include "core/deployment.h"
#include "fleet/controller.h"
#include "netsim/topology.h"

using namespace pera;

namespace {

struct Options {
  std::uint64_t seed = 42;
  double loss = 0.01;
  std::size_t switches = 24;
  std::size_t fanout = 8;
  std::int64_t wave_ms = 25;
  std::int64_t swap_at_ms = 120;
  std::int64_t forge_at_ms = 400;
  std::int64_t duration_ms = 1200;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto num = [&](const char* prefix) -> std::optional<double> {
      if (arg.rfind(prefix, 0) != 0) return std::nullopt;
      return std::strtod(arg.c_str() + std::strlen(prefix), nullptr);
    };
    if (const auto v = num("--seed=")) o.seed = static_cast<std::uint64_t>(*v);
    else if (const auto v = num("--loss=")) o.loss = *v;
    else if (const auto v = num("--switches=")) o.switches = static_cast<std::size_t>(*v);
    else if (const auto v = num("--fanout=")) o.fanout = static_cast<std::size_t>(*v);
    else if (const auto v = num("--wave-ms=")) o.wave_ms = static_cast<std::int64_t>(*v);
    else if (const auto v = num("--swap-at-ms=")) o.swap_at_ms = static_cast<std::int64_t>(*v);
    else if (const auto v = num("--forge-at-ms=")) o.forge_at_ms = static_cast<std::int64_t>(*v);
    else if (const auto v = num("--duration-ms=")) o.duration_ms = static_cast<std::int64_t>(*v);
    else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: pera_fleet [--seed=N] [--loss=P] [--switches=N] [--fanout=N]\n"
          "                  [--wave-ms=N] [--swap-at-ms=N] [--forge-at-ms=N]\n"
          "                  [--duration-ms=N]\n");
      std::exit(0);
    }
    // Unknown flags are ignored so harness-wide flag sweeps don't break us.
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const auto ms = [](std::int64_t v) { return v * netsim::kMillisecond; };

  core::DeploymentOptions dopt;
  dopt.seed = opt.seed;
  core::Deployment dep(netsim::topo::fleet(opt.switches, opt.fanout), dopt);
  dep.provision_goldens();
  dep.network().set_loss(opt.loss, opt.seed + 7);

  fleet::FleetConfig cfg;
  cfg.fanout = opt.fanout;
  cfg.wave.interval = ms(opt.wave_ms);
  cfg.wave_timeout = ms(opt.wave_ms) * 3 / 4;
  cfg.transport.timeout = ms(opt.wave_ms) / 5;
  cfg.root_transport.timeout = ms(opt.wave_ms) / 5;
  cfg.trust.quarantine_after = 3;
  cfg.trust.reinstate_after = 2;
  cfg.admit_burst = static_cast<double>(opt.fanout);
  // Keep chronic-failure splitting out of the forged-regional story: the
  // rogue regional must drain to Quarantined and re-home, not shrink.
  cfg.split_after_failures = 1000;

  fleet::FleetController controller(
      dep, "root",
      fleet::DelegationTree::build(
          fleet::fleet_switch_names(opt.switches),
          fleet::fleet_regional_names(opt.switches, opt.fanout),
          {opt.fanout}),
      cfg, opt.seed);

  const std::string victim = "sw" + std::to_string(opt.switches / 4);
  const std::string rogue_regional = "r" +
      std::to_string((opt.switches / opt.fanout) / 2);
  const std::string vouched =
      controller.tree().regions().empty()
          ? std::string{}
          : [&] {
              for (const fleet::Region* r : controller.tree().regions()) {
                if (r->appraiser == rogue_regional && !r->members.empty()) {
                  return r->members.front();
                }
              }
              return std::string{};
            }();

  std::printf("== pera_fleet: hierarchical appraisal under attack ==\n");
  std::printf(
      "seed=%llu loss=%.2f switches=%zu fanout=%zu wave=%lldms "
      "swap@%lldms(%s) forge@%lldms(%s->%s) duration=%lldms\n",
      static_cast<unsigned long long>(opt.seed), opt.loss, opt.switches,
      opt.fanout, static_cast<long long>(opt.wave_ms),
      static_cast<long long>(opt.swap_at_ms), victim.c_str(),
      static_cast<long long>(opt.forge_at_ms), rogue_regional.c_str(),
      vouched.c_str(), static_cast<long long>(opt.duration_ms));
  std::printf("regions: %zu, members: %zu\n\n",
              controller.tree().region_count(),
              controller.tree().all_members().size());

  controller.on_transition([&](const std::string& place,
                               const ctrl::TrustTransition& t) {
    std::printf("t=%8.1f ms  %-6s %-11s -> %-11s  (%s)\n",
                static_cast<double>(t.at) / 1e6, place.c_str(),
                ctrl::to_string(t.from), ctrl::to_string(t.to),
                t.reason.c_str());
  });

  auto& events = dep.network().events();
  events.schedule_at(ms(opt.swap_at_ms), [&] {
    adversary::program_swap_attack(dep, victim);
    std::printf("t=%8.1f ms  [adversary] rogue program hot-swapped on %s\n",
                static_cast<double>(dep.network().now()) / 1e6,
                victim.c_str());
  });
  events.schedule_at(ms(opt.forge_at_ms), [&] {
    controller.regional(rogue_regional).forge_member(vouched, true);
    std::printf(
        "t=%8.1f ms  [adversary] %s now forges entries for %s "
        "(stale evidence, no challenge)\n",
        static_cast<double>(dep.network().now()) / 1e6,
        rogue_regional.c_str(), vouched.c_str());
  });

  controller.start();
  dep.network().run(ms(opt.duration_ms));
  controller.stop();
  dep.network().run();  // drain in-flight rounds; scheduler is stopped

  const fleet::FleetStats& st = controller.stats();
  std::printf("\nwaves launched: %llu, aggregates: %llu valid / %llu invalid "
              "/ %llu timed out\n",
              static_cast<unsigned long long>(st.waves_launched),
              static_cast<unsigned long long>(st.aggregates_valid),
              static_cast<unsigned long long>(st.aggregates_invalid),
              static_cast<unsigned long long>(st.aggregates_timeout));
  std::printf("entries applied: %llu, probes: %llu, rounds subsumed: %llu\n",
              static_cast<unsigned long long>(st.entries_applied),
              static_cast<unsigned long long>(st.probe_rounds),
              static_cast<unsigned long long>(st.rounds_subsumed));
  std::printf("domains re-homed: %llu, region splits: %llu, "
              "forged entries emitted: %llu\n",
              static_cast<unsigned long long>(st.domains_rehomed),
              static_cast<unsigned long long>(st.region_splits),
              static_cast<unsigned long long>(
                  controller.regional(rogue_regional).forged_entries()));
  std::printf("peak root inflight: %zu (fanout bound %zu)\n",
              controller.peak_root_inflight(), opt.fanout);

  bool ok = true;
  const auto victim_quarantined =
      controller.first_transition(victim, ctrl::TrustState::kQuarantined);
  if (!victim_quarantined || *victim_quarantined < ms(opt.swap_at_ms)) {
    std::printf("FAIL: %s was not quarantined after the program swap\n",
                victim.c_str());
    ok = false;
  } else {
    std::printf("member detection latency:   %.1f ms (swap -> quarantine)\n",
                static_cast<double>(*victim_quarantined - ms(opt.swap_at_ms)) /
                    1e6);
  }
  const auto rogue_quarantined = controller.first_transition(
      rogue_regional, ctrl::TrustState::kQuarantined);
  if (!rogue_quarantined || *rogue_quarantined < ms(opt.forge_at_ms)) {
    std::printf("FAIL: forging regional %s was never quarantined\n",
                rogue_regional.c_str());
    ok = false;
  } else {
    std::printf("regional detection latency: %.1f ms (forge -> quarantine)\n",
                static_cast<double>(*rogue_quarantined - ms(opt.forge_at_ms)) /
                    1e6);
  }
  if (st.domains_rehomed == 0) {
    std::printf("FAIL: no domains were re-homed off the rogue regional\n");
    ok = false;
  }
  for (const fleet::Region* r : controller.tree().regions()) {
    if (r->appraiser == rogue_regional) {
      std::printf("FAIL: region %s still homed on the rogue regional\n",
                  r->name.c_str());
      ok = false;
    }
  }
  if (controller.peak_root_inflight() > opt.fanout) {
    std::printf("FAIL: root appraisal load exceeded the fanout bound\n");
    ok = false;
  }
  std::size_t healthy = 0;
  for (const auto& m : controller.tree().all_members()) {
    if (m == victim) continue;
    if (controller.trust(m).state() == ctrl::TrustState::kTrusted) ++healthy;
  }
  if (healthy + 1 < controller.tree().all_members().size()) {
    std::printf("FAIL: %zu healthy members not Trusted at end\n",
                controller.tree().all_members().size() - 1 - healthy);
    ok = false;
  }
  if (controller.trust(victim).state() != ctrl::TrustState::kQuarantined) {
    std::printf("FAIL: %s not quarantined at end of run\n", victim.c_str());
    ok = false;
  }

  std::printf("\n%s\n", ok ? "SCENARIO PASSED" : "SCENARIO FAILED");
  return ok ? 0 : 1;
}
