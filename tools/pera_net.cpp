// pera_net — socket evidence-transport runner: a standalone appraiser
// server, a switch attester, and an in-process selftest.
//
//   pera_net --serve [--port=0] [--port-file=PATH] [--reactors=2]
//            [--exit-after-rounds=N] [--duration-ms=N]
//            [--metrics-json=PATH]
//       Run the epoll appraiser server. With --port-file the bound port
//       is written there once listening (port 0 picks an ephemeral one),
//       so a second process can find it. Exits after N appraised rounds
//       (or the duration), printing session/round counters.
//
//   pera_net --switch --port=P [--place=sw0] [--rounds=3] [--mutual]
//       Connect as an attesting switch: RA handshake (quote over a fresh
//       session nonce), then N evidence rounds; prints each verdict.
//       Exit 0 iff admitted and every verdict was true.
//
//   pera_net --selftest
//       In-process server + client round trip, plus a tampered-quote
//       rejection. Prints PASS/FAIL.
//
// Both processes derive identical key material from --key-seed=LABEL
// (default "pera-net-demo") — the out-of-band provisioning a real
// deployment would do once.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "crypto/sha256.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/obs.h"
#include "pipeline/pipeline.h"

using namespace pera;

namespace {

struct Options {
  bool serve = false;
  bool do_switch = false;
  bool selftest = false;
  bool mutual = false;
  std::uint16_t port = 0;
  std::string port_file;
  std::string metrics_json;
  std::string place = "sw0";
  std::string key_seed = "pera-net-demo";
  std::size_t reactors = 2;
  std::uint64_t rounds = 3;
  std::uint64_t exit_after_rounds = 0;
  std::int64_t duration_ms = 0;
};

crypto::Digest d(const std::string& label) {
  crypto::Sha256 h;
  h.update(std::string_view{label});
  return h.finish();
}

struct Keys {
  crypto::Digest quote_root;
  crypto::Digest golden;
  crypto::Digest evidence_root;
  crypto::Digest cert_key;
  crypto::Digest appraiser_meas;

  explicit Keys(const std::string& seed)
      : quote_root(d(seed + ":quote-root")),
        golden(d(seed + ":golden")),
        evidence_root(d(seed + ":evidence-root")),
        cert_key(d(seed + ":cert-key")),
        appraiser_meas(d(seed + ":appraiser-meas")) {}
};

net::ServerConfig server_config(const Keys& keys, const Options& o) {
  net::ServerConfig sc;
  sc.port = o.port;
  sc.reactors = o.reactors;
  sc.quote_root_key = keys.quote_root;
  sc.golden_measurement = keys.golden;
  sc.evidence_root_key = keys.evidence_root;
  sc.cert_key = keys.cert_key;
  sc.appraiser_measurement = keys.appraiser_meas;
  return sc;
}

net::ClientIdentity identity(const Keys& keys, const Options& o) {
  net::ClientIdentity id;
  id.place = o.place;
  id.quote_root_key = keys.quote_root;
  id.measurement = keys.golden;
  id.device_key = pipeline::PeraPipeline::shard_keys(keys.evidence_root,
                                                     "pera.net.device", 16)[0];
  id.mutual = o.mutual;
  id.cert_key = keys.cert_key;
  id.appraiser_golden = keys.appraiser_meas;
  return id;
}

void dump_metrics(const Options& o) {
  if (o.metrics_json.empty()) return;
  const std::string json = obs::dump_json();
  if (o.metrics_json == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
    return;
  }
  std::FILE* f = std::fopen(o.metrics_json.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
}

int run_serve(const Options& o) {
  const Keys keys(o.key_seed);
  net::AppraiserServer server(server_config(keys, o));
  server.start();
  std::printf("pera_net: appraiser listening on 127.0.0.1:%u\n",
              server.port());
  if (!o.port_file.empty()) {
    std::FILE* f = std::fopen(o.port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "pera_net: cannot write %s\n",
                   o.port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  if (o.exit_after_rounds > 0) {
    const int timeout_ms =
        o.duration_ms > 0 ? static_cast<int>(o.duration_ms) : 60'000;
    if (!server.wait_for_rounds(o.exit_after_rounds, timeout_ms)) {
      std::fprintf(stderr, "pera_net: timed out waiting for %llu rounds\n",
                   static_cast<unsigned long long>(o.exit_after_rounds));
      server.stop();
      dump_metrics(o);
      return 1;
    }
  } else {
    const std::int64_t ms = o.duration_ms > 0 ? o.duration_ms : 5'000;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  server.stop();
  const net::ServerStats st = server.stats();
  std::printf(
      "pera_net: accepted=%llu rejected=%llu rounds=%llu results=%llu "
      "relayed=%llu errors=%llu\n",
      static_cast<unsigned long long>(st.sessions_accepted),
      static_cast<unsigned long long>(st.sessions_rejected),
      static_cast<unsigned long long>(st.rounds_appraised),
      static_cast<unsigned long long>(st.results_sent),
      static_cast<unsigned long long>(st.challenges_relayed),
      static_cast<unsigned long long>(st.protocol_errors));
  dump_metrics(o);
  return 0;
}

int run_switch(const Options& o) {
  const Keys keys(o.key_seed);
  net::SwitchClient client(identity(keys, o));
  if (!client.connect(o.port, 5'000)) {
    std::fprintf(stderr, "pera_net: handshake failed: %s (%s)\n",
                 client.error_text().c_str(),
                 net::to_string(client.reject_reason()));
    return 1;
  }
  std::printf("pera_net: %s admitted (session %s...)\n", o.place.c_str(),
              client.session()->id().hex().substr(0, 12).c_str());
  bool all_true = true;
  for (std::uint64_t i = 0; i < o.rounds; ++i) {
    const auto cert = client.round(5'000);
    if (!cert.has_value()) {
      std::fprintf(stderr, "pera_net: round %llu timed out\n",
                   static_cast<unsigned long long>(i));
      return 1;
    }
    const bool sig_ok = cert->verify(crypto::HmacVerifier(keys.cert_key));
    std::printf("round %llu: verdict=%s signature=%s\n",
                static_cast<unsigned long long>(i),
                cert->verdict ? "true" : "false", sig_ok ? "ok" : "BAD");
    all_true = all_true && cert->verdict && sig_ok;
  }
  client.close();
  dump_metrics(o);
  return all_true ? 0 : 1;
}

int run_selftest(const Options& o) {
  const Keys keys(o.key_seed);
  Options so = o;
  so.port = 0;
  net::AppraiserServer server(server_config(keys, so));
  server.start();

  bool ok = true;
  {
    net::SwitchClient client(identity(keys, so));
    ok = ok && client.connect(server.port(), 2'000);
    if (ok) {
      const auto cert = client.round(2'000);
      ok = ok && cert.has_value() && cert->verdict &&
           cert->verify(crypto::HmacVerifier(keys.cert_key));
    }
    client.close();
  }
  {
    net::ClientIdentity bad = identity(keys, so);
    bad.measurement = d("tampered");
    // Distinct nonce seed: the replay registry must not mask the quote
    // rejection this checks for.
    bad.nonce_seed = 0xFACE'0002;
    net::SwitchClient intruder(bad);
    const bool admitted = intruder.connect(server.port(), 2'000);
    ok = ok && !admitted &&
         intruder.reject_reason() == net::RejectReason::kBadQuote;
  }
  server.stop();
  dump_metrics(o);
  std::printf("pera_net selftest: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve") o.serve = true;
    else if (arg == "--switch") o.do_switch = true;
    else if (arg == "--selftest") o.selftest = true;
    else if (arg == "--mutual") o.mutual = true;
    else if (arg.rfind("--port=", 0) == 0)
      o.port = static_cast<std::uint16_t>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    else if (arg.rfind("--port-file=", 0) == 0) o.port_file = arg.substr(12);
    else if (arg.rfind("--metrics-json=", 0) == 0) o.metrics_json = arg.substr(15);
    else if (arg.rfind("--place=", 0) == 0) o.place = arg.substr(8);
    else if (arg.rfind("--key-seed=", 0) == 0) o.key_seed = arg.substr(11);
    else if (arg.rfind("--reactors=", 0) == 0)
      o.reactors = std::strtoull(arg.c_str() + 11, nullptr, 10);
    else if (arg.rfind("--rounds=", 0) == 0)
      o.rounds = std::strtoull(arg.c_str() + 9, nullptr, 10);
    else if (arg.rfind("--exit-after-rounds=", 0) == 0)
      o.exit_after_rounds = std::strtoull(arg.c_str() + 20, nullptr, 10);
    else if (arg.rfind("--duration-ms=", 0) == 0)
      o.duration_ms = std::strtoll(arg.c_str() + 14, nullptr, 10);
    else {
      std::fprintf(stderr, "pera_net: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (!o.metrics_json.empty()) {
    obs::reset();
    obs::set_enabled(true);
  }
  if (o.selftest) return run_selftest(o);
  if (o.serve) return run_serve(o);
  if (o.do_switch) return run_switch(o);
  std::fprintf(stderr,
               "pera_net: pick a mode: --serve | --switch | --selftest\n");
  return 2;
}
