// Fuzz harness for the fleet control-plane wire surfaces: the signed
// per-switch Certificate, the per-region Aggregate (composition tree),
// and the root's WaveCommand. A compromised regional appraiser — or
// anyone on the path — controls these bytes, so the invariant is the
// usual one: arbitrary input either decodes or throws a std::exception —
// never a crash, hang, or out-of-bounds read. Whatever does decode is
// then pushed through the verification layer (signature, coverage,
// Merkle recomputation) against an empty key store, which must reject it
// gracefully.
//
// Built by -DPERA_FUZZ=ON: with libFuzzer under clang, or with the
// standalone replay/mutation driver (standalone_driver.cpp) elsewhere.
// Seed corpus: tests/fixtures/fuzz/{certificate,aggregate,wave_cmd}.bin.
#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/keystore.h"
#include "fleet/aggregate.h"
#include "ra/certificate.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const pera::crypto::BytesView view{data, size};
  try {
    (void)pera::ra::Certificate::deserialize(view);
  } catch (const std::exception&) {
  }
  try {
    const pera::fleet::Aggregate agg =
        pera::fleet::Aggregate::deserialize(view);
    // Decoded aggregates feed the root's verifier: with no provisioned
    // keys every one must be rejected, never crash.
    static const pera::crypto::KeyStore empty_keys(0);
    pera::fleet::VerifyOptions opts;
    opts.keys = &empty_keys;
    std::vector<std::string> members;
    members.reserve(agg.entries.size());
    for (const auto& e : agg.entries) members.push_back(e.place);
    const auto check =
        pera::fleet::verify_aggregate(agg, members, agg.nonce, agg.wave, opts);
    if (check.valid) __builtin_trap();  // unsigned input must never verify
  } catch (const std::exception&) {
  }
  try {
    (void)pera::fleet::WaveCommand::deserialize(view);
  } catch (const std::exception&) {
  }
  return 0;
}
