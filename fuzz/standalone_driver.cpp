// Replay/mutation driver for hosts without libFuzzer (the local
// toolchain is gcc-only): gives every fuzz harness a main() that replays
// a seed corpus and then runs bounded DRBG mutations of it, so the
// "decode or throw, never crash" invariant is exercised in plain CI runs
// too. Under clang the harnesses link -fsanitize=fuzzer instead and this
// file is not compiled.
//
// Accepts the libFuzzer flags our scripts use, so invocations are
// engine-agnostic:
//   fuzz_x [-max_total_time=SECONDS] [-runs=N] [CORPUS_FILE_OR_DIR]...
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/drbg.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

using pera::crypto::Bytes;

Bytes read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

// Byte flips, truncations, extensions and run overwrites — the same
// mutation mix the in-tree robustness tests (tests/test_fuzz.cpp) use.
Bytes mutate(Bytes data, pera::crypto::Drbg& rng, int n) {
  for (int i = 0; i < n; ++i) {
    if (data.empty()) {
      data.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
      continue;
    }
    switch (rng.uniform(4)) {
      case 0:
        data[rng.uniform(data.size())] ^=
            static_cast<std::uint8_t>(1 + rng.uniform(255));
        break;
      case 1:
        data.resize(rng.uniform(data.size()));
        break;
      case 2:
        data.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
        break;
      default:
        for (std::size_t j = rng.uniform(data.size());
             j < data.size() && rng.chance(0.7); ++j) {
          data[j] = static_cast<std::uint8_t>(rng.uniform(256));
        }
        break;
    }
  }
  return data;
}

void run_one(const Bytes& input) {
  (void)LLVMFuzzerTestOneInput(input.data(), input.size());
}

}  // namespace

int main(int argc, char** argv) {
  long long runs = 20000;
  long long max_seconds = 0;  // 0 = no time bound
  std::vector<std::filesystem::path> corpus;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-max_total_time=", 0) == 0) {
      max_seconds = std::atoll(arg.c_str() + 16);
    } else if (arg.rfind("-runs=", 0) == 0) {
      runs = std::atoll(arg.c_str() + 6);
    } else if (arg.rfind("-seed=", 0) == 0) {
      // accepted for parity; folded into the DRBG below
    } else if (!arg.empty() && arg[0] == '-') {
      // ignore other libFuzzer flags so scripts stay engine-agnostic
    } else {
      std::error_code ec;
      if (std::filesystem::is_directory(arg, ec)) {
        for (const auto& e : std::filesystem::directory_iterator(arg)) {
          if (e.is_regular_file()) corpus.push_back(e.path());
        }
      } else {
        corpus.emplace_back(arg);
      }
    }
  }

  std::vector<Bytes> seeds;
  seeds.reserve(corpus.size() + 1);
  for (const auto& path : corpus) seeds.push_back(read_file(path));
  seeds.emplace_back();  // always fuzz from empty too

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(max_seconds);
  const auto out_of_time = [&] {
    return max_seconds > 0 && std::chrono::steady_clock::now() >= deadline;
  };

  long long executed = 0;
  for (const auto& seed : seeds) {  // replay the corpus verbatim first
    run_one(seed);
    ++executed;
  }

  pera::crypto::Drbg rng(0x9e3779b97f4a7c15ULL ^
                         static_cast<std::uint64_t>(seeds.size()));
  while (executed < runs && !out_of_time()) {
    const Bytes& seed = seeds[rng.uniform(seeds.size())];
    run_one(mutate(seed, rng, 1 + static_cast<int>(rng.uniform(8))));
    ++executed;
  }

  std::cout << "standalone fuzz driver: " << executed << " input(s), "
            << seeds.size() - 1 << " corpus seed(s), no crashes\n";
  return 0;
}
