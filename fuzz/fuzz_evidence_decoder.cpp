// Fuzz harness for every wire decoder an attacker can reach over the
// network: the Copland evidence codec and the challenge / evidence /
// nonce message formats. The invariant: arbitrary bytes either decode or
// throw a std::exception — never a crash, hang, or out-of-bounds read.
//
// Built by -DPERA_FUZZ=ON: with libFuzzer under clang, or with the
// standalone replay/mutation driver (standalone_driver.cpp) elsewhere.
// Seed corpus: tests/fixtures/fuzz/*.bin (genuine serialized messages).
#include <cstddef>
#include <cstdint>
#include <exception>

#include "copland/evidence.h"
#include "core/wire.h"
#include "crypto/bytes.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const pera::crypto::BytesView view{data, size};
  try {
    (void)pera::copland::decode(view);
  } catch (const std::exception&) {
  }
  try {
    (void)pera::core::Challenge::deserialize(view);
  } catch (const std::exception&) {
  }
  try {
    (void)pera::core::EvidenceMsg::deserialize(view);
  } catch (const std::exception&) {
  }
  try {
    (void)pera::core::NonceMsg::deserialize(view);
  } catch (const std::exception&) {
  }
  return 0;
}
