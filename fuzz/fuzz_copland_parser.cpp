// Fuzz harness for the Copland policy parser and the tree analyses that
// run on every successfully parsed request. The invariant: arbitrary
// input either parses (and every analysis completes) or throws
// ParseError — never a crash, hang, or out-of-bounds read.
//
// Built by -DPERA_FUZZ=ON: with libFuzzer under clang, or with the
// standalone replay/mutation driver (standalone_driver.cpp) elsewhere.
// Seed corpus: tests/fixtures/verify/*.copland.
#include <cstddef>
#include <cstdint>
#include <string>

#include "copland/analysis.h"
#include "copland/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const pera::copland::Request req = pera::copland::parse_request(text);
    (void)pera::copland::check_well_formed(req.body);
    (void)pera::copland::places_of(req.body);
    (void)pera::copland::find_attest_sites(req.body, req.relying_party,
                                           req.params);
  } catch (const pera::copland::ParseError&) {
    // Malformed input must be rejected with exactly this exception.
  }
  return 0;
}
