// Fuzz harness for the socket framing layer and the handshake message
// decoders — the first bytes an unauthenticated network peer controls.
// Invariants:
//   * FrameDecoder never crashes, hangs, or reads out of bounds; it
//     either emits frames or poisons the stream.
//   * Splitting the same bytes at any point yields the same frame
//     sequence and the same poisoned/clean outcome (torn-read
//     invariance, checked differentially on every input).
//   * Quote / Hello / HelloAck / ChallengeFrame deserializers decode or
//     throw std::exception — nothing else.
//
// Built by -DPERA_FUZZ=ON: libFuzzer under clang, the standalone
// replay/mutation driver elsewhere. Seed corpus:
// tests/fixtures/fuzz/net_*.bin (genuine framed handshake bytes).
#include <cstddef>
#include <cstdint>
#include <exception>
#include <vector>

#include "crypto/bytes.h"
#include "net/frame.h"
#include "net/wire.h"

namespace {

struct Decoded {
  std::vector<pera::net::Frame> frames;
  bool poisoned = false;
};

Decoded drive(const std::uint8_t* data, std::size_t size, std::size_t split) {
  pera::net::FrameDecoder dec;
  Decoded out;
  (void)dec.feed(pera::crypto::BytesView{data, split});
  (void)dec.feed(pera::crypto::BytesView{data + split, size - split});
  while (auto f = dec.next()) out.frames.push_back(std::move(*f));
  out.poisoned = dec.error();
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Whole-stream decode, then the same bytes split at a data-derived
  // point: identical frames, identical poisoning.
  const Decoded whole = drive(data, size, size);
  if (size > 1) {
    const std::size_t split = 1 + data[0] % (size - 1);
    const Decoded torn = drive(data, size, split);
    if (torn.poisoned != whole.poisoned ||
        torn.frames.size() != whole.frames.size()) {
      __builtin_trap();
    }
    for (std::size_t i = 0; i < whole.frames.size(); ++i) {
      if (torn.frames[i].type != whole.frames[i].type ||
          torn.frames[i].payload != whole.frames[i].payload) {
        __builtin_trap();
      }
    }
  }

  // Frame payloads feed the message decoders on a live connection; fuzz
  // the decoders both on raw input and on every decoded payload.
  const auto poke = [](pera::crypto::BytesView bytes) {
    try {
      (void)pera::net::Quote::deserialize(bytes);
    } catch (const std::exception&) {
    }
    try {
      (void)pera::net::HelloMsg::deserialize(bytes);
    } catch (const std::exception&) {
    }
    try {
      (void)pera::net::HelloAckMsg::deserialize(bytes);
    } catch (const std::exception&) {
    }
    try {
      (void)pera::net::ChallengeFrame::deserialize(bytes);
    } catch (const std::exception&) {
    }
  };
  poke(pera::crypto::BytesView{data, size});
  for (const pera::net::Frame& f : whole.frames) {
    poke(pera::crypto::BytesView{f.payload.data(), f.payload.size()});
  }
  return 0;
}
