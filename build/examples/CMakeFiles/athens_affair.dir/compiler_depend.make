# Empty compiler generated dependencies file for athens_affair.
# This may be replaced when dependencies are built.
