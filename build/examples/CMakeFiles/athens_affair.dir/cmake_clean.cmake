file(REMOVE_RECURSE
  "CMakeFiles/athens_affair.dir/athens_affair.cpp.o"
  "CMakeFiles/athens_affair.dir/athens_affair.cpp.o.d"
  "athens_affair"
  "athens_affair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athens_affair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
