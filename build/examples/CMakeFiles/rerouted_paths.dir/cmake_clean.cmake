file(REMOVE_RECURSE
  "CMakeFiles/rerouted_paths.dir/rerouted_paths.cpp.o"
  "CMakeFiles/rerouted_paths.dir/rerouted_paths.cpp.o.d"
  "rerouted_paths"
  "rerouted_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rerouted_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
