
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/rerouted_paths.cpp" "examples/CMakeFiles/rerouted_paths.dir/rerouted_paths.cpp.o" "gcc" "examples/CMakeFiles/rerouted_paths.dir/rerouted_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adversary/CMakeFiles/pera_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pera_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pera/CMakeFiles/pera_pera.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/pera_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/nac/CMakeFiles/pera_nac.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/pera_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/pera_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/netkat/CMakeFiles/pera_netkat.dir/DependInfo.cmake"
  "/root/repo/build/src/copland/CMakeFiles/pera_copland.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pera_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
