# Empty dependencies file for rerouted_paths.
# This may be replaced when dependencies are built.
