file(REMOVE_RECURSE
  "CMakeFiles/bank_attestation.dir/bank_attestation.cpp.o"
  "CMakeFiles/bank_attestation.dir/bank_attestation.cpp.o.d"
  "bank_attestation"
  "bank_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
