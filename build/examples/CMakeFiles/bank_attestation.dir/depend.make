# Empty dependencies file for bank_attestation.
# This may be replaced when dependencies are built.
