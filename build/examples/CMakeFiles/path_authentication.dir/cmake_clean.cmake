file(REMOVE_RECURSE
  "CMakeFiles/path_authentication.dir/path_authentication.cpp.o"
  "CMakeFiles/path_authentication.dir/path_authentication.cpp.o.d"
  "path_authentication"
  "path_authentication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_authentication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
