# Empty dependencies file for path_authentication.
# This may be replaced when dependencies are built.
