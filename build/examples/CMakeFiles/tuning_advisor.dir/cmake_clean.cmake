file(REMOVE_RECURSE
  "CMakeFiles/tuning_advisor.dir/tuning_advisor.cpp.o"
  "CMakeFiles/tuning_advisor.dir/tuning_advisor.cpp.o.d"
  "tuning_advisor"
  "tuning_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
