# Empty compiler generated dependencies file for bench_fig1_principals.
# This may be replaced when dependencies are built.
