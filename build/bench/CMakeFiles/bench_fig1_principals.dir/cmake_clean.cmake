file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_principals.dir/bench_fig1_principals.cpp.o"
  "CMakeFiles/bench_fig1_principals.dir/bench_fig1_principals.cpp.o.d"
  "bench_fig1_principals"
  "bench_fig1_principals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_principals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
