file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_pera.dir/bench_fig2_pera.cpp.o"
  "CMakeFiles/bench_fig2_pera.dir/bench_fig2_pera.cpp.o.d"
  "bench_fig2_pera"
  "bench_fig2_pera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_pera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
