# Empty dependencies file for bench_fig2_pera.
# This may be replaced when dependencies are built.
