file(REMOVE_RECURSE
  "libpera_copland.a"
)
