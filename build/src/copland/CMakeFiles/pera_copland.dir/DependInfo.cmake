
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/copland/analysis.cpp" "src/copland/CMakeFiles/pera_copland.dir/analysis.cpp.o" "gcc" "src/copland/CMakeFiles/pera_copland.dir/analysis.cpp.o.d"
  "/root/repo/src/copland/ast.cpp" "src/copland/CMakeFiles/pera_copland.dir/ast.cpp.o" "gcc" "src/copland/CMakeFiles/pera_copland.dir/ast.cpp.o.d"
  "/root/repo/src/copland/evidence.cpp" "src/copland/CMakeFiles/pera_copland.dir/evidence.cpp.o" "gcc" "src/copland/CMakeFiles/pera_copland.dir/evidence.cpp.o.d"
  "/root/repo/src/copland/lexer.cpp" "src/copland/CMakeFiles/pera_copland.dir/lexer.cpp.o" "gcc" "src/copland/CMakeFiles/pera_copland.dir/lexer.cpp.o.d"
  "/root/repo/src/copland/parser.cpp" "src/copland/CMakeFiles/pera_copland.dir/parser.cpp.o" "gcc" "src/copland/CMakeFiles/pera_copland.dir/parser.cpp.o.d"
  "/root/repo/src/copland/pretty.cpp" "src/copland/CMakeFiles/pera_copland.dir/pretty.cpp.o" "gcc" "src/copland/CMakeFiles/pera_copland.dir/pretty.cpp.o.d"
  "/root/repo/src/copland/semantics.cpp" "src/copland/CMakeFiles/pera_copland.dir/semantics.cpp.o" "gcc" "src/copland/CMakeFiles/pera_copland.dir/semantics.cpp.o.d"
  "/root/repo/src/copland/testbed.cpp" "src/copland/CMakeFiles/pera_copland.dir/testbed.cpp.o" "gcc" "src/copland/CMakeFiles/pera_copland.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/pera_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
