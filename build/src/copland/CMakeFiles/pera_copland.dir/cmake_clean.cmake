file(REMOVE_RECURSE
  "CMakeFiles/pera_copland.dir/analysis.cpp.o"
  "CMakeFiles/pera_copland.dir/analysis.cpp.o.d"
  "CMakeFiles/pera_copland.dir/ast.cpp.o"
  "CMakeFiles/pera_copland.dir/ast.cpp.o.d"
  "CMakeFiles/pera_copland.dir/evidence.cpp.o"
  "CMakeFiles/pera_copland.dir/evidence.cpp.o.d"
  "CMakeFiles/pera_copland.dir/lexer.cpp.o"
  "CMakeFiles/pera_copland.dir/lexer.cpp.o.d"
  "CMakeFiles/pera_copland.dir/parser.cpp.o"
  "CMakeFiles/pera_copland.dir/parser.cpp.o.d"
  "CMakeFiles/pera_copland.dir/pretty.cpp.o"
  "CMakeFiles/pera_copland.dir/pretty.cpp.o.d"
  "CMakeFiles/pera_copland.dir/semantics.cpp.o"
  "CMakeFiles/pera_copland.dir/semantics.cpp.o.d"
  "CMakeFiles/pera_copland.dir/testbed.cpp.o"
  "CMakeFiles/pera_copland.dir/testbed.cpp.o.d"
  "libpera_copland.a"
  "libpera_copland.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pera_copland.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
