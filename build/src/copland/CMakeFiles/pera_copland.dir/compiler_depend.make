# Empty compiler generated dependencies file for pera_copland.
# This may be replaced when dependencies are built.
