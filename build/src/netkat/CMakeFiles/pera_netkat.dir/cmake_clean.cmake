file(REMOVE_RECURSE
  "CMakeFiles/pera_netkat.dir/eval.cpp.o"
  "CMakeFiles/pera_netkat.dir/eval.cpp.o.d"
  "CMakeFiles/pera_netkat.dir/packet.cpp.o"
  "CMakeFiles/pera_netkat.dir/packet.cpp.o.d"
  "CMakeFiles/pera_netkat.dir/parser.cpp.o"
  "CMakeFiles/pera_netkat.dir/parser.cpp.o.d"
  "CMakeFiles/pera_netkat.dir/policy.cpp.o"
  "CMakeFiles/pera_netkat.dir/policy.cpp.o.d"
  "CMakeFiles/pera_netkat.dir/topology.cpp.o"
  "CMakeFiles/pera_netkat.dir/topology.cpp.o.d"
  "libpera_netkat.a"
  "libpera_netkat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pera_netkat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
