
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netkat/eval.cpp" "src/netkat/CMakeFiles/pera_netkat.dir/eval.cpp.o" "gcc" "src/netkat/CMakeFiles/pera_netkat.dir/eval.cpp.o.d"
  "/root/repo/src/netkat/packet.cpp" "src/netkat/CMakeFiles/pera_netkat.dir/packet.cpp.o" "gcc" "src/netkat/CMakeFiles/pera_netkat.dir/packet.cpp.o.d"
  "/root/repo/src/netkat/parser.cpp" "src/netkat/CMakeFiles/pera_netkat.dir/parser.cpp.o" "gcc" "src/netkat/CMakeFiles/pera_netkat.dir/parser.cpp.o.d"
  "/root/repo/src/netkat/policy.cpp" "src/netkat/CMakeFiles/pera_netkat.dir/policy.cpp.o" "gcc" "src/netkat/CMakeFiles/pera_netkat.dir/policy.cpp.o.d"
  "/root/repo/src/netkat/topology.cpp" "src/netkat/CMakeFiles/pera_netkat.dir/topology.cpp.o" "gcc" "src/netkat/CMakeFiles/pera_netkat.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
