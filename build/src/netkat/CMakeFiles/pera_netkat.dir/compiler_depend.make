# Empty compiler generated dependencies file for pera_netkat.
# This may be replaced when dependencies are built.
