file(REMOVE_RECURSE
  "libpera_netkat.a"
)
