file(REMOVE_RECURSE
  "CMakeFiles/pera_core.dir/deployment.cpp.o"
  "CMakeFiles/pera_core.dir/deployment.cpp.o.d"
  "CMakeFiles/pera_core.dir/netkat_bridge.cpp.o"
  "CMakeFiles/pera_core.dir/netkat_bridge.cpp.o.d"
  "CMakeFiles/pera_core.dir/nodes.cpp.o"
  "CMakeFiles/pera_core.dir/nodes.cpp.o.d"
  "CMakeFiles/pera_core.dir/path_verifier.cpp.o"
  "CMakeFiles/pera_core.dir/path_verifier.cpp.o.d"
  "CMakeFiles/pera_core.dir/reachability.cpp.o"
  "CMakeFiles/pera_core.dir/reachability.cpp.o.d"
  "CMakeFiles/pera_core.dir/wire.cpp.o"
  "CMakeFiles/pera_core.dir/wire.cpp.o.d"
  "libpera_core.a"
  "libpera_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pera_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
