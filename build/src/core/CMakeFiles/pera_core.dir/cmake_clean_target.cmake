file(REMOVE_RECURSE
  "libpera_core.a"
)
