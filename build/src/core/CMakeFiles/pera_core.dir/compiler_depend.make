# Empty compiler generated dependencies file for pera_core.
# This may be replaced when dependencies are built.
