file(REMOVE_RECURSE
  "libpera_crypto.a"
)
