# Empty dependencies file for pera_crypto.
# This may be replaced when dependencies are built.
