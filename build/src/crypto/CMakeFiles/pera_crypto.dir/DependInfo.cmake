
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bytes.cpp" "src/crypto/CMakeFiles/pera_crypto.dir/bytes.cpp.o" "gcc" "src/crypto/CMakeFiles/pera_crypto.dir/bytes.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/crypto/CMakeFiles/pera_crypto.dir/drbg.cpp.o" "gcc" "src/crypto/CMakeFiles/pera_crypto.dir/drbg.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/pera_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/pera_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/keystore.cpp" "src/crypto/CMakeFiles/pera_crypto.dir/keystore.cpp.o" "gcc" "src/crypto/CMakeFiles/pera_crypto.dir/keystore.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/crypto/CMakeFiles/pera_crypto.dir/merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/pera_crypto.dir/merkle.cpp.o.d"
  "/root/repo/src/crypto/nonce.cpp" "src/crypto/CMakeFiles/pera_crypto.dir/nonce.cpp.o" "gcc" "src/crypto/CMakeFiles/pera_crypto.dir/nonce.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/pera_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/pera_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/signer.cpp" "src/crypto/CMakeFiles/pera_crypto.dir/signer.cpp.o" "gcc" "src/crypto/CMakeFiles/pera_crypto.dir/signer.cpp.o.d"
  "/root/repo/src/crypto/wots.cpp" "src/crypto/CMakeFiles/pera_crypto.dir/wots.cpp.o" "gcc" "src/crypto/CMakeFiles/pera_crypto.dir/wots.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
