file(REMOVE_RECURSE
  "CMakeFiles/pera_crypto.dir/bytes.cpp.o"
  "CMakeFiles/pera_crypto.dir/bytes.cpp.o.d"
  "CMakeFiles/pera_crypto.dir/drbg.cpp.o"
  "CMakeFiles/pera_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/pera_crypto.dir/hmac.cpp.o"
  "CMakeFiles/pera_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/pera_crypto.dir/keystore.cpp.o"
  "CMakeFiles/pera_crypto.dir/keystore.cpp.o.d"
  "CMakeFiles/pera_crypto.dir/merkle.cpp.o"
  "CMakeFiles/pera_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/pera_crypto.dir/nonce.cpp.o"
  "CMakeFiles/pera_crypto.dir/nonce.cpp.o.d"
  "CMakeFiles/pera_crypto.dir/sha256.cpp.o"
  "CMakeFiles/pera_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/pera_crypto.dir/signer.cpp.o"
  "CMakeFiles/pera_crypto.dir/signer.cpp.o.d"
  "CMakeFiles/pera_crypto.dir/wots.cpp.o"
  "CMakeFiles/pera_crypto.dir/wots.cpp.o.d"
  "libpera_crypto.a"
  "libpera_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pera_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
