# Empty dependencies file for pera_ra.
# This may be replaced when dependencies are built.
