file(REMOVE_RECURSE
  "CMakeFiles/pera_ra.dir/appraisal_policy.cpp.o"
  "CMakeFiles/pera_ra.dir/appraisal_policy.cpp.o.d"
  "CMakeFiles/pera_ra.dir/certificate.cpp.o"
  "CMakeFiles/pera_ra.dir/certificate.cpp.o.d"
  "CMakeFiles/pera_ra.dir/endorsement.cpp.o"
  "CMakeFiles/pera_ra.dir/endorsement.cpp.o.d"
  "CMakeFiles/pera_ra.dir/redaction.cpp.o"
  "CMakeFiles/pera_ra.dir/redaction.cpp.o.d"
  "CMakeFiles/pera_ra.dir/roles.cpp.o"
  "CMakeFiles/pera_ra.dir/roles.cpp.o.d"
  "libpera_ra.a"
  "libpera_ra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pera_ra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
