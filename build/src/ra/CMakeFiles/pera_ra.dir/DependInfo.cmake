
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ra/appraisal_policy.cpp" "src/ra/CMakeFiles/pera_ra.dir/appraisal_policy.cpp.o" "gcc" "src/ra/CMakeFiles/pera_ra.dir/appraisal_policy.cpp.o.d"
  "/root/repo/src/ra/certificate.cpp" "src/ra/CMakeFiles/pera_ra.dir/certificate.cpp.o" "gcc" "src/ra/CMakeFiles/pera_ra.dir/certificate.cpp.o.d"
  "/root/repo/src/ra/endorsement.cpp" "src/ra/CMakeFiles/pera_ra.dir/endorsement.cpp.o" "gcc" "src/ra/CMakeFiles/pera_ra.dir/endorsement.cpp.o.d"
  "/root/repo/src/ra/redaction.cpp" "src/ra/CMakeFiles/pera_ra.dir/redaction.cpp.o" "gcc" "src/ra/CMakeFiles/pera_ra.dir/redaction.cpp.o.d"
  "/root/repo/src/ra/roles.cpp" "src/ra/CMakeFiles/pera_ra.dir/roles.cpp.o" "gcc" "src/ra/CMakeFiles/pera_ra.dir/roles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/copland/CMakeFiles/pera_copland.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pera_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
