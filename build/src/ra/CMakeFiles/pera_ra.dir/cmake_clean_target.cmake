file(REMOVE_RECURSE
  "libpera_ra.a"
)
