# Empty compiler generated dependencies file for pera_netsim.
# This may be replaced when dependencies are built.
