file(REMOVE_RECURSE
  "CMakeFiles/pera_netsim.dir/event.cpp.o"
  "CMakeFiles/pera_netsim.dir/event.cpp.o.d"
  "CMakeFiles/pera_netsim.dir/network.cpp.o"
  "CMakeFiles/pera_netsim.dir/network.cpp.o.d"
  "CMakeFiles/pera_netsim.dir/topology.cpp.o"
  "CMakeFiles/pera_netsim.dir/topology.cpp.o.d"
  "libpera_netsim.a"
  "libpera_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pera_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
