file(REMOVE_RECURSE
  "libpera_netsim.a"
)
