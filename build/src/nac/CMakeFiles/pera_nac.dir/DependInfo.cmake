
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nac/binder.cpp" "src/nac/CMakeFiles/pera_nac.dir/binder.cpp.o" "gcc" "src/nac/CMakeFiles/pera_nac.dir/binder.cpp.o.d"
  "/root/repo/src/nac/compiler.cpp" "src/nac/CMakeFiles/pera_nac.dir/compiler.cpp.o" "gcc" "src/nac/CMakeFiles/pera_nac.dir/compiler.cpp.o.d"
  "/root/repo/src/nac/detail.cpp" "src/nac/CMakeFiles/pera_nac.dir/detail.cpp.o" "gcc" "src/nac/CMakeFiles/pera_nac.dir/detail.cpp.o.d"
  "/root/repo/src/nac/header.cpp" "src/nac/CMakeFiles/pera_nac.dir/header.cpp.o" "gcc" "src/nac/CMakeFiles/pera_nac.dir/header.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/copland/CMakeFiles/pera_copland.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pera_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
