file(REMOVE_RECURSE
  "libpera_nac.a"
)
