file(REMOVE_RECURSE
  "CMakeFiles/pera_nac.dir/binder.cpp.o"
  "CMakeFiles/pera_nac.dir/binder.cpp.o.d"
  "CMakeFiles/pera_nac.dir/compiler.cpp.o"
  "CMakeFiles/pera_nac.dir/compiler.cpp.o.d"
  "CMakeFiles/pera_nac.dir/detail.cpp.o"
  "CMakeFiles/pera_nac.dir/detail.cpp.o.d"
  "CMakeFiles/pera_nac.dir/header.cpp.o"
  "CMakeFiles/pera_nac.dir/header.cpp.o.d"
  "libpera_nac.a"
  "libpera_nac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pera_nac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
