# Empty dependencies file for pera_nac.
# This may be replaced when dependencies are built.
