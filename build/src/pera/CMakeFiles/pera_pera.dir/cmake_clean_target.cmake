file(REMOVE_RECURSE
  "libpera_pera.a"
)
