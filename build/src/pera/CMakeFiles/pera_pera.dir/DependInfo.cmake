
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pera/batcher.cpp" "src/pera/CMakeFiles/pera_pera.dir/batcher.cpp.o" "gcc" "src/pera/CMakeFiles/pera_pera.dir/batcher.cpp.o.d"
  "/root/repo/src/pera/cache.cpp" "src/pera/CMakeFiles/pera_pera.dir/cache.cpp.o" "gcc" "src/pera/CMakeFiles/pera_pera.dir/cache.cpp.o.d"
  "/root/repo/src/pera/engine.cpp" "src/pera/CMakeFiles/pera_pera.dir/engine.cpp.o" "gcc" "src/pera/CMakeFiles/pera_pera.dir/engine.cpp.o.d"
  "/root/repo/src/pera/measurement.cpp" "src/pera/CMakeFiles/pera_pera.dir/measurement.cpp.o" "gcc" "src/pera/CMakeFiles/pera_pera.dir/measurement.cpp.o.d"
  "/root/repo/src/pera/pera_switch.cpp" "src/pera/CMakeFiles/pera_pera.dir/pera_switch.cpp.o" "gcc" "src/pera/CMakeFiles/pera_pera.dir/pera_switch.cpp.o.d"
  "/root/repo/src/pera/tuning.cpp" "src/pera/CMakeFiles/pera_pera.dir/tuning.cpp.o" "gcc" "src/pera/CMakeFiles/pera_pera.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nac/CMakeFiles/pera_nac.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/pera_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/pera_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/copland/CMakeFiles/pera_copland.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pera_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
