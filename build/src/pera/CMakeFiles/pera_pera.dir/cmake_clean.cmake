file(REMOVE_RECURSE
  "CMakeFiles/pera_pera.dir/batcher.cpp.o"
  "CMakeFiles/pera_pera.dir/batcher.cpp.o.d"
  "CMakeFiles/pera_pera.dir/cache.cpp.o"
  "CMakeFiles/pera_pera.dir/cache.cpp.o.d"
  "CMakeFiles/pera_pera.dir/engine.cpp.o"
  "CMakeFiles/pera_pera.dir/engine.cpp.o.d"
  "CMakeFiles/pera_pera.dir/measurement.cpp.o"
  "CMakeFiles/pera_pera.dir/measurement.cpp.o.d"
  "CMakeFiles/pera_pera.dir/pera_switch.cpp.o"
  "CMakeFiles/pera_pera.dir/pera_switch.cpp.o.d"
  "CMakeFiles/pera_pera.dir/tuning.cpp.o"
  "CMakeFiles/pera_pera.dir/tuning.cpp.o.d"
  "libpera_pera.a"
  "libpera_pera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pera_pera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
