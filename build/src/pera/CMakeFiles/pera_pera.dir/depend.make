# Empty dependencies file for pera_pera.
# This may be replaced when dependencies are built.
