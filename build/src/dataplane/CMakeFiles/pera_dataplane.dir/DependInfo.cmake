
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/action.cpp" "src/dataplane/CMakeFiles/pera_dataplane.dir/action.cpp.o" "gcc" "src/dataplane/CMakeFiles/pera_dataplane.dir/action.cpp.o.d"
  "/root/repo/src/dataplane/builder.cpp" "src/dataplane/CMakeFiles/pera_dataplane.dir/builder.cpp.o" "gcc" "src/dataplane/CMakeFiles/pera_dataplane.dir/builder.cpp.o.d"
  "/root/repo/src/dataplane/field.cpp" "src/dataplane/CMakeFiles/pera_dataplane.dir/field.cpp.o" "gcc" "src/dataplane/CMakeFiles/pera_dataplane.dir/field.cpp.o.d"
  "/root/repo/src/dataplane/p4mini.cpp" "src/dataplane/CMakeFiles/pera_dataplane.dir/p4mini.cpp.o" "gcc" "src/dataplane/CMakeFiles/pera_dataplane.dir/p4mini.cpp.o.d"
  "/root/repo/src/dataplane/packet.cpp" "src/dataplane/CMakeFiles/pera_dataplane.dir/packet.cpp.o" "gcc" "src/dataplane/CMakeFiles/pera_dataplane.dir/packet.cpp.o.d"
  "/root/repo/src/dataplane/parser.cpp" "src/dataplane/CMakeFiles/pera_dataplane.dir/parser.cpp.o" "gcc" "src/dataplane/CMakeFiles/pera_dataplane.dir/parser.cpp.o.d"
  "/root/repo/src/dataplane/program.cpp" "src/dataplane/CMakeFiles/pera_dataplane.dir/program.cpp.o" "gcc" "src/dataplane/CMakeFiles/pera_dataplane.dir/program.cpp.o.d"
  "/root/repo/src/dataplane/registers.cpp" "src/dataplane/CMakeFiles/pera_dataplane.dir/registers.cpp.o" "gcc" "src/dataplane/CMakeFiles/pera_dataplane.dir/registers.cpp.o.d"
  "/root/repo/src/dataplane/table.cpp" "src/dataplane/CMakeFiles/pera_dataplane.dir/table.cpp.o" "gcc" "src/dataplane/CMakeFiles/pera_dataplane.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/pera_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
