# Empty compiler generated dependencies file for pera_dataplane.
# This may be replaced when dependencies are built.
