file(REMOVE_RECURSE
  "CMakeFiles/pera_dataplane.dir/action.cpp.o"
  "CMakeFiles/pera_dataplane.dir/action.cpp.o.d"
  "CMakeFiles/pera_dataplane.dir/builder.cpp.o"
  "CMakeFiles/pera_dataplane.dir/builder.cpp.o.d"
  "CMakeFiles/pera_dataplane.dir/field.cpp.o"
  "CMakeFiles/pera_dataplane.dir/field.cpp.o.d"
  "CMakeFiles/pera_dataplane.dir/p4mini.cpp.o"
  "CMakeFiles/pera_dataplane.dir/p4mini.cpp.o.d"
  "CMakeFiles/pera_dataplane.dir/packet.cpp.o"
  "CMakeFiles/pera_dataplane.dir/packet.cpp.o.d"
  "CMakeFiles/pera_dataplane.dir/parser.cpp.o"
  "CMakeFiles/pera_dataplane.dir/parser.cpp.o.d"
  "CMakeFiles/pera_dataplane.dir/program.cpp.o"
  "CMakeFiles/pera_dataplane.dir/program.cpp.o.d"
  "CMakeFiles/pera_dataplane.dir/registers.cpp.o"
  "CMakeFiles/pera_dataplane.dir/registers.cpp.o.d"
  "CMakeFiles/pera_dataplane.dir/table.cpp.o"
  "CMakeFiles/pera_dataplane.dir/table.cpp.o.d"
  "libpera_dataplane.a"
  "libpera_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pera_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
