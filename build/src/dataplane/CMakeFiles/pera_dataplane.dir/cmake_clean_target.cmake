file(REMOVE_RECURSE
  "libpera_dataplane.a"
)
