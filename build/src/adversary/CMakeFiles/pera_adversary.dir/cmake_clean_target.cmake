file(REMOVE_RECURSE
  "libpera_adversary.a"
)
