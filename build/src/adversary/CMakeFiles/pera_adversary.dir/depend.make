# Empty dependencies file for pera_adversary.
# This may be replaced when dependencies are built.
