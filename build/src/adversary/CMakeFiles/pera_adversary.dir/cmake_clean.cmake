file(REMOVE_RECURSE
  "CMakeFiles/pera_adversary.dir/attacks.cpp.o"
  "CMakeFiles/pera_adversary.dir/attacks.cpp.o.d"
  "libpera_adversary.a"
  "libpera_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pera_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
