# Empty compiler generated dependencies file for pera_tests.
# This may be replaced when dependencies are built.
