
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_batched_flow.cpp" "tests/CMakeFiles/pera_tests.dir/test_batched_flow.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_batched_flow.cpp.o.d"
  "/root/repo/tests/test_confinement.cpp" "tests/CMakeFiles/pera_tests.dir/test_confinement.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_confinement.cpp.o.d"
  "/root/repo/tests/test_copland_analysis.cpp" "tests/CMakeFiles/pera_tests.dir/test_copland_analysis.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_copland_analysis.cpp.o.d"
  "/root/repo/tests/test_copland_lang.cpp" "tests/CMakeFiles/pera_tests.dir/test_copland_lang.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_copland_lang.cpp.o.d"
  "/root/repo/tests/test_copland_semantics.cpp" "tests/CMakeFiles/pera_tests.dir/test_copland_semantics.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_copland_semantics.cpp.o.d"
  "/root/repo/tests/test_crypto.cpp" "tests/CMakeFiles/pera_tests.dir/test_crypto.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_crypto.cpp.o.d"
  "/root/repo/tests/test_datacenter.cpp" "tests/CMakeFiles/pera_tests.dir/test_datacenter.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_datacenter.cpp.o.d"
  "/root/repo/tests/test_dataplane.cpp" "tests/CMakeFiles/pera_tests.dir/test_dataplane.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_dataplane.cpp.o.d"
  "/root/repo/tests/test_endorsement.cpp" "tests/CMakeFiles/pera_tests.dir/test_endorsement.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_endorsement.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/pera_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/pera_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/pera_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_lossy.cpp" "tests/CMakeFiles/pera_tests.dir/test_lossy.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_lossy.cpp.o.d"
  "/root/repo/tests/test_nac.cpp" "tests/CMakeFiles/pera_tests.dir/test_nac.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_nac.cpp.o.d"
  "/root/repo/tests/test_netkat.cpp" "tests/CMakeFiles/pera_tests.dir/test_netkat.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_netkat.cpp.o.d"
  "/root/repo/tests/test_netkat_parser.cpp" "tests/CMakeFiles/pera_tests.dir/test_netkat_parser.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_netkat_parser.cpp.o.d"
  "/root/repo/tests/test_netsim.cpp" "tests/CMakeFiles/pera_tests.dir/test_netsim.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_netsim.cpp.o.d"
  "/root/repo/tests/test_p4mini.cpp" "tests/CMakeFiles/pera_tests.dir/test_p4mini.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_p4mini.cpp.o.d"
  "/root/repo/tests/test_pera.cpp" "tests/CMakeFiles/pera_tests.dir/test_pera.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_pera.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/pera_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_ra.cpp" "tests/CMakeFiles/pera_tests.dir/test_ra.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_ra.cpp.o.d"
  "/root/repo/tests/test_tuning.cpp" "tests/CMakeFiles/pera_tests.dir/test_tuning.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_tuning.cpp.o.d"
  "/root/repo/tests/test_visibility.cpp" "tests/CMakeFiles/pera_tests.dir/test_visibility.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_visibility.cpp.o.d"
  "/root/repo/tests/test_wellformed.cpp" "tests/CMakeFiles/pera_tests.dir/test_wellformed.cpp.o" "gcc" "tests/CMakeFiles/pera_tests.dir/test_wellformed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adversary/CMakeFiles/pera_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pera_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pera/CMakeFiles/pera_pera.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/pera_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/nac/CMakeFiles/pera_nac.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/pera_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/pera_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/netkat/CMakeFiles/pera_netkat.dir/DependInfo.cmake"
  "/root/repo/build/src/copland/CMakeFiles/pera_copland.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pera_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
