#!/usr/bin/env bash
# Full verification pipeline: configure, build (warnings are errors in
# spirit — the tree builds clean under -Wall -Wextra), run every test,
# smoke-run every benchmark and every example.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  echo "== $b (smoke) =="
  "$b" --benchmark_min_time=0.01 > /dev/null
done

for ex in build/examples/*; do
  [ -x "$ex" ] && [ -f "$ex" ] || continue
  echo "== $ex =="
  "$ex" > /dev/null
done

echo "ALL CHECKS PASSED"
