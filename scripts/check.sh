#!/usr/bin/env bash
# Full verification pipeline: configure with warnings-as-errors
# (-Wall -Wextra -Werror via PERA_WERROR), build, run every test,
# smoke-run every benchmark and every example, and check the
# observability JSON export end-to-end.
#
# One command verifies the tree:   scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DPERA_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  echo "== $b (smoke) =="
  "$b" --benchmark_min_time=0.01 > /dev/null
done

# The Fig. 4 design-space bench must export a usable metrics dump
# (see docs/OBSERVABILITY.md).
echo "== observability export (smoke) =="
build/bench/bench_fig4_design_space --benchmark_min_time=0.01 \
  --metrics-json=build/fig4.metrics.json > /dev/null
grep -q '"pera.cache.hit"' build/fig4.metrics.json
grep -q '"pera.sign.sim_ns"' build/fig4.metrics.json
grep -q '"pera.wire.bytes.Program"' build/fig4.metrics.json

for ex in build/examples/*; do
  [ -x "$ex" ] && [ -f "$ex" ] || continue
  echo "== $ex =="
  "$ex" > /dev/null
done

echo "ALL CHECKS PASSED"
