#!/usr/bin/env bash
# Full verification pipeline: configure with warnings-as-errors
# (-Wall -Wextra -Werror via PERA_WERROR), build, run every test,
# smoke-run every benchmark and every example, and check the
# observability JSON export end-to-end.
#
# One command verifies the tree:   scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DPERA_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  # bench_throughput writes BENCH_throughput.json to the cwd; it gets a
  # dedicated smoke below so the committed baseline isn't clobbered.
  [ "$(basename "$b")" = "bench_throughput" ] && continue
  echo "== $b (smoke) =="
  "$b" --benchmark_min_time=0.01 > /dev/null
done

echo "== sharded pipeline bench (smoke) =="
build/bench/bench_throughput --shards=2 --packets=512 \
  --json=build/BENCH_throughput.smoke.json \
  --metrics-json=build/throughput.metrics.json \
  --benchmark_min_time=0.01 > /dev/null
grep -q '"pipeline.shard.packets.0"' build/throughput.metrics.json
grep -q '"sim_packets_per_sec"' build/BENCH_throughput.smoke.json

# The Fig. 4 design-space bench must export a usable metrics dump
# (see docs/OBSERVABILITY.md).
echo "== observability export (smoke) =="
build/bench/bench_fig4_design_space --benchmark_min_time=0.01 \
  --metrics-json=build/fig4.metrics.json > /dev/null
grep -q '"pera.cache.hit"' build/fig4.metrics.json
grep -q '"pera.sign.sim_ns"' build/fig4.metrics.json
grep -q '"pera.wire.bytes.Program"' build/fig4.metrics.json

for ex in build/examples/*; do
  [ -x "$ex" ] && [ -f "$ex" ] || continue
  echo "== $ex =="
  "$ex" > /dev/null
done

# ThreadSanitizer pass over the concurrent pipeline: the SPSC rings, the
# seqlock epoch block and the dispatcher/worker threads are the only
# cross-thread code in the tree, so only those tests (plus a threaded
# bench smoke) need the instrumented build.
echo "== ThreadSanitizer (pipeline) =="
cmake -B build-tsan -G Ninja -DPERA_WERROR=ON -DPERA_SANITIZE=thread
cmake --build build-tsan --target pera_tests bench_throughput
./build-tsan/tests/pera_tests \
  --gtest_filter='SpscQueue*:FlowHash*:EpochBlock*:Pipeline*'
./build-tsan/bench/bench_throughput --shards=2 --packets=256 \
  --json=build-tsan/BENCH_throughput.smoke.json \
  --metrics-json=build-tsan/throughput.metrics.json \
  --benchmark_min_time=0.01 > /dev/null

echo "ALL CHECKS PASSED"
