#!/usr/bin/env bash
# Full verification pipeline: configure with warnings-as-errors
# (-Wall -Wextra -Werror via PERA_WERROR), build, run every test, run the
# policy verifier over the paper fixtures, smoke-run every benchmark and
# every example, check the observability JSON export end-to-end, then the
# instrumented passes (clang-tidy if available, ASan+UBSan, TSan).
#
# One command verifies the tree:   scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DPERA_WERROR=ON -DPERA_FUZZ=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build
ctest --test-dir build --output-on-failure

# The suite must pass identically with the SHA-256 engine pinned to the
# portable scalar backend — auto dispatch (above) exercises SHA-NI/AVX2
# where the host has them, this run proves the fallback.
echo "== full suite, forced-scalar SHA-256 backend =="
PERA_SHA256_BACKEND=scalar ctest --test-dir build --output-on-failure

echo "== policy verifier fixtures =="
scripts/run_verify_fixtures.sh build

# Fuzz smoke over the attacker-facing input surfaces: under clang these
# are libFuzzer+ASan binaries, under gcc the standalone replay/mutation
# driver — either way the same invocation, bounded to ~30s total.
echo "== fuzz smoke (policy parser + wire decoders) =="
build/fuzz/fuzz_copland_parser -max_total_time=15 -runs=200000 \
  tests/fixtures/verify
build/fuzz/fuzz_evidence_decoder -max_total_time=15 -runs=200000 \
  tests/fixtures/fuzz
build/fuzz/fuzz_frame_codec -max_total_time=15 -runs=200000 \
  tests/fixtures/fuzz
build/fuzz/fuzz_evidence_payload -max_total_time=15 -runs=200000 \
  tests/fixtures/fuzz

for b in build/bench/bench_*; do
  # bench_throughput, bench_crypto, bench_ctrl and bench_state write their
  # committed JSON records to the cwd; each gets a dedicated smoke below so
  # the baselines aren't clobbered.
  [ "$(basename "$b")" = "bench_throughput" ] && continue
  [ "$(basename "$b")" = "bench_crypto" ] && continue
  [ "$(basename "$b")" = "bench_ctrl" ] && continue
  [ "$(basename "$b")" = "bench_state" ] && continue
  [ "$(basename "$b")" = "bench_net" ] && continue
  [ "$(basename "$b")" = "bench_fleet" ] && continue
  echo "== $b (smoke) =="
  "$b" --benchmark_min_time=0.01 > /dev/null
done

# Crypto engine smoke: once with auto dispatch, once forced-scalar, so
# both the SIMD and fallback code paths execute end to end.
echo "== crypto backend bench (smoke, auto) =="
build/bench/bench_crypto --smoke --json=build/BENCH_crypto.smoke.json \
  > /dev/null
grep -q '"wots_signverify_ops"' build/BENCH_crypto.smoke.json
echo "== crypto backend bench (smoke, forced-scalar) =="
PERA_SHA256_BACKEND=scalar build/bench/bench_crypto --smoke \
  --json=build/BENCH_crypto.smoke-scalar.json > /dev/null
grep -q '"auto_backend": "scalar"' build/BENCH_crypto.smoke-scalar.json

# Reduced-config sweep (1 and 4 shards) with the stage profiler on: the
# bit-identity gate runs inside the bench (nonzero exit on violation),
# and the profile JSON must attribute time to every pipeline stage.
echo "== sharded pipeline bench (smoke) =="
build/bench/bench_throughput --shards=1,4 --packets=512 \
  --json=build/BENCH_throughput.smoke.json \
  --profile-json=build/throughput.profile.json \
  --metrics-json=build/throughput.metrics.json \
  --benchmark_min_time=0.01 > /dev/null
grep -q '"pipeline.shard.packets.0"' build/throughput.metrics.json
grep -q '"sim_packets_per_sec"' build/BENCH_throughput.smoke.json
grep -q '"appraised_flows"' build/BENCH_throughput.smoke.json
for stage in dispatch ring_transit shard_work reassembly wots_verify \
             merge idle; do
  grep -q "\"$stage\"" build/throughput.profile.json
done
grep -q '"accounted_share"' build/throughput.profile.json

echo "== control plane bench (smoke) =="
build/bench/bench_ctrl --smoke --json=build/BENCH_ctrl.smoke.json \
  --metrics-json=build/ctrl.metrics.json > /dev/null
grep -q '"detect_ms_mean"' build/BENCH_ctrl.smoke.json
grep -q '"ctrl.quarantine.active"' build/ctrl.metrics.json
grep -q '"ctrl.switches.monitored"' build/ctrl.metrics.json
grep -q '"ctrl.trust.to.Quarantined"' build/ctrl.metrics.json

# Incremental-vs-full digest gates run inside the bench (roots must be
# bit-identical, nonzero exit on mismatch); the greps prove the dirty-leaf
# and dirty-chunk counters actually moved.
echo "== state attestation bench (smoke) =="
build/bench/bench_state --smoke --json=build/BENCH_state.smoke.json \
  --metrics-json=build/state.metrics.json > /dev/null
grep -q '"speedup"' build/BENCH_state.smoke.json
grep -q '"root_match": true' build/BENCH_state.smoke.json
grep -q '"lookup_match": true' build/BENCH_state.smoke.json
grep -q '"dataplane.digest.table.dirty_leaves"' build/state.metrics.json
grep -q '"dataplane.digest.reg.dirty_chunks"' build/state.metrics.json

# Socket-transport gates run inside the bench (≥ all sessions established,
# reactor-shard no-collapse, tampered quote refused); the grep proves the
# committed record has the gate field.
echo "== socket transport bench (smoke) =="
build/bench/bench_net --smoke --json=build/BENCH_net.smoke.json \
  --metrics-json=build/net.metrics.json > /dev/null
grep -q '"bad_quote_rejected": true' build/BENCH_net.smoke.json
grep -q '"net.session.accepted"' build/net.metrics.json

# Real two-process loopback: the appraiser server and a switch attester
# exchange the RA handshake and evidence rounds over TCP; the metrics
# dump must show admitted sessions and appraised rounds.
echo "== socket transport e2e (two processes) =="
rm -f build/pera_net.port
build/tools/pera_net --serve --port-file=build/pera_net.port \
  --exit-after-rounds=3 --duration-ms=30000 \
  --metrics-json=build/pera_net.metrics.json > /dev/null &
NET_SERVE_PID=$!
for _ in $(seq 50); do [ -s build/pera_net.port ] && break; sleep 0.1; done
build/tools/pera_net --switch --port="$(cat build/pera_net.port)" \
  --rounds=3 --mutual > /dev/null
wait "$NET_SERVE_PID"
grep -q '"net.session.accepted":1' build/pera_net.metrics.json
grep -q '"net.server.rounds":3' build/pera_net.metrics.json
build/tools/pera_net --selftest > /dev/null

# Hierarchical appraisal gates run inside the bench (scale, load bound,
# flat-appraisal parity; nonzero exit on violation).
echo "== fleet appraisal bench (smoke) =="
build/bench/bench_fleet --smoke --json=build/BENCH_fleet.smoke.json > /dev/null
grep -q '"gates": "pass"' build/BENCH_fleet.smoke.json
grep -q '"load_ok": true' build/BENCH_fleet.smoke.json

echo "== pera_ctl closed-loop scenario (smoke) =="
build/tools/pera_ctl --seed=42 --loss=0.05 --interval-ms=50 \
  --swap-at-ms=200 --restore-at-ms=1200 --duration-ms=2500 > /dev/null

echo "== pera_fleet hierarchical scenario (smoke) =="
build/tools/pera_fleet --seed=42 --loss=0.01 --switches=24 --fanout=8 \
  --duration-ms=1200 > /dev/null

# The Fig. 4 design-space bench must export a usable metrics dump
# (see docs/OBSERVABILITY.md).
echo "== observability export (smoke) =="
build/bench/bench_fig4_design_space --benchmark_min_time=0.01 \
  --metrics-json=build/fig4.metrics.json > /dev/null
grep -q '"pera.cache.hit"' build/fig4.metrics.json
grep -q '"pera.sign.sim_ns"' build/fig4.metrics.json
grep -q '"pera.wire.bytes.Program"' build/fig4.metrics.json

for ex in build/examples/*; do
  [ -x "$ex" ] && [ -f "$ex" ] || continue
  echo "== $ex =="
  "$ex" > /dev/null
done

# clang-tidy over the library and tool sources (config in .clang-tidy).
# Gated on availability: the local toolchain may be gcc-only, and CI runs
# this stage unconditionally (.github/workflows/ci.yml).
if command -v run-clang-tidy > /dev/null 2>&1; then
  echo "== clang-tidy =="
  run-clang-tidy -p build -quiet \
    "$(pwd)/src/.*" "$(pwd)/tools/.*" "$(pwd)/fuzz/.*"
elif command -v clang-tidy > /dev/null 2>&1; then
  echo "== clang-tidy =="
  find src tools fuzz -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p build --quiet
else
  echo "== clang-tidy: not installed, skipping (CI runs it) =="
fi

# AddressSanitizer + UBSan over the full test suite.
echo "== ASan+UBSan (full suite) =="
cmake -B build-asan -G Ninja -DPERA_WERROR=ON \
  -DPERA_SANITIZE=address,undefined
cmake --build build-asan --target pera_tests
ctest --test-dir build-asan --output-on-failure

# ThreadSanitizer pass over the concurrent code: the SPSC rings, the
# seqlock epoch block and the dispatcher/worker threads, the control-plane
# suites (whose obs publishing rides the same atomic registry), and the
# socket transport — epoll reactors, appraiser hand-off, fleet and
# relying-party backend threads.
echo "== ThreadSanitizer (pipeline + control plane) =="
cmake -B build-tsan -G Ninja -DPERA_WERROR=ON -DPERA_SANITIZE=thread
cmake --build build-tsan --target pera_tests bench_throughput
./build-tsan/tests/pera_tests \
  --gtest_filter='SpscQueue*:FlowHash*:EpochBlock*:Pipeline*:Ctrl*:Trust*:StateAttest*:IncMerkle*:Net*:Fleet*'
# The TSan bench pass covers the full threaded topology: dispatcher +
# shard workers + parallel appraiser workers + profiler slots.
./build-tsan/bench/bench_throughput --shards=1,4 --packets=256 \
  --json=build-tsan/BENCH_throughput.smoke.json \
  --profile-json=build-tsan/throughput.profile.json \
  --metrics-json=build-tsan/throughput.metrics.json \
  --benchmark_min_time=0.01 > /dev/null

echo "ALL CHECKS PASSED"
