#!/usr/bin/env bash
# Drive tools/pera_verify over the policy fixtures in tests/fixtures/verify:
# every paper policy (AP1-AP3, expressions (1)-(4)) must verify, and each
# deliberately broken fixture must be rejected with the expected diagnostic
# code and a non-zero exit.
#
# usage: scripts/run_verify_fixtures.sh [BUILD_DIR]   (default: build)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-build}"
[[ "$BUILD" = /* ]] || BUILD="$ROOT/$BUILD"
VERIFY="$BUILD/tools/pera_verify"
FIXTURES="$ROOT/tests/fixtures/verify"

if [[ ! -x "$VERIFY" ]]; then
  echo "run_verify_fixtures: $VERIFY not built" >&2
  exit 1
fi

fail=0

# accept NAME [extra pera_verify flags...]
accept() {
  local name="$1"; shift
  if "$VERIFY" "$@" "$FIXTURES/$name.copland" > /dev/null; then
    echo "  accept $name: ok"
  else
    echo "  accept $name: FAILED (expected exit 0)"
    "$VERIFY" "$@" "$FIXTURES/$name.copland" || true
    fail=1
  fi
}

# reject NAME CODE [extra pera_verify flags...]
reject() {
  local name="$1" code="$2"; shift 2
  local out
  out="$("$VERIFY" "$@" "$FIXTURES/$name.copland" 2>&1)"
  local rc=$?
  if [[ $rc -ne 0 ]] && grep -q "error\[$code\]" <<< "$out"; then
    echo "  reject $name: ok (error[$code], exit $rc)"
  else
    echo "  reject $name: FAILED (wanted error[$code] and non-zero exit," \
         "got exit $rc)"
    echo "$out"
    fail=1
  fi
}

echo "pera_verify fixture sweep ($FIXTURES)"

accept expr1
accept expr2
accept expr3a --node Switch --node Appraiser:appraiser --link Switch-Appraiser
accept expr3b
accept expr4 --node Switch --node Appraiser:appraiser --link Switch-Appraiser
accept ap1 --bind client=client
accept ap2
accept ap3 --bind p=edge1 --bind q=core1 --bind r=core2 \
  --bind peer1=client --bind peer2=pm_phone

reject broken_v1 V1 --node Switch --node Appraiser:appraiser
reject broken_v2 V2 --guard Ktest=false
reject broken_v3 V3 --ra ''
reject broken_v4 V4
reject broken_v5 V5 --no-key edge1

# Attestation-coverage analyses (V6-V9) against a dataplane program.
accept coverage_ok --program nat --cadence "$FIXTURES/cadence_ok.conf"
accept ap1 --bind client=client --program nat \
  --cadence "$FIXTURES/cadence_ok.conf" --measures X=Program+Tables+State
accept ap2 --program nat --cadence "$FIXTURES/cadence_ok.conf" \
  --measures P=Program+Tables+State
accept ap3 --bind p=edge1 --bind q=core1 --bind r=core2 \
  --bind peer1=client --bind peer2=pm_phone --program nat \
  --cadence "$FIXTURES/cadence_ok.conf" \
  --measures F1=Program+Tables --measures F2=State

reject broken_v6 V6 --program nat
reject broken_v7 V7 --program nat --cadence "$FIXTURES/cadence_slow.conf" \
  --staleness-budget 500ms
reject broken_v8 V8
reject broken_v9 V9 --program "$FIXTURES/broken_v9.p4"

# Diagnostics must render in a canonical order: the JSON for a
# multi-defect run is byte-identical across invocations and matches the
# checked-in golden file.
golden_out="$("$VERIFY" --json --force --program "$FIXTURES/broken_v9.p4" \
  "$FIXTURES/broken_v6.copland")"
if diff -u "$FIXTURES/golden_coverage.json" <(printf '%s\n' "$golden_out"); then
  echo "  golden coverage json: ok"
else
  echo "  golden coverage json: FAILED (output drifted from golden file)"
  fail=1
fi

# --force demotes a failing policy to exit 0 (diagnostics still printed).
if "$VERIFY" --force --no-key edge1 "$FIXTURES/broken_v5.copland" \
    > /dev/null; then
  echo "  force broken_v5: ok"
else
  echo "  force broken_v5: FAILED (expected exit 0 under --force)"
  fail=1
fi

# JSON output must carry the code machine-readably.
if "$VERIFY" --json --no-key edge1 "$FIXTURES/broken_v5.copland" \
    | grep -q '"code": "V5"'; then
  echo "  json broken_v5: ok"
else
  echo "  json broken_v5: FAILED (no \"code\": \"V5\" in JSON output)"
  fail=1
fi

exit $fail
