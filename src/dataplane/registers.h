// Stateful register arrays — the "Prog. State" row of Fig. 4's inertia
// axis. Register contents can be digested so PERA can attest program
// state, not just program code.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace pera::dataplane {

class RegisterFile {
 public:
  /// Declare a register array. Re-declaring resizes and zeroes it.
  void declare(const std::string& name, std::size_t size);

  [[nodiscard]] bool has(const std::string& name) const {
    return regs_.contains(name);
  }

  /// Read; throws std::out_of_range on unknown register or bad index.
  [[nodiscard]] std::uint64_t read(const std::string& name,
                                   std::size_t index) const;

  /// Write; throws std::out_of_range on unknown register or bad index.
  void write(const std::string& name, std::size_t index, std::uint64_t value);

  [[nodiscard]] std::size_t size(const std::string& name) const;

  /// Digest of all register contents (name-ordered) — the program-state
  /// measurement PERA attests at the kProgramState inertia level.
  [[nodiscard]] crypto::Digest state_digest() const;

  /// Number of writes since construction (for stats/caching decisions).
  [[nodiscard]] std::uint64_t write_count() const { return writes_; }

 private:
  std::map<std::string, std::vector<std::uint64_t>> regs_;
  std::uint64_t writes_ = 0;
};

}  // namespace pera::dataplane
