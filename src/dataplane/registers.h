// Stateful register arrays — the "Prog. State" row of Fig. 4's inertia
// axis. Register contents can be digested so PERA can attest program
// state, not just program code.
//
// state_digest() is a Merkle root over fixed-size value chunks (64
// registers per leaf) plus one schema leaf per array, maintained
// incrementally: write() sets a bit in a per-array dirty-chunk bitmap and
// only dirty chunks are rehashed at the next digest, so re-attestation
// costs O(writes since last epoch) instead of O(registers).
// state_digest_full() is the O(n) reference recompute; the two are
// bit-identical (asserted in tests and bench_state).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/incremental_merkle.h"
#include "crypto/sha256.h"

namespace pera::dataplane {

class RegisterFile {
 public:
  /// Values per Merkle leaf (64 x u64 = one 512-byte chunk).
  static constexpr std::size_t kChunkValues = 64;

  /// Declare a register array. Re-declaring resizes and zeroes it.
  void declare(const std::string& name, std::size_t size);

  [[nodiscard]] bool has(const std::string& name) const {
    return regs_.contains(name);
  }

  /// Read; throws std::out_of_range on unknown register or bad index.
  [[nodiscard]] std::uint64_t read(const std::string& name,
                                   std::size_t index) const;

  /// Write; throws std::out_of_range on unknown register or bad index.
  /// Writing the value already stored is a no-op: it bumps no counter and
  /// dirties no chunk, so cached evidence stays valid.
  void write(const std::string& name, std::size_t index, std::uint64_t value);

  [[nodiscard]] std::size_t size(const std::string& name) const;

  /// Merkle root of all register contents (name-ordered) — the
  /// program-state measurement PERA attests at the kProgramState inertia
  /// level. Incremental: only chunks written since the last call rehash.
  [[nodiscard]] crypto::Digest state_digest() const;

  /// Reference full recompute, bit-identical to state_digest().
  [[nodiscard]] crypto::Digest state_digest_full() const;

  /// Number of value-changing writes since construction.
  [[nodiscard]] std::uint64_t write_count() const { return writes_; }

  /// Monotone state revision: advances on every mutation that can change
  /// state_digest() (value-changing writes and array (re)declarations).
  /// Measurement epochs derive from this.
  [[nodiscard]] std::uint64_t revision() const { return writes_ + decls_; }

 private:
  struct Reg {
    std::vector<std::uint64_t> values;
    // Digest-cache bookkeeping, mutated by the const digest path.
    mutable std::size_t leaf_base = 0;                // first leaf in tree
    mutable std::vector<std::uint64_t> dirty_chunks;  // 1 bit per chunk
  };

  [[nodiscard]] static crypto::Digest schema_leaf(const std::string& name,
                                                  std::size_t size);
  [[nodiscard]] static crypto::Digest chunk_leaf(
      const std::vector<std::uint64_t>& values, std::size_t chunk);
  void rebuild_tree() const;

  std::map<std::string, Reg> regs_;
  std::uint64_t writes_ = 0;
  std::uint64_t decls_ = 0;

  mutable crypto::IncrementalMerkleTree tree_;
  mutable bool tree_init_ = false;
  mutable bool layout_stale_ = false;  // declare() since the last (re)build
};

}  // namespace pera::dataplane
