#include "dataplane/table.h"

#include <stdexcept>

namespace pera::dataplane {

std::optional<std::uint64_t> read_key_field(const ParsedPacket& pkt,
                                            const FieldRef& ref) {
  if (ref.header == "meta") {
    if (ref.field == "ingress_port") return pkt.meta.ingress_port;
    if (ref.field == "egress_port") return pkt.meta.egress_port;
    if (ref.field == "packet_id") return pkt.meta.packet_id;
    if (ref.field == "user0") return pkt.meta.user0;
    if (ref.field == "user1") return pkt.meta.user1;
    throw std::invalid_argument("unknown metadata field meta." + ref.field);
  }
  const HeaderInstance* h = pkt.find(ref.header);
  if (h == nullptr || !h->valid) return std::nullopt;
  return h->get(ref.field);
}

std::size_t Table::add_entry(TableEntry entry) {
  if (entry.keys.size() != keys_.size()) {
    throw std::invalid_argument("table '" + name_ + "': entry has " +
                                std::to_string(entry.keys.size()) +
                                " keys, table expects " +
                                std::to_string(keys_.size()));
  }
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

void Table::set_default(std::string action, std::vector<std::uint64_t> params) {
  default_action_ = std::move(action);
  default_params_ = std::move(params);
}

namespace {
bool key_matches(const KeySpec& spec, const KeyMatch& m, std::uint64_t value) {
  switch (spec.kind) {
    case MatchKind::kExact:
      return value == m.value;
    case MatchKind::kLpm: {
      if (m.prefix_len == 0) return true;
      const unsigned width = spec.width == 0 || spec.width > 64 ? 64 : spec.width;
      const unsigned plen = m.prefix_len > width ? width : m.prefix_len;
      const std::uint64_t mask =
          plen >= 64 ? ~0ULL
                     : (((std::uint64_t{1} << plen) - 1) << (width - plen));
      return (value & mask) == (m.value & mask);
    }
    case MatchKind::kTernary:
      return (value & m.mask) == (m.value & m.mask);
  }
  return false;
}

unsigned entry_specificity(const Table& t, const TableEntry& e) {
  unsigned total = 0;
  for (std::size_t i = 0; i < e.keys.size(); ++i) {
    if (t.keys()[i].kind == MatchKind::kLpm) total += e.keys[i].prefix_len;
  }
  return total;
}
}  // namespace

bool Table::entry_matches(const TableEntry& e, const ParsedPacket& pkt) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const auto value = read_key_field(pkt, keys_[i].field);
    if (!value) return false;
    if (!key_matches(keys_[i], e.keys[i], *value)) return false;
  }
  return true;
}

TableEntry* Table::lookup(const ParsedPacket& pkt) {
  TableEntry* best = nullptr;
  unsigned best_spec = 0;
  for (auto& e : entries_) {
    if (!entry_matches(e, pkt)) continue;
    const unsigned spec = entry_specificity(*this, e);
    if (best == nullptr || e.priority > best->priority ||
        (e.priority == best->priority && spec > best_spec)) {
      best = &e;
      best_spec = spec;
    }
  }
  if (best != nullptr) ++best->hit_count;
  return best;
}

crypto::Digest Table::content_digest() const {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(entries_.size() + 1);
  for (const auto& e : entries_) {
    crypto::Bytes buf;
    for (const auto& k : e.keys) {
      crypto::append_u64(buf, k.value);
      crypto::append_u32(buf, k.prefix_len);
      crypto::append_u64(buf, k.mask);
    }
    crypto::append_u32(buf, e.priority);
    crypto::append_u32(buf, static_cast<std::uint32_t>(e.action.size()));
    crypto::append(buf, crypto::as_bytes(e.action));
    for (std::uint64_t p : e.action_params) crypto::append_u64(buf, p);
    leaves.push_back(crypto::sha256(crypto::BytesView{buf.data(), buf.size()}));
  }
  {
    crypto::Bytes buf;
    crypto::append_u32(buf, static_cast<std::uint32_t>(default_action_.size()));
    crypto::append(buf, crypto::as_bytes(default_action_));
    for (std::uint64_t p : default_params_) crypto::append_u64(buf, p);
    leaves.push_back(crypto::sha256(crypto::BytesView{buf.data(), buf.size()}));
  }
  return crypto::MerkleTree(std::move(leaves)).root();
}

crypto::Bytes Table::encode_schema() const {
  crypto::Bytes out;
  crypto::append_u32(out, static_cast<std::uint32_t>(name_.size()));
  crypto::append(out, crypto::as_bytes(name_));
  crypto::append_u32(out, static_cast<std::uint32_t>(keys_.size()));
  for (const auto& k : keys_) {
    const std::string ref = k.field.str();
    crypto::append_u32(out, static_cast<std::uint32_t>(ref.size()));
    crypto::append(out, crypto::as_bytes(ref));
    out.push_back(static_cast<std::uint8_t>(k.kind));
    crypto::append_u32(out, k.width);
  }
  return out;
}

}  // namespace pera::dataplane
