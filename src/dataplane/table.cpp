#include "dataplane/table.h"

#include <stdexcept>

#include "obs/obs.h"

namespace pera::dataplane {

std::optional<std::uint64_t> read_key_field(const ParsedPacket& pkt,
                                            const FieldRef& ref) {
  if (ref.header == "meta") {
    if (ref.field == "ingress_port") return pkt.meta.ingress_port;
    if (ref.field == "egress_port") return pkt.meta.egress_port;
    if (ref.field == "packet_id") return pkt.meta.packet_id;
    if (ref.field == "user0") return pkt.meta.user0;
    if (ref.field == "user1") return pkt.meta.user1;
    throw std::invalid_argument("unknown metadata field meta." + ref.field);
  }
  const HeaderInstance* h = pkt.find(ref.header);
  if (h == nullptr || !h->valid) return std::nullopt;
  return h->get(ref.field);
}

Table::Table(std::string name, std::vector<KeySpec> keys)
    : name_(std::move(name)), keys_(std::move(keys)) {
  all_exact_ = !keys_.empty();
  for (const auto& k : keys_) {
    if (k.kind != MatchKind::kExact) all_exact_ = false;
  }
}

std::size_t Table::ExactKeyHash::operator()(
    const std::vector<std::uint64_t>& k) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ (std::uint64_t{k.size()} << 32);
  for (std::uint64_t v : k) {
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    h = (h ^ v) * 0x2545f4914f6cdd1dULL;
  }
  return static_cast<std::size_t>(h ^ (h >> 32));
}

void Table::index_add(std::size_t index) {
  key_scratch_.clear();
  for (const auto& k : entries_[index].keys) key_scratch_.push_back(k.value);
  exact_index_[key_scratch_].push_back(static_cast<std::uint32_t>(index));
}

void Table::rebuild_index() {
  exact_index_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) index_add(i);
  index_stale_ = false;
}

std::size_t Table::add_entry(TableEntry entry) {
  if (entry.keys.size() != keys_.size()) {
    throw std::invalid_argument("table '" + name_ + "': entry has " +
                                std::to_string(entry.keys.size()) +
                                " keys, table expects " +
                                std::to_string(keys_.size()));
  }
  const std::size_t index = entries_.size();
  entries_.push_back(std::move(entry));
  ++revision_;
  if (tree_init_) {
    // The new entry takes the old default-action slot; the default leaf
    // moves to the appended slot. Real hashes land in content_digest().
    tree_.append_leaf(crypto::Digest{});
    dirty_entries_.push_back(index);
    default_dirty_ = true;
  }
  if (all_exact_ && !index_stale_) index_add(index);
  return index;
}

std::size_t Table::remove_entry(std::size_t index) {
  if (index >= entries_.size()) {
    throw std::out_of_range("table '" + name_ + "': remove_entry " +
                            std::to_string(index) + " of " +
                            std::to_string(entries_.size()));
  }
  const std::size_t last = entries_.size() - 1;
  if (all_exact_ && !index_stale_) {
    const auto bucket_remove = [&](const TableEntry& e, std::uint32_t idx) {
      key_scratch_.clear();
      for (const auto& k : e.keys) key_scratch_.push_back(k.value);
      const auto it = exact_index_.find(key_scratch_);
      if (it == exact_index_.end()) return;
      auto& bucket = it->second;
      for (auto bit = bucket.begin(); bit != bucket.end(); ++bit) {
        if (*bit == idx) {
          bucket.erase(bit);
          break;
        }
      }
      if (bucket.empty()) exact_index_.erase(it);
    };
    bucket_remove(entries_[index], static_cast<std::uint32_t>(index));
    if (index != last) {
      // The last entry moves into `index`: rewrite its bucket slot.
      bucket_remove(entries_[last], static_cast<std::uint32_t>(last));
    }
  }
  if (index != last) {
    entries_[index] = std::move(entries_[last]);
    if (tree_init_) dirty_entries_.push_back(index);
    if (all_exact_ && !index_stale_) index_add(index);
  }
  entries_.pop_back();
  ++revision_;
  if (tree_init_) {
    tree_.truncate(entries_.size() + 1);  // entry leaves + default slot
    default_dirty_ = true;                // default leaf shifted down
  }
  return last;
}

TableEntry& Table::entry_mut(std::size_t index) {
  if (index >= entries_.size()) {
    throw std::out_of_range("table '" + name_ + "': entry_mut " +
                            std::to_string(index) + " of " +
                            std::to_string(entries_.size()));
  }
  ++revision_;
  if (tree_init_) dirty_entries_.push_back(index);
  index_stale_ = true;  // the caller may rewrite the keys
  return entries_[index];
}

void Table::clear() {
  entries_.clear();
  ++revision_;
  tree_.clear();
  tree_init_ = false;
  dirty_entries_.clear();
  default_dirty_ = false;
  exact_index_.clear();
  index_stale_ = false;
}

void Table::set_mutation_profile(bool packet_writable, std::size_t capacity,
                                 EvictionPolicy eviction) {
  packet_writable_ = packet_writable;
  capacity_ = capacity;
  eviction_ = eviction;
}

void Table::set_default(std::string action, std::vector<std::uint64_t> params) {
  default_action_ = std::move(action);
  default_params_ = std::move(params);
  ++revision_;
  default_dirty_ = true;
}

namespace {
bool key_matches(const KeySpec& spec, const KeyMatch& m, std::uint64_t value) {
  switch (spec.kind) {
    case MatchKind::kExact:
      return value == m.value;
    case MatchKind::kLpm: {
      if (m.prefix_len == 0) return true;
      const unsigned width = spec.width == 0 || spec.width > 64 ? 64 : spec.width;
      const unsigned plen = m.prefix_len > width ? width : m.prefix_len;
      const std::uint64_t mask =
          plen >= 64 ? ~0ULL
                     : (((std::uint64_t{1} << plen) - 1) << (width - plen));
      return (value & mask) == (m.value & mask);
    }
    case MatchKind::kTernary:
      return (value & m.mask) == (m.value & m.mask);
  }
  return false;
}

unsigned entry_specificity(const Table& t, const TableEntry& e) {
  unsigned total = 0;
  for (std::size_t i = 0; i < e.keys.size(); ++i) {
    if (t.keys()[i].kind == MatchKind::kLpm) total += e.keys[i].prefix_len;
  }
  return total;
}
}  // namespace

bool Table::entry_matches(const TableEntry& e, const ParsedPacket& pkt) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const auto value = read_key_field(pkt, keys_[i].field);
    if (!value) return false;
    if (!key_matches(keys_[i], e.keys[i], *value)) return false;
  }
  return true;
}

TableEntry* Table::lookup(const ParsedPacket& pkt) {
  if (!all_exact_) return lookup_scan(pkt);
  if (index_stale_) rebuild_index();
  key_scratch_.clear();
  for (const auto& spec : keys_) {
    const auto value = read_key_field(pkt, spec.field);
    if (!value) return nullptr;  // absent header: no exact entry can match
    key_scratch_.push_back(*value);
  }
  const auto it = exact_index_.find(key_scratch_);
  if (it == exact_index_.end()) return nullptr;
  // Same tie-breaking as the scan: highest priority, then lowest index
  // (exact keys contribute zero LPM specificity).
  TableEntry* best = nullptr;
  std::uint32_t best_idx = 0;
  for (const std::uint32_t idx : it->second) {
    TableEntry& e = entries_[idx];
    if (best == nullptr || e.priority > best->priority ||
        (e.priority == best->priority && idx < best_idx)) {
      best = &e;
      best_idx = idx;
    }
  }
  ++best->hit_count;
  return best;
}

TableEntry* Table::lookup_scan(const ParsedPacket& pkt) {
  TableEntry* best = nullptr;
  unsigned best_spec = 0;
  for (auto& e : entries_) {
    if (!entry_matches(e, pkt)) continue;
    const unsigned spec = entry_specificity(*this, e);
    if (best == nullptr || e.priority > best->priority ||
        (e.priority == best->priority && spec > best_spec)) {
      best = &e;
      best_spec = spec;
    }
  }
  if (best != nullptr) ++best->hit_count;
  return best;
}

crypto::Digest Table::entry_leaf(const TableEntry& e) {
  crypto::Bytes buf;
  for (const auto& k : e.keys) {
    crypto::append_u64(buf, k.value);
    crypto::append_u32(buf, k.prefix_len);
    crypto::append_u64(buf, k.mask);
  }
  crypto::append_u32(buf, e.priority);
  crypto::append_u32(buf, static_cast<std::uint32_t>(e.action.size()));
  crypto::append(buf, crypto::as_bytes(e.action));
  for (std::uint64_t p : e.action_params) crypto::append_u64(buf, p);
  return crypto::sha256(crypto::BytesView{buf.data(), buf.size()});
}

crypto::Digest Table::default_leaf() const {
  crypto::Bytes buf;
  crypto::append_u32(buf, static_cast<std::uint32_t>(default_action_.size()));
  crypto::append(buf, crypto::as_bytes(default_action_));
  for (std::uint64_t p : default_params_) crypto::append_u64(buf, p);
  return crypto::sha256(crypto::BytesView{buf.data(), buf.size()});
}

void Table::flush_dirty_leaves() const {
  if (!tree_init_) {
    std::vector<crypto::Digest> leaves;
    leaves.reserve(entries_.size() + 1);
    for (const auto& e : entries_) leaves.push_back(entry_leaf(e));
    leaves.push_back(default_leaf());
    tree_.assign(std::move(leaves));
    tree_init_ = true;
    dirty_entries_.clear();
    default_dirty_ = false;
    PERA_OBS_COUNT("dataplane.digest.table.full");
    PERA_OBS_COUNT("dataplane.digest.table.dirty_leaves",
                   entries_.size() + 1);
    return;
  }
  std::uint64_t dirty = 0;
  for (const std::size_t i : dirty_entries_) {
    if (i >= entries_.size()) continue;  // removed before this digest
    tree_.set_leaf(i, entry_leaf(entries_[i]));
    ++dirty;
  }
  if (default_dirty_) {
    tree_.set_leaf(entries_.size(), default_leaf());
    ++dirty;
  }
  dirty_entries_.clear();
  default_dirty_ = false;
  PERA_OBS_COUNT("dataplane.digest.table.incremental");
  if (dirty > 0) PERA_OBS_COUNT("dataplane.digest.table.dirty_leaves", dirty);
}

crypto::Digest Table::content_digest() const {
  flush_dirty_leaves();
  const std::uint64_t before = tree_.stats().nodes_rehashed;
  const crypto::Digest root = tree_.root();
  PERA_OBS_COUNT("dataplane.digest.table.nodes_rehashed",
                 tree_.stats().nodes_rehashed - before);
  return root;
}

crypto::Digest Table::content_digest_full() const {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(entries_.size() + 1);
  for (const auto& e : entries_) leaves.push_back(entry_leaf(e));
  leaves.push_back(default_leaf());
  return crypto::MerkleTree(std::move(leaves)).root();
}

crypto::Bytes Table::encode_schema() const {
  crypto::Bytes out;
  crypto::append_u32(out, static_cast<std::uint32_t>(name_.size()));
  crypto::append(out, crypto::as_bytes(name_));
  crypto::append_u32(out, static_cast<std::uint32_t>(keys_.size()));
  for (const auto& k : keys_) {
    const std::string ref = k.field.str();
    crypto::append_u32(out, static_cast<std::uint32_t>(ref.size()));
    crypto::append(out, crypto::as_bytes(ref));
    out.push_back(static_cast<std::uint8_t>(k.kind));
    crypto::append_u32(out, k.width);
  }
  out.push_back(packet_writable_ ? 1 : 0);
  crypto::append_u64(out, capacity_);
  out.push_back(static_cast<std::uint8_t>(eviction_));
  return out;
}

}  // namespace pera::dataplane
