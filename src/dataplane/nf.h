// A realistic stateful network function driving the attestation hot path:
// a source NAT with per-flow expiring state, in the style of the stateful
// NFs (NAT, load balancer, connection tracker) that §2 argues must be
// attested as *state*, not just code, because their behaviour is defined
// by million-entry tables and register arrays that churn continuously.
//
// Every live flow owns one slot in [0, capacity):
//   * a "nat" table entry (exact match on ipv4.src + tcp.sport) rewriting
//     the source to external_ip:(port_base + slot) and forwarding to the
//     WAN port — this exercises Table's exact-match hash index and
//     per-entry incremental Merkle leaves;
//   * nat_last_seen[slot] / nat_flow_packets[slot] registers — this
//     exercises RegisterFile's dirty-chunk incremental digests.
// Flows expire LRU-style after idle_timeout ticks, so a steady workload
// produces exactly the add/remove/touch churn the incremental attestation
// engine is built for (bench_state sweeps churn rate against table size).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dataplane/builder.h"
#include "dataplane/program.h"

namespace pera::dataplane {

/// Identity of a LAN flow (the NAT's match key).
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint16_t sport = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

class StatefulNat {
 public:
  struct Config {
    std::size_t capacity = 1024;        // max concurrent flows (slots)
    std::uint64_t idle_timeout = 60;    // ticks without traffic -> expire
    std::uint32_t external_ip = 0xC6336401;  // 198.51.100.1
    std::uint64_t lan_port = 1;         // ingress side
    std::uint64_t wan_port = 2;         // translated egress side
    std::uint16_t port_base = 20000;    // translated sport = base + slot
  };

  explicit StatefulNat(Config cfg);

  /// Ensure `key` has a NAT binding: creates one (evicting the
  /// least-recently-used flow when at capacity) or refreshes the existing
  /// one. Returns the flow's slot.
  std::size_t add_flow(const FlowKey& key, std::uint64_t now);

  /// Record traffic on an existing flow: bumps its packet counter and
  /// last-seen tick, and moves it to the LRU front. Returns false when the
  /// flow has no binding.
  bool touch_flow(const FlowKey& key, std::uint64_t now);

  /// Expire every flow idle since `now - idle_timeout` or longer.
  /// Returns the number of flows removed.
  std::size_t expire_flows(std::uint64_t now);

  /// Expire exactly the `n` least-recently-used flows (bench churn knob).
  std::size_t expire_oldest(std::size_t n);

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] bool has_flow(const FlowKey& key) const {
    return flows_.contains(pack(key));
  }
  /// Slot of a bound flow, or nullopt.
  [[nodiscard]] std::optional<std::size_t> slot_of(const FlowKey& key) const;

  [[nodiscard]] PisaSwitch& sw() { return *sw_; }
  [[nodiscard]] const PisaSwitch& sw() const { return *sw_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Build a LAN-side TCP packet for `key` (convenience for tests/bench).
  [[nodiscard]] RawPacket make_packet(const FlowKey& key) const;

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  [[nodiscard]] static std::uint64_t pack(const FlowKey& k) {
    return (static_cast<std::uint64_t>(k.src_ip) << 16) | k.sport;
  }

  void lru_unlink(std::size_t slot);
  void lru_push_front(std::size_t slot);
  void remove_slot(std::size_t slot);

  Config cfg_;
  std::unique_ptr<PisaSwitch> sw_;
  Table* nat_ = nullptr;  // owned by the switch's program

  // Per-slot flow state doubling as an intrusive LRU list (head = most
  // recently used). Free slots are recycled through free_slots_.
  struct Node {
    FlowKey key{};
    std::uint64_t last_seen = 0;
    std::size_t prev = kNone;
    std::size_t next = kNone;
    bool live = false;
  };
  std::vector<Node> nodes_;
  std::size_t lru_head_ = kNone;
  std::size_t lru_tail_ = kNone;
  std::vector<std::size_t> free_slots_;

  std::unordered_map<std::uint64_t, std::size_t> flows_;  // packed key -> slot
  std::vector<std::size_t> slot_entry_;   // slot -> table entry index
  std::vector<std::size_t> entry_slot_;   // table entry index -> slot
};

}  // namespace pera::dataplane
