#include "dataplane/field.h"

#include <stdexcept>

namespace pera::dataplane {

FieldRef parse_field_ref(const std::string& s) {
  const auto dot = s.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == s.size()) {
    throw std::invalid_argument("bad field reference: '" + s +
                                "' (expected header.field)");
  }
  return FieldRef{s.substr(0, dot), s.substr(dot + 1)};
}

namespace stdhdr {

HeaderSpec ethernet() {
  return HeaderSpec{"eth",
                    {{"dst", 48}, {"src", 48}, {"ethertype", 16}}};
}

HeaderSpec ipv4() {
  return HeaderSpec{"ipv4",
                    {{"ver_ihl", 8},
                     {"dscp", 8},
                     {"len", 16},
                     {"ttl", 8},
                     {"proto", 8},
                     {"checksum", 16},
                     {"src", 32},
                     {"dst", 32}}};
}

HeaderSpec tcp() {
  return HeaderSpec{"tcp",
                    {{"sport", 16},
                     {"dport", 16},
                     {"seq", 32},
                     {"ack", 32},
                     {"flags", 16},
                     {"window", 16}}};
}

HeaderSpec udp() {
  return HeaderSpec{
      "udp", {{"sport", 16}, {"dport", 16}, {"len", 16}, {"csum", 16}}};
}

}  // namespace stdhdr

}  // namespace pera::dataplane
