#include "dataplane/program.h"

#include <stdexcept>

namespace pera::dataplane {

void DataplaneProgram::add_action(ActionDef action) {
  actions_[action.name] = std::move(action);
}

const ActionDef* DataplaneProgram::action(const std::string& name) const {
  const auto it = actions_.find(name);
  return it == actions_.end() ? nullptr : &it->second;
}

Table& DataplaneProgram::add_table(std::string name,
                                   std::vector<KeySpec> keys) {
  tables_.push_back(std::make_unique<Table>(std::move(name), std::move(keys)));
  return *tables_.back();
}

Table* DataplaneProgram::table(const std::string& name) {
  for (auto& t : tables_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

void DataplaneProgram::declare_register(const std::string& name,
                                        std::size_t size, bool packet_writable,
                                        StateGuard guard) {
  register_decls_.push_back(RegisterDecl{name, size, packet_writable, guard});
}

std::vector<StateObject> DataplaneProgram::state_objects() const {
  std::vector<StateObject> out;
  out.reserve(tables_.size() + register_decls_.size());
  for (const auto& t : tables_) {
    StateObject obj;
    obj.kind = StateObject::Kind::kTable;
    obj.name = t->name();
    obj.capacity = t->capacity();
    obj.packet_writable = t->packet_writable();
    obj.guarded = t->capacity() > 0 && t->eviction() != EvictionPolicy::kNone;
    out.push_back(std::move(obj));
  }
  for (const auto& d : register_decls_) {
    StateObject obj;
    obj.kind = StateObject::Kind::kRegister;
    obj.name = d.name;
    obj.capacity = d.size;
    obj.packet_writable = d.packet_writable;
    obj.guarded = d.guard != StateGuard::kNone;
    out.push_back(std::move(obj));
  }
  return out;
}

crypto::Digest DataplaneProgram::program_digest() const {
  crypto::Sha256 h;
  h.update("pera.dataplane.program.v1");
  h.update(name_);
  h.update(version_);
  const crypto::Bytes parser_enc = parser_.encode();
  h.update(crypto::BytesView{parser_enc.data(), parser_enc.size()});
  for (const auto& [name, action] : actions_) {
    const crypto::Bytes enc = action.encode();
    h.update(crypto::BytesView{enc.data(), enc.size()});
  }
  for (const auto& t : tables_) {
    const crypto::Bytes enc = t->encode_schema();
    h.update(crypto::BytesView{enc.data(), enc.size()});
  }
  for (const auto& d : register_decls_) {
    h.update(d.name);
    crypto::Bytes buf;
    crypto::append_u64(buf, d.size);
    buf.push_back(d.packet_writable ? 1 : 0);
    buf.push_back(static_cast<std::uint8_t>(d.guard));
    h.update(crypto::BytesView{buf.data(), buf.size()});
  }
  return h.finish();
}

crypto::Digest DataplaneProgram::tables_digest() const {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(tables_.size());
  for (const auto& t : tables_) leaves.push_back(t->content_digest());
  return crypto::MerkleTree(std::move(leaves)).root();
}

crypto::Digest DataplaneProgram::tables_digest_full() const {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(tables_.size());
  for (const auto& t : tables_) leaves.push_back(t->content_digest_full());
  return crypto::MerkleTree(std::move(leaves)).root();
}

std::uint64_t DataplaneProgram::tables_revision() const {
  std::uint64_t sum = 0;
  for (const auto& t : tables_) sum += t->revision();
  return sum;
}

PisaSwitch::PisaSwitch(std::shared_ptr<DataplaneProgram> program) {
  load_program(std::move(program));
}

void PisaSwitch::load_program(std::shared_ptr<DataplaneProgram> program) {
  if (!program) throw std::invalid_argument("load_program: null program");
  program_ = std::move(program);
  regs_ = RegisterFile{};
  for (const auto& d : program_->register_decls()) {
    regs_.declare(d.name, d.size);
  }
}

ParsedPacket PisaSwitch::parse(const RawPacket& raw) {
  ++stats_.packets_in;
  try {
    ParsedPacket pkt = program_->parser().parse(raw);
    pkt.meta.packet_id = next_packet_id_++;
    return pkt;
  } catch (const std::exception&) {
    ++stats_.parse_errors;
    throw;
  }
}

void PisaSwitch::run_pipeline(ParsedPacket& pkt) {
  for (const auto& t : program_->tables()) {
    if (pkt.meta.drop) return;
    ++stats_.table_lookups;
    const TableEntry* entry = t->lookup(pkt);
    const std::string* action_name = nullptr;
    const std::vector<std::uint64_t>* params = nullptr;
    if (entry != nullptr) {
      ++stats_.table_hits;
      action_name = &entry->action;
      params = &entry->action_params;
    } else if (!t->default_action().empty()) {
      action_name = &t->default_action();
      params = &t->default_params();
    }
    if (action_name == nullptr) continue;
    const ActionDef* action = program_->action(*action_name);
    if (action == nullptr) {
      throw std::runtime_error("table '" + t->name() +
                               "' references unknown action '" + *action_name +
                               "'");
    }
    action->execute(pkt, *params, &regs_);
  }
}

std::optional<RawPacket> PisaSwitch::deparse(const ParsedPacket& pkt) {
  if (pkt.meta.drop) {
    ++stats_.packets_dropped;
    return std::nullopt;
  }
  ++stats_.packets_out;
  RawPacket out;
  out.port = pkt.meta.egress_port;
  out.data = pkt.deparse();
  return out;
}

std::optional<RawPacket> PisaSwitch::process(const RawPacket& raw) {
  ParsedPacket pkt;
  try {
    pkt = parse(raw);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  run_pipeline(pkt);
  return deparse(pkt);
}

}  // namespace pera::dataplane
