// Packet representations for the software switch.
//
// RawPacket is bytes on a wire. ParsedPacket is the PISA-internal view:
// extracted header instances (field -> value), standard metadata, and the
// unparsed payload tail. The deparser re-serializes valid headers in
// extraction order, so parse -> deparse round-trips.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "dataplane/field.h"

namespace pera::dataplane {

using crypto::Bytes;
using crypto::BytesView;

/// Bytes on the wire plus the arrival port.
struct RawPacket {
  std::uint32_t port = 0;
  Bytes data;
};

/// One extracted header instance.
struct HeaderInstance {
  const HeaderSpec* spec = nullptr;  // borrowed from the program's schema
  bool valid = false;
  std::vector<std::uint64_t> values;  // parallel to spec->fields

  [[nodiscard]] std::uint64_t get(const std::string& field) const;
  void set(const std::string& field, std::uint64_t value);
};

/// Standard intrinsic metadata (a subset of v1model's).
struct Metadata {
  std::uint32_t ingress_port = 0;
  std::uint32_t egress_port = 0;
  bool drop = false;
  std::uint64_t packet_id = 0;   // simulator-assigned
  std::uint64_t user0 = 0;       // scratch metadata for programs
  std::uint64_t user1 = 0;
};

/// The switch-internal packet view.
class ParsedPacket {
 public:
  Metadata meta;

  /// Add a header instance (in wire order). Returns a reference to it.
  HeaderInstance& add_header(const HeaderSpec& spec);

  [[nodiscard]] bool has(const std::string& header) const;
  [[nodiscard]] HeaderInstance* find(const std::string& header);
  [[nodiscard]] const HeaderInstance* find(const std::string& header) const;

  /// Read a field; throws std::out_of_range if header absent/invalid.
  [[nodiscard]] std::uint64_t get(const FieldRef& ref) const;
  [[nodiscard]] std::uint64_t get(const std::string& ref) const {
    return get(parse_field_ref(ref));
  }

  /// Write a field; throws std::out_of_range if header absent/invalid.
  void set(const FieldRef& ref, std::uint64_t value);
  void set(const std::string& ref, std::uint64_t value) {
    set(parse_field_ref(ref), value);
  }

  [[nodiscard]] const std::vector<HeaderInstance>& headers() const {
    return headers_;
  }
  [[nodiscard]] std::vector<HeaderInstance>& headers() { return headers_; }

  Bytes payload;  // unparsed tail

  /// Re-serialize valid headers (in order) followed by the payload.
  [[nodiscard]] Bytes deparse() const;

 private:
  std::vector<HeaderInstance> headers_;
};

/// Serialize field values into bytes per the spec (big-endian bit packing).
[[nodiscard]] Bytes pack_header(const HeaderSpec& spec,
                                const std::vector<std::uint64_t>& values);

/// Extract field values from bytes. Throws std::invalid_argument if the
/// buffer is shorter than the header.
[[nodiscard]] std::vector<std::uint64_t> unpack_header(const HeaderSpec& spec,
                                                       BytesView data);

}  // namespace pera::dataplane
