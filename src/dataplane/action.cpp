#include "dataplane/action.h"

#include <stdexcept>

#include "dataplane/registers.h"

namespace pera::dataplane {

std::uint64_t Operand::resolve(const std::vector<std::uint64_t>& params) const {
  if (!is_param) return immediate;
  if (param_index >= params.size()) {
    throw std::runtime_error("action operand references missing parameter " +
                             std::to_string(param_index));
  }
  return params[param_index];
}

void ActionDef::execute(ParsedPacket& pkt,
                        const std::vector<std::uint64_t>& params,
                        RegisterFile* regs) const {
  if (params.size() < param_count) {
    throw std::runtime_error("action '" + name + "' expects " +
                             std::to_string(param_count) + " params, got " +
                             std::to_string(params.size()));
  }
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::kSetField:
        pkt.set(op.dst, op.a.resolve(params));
        break;
      case OpKind::kCopyField:
        pkt.set(op.dst, pkt.get(op.src));
        break;
      case OpKind::kAddToField:
        pkt.set(op.dst, pkt.get(op.dst) + op.a.resolve(params));
        break;
      case OpKind::kSetEgressPort:
        pkt.meta.egress_port =
            static_cast<std::uint32_t>(op.a.resolve(params));
        break;
      case OpKind::kDrop:
        pkt.meta.drop = true;
        break;
      case OpKind::kSetUserMeta:
        if (op.which_meta == 0) {
          pkt.meta.user0 = op.a.resolve(params);
        } else {
          pkt.meta.user1 = op.a.resolve(params);
        }
        break;
      case OpKind::kRegWrite: {
        if (regs == nullptr) {
          throw std::runtime_error("action '" + name +
                                   "' uses registers but none provided");
        }
        regs->write(op.reg, static_cast<std::size_t>(op.a.resolve(params)),
                    op.b.resolve(params));
        break;
      }
      case OpKind::kRegReadToMeta: {
        if (regs == nullptr) {
          throw std::runtime_error("action '" + name +
                                   "' uses registers but none provided");
        }
        pkt.meta.user0 =
            regs->read(op.reg, static_cast<std::size_t>(op.a.resolve(params)));
        break;
      }
      case OpKind::kNoop:
        break;
    }
  }
}

crypto::Bytes ActionDef::encode() const {
  crypto::Bytes out;
  const auto put_str = [&out](const std::string& s) {
    crypto::append_u32(out, static_cast<std::uint32_t>(s.size()));
    crypto::append(out, crypto::as_bytes(s));
  };
  const auto put_operand = [&out](const Operand& o) {
    out.push_back(o.is_param ? 1 : 0);
    crypto::append_u64(out, o.is_param ? o.param_index : o.immediate);
  };
  put_str(name);
  crypto::append_u32(out, static_cast<std::uint32_t>(param_count));
  crypto::append_u32(out, static_cast<std::uint32_t>(ops.size()));
  for (const Op& op : ops) {
    out.push_back(static_cast<std::uint8_t>(op.kind));
    put_str(op.dst.header);
    put_str(op.dst.field);
    put_str(op.src.header);
    put_str(op.src.field);
    put_operand(op.a);
    put_operand(op.b);
    put_str(op.reg);
    crypto::append_u32(out, op.which_meta);
  }
  return out;
}

namespace stdaction {

ActionDef forward() {
  ActionDef a;
  a.name = "forward";
  a.param_count = 1;
  Op op;
  op.kind = OpKind::kSetEgressPort;
  op.a = Operand::param(0);
  a.ops.push_back(op);
  return a;
}

ActionDef drop() {
  ActionDef a;
  a.name = "drop";
  Op op;
  op.kind = OpKind::kDrop;
  a.ops.push_back(op);
  return a;
}

ActionDef noop() {
  ActionDef a;
  a.name = "noop";
  return a;
}

ActionDef set_field(const std::string& field_ref) {
  ActionDef a;
  a.name = "set_" + field_ref;
  a.param_count = 1;
  Op op;
  op.kind = OpKind::kSetField;
  op.dst = parse_field_ref(field_ref);
  op.a = Operand::param(0);
  a.ops.push_back(op);
  return a;
}

}  // namespace stdaction

}  // namespace pera::dataplane
