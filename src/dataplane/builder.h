// Canned dataplane programs and packet builders used by examples, tests
// and benches — the firewall_v5.p4 / ACL_v3.p4 cast of UC1, plus the rogue
// traffic-duplicator of the Athens Affair (§1).
#pragma once

#include <memory>

#include "dataplane/program.h"

namespace pera::dataplane {

/// Standard eth/ipv4/tcp parser shared by the canned programs.
[[nodiscard]] ParserProgram standard_parser();

/// L2/L3 forwarder: routes on ipv4.dst LPM, forwards out a port.
[[nodiscard]] std::shared_ptr<DataplaneProgram> make_router(
    const std::string& version = "v1");

/// Stateless firewall ("firewall_v5.p4"): ACL on (src,dst,dport) ternary;
/// default drop; allowed traffic is routed on ipv4.dst.
[[nodiscard]] std::shared_ptr<DataplaneProgram> make_firewall(
    const std::string& version = "v5");

/// ACL appliance ("ACL_v3.p4"): allow-list on dport; default forward.
[[nodiscard]] std::shared_ptr<DataplaneProgram> make_acl(
    const std::string& version = "v3");

/// Flow monitor: counts per-dport packets into a register array while
/// forwarding — the monitoring workload of Kim et al. / TurboFlow that §1
/// argues needs attestation.
[[nodiscard]] std::shared_ptr<DataplaneProgram> make_monitor(
    const std::string& version = "v2");

/// The Athens-Affair rogue program: behaves exactly like make_router but
/// also marks packets matching a target list (ipv4.dst exact) with
/// meta.user1 = 1 — the analogue of duplicating target streams to the
/// eavesdropper. Program digest differs from the router's; behaviour on
/// non-target traffic is identical (that's why it went unnoticed).
[[nodiscard]] std::shared_ptr<DataplaneProgram> make_rogue_router(
    const std::string& version = "v1");

/// Build a raw eth/ipv4/tcp packet.
struct PacketSpec {
  std::uint32_t ingress_port = 0;
  std::uint64_t eth_src = 0x0a0a0a0a0a0a;
  std::uint64_t eth_dst = 0x0b0b0b0b0b0b;
  std::uint32_t ip_src = 0x0a000101;  // 10.0.1.1
  std::uint32_t ip_dst = 0x0a000202;  // 10.0.2.2 — routed by the canned
                                      // programs (10.0.2.0/24 -> port 2)
  std::uint8_t ttl = 64;
  std::uint16_t sport = 40000;
  std::uint16_t dport = 443;
  std::size_t payload_len = 64;
};

[[nodiscard]] RawPacket make_tcp_packet(const PacketSpec& spec);

}  // namespace pera::dataplane
