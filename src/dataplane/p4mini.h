// P4-mini: a small textual frontend for dataplane programs, so that the
// artifacts UC1 talks about ("firewall_v5.p4", "ACL_v3.p4") exist as
// source text whose compiled digest is what PERA attests.
//
// Grammar (comments start with '#', run to end of line):
//
//   program   := 'program' IDENT IDENT ';' decl*
//   decl      := header | parserdecl | registerdecl | actiondecl | tabledecl
//   header    := 'header' IDENT '{' (IDENT ':' NUMBER ';')* '}'
//   parserdecl:= 'parser' '{' state* '}'
//   state     := IDENT ':' 'extract' IDENT (select | ';')
//   select    := 'select' FIELDREF '{' (NUMBER ':' IDENT ';')*
//                ['default' ':' IDENT ';'] '}'
//   registerdecl := 'register' IDENT '[' NUMBER ']' ';'
//   actiondecl:= 'action' IDENT '(' params? ')' '{' stmt* '}'
//   stmt      := 'set_egress' '(' operand ')' ';'
//              | 'drop' ';'
//              | 'set_field' '(' FIELDREF ',' operand ')' ';'
//              | 'set_meta0' '(' operand ')' ';'
//              | 'set_meta1' '(' operand ')' ';'
//              | 'reg_write' '(' IDENT ',' operand ',' operand ')' ';'
//   tabledecl := 'table' IDENT '{' keyspec entry* dflt? '}'
//   keyspec   := 'key' '{' (FIELDREF ':' matchkind ';')* '}'
//   matchkind := 'exact' | 'lpm' '/' NUMBER | 'ternary'
//   entry     := 'entry' keymatch (',' keymatch)* ['prio' NUMBER]
//                '->' IDENT '(' args? ')' ';'
//   keymatch  := NUMBER ['/' NUMBER | '&' NUMBER] | '*'
//   dflt      := 'default' IDENT '(' args? ')' ';'
//
// Tables execute in declaration order. Numbers are decimal or 0x hex.
#pragma once

#include <memory>
#include <stdexcept>
#include <string_view>

#include "dataplane/program.h"

namespace pera::dataplane {

class P4MiniError : public std::runtime_error {
 public:
  P4MiniError(const std::string& msg, std::size_t line)
      : std::runtime_error("p4mini:" + std::to_string(line) + ": " + msg),
        line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Compile P4-mini source into a loadable program.
[[nodiscard]] std::shared_ptr<DataplaneProgram> compile_p4mini(
    std::string_view source);

/// Reference sources mirroring the canned builder programs; the Athens
/// example and tests compile them and compare behaviour.
namespace p4src {
[[nodiscard]] const char* router_v1();
[[nodiscard]] const char* firewall_v5();
[[nodiscard]] const char* acl_v3();
[[nodiscard]] const char* rogue_router_v1();
}  // namespace p4src

}  // namespace pera::dataplane
