// Match-action tables with exact, LPM and ternary matching — the
// "Match + Action" stage of Fig. 3.
//
// Key fields may reference packet headers ("ipv4.dst") or intrinsic
// metadata via the pseudo-header "meta" ("meta.ingress_port", "meta.user0").
// Entries bind an action name and its parameters; the winning entry is the
// highest-priority match (ties broken by longest LPM prefix, then insertion
// order). Table contents are Merkle-hashable for table attestation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/merkle.h"
#include "dataplane/packet.h"

namespace pera::dataplane {

enum class MatchKind : std::uint8_t { kExact = 0, kLpm = 1, kTernary = 2 };

struct KeySpec {
  FieldRef field;
  MatchKind kind = MatchKind::kExact;
  unsigned width = 64;  // field width in bits; LPM prefixes count from its MSB
};

/// One key's match criterion in an entry.
struct KeyMatch {
  std::uint64_t value = 0;
  unsigned prefix_len = 64;        // kLpm: number of significant leading bits
  std::uint64_t mask = ~0ULL;      // kTernary

  static KeyMatch exact(std::uint64_t v) { return {v, 64, ~0ULL}; }
  static KeyMatch lpm(std::uint64_t v, unsigned plen) { return {v, plen, 0}; }
  static KeyMatch ternary(std::uint64_t v, std::uint64_t m) { return {v, 0, m}; }
  static KeyMatch wildcard() { return {0, 0, 0}; }
};

struct TableEntry {
  std::vector<KeyMatch> keys;             // parallel to the table's KeySpecs
  std::uint32_t priority = 0;             // higher wins
  std::string action;
  std::vector<std::uint64_t> action_params;
  std::uint64_t hit_count = 0;            // updated on lookup
};

/// Read a key field from packet or metadata. Returns nullopt when the
/// referenced header is absent (such entries can only match wildcards —
/// we treat absent as "no match" for simplicity, like bmv2's invalid-key
/// behaviour with miss).
[[nodiscard]] std::optional<std::uint64_t> read_key_field(
    const ParsedPacket& pkt, const FieldRef& ref);

class Table {
 public:
  Table(std::string name, std::vector<KeySpec> keys)
      : name_(std::move(name)), keys_(std::move(keys)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<KeySpec>& keys() const { return keys_; }

  /// Add an entry; returns its index. Throws std::invalid_argument when the
  /// key count doesn't match the table's key specs.
  std::size_t add_entry(TableEntry entry);

  void clear() { entries_.clear(); }
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  [[nodiscard]] const std::vector<TableEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::vector<TableEntry>& entries() { return entries_; }

  /// Default action when no entry matches ("" = no-op miss).
  void set_default(std::string action, std::vector<std::uint64_t> params = {});
  [[nodiscard]] const std::string& default_action() const {
    return default_action_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& default_params() const {
    return default_params_;
  }

  /// Look up the best-matching entry. Updates its hit counter.
  /// Returns nullptr on miss.
  [[nodiscard]] TableEntry* lookup(const ParsedPacket& pkt);

  /// Merkle root over entries (order-sensitive) — the "Tables" inertia
  /// level of Fig. 4. Includes the default action.
  [[nodiscard]] crypto::Digest content_digest() const;

  /// Canonical encoding of the table *schema* (name/keys), for program
  /// attestation (entries are state, schema is program).
  [[nodiscard]] crypto::Bytes encode_schema() const;

 private:
  [[nodiscard]] bool entry_matches(const TableEntry& e,
                                   const ParsedPacket& pkt) const;

  std::string name_;
  std::vector<KeySpec> keys_;
  std::vector<TableEntry> entries_;
  std::string default_action_;
  std::vector<std::uint64_t> default_params_;
};

}  // namespace pera::dataplane
