// Match-action tables with exact, LPM and ternary matching — the
// "Match + Action" stage of Fig. 3.
//
// Key fields may reference packet headers ("ipv4.dst") or intrinsic
// metadata via the pseudo-header "meta" ("meta.ingress_port", "meta.user0").
// Entries bind an action name and its parameters; the winning entry is the
// highest-priority match (ties broken by longest LPM prefix, then insertion
// order). Table contents are Merkle-hashable for table attestation.
//
// Two production-scale mechanisms live here:
//   * content_digest() is incremental: each entry owns a Merkle leaf slot
//     that is invalidated on add/remove/modify/default-action change, so
//     re-measuring the table costs O(changes since last digest), not
//     O(entries). content_digest_full() keeps the O(n) reference path and
//     the two are bit-identical by construction (asserted in tests/bench).
//   * lookup() uses an exact-match hash index when every key spec is
//     kExact (LPM/ternary/mixed tables keep the linear scan), so per-packet
//     cost is O(1) at million-entry scale. lookup_scan() is the reference.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/incremental_merkle.h"
#include "crypto/merkle.h"
#include "dataplane/packet.h"

namespace pera::dataplane {

enum class MatchKind : std::uint8_t { kExact = 0, kLpm = 1, kTernary = 2 };

/// How a capacity-bounded table sheds entries when full. Part of the
/// mutation metadata consumed by the V9 exhaustion-reachability check:
/// a packet-writable table with kNone is exhaustible from the wire.
enum class EvictionPolicy : std::uint8_t { kNone = 0, kLru = 1, kTtl = 2 };

struct KeySpec {
  FieldRef field;
  MatchKind kind = MatchKind::kExact;
  unsigned width = 64;  // field width in bits; LPM prefixes count from its MSB
};

/// One key's match criterion in an entry.
struct KeyMatch {
  std::uint64_t value = 0;
  unsigned prefix_len = 64;        // kLpm: number of significant leading bits
  std::uint64_t mask = ~0ULL;      // kTernary

  static KeyMatch exact(std::uint64_t v) { return {v, 64, ~0ULL}; }
  static KeyMatch lpm(std::uint64_t v, unsigned plen) { return {v, plen, 0}; }
  static KeyMatch ternary(std::uint64_t v, std::uint64_t m) { return {v, 0, m}; }
  static KeyMatch wildcard() { return {0, 0, 0}; }
};

struct TableEntry {
  std::vector<KeyMatch> keys;             // parallel to the table's KeySpecs
  std::uint32_t priority = 0;             // higher wins
  std::string action;
  std::vector<std::uint64_t> action_params;
  std::uint64_t hit_count = 0;            // updated on lookup (not attested)
};

/// Read a key field from packet or metadata. Returns nullopt when the
/// referenced header is absent (such entries can only match wildcards —
/// we treat absent as "no match" for simplicity, like bmv2's invalid-key
/// behaviour with miss).
[[nodiscard]] std::optional<std::uint64_t> read_key_field(
    const ParsedPacket& pkt, const FieldRef& ref);

class Table {
 public:
  Table(std::string name, std::vector<KeySpec> keys);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<KeySpec>& keys() const { return keys_; }

  /// Add an entry; returns its index. Throws std::invalid_argument when the
  /// key count doesn't match the table's key specs.
  std::size_t add_entry(TableEntry entry);

  /// Remove entry `index` by swapping the last entry into its slot (the
  /// digest is order-sensitive over whatever order the vector holds, so
  /// both the incremental and the full path see the same sequence).
  /// Returns the index the formerly-last entry moved *from* — i.e. the new
  /// entry_count() — so callers tracking entry indices can remap; when
  /// `index` was already last, nothing moved and the return equals `index`.
  /// Throws std::out_of_range.
  std::size_t remove_entry(std::size_t index);

  /// Mutable access to entry `index` for in-place modification. Marks the
  /// entry's digest leaf dirty and invalidates the exact-match index (the
  /// caller may change keys). Throws std::out_of_range.
  [[nodiscard]] TableEntry& entry_mut(std::size_t index);

  void clear();
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  [[nodiscard]] const std::vector<TableEntry>& entries() const {
    return entries_;
  }

  /// Default action when no entry matches ("" = no-op miss).
  void set_default(std::string action, std::vector<std::uint64_t> params = {});
  [[nodiscard]] const std::string& default_action() const {
    return default_action_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& default_params() const {
    return default_params_;
  }

  /// Mutation metadata for the static coverage analyzer (V6/V9). A table
  /// is "packet-writable" when entries are installed in response to packet
  /// arrivals (flow learning, NAT bindings) rather than purely by operator
  /// intent; such tables must declare a capacity bound plus an eviction
  /// policy or an adversary can exhaust them from the wire. The metadata is
  /// part of the program schema (it changes what the program *is*, not what
  /// its state holds), so it feeds encode_schema()/program_digest().
  void set_mutation_profile(bool packet_writable, std::size_t capacity,
                            EvictionPolicy eviction);
  [[nodiscard]] bool packet_writable() const { return packet_writable_; }
  /// Entry budget; 0 = unbounded.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] EvictionPolicy eviction() const { return eviction_; }

  /// Monotone content revision: bumped on every mutation that can change
  /// content_digest() (add/remove/modify/default/clear — NOT lookups,
  /// which only touch hit counters). Measurement epochs derive from this.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  /// True when lookups go through the exact-match hash index (every key
  /// spec is kExact).
  [[nodiscard]] bool exact_indexed() const { return all_exact_; }

  /// Look up the best-matching entry. Updates its hit counter.
  /// Returns nullptr on miss.
  [[nodiscard]] TableEntry* lookup(const ParsedPacket& pkt);

  /// Reference O(entries) lookup (always scans). Identical result to
  /// lookup(); kept for differential tests and mixed-match tables.
  [[nodiscard]] TableEntry* lookup_scan(const ParsedPacket& pkt);

  /// Merkle root over entries (order-sensitive) — the "Tables" inertia
  /// level of Fig. 4. Includes the default action. Incremental: only
  /// leaves dirtied since the previous call are rehashed.
  [[nodiscard]] crypto::Digest content_digest() const;

  /// Reference full recompute (hashes every entry, rebuilds the tree).
  /// Bit-identical to content_digest().
  [[nodiscard]] crypto::Digest content_digest_full() const;

  /// Canonical encoding of the table *schema* (name/keys), for program
  /// attestation (entries are state, schema is program).
  [[nodiscard]] crypto::Bytes encode_schema() const;

 private:
  struct ExactKeyHash {
    std::size_t operator()(const std::vector<std::uint64_t>& k) const;
  };

  [[nodiscard]] bool entry_matches(const TableEntry& e,
                                   const ParsedPacket& pkt) const;
  [[nodiscard]] static crypto::Digest entry_leaf(const TableEntry& e);
  [[nodiscard]] crypto::Digest default_leaf() const;
  void flush_dirty_leaves() const;
  void rebuild_index();
  void index_add(std::size_t index);

  std::string name_;
  std::vector<KeySpec> keys_;
  std::vector<TableEntry> entries_;
  std::string default_action_;
  std::vector<std::uint64_t> default_params_;
  std::uint64_t revision_ = 0;
  bool packet_writable_ = false;
  std::size_t capacity_ = 0;
  EvictionPolicy eviction_ = EvictionPolicy::kNone;

  // Incremental digest state. Leaf layout: entry i -> leaf i, default
  // action -> leaf entry_count(). Structural tree ops (append/truncate/
  // slot shifts) happen eagerly with placeholder digests; the actual leaf
  // hashes are computed lazily in content_digest().
  mutable crypto::IncrementalMerkleTree tree_;
  mutable bool tree_init_ = false;
  mutable std::vector<std::size_t> dirty_entries_;
  mutable bool default_dirty_ = false;

  // Exact-match hash index: key values -> entry indices holding exactly
  // those values (usually one; duplicates resolved by priority then
  // insertion order, matching the scan).
  bool all_exact_ = false;
  bool index_stale_ = false;
  std::unordered_map<std::vector<std::uint64_t>, std::vector<std::uint32_t>,
                     ExactKeyHash>
      exact_index_;
  std::vector<std::uint64_t> key_scratch_;
};

}  // namespace pera::dataplane
