// Match-action actions: small programs of primitive operations, in the
// style of P4 action bodies. Action parameters are bound by table entries
// at control-plane time and referenced by index from the ops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "dataplane/packet.h"

namespace pera::dataplane {

class RegisterFile;

/// Primitive operation kinds.
enum class OpKind : std::uint8_t {
  kSetField,       // field := operand
  kCopyField,      // dst_field := src_field
  kAddToField,     // field += operand (wraps at field width)
  kSetEgressPort,  // meta.egress_port := operand
  kDrop,           // meta.drop := true
  kSetUserMeta,    // meta.user{0,1} := operand (a selects which)
  kRegWrite,       // reg[name][index_operand] := value_operand
  kRegReadToMeta,  // meta.user0 := reg[name][index_operand]
  kNoop,
};

/// An operand is either an immediate or a reference to an action parameter.
struct Operand {
  bool is_param = false;
  std::uint64_t immediate = 0;
  std::size_t param_index = 0;

  static Operand imm(std::uint64_t v) { return {false, v, 0}; }
  static Operand param(std::size_t i) { return {true, 0, i}; }

  [[nodiscard]] std::uint64_t resolve(
      const std::vector<std::uint64_t>& params) const;
};

struct Op {
  OpKind kind = OpKind::kNoop;
  FieldRef dst{};       // kSetField / kCopyField / kAddToField
  FieldRef src{};       // kCopyField
  Operand a{};          // primary operand
  Operand b{};          // secondary operand (kRegWrite value)
  std::string reg;      // register name
  unsigned which_meta = 0;  // kSetUserMeta: 0 or 1
};

/// A named action: ordered ops, executed with entry-bound parameters.
struct ActionDef {
  std::string name;
  std::size_t param_count = 0;
  std::vector<Op> ops;

  /// Execute on a packet. `regs` may be null when the action uses no
  /// register ops. Throws std::runtime_error on parameter/register misuse.
  void execute(ParsedPacket& pkt, const std::vector<std::uint64_t>& params,
               RegisterFile* regs) const;

  /// Canonical encoding for program attestation.
  [[nodiscard]] crypto::Bytes encode() const;
};

/// Common actions.
namespace stdaction {
/// forward(port): set egress port from param 0.
[[nodiscard]] ActionDef forward();
/// drop packet.
[[nodiscard]] ActionDef drop();
/// noop.
[[nodiscard]] ActionDef noop();
/// set_field(hdr.field = param0) — builds a one-op setter.
[[nodiscard]] ActionDef set_field(const std::string& field_ref);
}  // namespace stdaction

}  // namespace pera::dataplane
