// Programmable parser: a parse graph in the P4 style.
//
// Each state extracts one header and selects the next state by the value
// of one field of the header just extracted (or transitions
// unconditionally). Parsing starts at "start" and ends at the implicit
// "accept" state; leftover bytes become the payload.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "dataplane/packet.h"

namespace pera::dataplane {

/// Transition select on one field of the extracted header.
struct ParserSelect {
  std::string field;                              // field of this state's header
  std::map<std::uint64_t, std::string> cases;     // value -> next state
  std::string default_next = "accept";
};

struct ParserState {
  std::string name;
  std::string header;  // header spec to extract, "" = extract nothing
  std::optional<ParserSelect> select;  // nullopt = unconditional
  std::string next = "accept";         // used when !select
};

class ParserProgram {
 public:
  /// `schema` maps header names to specs; the program borrows it.
  explicit ParserProgram(std::map<std::string, HeaderSpec> schema)
      : schema_(std::move(schema)) {}

  void add_state(ParserState state);

  [[nodiscard]] const std::map<std::string, HeaderSpec>& schema() const {
    return schema_;
  }
  [[nodiscard]] const std::map<std::string, ParserState>& states() const {
    return states_;
  }

  /// Parse a raw packet into a ParsedPacket.
  /// Throws std::runtime_error on unknown states/headers or short packets.
  [[nodiscard]] ParsedPacket parse(const RawPacket& raw) const;

  /// Canonical encoding of the parse graph, for program attestation.
  [[nodiscard]] crypto::Bytes encode() const;

 private:
  std::map<std::string, HeaderSpec> schema_;
  std::map<std::string, ParserState> states_;
};

}  // namespace pera::dataplane
