#include "dataplane/packet.h"

#include <stdexcept>

namespace pera::dataplane {

std::uint64_t HeaderInstance::get(const std::string& field) const {
  const int idx = spec->field_index(field);
  if (idx < 0) {
    throw std::out_of_range("no field '" + field + "' in header " + spec->name);
  }
  return values[static_cast<std::size_t>(idx)];
}

void HeaderInstance::set(const std::string& field, std::uint64_t value) {
  const int idx = spec->field_index(field);
  if (idx < 0) {
    throw std::out_of_range("no field '" + field + "' in header " + spec->name);
  }
  const unsigned bits = spec->fields[static_cast<std::size_t>(idx)].bits;
  const std::uint64_t mask =
      bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
  values[static_cast<std::size_t>(idx)] = value & mask;
}

HeaderInstance& ParsedPacket::add_header(const HeaderSpec& spec) {
  HeaderInstance h;
  h.spec = &spec;
  h.valid = true;
  h.values.assign(spec.fields.size(), 0);
  headers_.push_back(std::move(h));
  return headers_.back();
}

bool ParsedPacket::has(const std::string& header) const {
  const HeaderInstance* h = find(header);
  return h != nullptr && h->valid;
}

HeaderInstance* ParsedPacket::find(const std::string& header) {
  for (auto& h : headers_) {
    if (h.spec->name == header) return &h;
  }
  return nullptr;
}

const HeaderInstance* ParsedPacket::find(const std::string& header) const {
  for (const auto& h : headers_) {
    if (h.spec->name == header) return &h;
  }
  return nullptr;
}

std::uint64_t ParsedPacket::get(const FieldRef& ref) const {
  const HeaderInstance* h = find(ref.header);
  if (h == nullptr || !h->valid) {
    throw std::out_of_range("header '" + ref.header + "' not present");
  }
  return h->get(ref.field);
}

void ParsedPacket::set(const FieldRef& ref, std::uint64_t value) {
  HeaderInstance* h = find(ref.header);
  if (h == nullptr || !h->valid) {
    throw std::out_of_range("header '" + ref.header + "' not present");
  }
  h->set(ref.field, value);
}

Bytes ParsedPacket::deparse() const {
  Bytes out;
  for (const auto& h : headers_) {
    if (!h.valid) continue;
    const Bytes packed = pack_header(*h.spec, h.values);
    crypto::append(out, BytesView{packed.data(), packed.size()});
  }
  crypto::append(out, BytesView{payload.data(), payload.size()});
  return out;
}

Bytes pack_header(const HeaderSpec& spec,
                  const std::vector<std::uint64_t>& values) {
  if (values.size() != spec.fields.size()) {
    throw std::invalid_argument("pack_header: value count mismatch");
  }
  Bytes out(spec.byte_width(), 0);
  std::size_t bit_pos = 0;
  for (std::size_t i = 0; i < spec.fields.size(); ++i) {
    const unsigned bits = spec.fields[i].bits;
    const std::uint64_t v = values[i];
    // Write `bits` bits of v, MSB first, starting at bit_pos.
    for (unsigned b = 0; b < bits; ++b) {
      const std::uint64_t bit = (v >> (bits - 1 - b)) & 1;
      if (bit != 0) {
        out[(bit_pos + b) / 8] |=
            static_cast<std::uint8_t>(0x80 >> ((bit_pos + b) % 8));
      }
    }
    bit_pos += bits;
  }
  return out;
}

std::vector<std::uint64_t> unpack_header(const HeaderSpec& spec,
                                         BytesView data) {
  if (data.size() < spec.byte_width()) {
    throw std::invalid_argument("unpack_header: buffer shorter than header " +
                                spec.name);
  }
  std::vector<std::uint64_t> values(spec.fields.size(), 0);
  std::size_t bit_pos = 0;
  for (std::size_t i = 0; i < spec.fields.size(); ++i) {
    const unsigned bits = spec.fields[i].bits;
    std::uint64_t v = 0;
    for (unsigned b = 0; b < bits; ++b) {
      const std::uint8_t byte = data[(bit_pos + b) / 8];
      const int bit = (byte >> (7 - ((bit_pos + b) % 8))) & 1;
      v = (v << 1) | static_cast<std::uint64_t>(bit);
    }
    values[i] = v;
    bit_pos += bits;
  }
  return values;
}

}  // namespace pera::dataplane
