#include "dataplane/registers.h"

#include <stdexcept>

#include "crypto/merkle.h"
#include "obs/obs.h"

namespace pera::dataplane {

void RegisterFile::declare(const std::string& name, std::size_t size) {
  regs_[name] = Reg{std::vector<std::uint64_t>(size, 0), 0, {}};
  ++decls_;
  layout_stale_ = true;
}

std::uint64_t RegisterFile::read(const std::string& name,
                                 std::size_t index) const {
  const auto it = regs_.find(name);
  if (it == regs_.end()) {
    throw std::out_of_range("register '" + name + "' not declared");
  }
  if (index >= it->second.values.size()) {
    throw std::out_of_range("register '" + name + "' index " +
                            std::to_string(index) + " out of range");
  }
  return it->second.values[index];
}

void RegisterFile::write(const std::string& name, std::size_t index,
                         std::uint64_t value) {
  const auto it = regs_.find(name);
  if (it == regs_.end()) {
    throw std::out_of_range("register '" + name + "' not declared");
  }
  Reg& reg = it->second;
  if (index >= reg.values.size()) {
    throw std::out_of_range("register '" + name + "' index " +
                            std::to_string(index) + " out of range");
  }
  if (reg.values[index] == value) return;  // no-op write: nothing changed
  reg.values[index] = value;
  ++writes_;
  if (tree_init_ && !layout_stale_) {
    const std::size_t chunk = index / kChunkValues;
    reg.dirty_chunks[chunk / 64] |= std::uint64_t{1} << (chunk % 64);
  }
}

std::size_t RegisterFile::size(const std::string& name) const {
  const auto it = regs_.find(name);
  if (it == regs_.end()) {
    throw std::out_of_range("register '" + name + "' not declared");
  }
  return it->second.values.size();
}

crypto::Digest RegisterFile::schema_leaf(const std::string& name,
                                         std::size_t size) {
  crypto::Bytes buf;
  crypto::append(buf, crypto::as_bytes("pera.reg.schema.v1"));
  crypto::append_u32(buf, static_cast<std::uint32_t>(name.size()));
  crypto::append(buf, crypto::as_bytes(name));
  crypto::append_u64(buf, size);
  return crypto::sha256(crypto::BytesView{buf.data(), buf.size()});
}

crypto::Digest RegisterFile::chunk_leaf(
    const std::vector<std::uint64_t>& values, std::size_t chunk) {
  const std::size_t begin = chunk * kChunkValues;
  const std::size_t end =
      begin + kChunkValues < values.size() ? begin + kChunkValues
                                           : values.size();
  crypto::Bytes buf;
  buf.reserve((end - begin) * 8);
  for (std::size_t i = begin; i < end; ++i) crypto::append_u64(buf, values[i]);
  crypto::Digest out;
  crypto::Sha256::digest_into(crypto::BytesView{buf.data(), buf.size()}, out);
  return out;
}

void RegisterFile::rebuild_tree() const {
  std::vector<crypto::Digest> leaves;
  for (const auto& [name, reg] : regs_) {
    reg.leaf_base = leaves.size();
    leaves.push_back(schema_leaf(name, reg.values.size()));
    const std::size_t chunks =
        (reg.values.size() + kChunkValues - 1) / kChunkValues;
    for (std::size_t c = 0; c < chunks; ++c) {
      leaves.push_back(chunk_leaf(reg.values, c));
    }
    reg.dirty_chunks.assign((chunks + 63) / 64, 0);
  }
  tree_.assign(std::move(leaves));
  tree_init_ = true;
  layout_stale_ = false;
}

crypto::Digest RegisterFile::state_digest() const {
  if (!tree_init_ || layout_stale_) {
    rebuild_tree();
    PERA_OBS_COUNT("dataplane.digest.reg.full");
  } else {
    std::uint64_t dirty = 0;
    for (const auto& [name, reg] : regs_) {
      for (std::size_t w = 0; w < reg.dirty_chunks.size(); ++w) {
        std::uint64_t word = reg.dirty_chunks[w];
        while (word != 0) {
          const unsigned bit =
              static_cast<unsigned>(__builtin_ctzll(word));
          word &= word - 1;
          const std::size_t chunk = w * 64 + bit;
          tree_.set_leaf(reg.leaf_base + 1 + chunk,
                         chunk_leaf(reg.values, chunk));
          ++dirty;
        }
        reg.dirty_chunks[w] = 0;
      }
    }
    PERA_OBS_COUNT("dataplane.digest.reg.incremental");
    if (dirty > 0) PERA_OBS_COUNT("dataplane.digest.reg.dirty_chunks", dirty);
  }
  const std::uint64_t before = tree_.stats().nodes_rehashed;
  const crypto::Digest root = tree_.root();
  PERA_OBS_COUNT("dataplane.digest.reg.nodes_rehashed",
                 tree_.stats().nodes_rehashed - before);
  return root;
}

crypto::Digest RegisterFile::state_digest_full() const {
  std::vector<crypto::Digest> leaves;
  for (const auto& [name, reg] : regs_) {
    leaves.push_back(schema_leaf(name, reg.values.size()));
    const std::size_t chunks =
        (reg.values.size() + kChunkValues - 1) / kChunkValues;
    for (std::size_t c = 0; c < chunks; ++c) {
      leaves.push_back(chunk_leaf(reg.values, c));
    }
  }
  return crypto::MerkleTree(std::move(leaves)).root();
}

}  // namespace pera::dataplane
