#include "dataplane/registers.h"

#include <stdexcept>

namespace pera::dataplane {

void RegisterFile::declare(const std::string& name, std::size_t size) {
  regs_[name] = std::vector<std::uint64_t>(size, 0);
}

std::uint64_t RegisterFile::read(const std::string& name,
                                 std::size_t index) const {
  const auto it = regs_.find(name);
  if (it == regs_.end()) {
    throw std::out_of_range("register '" + name + "' not declared");
  }
  if (index >= it->second.size()) {
    throw std::out_of_range("register '" + name + "' index " +
                            std::to_string(index) + " out of range");
  }
  return it->second[index];
}

void RegisterFile::write(const std::string& name, std::size_t index,
                         std::uint64_t value) {
  const auto it = regs_.find(name);
  if (it == regs_.end()) {
    throw std::out_of_range("register '" + name + "' not declared");
  }
  if (index >= it->second.size()) {
    throw std::out_of_range("register '" + name + "' index " +
                            std::to_string(index) + " out of range");
  }
  it->second[index] = value;
  ++writes_;
}

std::size_t RegisterFile::size(const std::string& name) const {
  const auto it = regs_.find(name);
  if (it == regs_.end()) {
    throw std::out_of_range("register '" + name + "' not declared");
  }
  return it->second.size();
}

crypto::Digest RegisterFile::state_digest() const {
  crypto::Sha256 h;
  for (const auto& [name, values] : regs_) {
    h.update(name);
    crypto::Bytes buf;
    crypto::append_u64(buf, values.size());
    for (std::uint64_t v : values) crypto::append_u64(buf, v);
    h.update(crypto::BytesView{buf.data(), buf.size()});
  }
  return h.finish();
}

}  // namespace pera::dataplane
