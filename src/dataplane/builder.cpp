#include "dataplane/builder.h"

namespace pera::dataplane {

namespace {
constexpr std::uint64_t kEthertypeIpv4 = 0x0800;
constexpr std::uint64_t kProtoTcp = 6;

std::map<std::string, HeaderSpec> standard_schema() {
  return {{"eth", stdhdr::ethernet()},
          {"ipv4", stdhdr::ipv4()},
          {"tcp", stdhdr::tcp()}};
}

// Routing table shared by router-like programs: 10.0.x.0/24 -> port x.
void add_routes(Table& t) {
  for (std::uint64_t subnet = 1; subnet <= 8; ++subnet) {
    TableEntry e;
    e.keys = {KeyMatch::lpm(0x0a000000ULL | (subnet << 8), 24)};
    e.action = "forward";
    e.action_params = {subnet};
    t.add_entry(std::move(e));
  }
}

KeySpec ipv4_dst_lpm() { return KeySpec{{"ipv4", "dst"}, MatchKind::kLpm, 32}; }
}  // namespace

ParserProgram standard_parser() {
  ParserProgram p(standard_schema());
  ParserState start;
  start.name = "start";
  start.header = "eth";
  start.select = ParserSelect{
      "ethertype", {{kEthertypeIpv4, "parse_ipv4"}}, "accept"};
  p.add_state(std::move(start));

  ParserState ipv4;
  ipv4.name = "parse_ipv4";
  ipv4.header = "ipv4";
  ipv4.select = ParserSelect{"proto", {{kProtoTcp, "parse_tcp"}}, "accept"};
  p.add_state(std::move(ipv4));

  ParserState tcp;
  tcp.name = "parse_tcp";
  tcp.header = "tcp";
  tcp.next = "accept";
  p.add_state(std::move(tcp));
  return p;
}

std::shared_ptr<DataplaneProgram> make_router(const std::string& version) {
  auto prog = std::make_shared<DataplaneProgram>("router", version,
                                                 standard_parser());
  prog->add_action(stdaction::forward());
  prog->add_action(stdaction::drop());

  Table& route = prog->add_table(
      "route", {ipv4_dst_lpm()});
  add_routes(route);
  route.set_default("drop");
  return prog;
}

std::shared_ptr<DataplaneProgram> make_firewall(const std::string& version) {
  auto prog = std::make_shared<DataplaneProgram>("firewall", version,
                                                 standard_parser());
  prog->add_action(stdaction::forward());
  prog->add_action(stdaction::drop());
  prog->add_action(stdaction::noop());

  Table& acl = prog->add_table("acl",
                               {KeySpec{{"ipv4", "src"}, MatchKind::kTernary},
                                KeySpec{{"ipv4", "dst"}, MatchKind::kTernary},
                                KeySpec{{"tcp", "dport"}, MatchKind::kTernary}});
  // Allow 443 and 80 from anywhere; allow the 10.0.0.0/8 block internally.
  for (std::uint64_t port : {443ULL, 80ULL, 22ULL}) {
    TableEntry e;
    e.keys = {KeyMatch::wildcard(), KeyMatch::wildcard(),
              KeyMatch::ternary(port, 0xffff)};
    e.priority = 10;
    e.action = "noop";
    acl.add_entry(std::move(e));
  }
  {
    TableEntry e;
    e.keys = {KeyMatch::ternary(0x0a000000, 0xff000000),
              KeyMatch::ternary(0x0a000000, 0xff000000),
              KeyMatch::wildcard()};
    e.priority = 5;
    e.action = "noop";
    acl.add_entry(std::move(e));
  }
  acl.set_default("drop");

  Table& route = prog->add_table(
      "route", {ipv4_dst_lpm()});
  add_routes(route);
  route.set_default("drop");
  return prog;
}

std::shared_ptr<DataplaneProgram> make_acl(const std::string& version) {
  auto prog = std::make_shared<DataplaneProgram>("acl", version,
                                                 standard_parser());
  prog->add_action(stdaction::forward());
  prog->add_action(stdaction::drop());

  Table& allow = prog->add_table(
      "allow", {KeySpec{{"tcp", "dport"}, MatchKind::kExact}});
  for (std::uint64_t port : {25ULL, 6667ULL, 31337ULL}) {  // deny-list
    TableEntry e;
    e.keys = {KeyMatch::exact(port)};
    e.action = "drop";
    allow.add_entry(std::move(e));
  }
  allow.set_default("");

  Table& route = prog->add_table(
      "route", {ipv4_dst_lpm()});
  add_routes(route);
  route.set_default("drop");
  return prog;
}

std::shared_ptr<DataplaneProgram> make_monitor(const std::string& version) {
  auto prog = std::make_shared<DataplaneProgram>("monitor", version,
                                                 standard_parser());
  prog->add_action(stdaction::forward());
  prog->add_action(stdaction::drop());
  prog->declare_register("port_counts", 1024);

  // count_dport: port_counts[dport % 1024] += 1 is approximated with a
  // read-modify-write pair keyed on a table-provided bucket parameter.
  ActionDef count;
  count.name = "count_bucket";
  count.param_count = 2;  // bucket, out_port
  {
    Op read;
    read.kind = OpKind::kRegReadToMeta;
    read.reg = "port_counts";
    read.a = Operand::param(0);
    count.ops.push_back(read);
    Op bump;
    bump.kind = OpKind::kRegWrite;
    bump.reg = "port_counts";
    bump.a = Operand::param(0);
    bump.b = Operand::param(0);  // placeholder; incremented via user0 below
    count.ops.push_back(bump);
    Op fwd;
    fwd.kind = OpKind::kSetEgressPort;
    fwd.a = Operand::param(1);
    count.ops.push_back(fwd);
  }
  prog->add_action(std::move(count));

  Table& mon = prog->add_table(
      "monitor", {KeySpec{{"tcp", "dport"}, MatchKind::kExact}});
  for (std::uint64_t port : {443ULL, 80ULL, 53ULL, 22ULL}) {
    TableEntry e;
    e.keys = {KeyMatch::exact(port)};
    e.action = "count_bucket";
    e.action_params = {port % 1024, 1};
    mon.add_entry(std::move(e));
  }
  mon.set_default("forward", {1});
  return prog;
}

std::shared_ptr<DataplaneProgram> make_rogue_router(const std::string& version) {
  auto prog = std::make_shared<DataplaneProgram>("router", version,
                                                 standard_parser());
  prog->add_action(stdaction::forward());
  prog->add_action(stdaction::drop());

  // The covert duplication: on target destinations, tag the packet so the
  // simulator's "lawful intercept" port logic picks it up.
  ActionDef intercept;
  intercept.name = "forward";  // masquerades under the same action name
  intercept.param_count = 1;
  {
    Op fwd;
    fwd.kind = OpKind::kSetEgressPort;
    fwd.a = Operand::param(0);
    intercept.ops.push_back(fwd);
  }
  // Note: same ops as stdaction::forward() — the rogue behaviour is the
  // extra table below, so the *program digest* is what betrays it.
  prog->add_action(std::move(intercept));

  ActionDef mark;
  mark.name = "mark_intercept";
  mark.param_count = 0;
  {
    Op op;
    op.kind = OpKind::kSetUserMeta;
    op.which_meta = 1;
    op.a = Operand::imm(1);
    mark.ops.push_back(op);
  }
  prog->add_action(std::move(mark));

  Table& targets = prog->add_table(
      "targets", {KeySpec{{"ipv4", "dst"}, MatchKind::kExact}});
  // The "list of phone numbers": specific hosts whose traffic is tagged.
  for (std::uint64_t dst : {0x0a000105ULL, 0x0a000207ULL, 0x0a000309ULL}) {
    TableEntry e;
    e.keys = {KeyMatch::exact(dst)};
    e.action = "mark_intercept";
    targets.add_entry(std::move(e));
  }
  targets.set_default("");

  Table& route = prog->add_table(
      "route", {ipv4_dst_lpm()});
  add_routes(route);
  route.set_default("drop");
  return prog;
}

RawPacket make_tcp_packet(const PacketSpec& spec) {
  const HeaderSpec eth = stdhdr::ethernet();
  const HeaderSpec ipv4 = stdhdr::ipv4();
  const HeaderSpec tcp = stdhdr::tcp();

  RawPacket raw;
  raw.port = spec.ingress_port;

  const Bytes eth_bytes =
      pack_header(eth, {spec.eth_dst, spec.eth_src, kEthertypeIpv4});
  const Bytes ip_bytes = pack_header(
      ipv4, {0x45, 0,
             static_cast<std::uint64_t>(ipv4.byte_width() + tcp.byte_width() +
                                        spec.payload_len),
             spec.ttl, kProtoTcp, 0, spec.ip_src, spec.ip_dst});
  const Bytes tcp_bytes =
      pack_header(tcp, {spec.sport, spec.dport, 1000, 2000, 0x18, 65535});

  crypto::append(raw.data, crypto::BytesView{eth_bytes.data(), eth_bytes.size()});
  crypto::append(raw.data, crypto::BytesView{ip_bytes.data(), ip_bytes.size()});
  crypto::append(raw.data, crypto::BytesView{tcp_bytes.data(), tcp_bytes.size()});
  raw.data.resize(raw.data.size() + spec.payload_len, 0xab);
  return raw;
}

}  // namespace pera::dataplane
