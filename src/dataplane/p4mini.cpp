#include "dataplane/p4mini.h"

#include <cctype>
#include <map>
#include <vector>

namespace pera::dataplane {

namespace {

enum class Tok {
  kIdent,
  kNumber,
  kColon,
  kSemi,
  kComma,
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kSlash,
  kAmp,
  kArrow,
  kStar,
  kDot,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::uint64_t number = 0;
  std::size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '-' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '>') {
        out.push_back({Tok::kArrow, "->", 0, line_});
        pos_ += 2;
        continue;
      }
      switch (c) {
        case ':': out.push_back({Tok::kColon, ":", 0, line_}); ++pos_; continue;
        case ';': out.push_back({Tok::kSemi, ";", 0, line_}); ++pos_; continue;
        case ',': out.push_back({Tok::kComma, ",", 0, line_}); ++pos_; continue;
        case '{': out.push_back({Tok::kLBrace, "{", 0, line_}); ++pos_; continue;
        case '}': out.push_back({Tok::kRBrace, "}", 0, line_}); ++pos_; continue;
        case '(': out.push_back({Tok::kLParen, "(", 0, line_}); ++pos_; continue;
        case ')': out.push_back({Tok::kRParen, ")", 0, line_}); ++pos_; continue;
        case '[': out.push_back({Tok::kLBracket, "[", 0, line_}); ++pos_; continue;
        case ']': out.push_back({Tok::kRBracket, "]", 0, line_}); ++pos_; continue;
        case '/': out.push_back({Tok::kSlash, "/", 0, line_}); ++pos_; continue;
        case '&': out.push_back({Tok::kAmp, "&", 0, line_}); ++pos_; continue;
        case '*': out.push_back({Tok::kStar, "*", 0, line_}); ++pos_; continue;
        case '.': out.push_back({Tok::kDot, ".", 0, line_}); ++pos_; continue;
        default: break;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        out.push_back(number());
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(ident());
        continue;
      }
      throw P4MiniError(std::string("unexpected character '") + c + "'",
                        line_);
    }
    out.push_back({Tok::kEnd, "", 0, line_});
    return out;
  }

 private:
  Token number() {
    const std::size_t start = pos_;
    std::uint64_t value = 0;
    if (src_[pos_] == '0' && pos_ + 1 < src_.size() &&
        (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
      pos_ += 2;
      if (pos_ >= src_.size() ||
          !std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
        throw P4MiniError("malformed hex literal", line_);
      }
      while (pos_ < src_.size() &&
             std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
        const char h = src_[pos_++];
        const int nib = h <= '9'   ? h - '0'
                        : h <= 'F' ? h - 'A' + 10
                                   : h - 'a' + 10;
        value = (value << 4) | static_cast<std::uint64_t>(nib);
      }
    } else {
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        value = value * 10 + static_cast<std::uint64_t>(src_[pos_++] - '0');
      }
    }
    return {Tok::kNumber, std::string(src_.substr(start, pos_ - start)),
            value, line_};
  }

  Token ident() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_')) {
      ++pos_;
    }
    return {Tok::kIdent, std::string(src_.substr(start, pos_ - start)), 0,
            line_};
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

class Compiler {
 public:
  explicit Compiler(std::vector<Token> toks) : toks_(std::move(toks)) {}

  std::shared_ptr<DataplaneProgram> run() {
    expect_kw("program");
    const std::string name = expect(Tok::kIdent).text;
    const std::string version = expect(Tok::kIdent).text;
    expect(Tok::kSemi);

    // Two passes are avoided by requiring headers and parser before use,
    // which the grammar already encourages; we build incrementally.
    while (!at(Tok::kEnd)) {
      const Token head = expect(Tok::kIdent);
      if (head.text == "header") {
        parse_header();
      } else if (head.text == "parser") {
        parse_parser();
      } else if (head.text == "register") {
        parse_register();
      } else if (head.text == "action") {
        parse_action();
      } else if (head.text == "table") {
        parse_table();
      } else {
        throw P4MiniError("unknown declaration '" + head.text + "'",
                          head.line);
      }
    }

    if (!parser_seen_) {
      throw P4MiniError("program has no parser block", cur().line);
    }
    ParserProgram parser(schema_);
    for (auto& st : parser_states_) parser.add_state(std::move(st));
    auto program =
        std::make_shared<DataplaneProgram>(name, version, std::move(parser));
    for (auto& [aname, action] : actions_) program->add_action(action);
    for (auto& r : registers_) {
      program->declare_register(r.name, r.size, r.packet_writable, r.guard);
    }
    for (auto& t : tables_) {
      Table& table = program->add_table(t.name, t.keys);
      for (auto& e : t.entries) table.add_entry(e);
      table.set_default(t.default_action, t.default_params);
      table.set_mutation_profile(t.packet_writable, t.capacity, t.eviction);
    }
    return program;
  }

 private:
  struct PendingTable {
    std::string name;
    std::vector<KeySpec> keys;
    std::vector<TableEntry> entries;
    std::string default_action;
    std::vector<std::uint64_t> default_params;
    bool packet_writable = false;
    std::size_t capacity = 0;
    EvictionPolicy eviction = EvictionPolicy::kNone;
  };

  struct PendingRegister {
    std::string name;
    std::size_t size = 0;
    bool packet_writable = false;
    StateGuard guard = StateGuard::kNone;
  };

  void parse_header() {
    HeaderSpec spec;
    spec.name = expect(Tok::kIdent).text;
    expect(Tok::kLBrace);
    while (!at(Tok::kRBrace)) {
      FieldSpec field;
      field.name = expect(Tok::kIdent).text;
      expect(Tok::kColon);
      field.bits = static_cast<unsigned>(expect(Tok::kNumber).number);
      if (field.bits == 0 || field.bits > 64) {
        throw P4MiniError("field width must be 1..64", cur().line);
      }
      expect(Tok::kSemi);
      spec.fields.push_back(std::move(field));
    }
    expect(Tok::kRBrace);
    if (spec.bit_width() % 8 != 0) {
      throw P4MiniError("header '" + spec.name +
                            "' width is not a multiple of 8 bits",
                        cur().line);
    }
    schema_[spec.name] = std::move(spec);
  }

  void parse_parser() {
    parser_seen_ = true;
    expect(Tok::kLBrace);
    while (!at(Tok::kRBrace)) {
      ParserState st;
      st.name = expect(Tok::kIdent).text;
      expect(Tok::kColon);
      expect_kw("extract");
      st.header = expect(Tok::kIdent).text;
      if (!schema_.contains(st.header)) {
        throw P4MiniError("extract of undeclared header '" + st.header + "'",
                          cur().line);
      }
      if (at(Tok::kSemi)) {
        advance();
        st.next = "accept";
      } else {
        expect_kw("select");
        ParserSelect sel;
        const auto [hdr, field] = field_ref();
        if (hdr != st.header) {
          throw P4MiniError("select field must belong to the extracted header",
                            cur().line);
        }
        sel.field = field;
        expect(Tok::kLBrace);
        while (!at(Tok::kRBrace)) {
          if (at(Tok::kIdent) && cur().text == "default") {
            advance();
            expect(Tok::kColon);
            sel.default_next = expect(Tok::kIdent).text;
            expect(Tok::kSemi);
          } else {
            const std::uint64_t value = expect(Tok::kNumber).number;
            expect(Tok::kColon);
            sel.cases[value] = expect(Tok::kIdent).text;
            expect(Tok::kSemi);
          }
        }
        expect(Tok::kRBrace);
        st.select = std::move(sel);
      }
      parser_states_.push_back(std::move(st));
    }
    expect(Tok::kRBrace);
  }

  // register NAME[SIZE] [packet] [guard slots|saturate];
  // "packet" marks the array as mutated on the per-packet path; "guard"
  // names the mechanism bounding adversarial growth (V9 metadata).
  void parse_register() {
    PendingRegister reg;
    reg.name = expect(Tok::kIdent).text;
    expect(Tok::kLBracket);
    reg.size = static_cast<std::size_t>(expect(Tok::kNumber).number);
    expect(Tok::kRBracket);
    while (!at(Tok::kSemi)) {
      const Token attr = expect(Tok::kIdent);
      if (attr.text == "packet") {
        reg.packet_writable = true;
      } else if (attr.text == "guard") {
        const Token kind = expect(Tok::kIdent);
        if (kind.text == "slots") {
          reg.guard = StateGuard::kSlotRecycle;
        } else if (kind.text == "saturate") {
          reg.guard = StateGuard::kSaturate;
        } else {
          throw P4MiniError("unknown register guard '" + kind.text + "'",
                            kind.line);
        }
      } else {
        throw P4MiniError("unknown register attribute '" + attr.text + "'",
                          attr.line);
      }
    }
    expect(Tok::kSemi);
    registers_.push_back(std::move(reg));
  }

  void parse_action() {
    ActionDef action;
    action.name = expect(Tok::kIdent).text;
    expect(Tok::kLParen);
    std::map<std::string, std::size_t> params;
    while (!at(Tok::kRParen)) {
      const std::string p = expect(Tok::kIdent).text;
      params[p] = params.size();
      if (at(Tok::kComma)) advance();
    }
    expect(Tok::kRParen);
    action.param_count = params.size();
    expect(Tok::kLBrace);
    while (!at(Tok::kRBrace)) {
      action.ops.push_back(parse_stmt(params));
    }
    expect(Tok::kRBrace);
    actions_[action.name] = std::move(action);
  }

  Op parse_stmt(const std::map<std::string, std::size_t>& params) {
    const Token head = expect(Tok::kIdent);
    Op op;
    if (head.text == "drop") {
      op.kind = OpKind::kDrop;
      expect(Tok::kSemi);
      return op;
    }
    expect(Tok::kLParen);
    if (head.text == "set_egress") {
      op.kind = OpKind::kSetEgressPort;
      op.a = operand(params);
    } else if (head.text == "set_field") {
      op.kind = OpKind::kSetField;
      const auto [hdr, field] = field_ref();
      op.dst = FieldRef{hdr, field};
      expect(Tok::kComma);
      op.a = operand(params);
    } else if (head.text == "set_meta0" || head.text == "set_meta1") {
      op.kind = OpKind::kSetUserMeta;
      op.which_meta = head.text == "set_meta0" ? 0 : 1;
      op.a = operand(params);
    } else if (head.text == "reg_write") {
      op.kind = OpKind::kRegWrite;
      op.reg = expect(Tok::kIdent).text;
      expect(Tok::kComma);
      op.a = operand(params);
      expect(Tok::kComma);
      op.b = operand(params);
    } else {
      throw P4MiniError("unknown statement '" + head.text + "'", head.line);
    }
    expect(Tok::kRParen);
    expect(Tok::kSemi);
    return op;
  }

  Operand operand(const std::map<std::string, std::size_t>& params) {
    if (at(Tok::kNumber)) return Operand::imm(advance().number);
    const Token t = expect(Tok::kIdent);
    const auto it = params.find(t.text);
    if (it == params.end()) {
      throw P4MiniError("unknown action parameter '" + t.text + "'", t.line);
    }
    return Operand::param(it->second);
  }

  void parse_table() {
    PendingTable table;
    table.name = expect(Tok::kIdent).text;
    expect(Tok::kLBrace);
    expect_kw("key");
    expect(Tok::kLBrace);
    while (!at(Tok::kRBrace)) {
      KeySpec key;
      const auto [hdr, field] = field_ref();
      key.field = FieldRef{hdr, field};
      if (hdr != "meta") {
        const auto sit = schema_.find(hdr);
        if (sit == schema_.end()) {
          throw P4MiniError("key references undeclared header '" + hdr + "'",
                            cur().line);
        }
        const int idx = sit->second.field_index(field);
        if (idx < 0) {
          throw P4MiniError("no field '" + field + "' in header " + hdr,
                            cur().line);
        }
        key.width = sit->second.fields[static_cast<std::size_t>(idx)].bits;
      }
      expect(Tok::kColon);
      const Token kind = expect(Tok::kIdent);
      if (kind.text == "exact") {
        key.kind = MatchKind::kExact;
      } else if (kind.text == "lpm") {
        key.kind = MatchKind::kLpm;
        if (at(Tok::kSlash)) {  // explicit width override: lpm/32
          advance();
          key.width = static_cast<unsigned>(expect(Tok::kNumber).number);
        }
      } else if (kind.text == "ternary") {
        key.kind = MatchKind::kTernary;
      } else {
        throw P4MiniError("unknown match kind '" + kind.text + "'",
                          kind.line);
      }
      expect(Tok::kSemi);
      table.keys.push_back(std::move(key));
    }
    expect(Tok::kRBrace);

    while (!at(Tok::kRBrace)) {
      const Token head = expect(Tok::kIdent);
      if (head.text == "entry") {
        TableEntry entry;
        entry.keys.push_back(key_match());
        while (at(Tok::kComma)) {
          advance();
          entry.keys.push_back(key_match());
        }
        if (at(Tok::kIdent) && cur().text == "prio") {
          advance();
          entry.priority =
              static_cast<std::uint32_t>(expect(Tok::kNumber).number);
        }
        expect(Tok::kArrow);
        entry.action = expect(Tok::kIdent).text;
        expect(Tok::kLParen);
        while (!at(Tok::kRParen)) {
          entry.action_params.push_back(expect(Tok::kNumber).number);
          if (at(Tok::kComma)) advance();
        }
        expect(Tok::kRParen);
        expect(Tok::kSemi);
        if (entry.keys.size() != table.keys.size()) {
          throw P4MiniError("entry key count mismatch in table '" +
                                table.name + "'",
                            head.line);
        }
        if (!actions_.contains(entry.action)) {
          throw P4MiniError("entry uses undeclared action '" + entry.action +
                                "'",
                            head.line);
        }
        table.entries.push_back(std::move(entry));
      } else if (head.text == "default") {
        table.default_action = expect(Tok::kIdent).text;
        if (!actions_.contains(table.default_action)) {
          throw P4MiniError("default uses undeclared action '" +
                                table.default_action + "'",
                            head.line);
        }
        expect(Tok::kLParen);
        while (!at(Tok::kRParen)) {
          table.default_params.push_back(expect(Tok::kNumber).number);
          if (at(Tok::kComma)) advance();
        }
        expect(Tok::kRParen);
        expect(Tok::kSemi);
      } else if (head.text == "state") {
        // state packet; — entries are installed per arriving flow.
        expect_kw("packet");
        expect(Tok::kSemi);
        table.packet_writable = true;
      } else if (head.text == "capacity") {
        table.capacity =
            static_cast<std::size_t>(expect(Tok::kNumber).number);
        expect(Tok::kSemi);
      } else if (head.text == "evict") {
        const Token kind = expect(Tok::kIdent);
        if (kind.text == "lru") {
          table.eviction = EvictionPolicy::kLru;
        } else if (kind.text == "ttl") {
          table.eviction = EvictionPolicy::kTtl;
        } else if (kind.text == "none") {
          table.eviction = EvictionPolicy::kNone;
        } else {
          throw P4MiniError("unknown eviction policy '" + kind.text + "'",
                            kind.line);
        }
        expect(Tok::kSemi);
      } else {
        throw P4MiniError(
            "expected 'entry', 'default', 'state', 'capacity' or 'evict' "
            "in table body",
            head.line);
      }
    }
    expect(Tok::kRBrace);
    tables_.push_back(std::move(table));
  }

  KeyMatch key_match() {
    if (at(Tok::kStar)) {
      advance();
      return KeyMatch::wildcard();
    }
    const std::uint64_t value = expect(Tok::kNumber).number;
    if (at(Tok::kSlash)) {
      advance();
      return KeyMatch::lpm(value,
                           static_cast<unsigned>(expect(Tok::kNumber).number));
    }
    if (at(Tok::kAmp)) {
      advance();
      return KeyMatch::ternary(value, expect(Tok::kNumber).number);
    }
    return KeyMatch::exact(value);
  }

  std::pair<std::string, std::string> field_ref() {
    const std::string hdr = expect(Tok::kIdent).text;
    expect(Tok::kDot);
    const std::string field = expect(Tok::kIdent).text;
    return {hdr, field};
  }

  // --- token helpers -------------------------------------------------------
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] bool at(Tok k) const { return cur().kind == k; }
  Token advance() { return toks_[pos_++]; }

  Token expect(Tok k) {
    if (!at(k)) {
      throw P4MiniError("unexpected token '" + cur().text + "'", cur().line);
    }
    return advance();
  }

  void expect_kw(const std::string& kw) {
    const Token t = expect(Tok::kIdent);
    if (t.text != kw) {
      throw P4MiniError("expected '" + kw + "', found '" + t.text + "'",
                        t.line);
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;

  std::map<std::string, HeaderSpec> schema_;
  std::vector<ParserState> parser_states_;
  bool parser_seen_ = false;
  std::map<std::string, ActionDef> actions_;
  std::vector<PendingRegister> registers_;
  std::vector<PendingTable> tables_;
};

}  // namespace

std::shared_ptr<DataplaneProgram> compile_p4mini(std::string_view source) {
  Lexer lex(source);
  Compiler compiler(lex.run());
  return compiler.run();
}

namespace p4src {

namespace {
constexpr const char* kCommonHeaders = R"(
header eth  { dst:48; src:48; ethertype:16; }
header ipv4 { ver_ihl:8; dscp:8; len:16; ttl:8; proto:8; checksum:16;
              src:32; dst:32; }
header tcp  { sport:16; dport:16; seq:32; ack:32; flags:16; window:16; }

parser {
  start:      extract eth  select eth.ethertype { 0x0800: parse_ipv4;
                                                  default: accept; }
  parse_ipv4: extract ipv4 select ipv4.proto    { 6: parse_tcp;
                                                  default: accept; }
  parse_tcp:  extract tcp;
}

action fwd(port)  { set_egress(port); }
action drop_pkt() { drop; }
action noop()     { }
)";

constexpr const char* kRoutes = R"(
  entry 0x0a000100/24 -> fwd(1);
  entry 0x0a000200/24 -> fwd(2);
  entry 0x0a000300/24 -> fwd(3);
  entry 0x0a000400/24 -> fwd(4);
  entry 0x0a000500/24 -> fwd(5);
  entry 0x0a000600/24 -> fwd(6);
  entry 0x0a000700/24 -> fwd(7);
  entry 0x0a000800/24 -> fwd(8);
  default drop_pkt();
)";
}  // namespace

const char* router_v1() {
  static const std::string src = std::string("program router v1;\n") +
                                 kCommonHeaders +
                                 "\ntable route {\n  key { ipv4.dst: lpm; }\n" +
                                 kRoutes + "}\n";
  return src.c_str();
}

const char* firewall_v5() {
  static const std::string src =
      std::string("program firewall v5;\n") + kCommonHeaders + R"(
table acl {
  key { ipv4.src: ternary; ipv4.dst: ternary; tcp.dport: ternary; }
  entry *, *, 443&0xffff prio 10 -> noop();
  entry *, *, 80&0xffff  prio 10 -> noop();
  entry *, *, 22&0xffff  prio 10 -> noop();
  entry 0x0a000000&0xff000000, 0x0a000000&0xff000000, * prio 5 -> noop();
  default drop_pkt();
}
table route {
  key { ipv4.dst: lpm; }
)" + kRoutes + "}\n";
  return src.c_str();
}

const char* acl_v3() {
  static const std::string src =
      std::string("program acl v3;\n") + kCommonHeaders + R"(
table allow {
  key { tcp.dport: exact; }
  entry 25    -> drop_pkt();
  entry 6667  -> drop_pkt();
  entry 31337 -> drop_pkt();
}
table route {
  key { ipv4.dst: lpm; }
)" + kRoutes + "}\n";
  return src.c_str();
}

const char* rogue_router_v1() {
  // The Athens payload: identical routing plus the covert target table.
  static const std::string src =
      std::string("program router v1;\n") + kCommonHeaders + R"(
action mark_intercept() { set_meta1(1); }

table targets {
  key { ipv4.dst: exact; }
  entry 0x0a000105 -> mark_intercept();
  entry 0x0a000207 -> mark_intercept();
  entry 0x0a000309 -> mark_intercept();
}
table route {
  key { ipv4.dst: lpm; }
)" + kRoutes + "}\n";
  return src.c_str();
}

}  // namespace p4src

}  // namespace pera::dataplane
