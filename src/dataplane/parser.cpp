#include "dataplane/parser.h"

#include <stdexcept>

namespace pera::dataplane {

void ParserProgram::add_state(ParserState state) {
  states_[state.name] = std::move(state);
}

ParsedPacket ParserProgram::parse(const RawPacket& raw) const {
  ParsedPacket pkt;
  pkt.meta.ingress_port = raw.port;

  std::string state_name = "start";
  std::size_t offset = 0;
  std::size_t steps = 0;

  while (state_name != "accept") {
    if (++steps > 64) {
      throw std::runtime_error("parser: too many states (loop in parse graph?)");
    }
    const auto sit = states_.find(state_name);
    if (sit == states_.end()) {
      throw std::runtime_error("parser: unknown state '" + state_name + "'");
    }
    const ParserState& st = sit->second;

    const HeaderInstance* extracted = nullptr;
    if (!st.header.empty()) {
      const auto hit = schema_.find(st.header);
      if (hit == schema_.end()) {
        throw std::runtime_error("parser: unknown header '" + st.header + "'");
      }
      const HeaderSpec& spec = hit->second;
      const BytesView rest{raw.data.data() + offset, raw.data.size() - offset};
      HeaderInstance& h = pkt.add_header(spec);
      h.values = unpack_header(spec, rest);
      offset += spec.byte_width();
      extracted = &h;
    }

    if (st.select) {
      if (extracted == nullptr) {
        throw std::runtime_error("parser: select in state '" + st.name +
                                 "' without an extracted header");
      }
      const std::uint64_t v = extracted->get(st.select->field);
      const auto cit = st.select->cases.find(v);
      state_name =
          cit == st.select->cases.end() ? st.select->default_next : cit->second;
    } else {
      state_name = st.next;
    }
  }

  pkt.payload.assign(raw.data.begin() + static_cast<std::ptrdiff_t>(offset),
                     raw.data.end());
  return pkt;
}

crypto::Bytes ParserProgram::encode() const {
  crypto::Bytes out;
  const auto put_str = [&out](const std::string& s) {
    crypto::append_u32(out, static_cast<std::uint32_t>(s.size()));
    crypto::append(out, crypto::as_bytes(s));
  };
  crypto::append_u32(out, static_cast<std::uint32_t>(schema_.size()));
  for (const auto& [name, spec] : schema_) {
    put_str(name);
    crypto::append_u32(out, static_cast<std::uint32_t>(spec.fields.size()));
    for (const auto& f : spec.fields) {
      put_str(f.name);
      crypto::append_u32(out, f.bits);
    }
  }
  crypto::append_u32(out, static_cast<std::uint32_t>(states_.size()));
  for (const auto& [name, st] : states_) {
    put_str(name);
    put_str(st.header);
    if (st.select) {
      out.push_back(1);
      put_str(st.select->field);
      crypto::append_u32(out, static_cast<std::uint32_t>(st.select->cases.size()));
      for (const auto& [v, next] : st.select->cases) {
        crypto::append_u64(out, v);
        put_str(next);
      }
      put_str(st.select->default_next);
    } else {
      out.push_back(0);
      put_str(st.next);
    }
  }
  return out;
}

}  // namespace pera::dataplane
