// Header/field schema types for the PISA software switch.
//
// A protocol header is an ordered list of fixed-width fields (max 64 bits
// each, like bmv2's simple_switch limits for scalar fields). Packets are
// parsed against HeaderSpecs by the programmable parser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pera::dataplane {

/// One fixed-width field.
struct FieldSpec {
  std::string name;
  unsigned bits = 0;  // 1..64

  friend bool operator==(const FieldSpec&, const FieldSpec&) = default;
};

/// An ordered list of fields; total width must be a multiple of 8 bits so
/// headers pack cleanly on the wire.
struct HeaderSpec {
  std::string name;
  std::vector<FieldSpec> fields;

  /// Total width in bits.
  [[nodiscard]] unsigned bit_width() const {
    unsigned w = 0;
    for (const auto& f : fields) w += f.bits;
    return w;
  }

  [[nodiscard]] unsigned byte_width() const { return (bit_width() + 7) / 8; }

  /// Index of a field by name, or -1.
  [[nodiscard]] int field_index(const std::string& field) const {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].name == field) return static_cast<int>(i);
    }
    return -1;
  }

  friend bool operator==(const HeaderSpec&, const HeaderSpec&) = default;
};

/// A fully-qualified field reference "header.field".
struct FieldRef {
  std::string header;
  std::string field;

  [[nodiscard]] std::string str() const { return header + "." + field; }

  friend bool operator==(const FieldRef&, const FieldRef&) = default;
  friend auto operator<=>(const FieldRef&, const FieldRef&) = default;
};

/// Parse "header.field" into a FieldRef. Throws std::invalid_argument.
[[nodiscard]] FieldRef parse_field_ref(const std::string& s);

/// Standard header specs used across examples and benches.
namespace stdhdr {
[[nodiscard]] HeaderSpec ethernet();  // dst(48) src(48) ethertype(16)
[[nodiscard]] HeaderSpec ipv4();      // simplified: ver_ihl(8) dscp(8) len(16)
                                      // ttl(8) proto(8) checksum(16)
                                      // src(32) dst(32)
[[nodiscard]] HeaderSpec tcp();       // sport(16) dport(16) seq(32) ack(32)
                                      // flags(16) window(16)
[[nodiscard]] HeaderSpec udp();       // sport(16) dport(16) len(16) csum(16)
}  // namespace stdhdr

}  // namespace pera::dataplane
