#include "dataplane/nf.h"

#include <stdexcept>

namespace pera::dataplane {

namespace {
std::shared_ptr<DataplaneProgram> make_nat_program(
    const StatefulNat::Config& cfg) {
  auto prog = std::make_shared<DataplaneProgram>("stateful_nat", "v1",
                                                 standard_parser());
  prog->add_action(stdaction::drop());

  // snat(xlated_sport, out_port): rewrite the source to the external
  // address and the slot's translated port, then forward WAN-side.
  ActionDef snat;
  snat.name = "snat";
  snat.param_count = 2;
  {
    Op set_src;
    set_src.kind = OpKind::kSetField;
    set_src.dst = FieldRef{"ipv4", "src"};
    set_src.a = Operand::imm(cfg.external_ip);
    snat.ops.push_back(set_src);
    Op set_sport;
    set_sport.kind = OpKind::kSetField;
    set_sport.dst = FieldRef{"tcp", "sport"};
    set_sport.a = Operand::param(0);
    snat.ops.push_back(set_sport);
    Op fwd;
    fwd.kind = OpKind::kSetEgressPort;
    fwd.a = Operand::param(1);
    snat.ops.push_back(fwd);
  }
  prog->add_action(std::move(snat));

  Table& nat = prog->add_table(
      "nat", {KeySpec{{"ipv4", "src"}, MatchKind::kExact, 32},
              KeySpec{{"tcp", "sport"}, MatchKind::kExact, 16}});
  nat.set_default("drop");  // unbound flows don't cross the NAT
  // Entries are installed per arriving flow (packet-writable) but bounded:
  // at capacity the coldest flow's slot is recycled (LRU), so a SYN flood
  // churns the table instead of exhausting it — the guarded exemplar the
  // V9 check measures other programs against.
  nat.set_mutation_profile(/*packet_writable=*/true, cfg.capacity,
                           EvictionPolicy::kLru);

  prog->declare_register("nat_last_seen", cfg.capacity,
                         /*packet_writable=*/true, StateGuard::kSlotRecycle);
  prog->declare_register("nat_flow_packets", cfg.capacity,
                         /*packet_writable=*/true, StateGuard::kSlotRecycle);
  return prog;
}
}  // namespace

StatefulNat::StatefulNat(Config cfg) : cfg_(cfg) {
  if (cfg_.capacity == 0) {
    throw std::invalid_argument("StatefulNat: capacity must be > 0");
  }
  sw_ = std::make_unique<PisaSwitch>(make_nat_program(cfg_));
  nat_ = sw_->program().table("nat");
  nodes_.resize(cfg_.capacity);
  slot_entry_.assign(cfg_.capacity, kNone);
  free_slots_.reserve(cfg_.capacity);
  // Pop order: lowest slot first (purely cosmetic, keeps ports dense).
  for (std::size_t s = cfg_.capacity; s-- > 0;) free_slots_.push_back(s);
}

std::size_t StatefulNat::add_flow(const FlowKey& key, std::uint64_t now) {
  if (const auto it = flows_.find(pack(key)); it != flows_.end()) {
    touch_flow(key, now);
    return it->second;
  }
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = lru_tail_;  // full: evict the coldest flow and reuse its slot
    remove_slot(slot);
    free_slots_.pop_back();
  }

  Node& n = nodes_[slot];
  n.key = key;
  n.last_seen = now;
  n.live = true;
  lru_push_front(slot);
  flows_.emplace(pack(key), slot);

  auto& regs = sw_->registers();
  regs.write("nat_last_seen", slot, now);
  regs.write("nat_flow_packets", slot, 0);

  TableEntry e;
  e.keys = {KeyMatch::exact(key.src_ip), KeyMatch::exact(key.sport)};
  e.action = "snat";
  e.action_params = {static_cast<std::uint64_t>(cfg_.port_base) + slot,
                     cfg_.wan_port};
  const std::size_t idx = nat_->add_entry(std::move(e));
  slot_entry_[slot] = idx;
  if (entry_slot_.size() <= idx) entry_slot_.resize(idx + 1, kNone);
  entry_slot_[idx] = slot;
  return slot;
}

bool StatefulNat::touch_flow(const FlowKey& key, std::uint64_t now) {
  const auto it = flows_.find(pack(key));
  if (it == flows_.end()) return false;
  const std::size_t slot = it->second;
  Node& n = nodes_[slot];
  n.last_seen = now;
  auto& regs = sw_->registers();
  regs.write("nat_last_seen", slot, now);  // no-op when now is unchanged
  regs.write("nat_flow_packets", slot,
             regs.read("nat_flow_packets", slot) + 1);
  if (lru_head_ != slot) {
    lru_unlink(slot);
    lru_push_front(slot);
  }
  return true;
}

std::size_t StatefulNat::expire_flows(std::uint64_t now) {
  std::size_t removed = 0;
  while (lru_tail_ != kNone &&
         nodes_[lru_tail_].last_seen + cfg_.idle_timeout <= now) {
    remove_slot(lru_tail_);
    ++removed;
  }
  return removed;
}

std::size_t StatefulNat::expire_oldest(std::size_t n) {
  std::size_t removed = 0;
  while (removed < n && lru_tail_ != kNone) {
    remove_slot(lru_tail_);
    ++removed;
  }
  return removed;
}

std::optional<std::size_t> StatefulNat::slot_of(const FlowKey& key) const {
  const auto it = flows_.find(pack(key));
  if (it == flows_.end()) return std::nullopt;
  return it->second;
}

RawPacket StatefulNat::make_packet(const FlowKey& key) const {
  PacketSpec spec;
  spec.ingress_port = static_cast<std::uint32_t>(cfg_.lan_port);
  spec.ip_src = key.src_ip;
  spec.sport = key.sport;
  return make_tcp_packet(spec);
}

void StatefulNat::lru_unlink(std::size_t slot) {
  Node& n = nodes_[slot];
  if (n.prev != kNone) nodes_[n.prev].next = n.next;
  if (n.next != kNone) nodes_[n.next].prev = n.prev;
  if (lru_head_ == slot) lru_head_ = n.next;
  if (lru_tail_ == slot) lru_tail_ = n.prev;
  n.prev = n.next = kNone;
}

void StatefulNat::lru_push_front(std::size_t slot) {
  Node& n = nodes_[slot];
  n.prev = kNone;
  n.next = lru_head_;
  if (lru_head_ != kNone) nodes_[lru_head_].prev = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNone) lru_tail_ = slot;
}

void StatefulNat::remove_slot(std::size_t slot) {
  Node& n = nodes_[slot];
  lru_unlink(slot);
  flows_.erase(pack(n.key));
  n.live = false;

  auto& regs = sw_->registers();
  regs.write("nat_last_seen", slot, 0);
  regs.write("nat_flow_packets", slot, 0);

  const std::size_t idx = slot_entry_[slot];
  const std::size_t moved_from = nat_->remove_entry(idx);
  if (moved_from != idx) {
    // The formerly-last entry now lives at idx; remap its slot.
    const std::size_t moved_slot = entry_slot_[moved_from];
    entry_slot_[idx] = moved_slot;
    slot_entry_[moved_slot] = idx;
  }
  entry_slot_.resize(moved_from);
  slot_entry_[slot] = kNone;
  free_slots_.push_back(slot);
}

}  // namespace pera::dataplane
