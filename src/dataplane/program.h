// A complete dataplane program: parse graph, actions, match-action tables
// and register declarations — the unit that gets loaded onto a switch and,
// in this paper, the unit that gets *attested*.
//
// Digest levels correspond to Fig. 4's inertia axis:
//   program_digest()  — parser + actions + table schemas + register decls
//                       (changes only when the program is swapped)
//   tables_digest()   — Merkle root over table *contents*
//                       (changes on control-plane updates)
// Register state (fastest-changing) is digested by RegisterFile itself.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataplane/action.h"
#include "dataplane/parser.h"
#include "dataplane/registers.h"
#include "dataplane/table.h"

namespace pera::dataplane {

/// What keeps a packet-path register array from unbounded adversarial
/// growth or wedging (V9 exhaustion metadata):
///   kSlotRecycle — slots are reclaimed/overwritten when the owning flow
///                  is evicted (StatefulNat's LRU slot reuse);
///   kSaturate    — writes clamp at a bound instead of growing state.
enum class StateGuard : std::uint8_t { kNone = 0, kSlotRecycle = 1,
                                       kSaturate = 2 };

/// A register array declaration plus its mutation metadata.
struct RegisterDecl {
  std::string name;
  std::size_t size = 0;
  bool packet_writable = false;  // mutated on the per-packet path
  StateGuard guard = StateGuard::kNone;
};

/// One attestable unit of mutable dataplane state, enumerated for the
/// V6-V9 coverage analyzer. `capacity` is the entry budget for tables
/// (0 = unbounded) and the array size for registers; `guarded` means an
/// eviction policy (tables) or StateGuard (registers) bounds adversarial
/// growth.
struct StateObject {
  enum class Kind : std::uint8_t { kTable = 0, kRegister = 1 };
  Kind kind = Kind::kTable;
  std::string name;
  std::size_t capacity = 0;
  bool packet_writable = false;
  bool guarded = false;
};

class DataplaneProgram {
 public:
  DataplaneProgram(std::string name, std::string version,
                   ParserProgram parser)
      : name_(std::move(name)),
        version_(std::move(version)),
        parser_(std::move(parser)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& version() const { return version_; }
  [[nodiscard]] const ParserProgram& parser() const { return parser_; }

  void add_action(ActionDef action);
  [[nodiscard]] const ActionDef* action(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, ActionDef>& actions() const {
    return actions_;
  }

  /// Append a table to the ingress pipeline (executed in insertion order).
  Table& add_table(std::string name, std::vector<KeySpec> keys);
  [[nodiscard]] Table* table(const std::string& name);
  [[nodiscard]] const std::vector<std::unique_ptr<Table>>& tables() const {
    return tables_;
  }

  void declare_register(const std::string& name, std::size_t size,
                        bool packet_writable = false,
                        StateGuard guard = StateGuard::kNone);
  [[nodiscard]] const std::vector<RegisterDecl>& register_decls() const {
    return register_decls_;
  }

  /// Enumerate every mutable state object (tables + register arrays) with
  /// its declared mutation metadata — the program-side input to the V6-V9
  /// attestation-coverage analyzer.
  [[nodiscard]] std::vector<StateObject> state_objects() const;

  /// Code-level digest — the "Program" inertia level (parser, actions,
  /// table schemas, register declarations; NOT table entries).
  [[nodiscard]] crypto::Digest program_digest() const;

  /// State-level digest of table contents — the "Tables" inertia level.
  /// Each table's root is maintained incrementally (O(changes) per
  /// measurement); the top tree over the per-table roots is tiny.
  [[nodiscard]] crypto::Digest tables_digest() const;

  /// Reference full recompute (every entry of every table rehashed).
  /// Bit-identical to tables_digest().
  [[nodiscard]] crypto::Digest tables_digest_full() const;

  /// Sum of every table's content revision — advances exactly when some
  /// table's content (and hence tables_digest()) can have changed.
  [[nodiscard]] std::uint64_t tables_revision() const;

 private:
  std::string name_;
  std::string version_;
  ParserProgram parser_;
  std::map<std::string, ActionDef> actions_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<RegisterDecl> register_decls_;
};

/// Per-switch processing statistics.
struct SwitchStats {
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t table_lookups = 0;
  std::uint64_t table_hits = 0;
};

/// The PISA software switch: parse -> match+action pipeline -> deparse.
/// Stages are public so the PERA extension can interleave its evidence
/// stages (Fig. 3 points A-E) around them.
class PisaSwitch {
 public:
  explicit PisaSwitch(std::shared_ptr<DataplaneProgram> program);

  /// Hot-swap the running program (what the Athens attacker did). Register
  /// state is re-declared from the new program.
  void load_program(std::shared_ptr<DataplaneProgram> program);

  [[nodiscard]] const DataplaneProgram& program() const { return *program_; }
  [[nodiscard]] DataplaneProgram& program() { return *program_; }
  [[nodiscard]] std::shared_ptr<DataplaneProgram> program_ptr() {
    return program_;
  }

  [[nodiscard]] RegisterFile& registers() { return regs_; }
  [[nodiscard]] const RegisterFile& registers() const { return regs_; }
  [[nodiscard]] const SwitchStats& stats() const { return stats_; }

  // --- individual stages (for PERA interleaving) -------------------------
  /// Parse. Counts parse errors; on error rethrows std::runtime_error.
  [[nodiscard]] ParsedPacket parse(const RawPacket& raw);

  /// Run every table in pipeline order (executes matched actions).
  void run_pipeline(ParsedPacket& pkt);

  /// Deparse to wire bytes with the egress port. Returns nullopt when the
  /// packet was dropped.
  [[nodiscard]] std::optional<RawPacket> deparse(const ParsedPacket& pkt);

  // --- whole-switch convenience ------------------------------------------
  /// Full parse/pipeline/deparse. Returns nullopt when dropped or on
  /// parse error.
  [[nodiscard]] std::optional<RawPacket> process(const RawPacket& raw);

 private:
  std::shared_ptr<DataplaneProgram> program_;
  RegisterFile regs_;
  SwitchStats stats_;
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace pera::dataplane
