#include "adversary/attacks.h"

#include "dataplane/p4mini.h"

namespace pera::adversary {

void SlowAdversary::on_event(const copland::Term& term,
                             const std::string& place) {
  (void)place;
  // About to be measured? Repair first so the measurement comes out clean.
  const bool measures_component =
      (term.kind == copland::TermKind::kMeasure &&
       term.target == component_ && term.place == place_) ||
      (term.kind == copland::TermKind::kAtom && term.target == component_);
  if (measures_component && platform_->is_corrupt(place_, component_)) {
    platform_->repair(place_, component_);
    ++repairs_;
  }
}

bool SlowAdversary::par_left_first(const copland::Term& term) {
  (void)term;
  // Run the right arm first: in expression (1) that is the corrupt bmon
  // measuring exts, before av gets to look at bmon.
  return false;
}

SwapRecord program_swap_attack(core::Deployment& deployment,
                               const std::string& switch_name) {
  auto& sw = deployment.switch_node(switch_name).pera();
  SwapRecord rec;
  rec.before = sw.dataplane().program().program_digest();
  // The rogue program is compiled from its own P4-mini source and
  // masquerades under the victim's name and version string.
  sw.load_program(dataplane::compile_p4mini(dataplane::p4src::rogue_router_v1()));
  rec.after = sw.dataplane().program().program_digest();
  return rec;
}

void program_restore(core::Deployment& deployment,
                     const std::string& switch_name) {
  auto& sw = deployment.switch_node(switch_name).pera();
  const std::string version = sw.dataplane().program().version();
  sw.load_program(dataplane::make_router(version));
}

netsim::TransitResult TamperingNode::on_transit(netsim::Network& net,
                                                netsim::NodeId self,
                                                netsim::Message& msg) {
  netsim::TransitResult res =
      inner_ != nullptr ? inner_->on_transit(net, self, msg)
                        : netsim::TransitResult{};
  if (!res.forward || msg.type != "data") return res;

  core::FlowBundle bundle = core::FlowBundle::from_message(msg);
  if (bundle.carrier.records.empty()) return res;

  switch (mode_) {
    case Mode::kForge: {
      // Flip one byte in every record's evidence.
      for (auto& rec : bundle.carrier.records) {
        if (rec.evidence.empty()) continue;
        const std::size_t idx = rng_.uniform(rec.evidence.size());
        rec.evidence[idx] ^= 0x55;
      }
      ++tampered_;
      break;
    }
    case Mode::kDrop:
      bundle.carrier.records.clear();
      ++tampered_;
      break;
    case Mode::kReplay: {
      if (!captured_) {
        captured_ = bundle.carrier.records.front().evidence;
      } else {
        for (auto& rec : bundle.carrier.records) rec.evidence = *captured_;
        ++tampered_;
      }
      break;
    }
  }
  bundle.to_message(msg);
  return res;
}

void TamperingNode::on_deliver(netsim::Network& net, netsim::NodeId self,
                               netsim::Message msg) {
  if (inner_ != nullptr) inner_->on_deliver(net, self, std::move(msg));
}

}  // namespace pera::adversary
