// Adversary models — the §3 threat model made executable.
//
//  * SlowAdversary       — the Ramsdell et al. repair attack on layered
//                          attestations (defeats parallel composition (1),
//                          defeated by sequential composition (2)).
//  * ProgramSwapAttack   — the Athens Affair: hot-swap a rogue dataplane
//                          program that behaves identically on non-target
//                          traffic (UC1's detection target).
//  * TamperingNode       — an on-path node that forges, drops or replays
//                          in-band evidence records.
#pragma once

#include <optional>
#include <string>

#include "copland/semantics.h"
#include "copland/testbed.h"
#include "core/deployment.h"
#include "crypto/drbg.h"

namespace pera::adversary {

/// A "slow" adversary (Rowe et al. capability model): it corrupts
/// components *before* the protocol runs, may repair them at any event
/// boundary, and controls the interleaving of parallel branches — but it
/// cannot (re-)corrupt while the protocol is executing.
class SlowAdversary final : public copland::EvalObserver {
 public:
  /// Will repair (place, component) the moment it is about to be
  /// measured, hiding the pre-existing corruption.
  SlowAdversary(copland::TestbedPlatform& platform, std::string place,
                std::string component)
      : platform_(&platform),
        place_(std::move(place)),
        component_(std::move(component)) {}

  void on_event(const copland::Term& term, const std::string& place) override;
  [[nodiscard]] bool par_left_first(const copland::Term& term) override;

  [[nodiscard]] std::size_t repairs_performed() const { return repairs_; }

 private:
  copland::TestbedPlatform* platform_;
  std::string place_;
  std::string component_;
  std::size_t repairs_ = 0;
};

/// Swap a deployment switch's program for the rogue router (same version
/// string — the attacker lies about the version; the *digest* differs).
/// Returns the digests before/after so tests can assert the delta.
struct SwapRecord {
  crypto::Digest before{};
  crypto::Digest after{};
};
SwapRecord program_swap_attack(core::Deployment& deployment,
                               const std::string& switch_name);

/// Restore a legitimate router program (the attacker covering tracks
/// after an audit window).
void program_restore(core::Deployment& deployment,
                     const std::string& switch_name);

/// On-path evidence tampering. Wraps the node's existing behaviour.
class TamperingNode final : public netsim::NodeBehavior {
 public:
  enum class Mode {
    kForge,   // flip bytes inside carried evidence records
    kDrop,    // strip all carried evidence (hide the path)
    kReplay,  // replace carried evidence with a previously captured record
  };

  TamperingNode(netsim::NodeBehavior* inner, Mode mode, std::uint64_t seed)
      : inner_(inner), mode_(mode), rng_(seed) {}

  netsim::TransitResult on_transit(netsim::Network& net, netsim::NodeId self,
                                   netsim::Message& msg) override;
  void on_deliver(netsim::Network& net, netsim::NodeId self,
                  netsim::Message msg) override;

  [[nodiscard]] std::size_t tampered_count() const { return tampered_; }

 private:
  netsim::NodeBehavior* inner_;
  Mode mode_;
  crypto::Drbg rng_;
  std::size_t tampered_ = 0;
  std::optional<crypto::Bytes> captured_;  // for kReplay
};

}  // namespace pera::adversary
