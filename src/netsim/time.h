// Simulated time. All netsim timestamps are nanoseconds from simulation
// start; there is no wall-clock anywhere in the reproduction.
#pragma once

#include <cstdint>

namespace pera::netsim {

using SimTime = std::int64_t;  // nanoseconds

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * 1000;
constexpr SimTime kSecond = 1000 * 1000 * 1000;

constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace pera::netsim
