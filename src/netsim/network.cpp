#include "netsim/network.h"

#include <cstdio>
#include <stdexcept>

#include "obs/obs.h"

namespace pera::netsim {

void Network::attach(NodeId id, NodeBehavior* behavior) {
  if (id >= topo_.node_count()) {
    throw std::invalid_argument("attach: unknown node id");
  }
  behaviors_[id] = behavior;
}

void Network::attach(const std::string& name, NodeBehavior* behavior) {
  attach(topo_.require(name), behavior);
}

NodeBehavior* Network::behavior_of(NodeId id) const {
  const auto it = behaviors_.find(id);
  return it == behaviors_.end() ? nullptr : it->second;
}

void Network::set_node_quarantined(NodeId id, bool quarantined) {
  if (id >= topo_.node_count()) {
    throw std::invalid_argument("set_node_quarantined: unknown node id");
  }
  if (quarantined) {
    quarantined_.insert(id);
  } else {
    quarantined_.erase(id);
  }
  PERA_OBS_GAUGE("net.quarantine.active",
                 static_cast<std::int64_t>(quarantined_.size()));
}

void Network::set_node_quarantined(const std::string& name, bool quarantined) {
  set_node_quarantined(topo_.require(name), quarantined);
}

void Network::set_loss(double per_hop_probability, std::uint64_t seed) {
  loss_ = per_hop_probability;
  loss_rng_.emplace(seed);
}

void Network::send(Message msg) {
  ++stats_.messages_sent;
  msg.sent_at = events_.now();
  PERA_OBS_COUNT("net.messages.sent");
  PERA_OBS_COUNT("net.messages.sent." + msg.type);
  if (trace_ != nullptr) {
    trace_->push_back(TraceEvent{TraceEvent::Kind::kSent, events_.now(),
                                 msg.src, msg.dst, msg.type});
  }
  forward_from(msg.src, std::move(msg));
}

void Network::forward_from(NodeId at, Message msg) {
  // Keep the observability clock in step with the event queue so trace
  // events recorded anywhere in the process carry simulated timestamps.
  if (obs::enabled()) obs::set_sim_now(events_.now());
  if (at == msg.dst) {
    ++stats_.messages_delivered;
    PERA_OBS_COUNT("net.messages.delivered");
    PERA_OBS_OBSERVE("net.delivery.sim_ns." + msg.type,
                     events_.now() - msg.sent_at);
    if (trace_ != nullptr) {
      trace_->push_back(TraceEvent{TraceEvent::Kind::kDelivered,
                                   events_.now(), msg.src, msg.dst,
                                   msg.type});
    }
    const auto it = behaviors_.find(at);
    if (it != behaviors_.end() && it->second != nullptr) {
      it->second->on_deliver(*this, at, std::move(msg));
    }
    return;
  }
  const NodeId next = next_hop_for(at, msg);
  const LinkInfo* link = topo_.link_between(at, next);
  const SimTime delay = link->latency + link->transmit_time(msg.wire_size());
  ++stats_.hops_traversed;
  stats_.bytes_sent += msg.wire_size();
  PERA_OBS_COUNT("net.bytes.sent", msg.wire_size());

  if (loss_ > 0.0 && loss_rng_ && loss_rng_->chance(loss_)) {
    ++stats_.messages_lost;
    PERA_OBS_COUNT("net.messages.lost");
    if (trace_ != nullptr) {
      trace_->push_back(TraceEvent{TraceEvent::Kind::kLost, events_.now(),
                                   at, next, msg.type});
    }
    return;  // the frame never arrives at `next`
  }

  events_.schedule_in(delay, [this, next, msg = std::move(msg)]() mutable {
    if (obs::enabled()) obs::set_sim_now(events_.now());
    SimTime extra = 0;
    if (next != msg.dst) {
      const auto it = behaviors_.find(next);
      if (it != behaviors_.end() && it->second != nullptr) {
        const TransitResult tr = it->second->on_transit(*this, next, msg);
        if (!tr.forward) {
          ++stats_.messages_dropped;
          PERA_OBS_COUNT("net.messages.dropped");
          return;
        }
        extra = tr.delay;
      }
    }
    if (extra > 0) {
      events_.schedule_in(extra, [this, next, msg = std::move(msg)]() mutable {
        forward_from(next, std::move(msg));
      });
    } else {
      forward_from(next, std::move(msg));
    }
  });
}

NodeId Network::next_hop_for(NodeId at, const Message& msg) {
  // Quarantine steering applies to the data plane only; everything else
  // rides the unrestricted shortest path, whose next hop per (at, dst)
  // is stable until the topology changes — cache it. At 10k+ switches
  // re-running Dijkstra per hop per control message is what melts the
  // fleet control plane.
  const bool steered_data = msg.type == "data" && !quarantined_.empty();
  if (!steered_data) {
    if (route_cache_generation_ != topo_.generation()) {
      route_cache_.clear();
      route_cache_generation_ = topo_.generation();
    }
    const auto key = std::make_pair(at, msg.dst);
    const auto cached = route_cache_.find(key);
    if (cached != route_cache_.end()) {
      ++route_cache_hits_;
      return cached->second;
    }
  }
  const auto normal = topo_.shortest_path(at, msg.dst);
  if (normal.size() < 2) {
    throw std::invalid_argument("send: no path from " + topo_.node(at).name +
                                " to " + topo_.node(msg.dst).name);
  }
  if (!steered_data) {
    route_cache_.emplace(std::make_pair(at, msg.dst), normal[1]);
    return normal[1];
  }

  const auto steered =
      topo_.shortest_path_avoiding(at, msg.dst, quarantined_);
  if (steered.size() < 2) {
    ++stats_.reroute_fallbacks;
    PERA_OBS_COUNT("net.reroute.fallback");
    return normal[1];
  }
  if (steered[1] != normal[1]) {
    ++stats_.data_rerouted;
    PERA_OBS_COUNT("net.reroute.data");
  }
  return steered[1];
}

std::string format_trace(const Topology& topo,
                         const std::vector<TraceEvent>& trace) {
  std::string out;
  for (const auto& e : trace) {
    char line[160];
    const char* verb = e.kind == TraceEvent::Kind::kSent        ? "->"
                       : e.kind == TraceEvent::Kind::kDelivered ? "=>"
                                                                : "xx";
    std::snprintf(line, sizeof(line), "%10.1fus  %-10s %s %-10s  %s\n",
                  to_us(e.at), topo.node(e.src).name.c_str(), verb,
                  topo.node(e.dst).name.c_str(), e.type.c_str());
    out += line;
  }
  return out;
}

}  // namespace pera::netsim
