#include "netsim/topology.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace pera::netsim {

NodeId Topology::add_node(const std::string& name, NodeKind kind) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("duplicate node name '" + name + "'");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeInfo{id, name, kind});
  by_name_[name] = id;
  ++generation_;
  return id;
}

void Topology::add_link(NodeId a, NodeId b, SimTime latency, double gbps) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::invalid_argument("add_link: unknown node id");
  }
  if (a == b) throw std::invalid_argument("add_link: self-loop");
  const std::size_t idx = links_.size();
  links_.push_back(LinkInfo{a, b, latency, gbps});
  adj_[a].emplace_back(b, idx);
  adj_[b].emplace_back(a, idx);
  ++generation_;
}

void Topology::add_link(const std::string& a, const std::string& b,
                        SimTime latency, double gbps) {
  add_link(require(a), require(b), latency, gbps);
}

const NodeInfo& Topology::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("unknown node id");
  return nodes_[id];
}

std::optional<NodeId> Topology::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

NodeId Topology::require(const std::string& name) const {
  const auto id = find(name);
  if (!id) throw std::invalid_argument("unknown node '" + name + "'");
  return *id;
}

void Topology::set_link_state(NodeId a, NodeId b, bool up) {
  const auto it = adj_.find(a);
  if (it != adj_.end()) {
    for (const auto& [peer, idx] : it->second) {
      if (peer == b) {
        links_[idx].up = up;
        ++generation_;
        return;
      }
    }
  }
  throw std::invalid_argument("set_link_state: no link " +
                              node(a).name + " - " + node(b).name);
}

void Topology::set_link_state(const std::string& a, const std::string& b,
                              bool up) {
  set_link_state(require(a), require(b), up);
}

const LinkInfo* Topology::link_between(NodeId a, NodeId b) const {
  const auto it = adj_.find(a);
  if (it == adj_.end()) return nullptr;
  for (const auto& [peer, idx] : it->second) {
    if (peer == b) return &links_[idx];
  }
  return nullptr;
}

std::vector<NodeId> Topology::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  const auto it = adj_.find(id);
  if (it == adj_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [peer, idx] : it->second) out.push_back(peer);
  return out;
}

std::vector<NodeId> Topology::shortest_path(NodeId from, NodeId to) const {
  static const std::set<NodeId> kNoAvoid;
  return shortest_path_avoiding(from, to, kNoAvoid);
}

std::vector<NodeId> Topology::shortest_path_avoiding(
    NodeId from, NodeId to, const std::set<NodeId>& avoid) const {
  if (from >= nodes_.size() || to >= nodes_.size()) return {};
  constexpr SimTime kInf = std::numeric_limits<SimTime>::max();
  std::vector<SimTime> dist(nodes_.size(), kInf);
  std::vector<NodeId> prev(nodes_.size(), std::numeric_limits<NodeId>::max());
  using Item = std::pair<SimTime, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[from] = 0;
  pq.emplace(0, from);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    const auto it = adj_.find(u);
    if (it == adj_.end()) continue;
    for (const auto& [v, idx] : it->second) {
      if (!links_[idx].up) continue;
      // Avoided nodes may terminate a path but never transit one.
      if (v != to && avoid.contains(v)) continue;
      const SimTime nd = d + links_[idx].latency;
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  if (dist[to] == kInf) return {};
  std::vector<NodeId> path;
  for (NodeId v = to; v != from; v = prev[v]) path.push_back(v);
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<NodeId> Topology::shortest_path(const std::string& from,
                                            const std::string& to) const {
  return shortest_path(require(from), require(to));
}

std::vector<std::string> Topology::names(const std::vector<NodeId>& path) const {
  std::vector<std::string> out;
  out.reserve(path.size());
  for (NodeId id : path) out.push_back(node(id).name);
  return out;
}

namespace topo {

Topology chain(std::size_t switches, SimTime hop_latency) {
  Topology t;
  t.add_node("client", NodeKind::kHost);
  for (std::size_t i = 1; i <= switches; ++i) {
    t.add_node("s" + std::to_string(i), NodeKind::kSwitch);
  }
  t.add_node("server", NodeKind::kHost);
  t.add_node("Appraiser", NodeKind::kAppraiser);

  t.add_link("client", "s1", hop_latency);
  for (std::size_t i = 1; i < switches; ++i) {
    t.add_link("s" + std::to_string(i), "s" + std::to_string(i + 1),
               hop_latency);
  }
  t.add_link("s" + std::to_string(switches), "server", hop_latency);
  // The appraiser hangs off the first switch (management network).
  t.add_link("s1", "Appraiser", 5 * hop_latency);
  return t;
}

Topology isp() {
  Topology t;
  t.add_node("client", NodeKind::kHost);
  t.add_node("pm_phone", NodeKind::kHost);  // the targeted subscriber
  t.add_node("edge1", NodeKind::kSwitch);
  t.add_node("edge2", NodeKind::kSwitch);
  t.add_node("core1", NodeKind::kSwitch);
  t.add_node("core2", NodeKind::kSwitch);
  t.add_node("core3", NodeKind::kSwitch);
  t.add_node("dpi", NodeKind::kAppliance);
  t.add_node("Appraiser", NodeKind::kAppraiser);

  t.add_link("client", "edge1", 50 * kMicrosecond);
  t.add_link("pm_phone", "edge2", 50 * kMicrosecond);
  t.add_link("edge1", "core1", 100 * kMicrosecond);
  t.add_link("edge2", "core3", 100 * kMicrosecond);
  t.add_link("core1", "core2", 200 * kMicrosecond);
  t.add_link("core2", "core3", 200 * kMicrosecond);
  t.add_link("core1", "core3", 500 * kMicrosecond);  // backup path
  t.add_link("core2", "dpi", 50 * kMicrosecond);
  t.add_link("core1", "Appraiser", 300 * kMicrosecond);
  return t;
}

Topology datacenter() {
  Topology t;
  t.add_node("core1", NodeKind::kSwitch);
  t.add_node("core2", NodeKind::kSwitch);
  for (int i = 1; i <= 4; ++i) {
    t.add_node("agg" + std::to_string(i), NodeKind::kSwitch);
    t.add_node("tor" + std::to_string(i), NodeKind::kSwitch);
  }
  for (int i = 1; i <= 8; ++i) {
    t.add_node("h" + std::to_string(i), NodeKind::kHost);
  }
  t.add_node("Appraiser", NodeKind::kAppraiser);

  for (int i = 1; i <= 4; ++i) {
    const std::string agg = "agg" + std::to_string(i);
    t.add_link("core1", agg, 20 * kMicrosecond, 40.0);
    t.add_link("core2", agg, 20 * kMicrosecond, 40.0);
    t.add_link(agg, "tor" + std::to_string(i), 10 * kMicrosecond, 40.0);
  }
  for (int i = 1; i <= 8; ++i) {
    t.add_link("h" + std::to_string(i), "tor" + std::to_string((i + 1) / 2),
               5 * kMicrosecond, 10.0);
  }
  t.add_link("core1", "Appraiser", 50 * kMicrosecond);
  return t;
}

Topology fleet(std::size_t n_switches, std::size_t fanout,
               SimTime hop_latency) {
  if (fanout == 0) fanout = 1;
  Topology t;
  t.add_node("root", NodeKind::kHost);
  t.add_node("Appraiser", NodeKind::kAppraiser);
  t.add_link("root", "Appraiser", hop_latency);

  const std::size_t regions = (n_switches + fanout - 1) / fanout;
  for (std::size_t r = 0; r < regions; ++r) {
    t.add_node("r" + std::to_string(r), NodeKind::kSwitch);
    t.add_link("root", "r" + std::to_string(r), 2 * hop_latency);
  }
  for (std::size_t i = 0; i < n_switches; ++i) {
    const std::string name = "sw" + std::to_string(i);
    t.add_node(name, NodeKind::kSwitch);
    t.add_link("r" + std::to_string(i / fanout), name, hop_latency);
  }
  return t;
}

}  // namespace topo

}  // namespace pera::netsim
