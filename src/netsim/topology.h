// Network topology: named nodes, bidirectional links with latency and
// bandwidth, Dijkstra shortest paths. Node names double as Copland place
// names, which is how policies and topologies meet.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "netsim/time.h"

namespace pera::netsim {

using NodeId = std::uint32_t;

enum class NodeKind { kHost, kSwitch, kAppliance, kAppraiser };

struct NodeInfo {
  NodeId id = 0;
  std::string name;
  NodeKind kind = NodeKind::kHost;
};

struct LinkInfo {
  NodeId a = 0;
  NodeId b = 0;
  SimTime latency = 10 * kMicrosecond;
  double gbps = 10.0;  // bandwidth
  bool up = true;      // failed links are skipped by routing

  /// Serialization delay for `bytes` at this link's bandwidth.
  [[nodiscard]] SimTime transmit_time(std::size_t bytes) const {
    return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 /
                                (gbps * 1e9) * 1e9);
  }
};

class Topology {
 public:
  /// Add a node; names must be unique. Returns its id.
  NodeId add_node(const std::string& name, NodeKind kind);

  /// Add a bidirectional link. Throws std::invalid_argument on unknown ids.
  void add_link(NodeId a, NodeId b, SimTime latency = 10 * kMicrosecond,
                double gbps = 10.0);
  void add_link(const std::string& a, const std::string& b,
                SimTime latency = 10 * kMicrosecond, double gbps = 10.0);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<NodeInfo>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<LinkInfo>& links() const { return links_; }

  [[nodiscard]] const NodeInfo& node(NodeId id) const;
  [[nodiscard]] std::optional<NodeId> find(const std::string& name) const;
  [[nodiscard]] NodeId require(const std::string& name) const;

  /// The link between a and b, or nullptr.
  [[nodiscard]] const LinkInfo* link_between(NodeId a, NodeId b) const;

  /// Fail or restore a link (affects shortest_path immediately — "the
  /// path might change without warning due to routing changes", §5.1).
  /// Throws std::invalid_argument when no such link exists.
  void set_link_state(NodeId a, NodeId b, bool up);
  void set_link_state(const std::string& a, const std::string& b, bool up);

  /// Neighbors of `id`.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const;

  /// Latency-weighted shortest path (inclusive of endpoints), or empty if
  /// unreachable.
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId from, NodeId to) const;
  [[nodiscard]] std::vector<NodeId> shortest_path(const std::string& from,
                                                  const std::string& to) const;

  /// Shortest path that never transits a node in `avoid`. The endpoints
  /// are exempt (a quarantined switch can still be addressed directly —
  /// the control plane needs to re-attest it). Empty when no such path
  /// exists.
  [[nodiscard]] std::vector<NodeId> shortest_path_avoiding(
      NodeId from, NodeId to, const std::set<NodeId>& avoid) const;

  /// Names along a path.
  [[nodiscard]] std::vector<std::string> names(
      const std::vector<NodeId>& path) const;

  /// Monotonic counter bumped by every mutation that can change routing
  /// (add_node, add_link, set_link_state). Route caches key off it.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

 private:
  std::vector<NodeInfo> nodes_;
  std::vector<LinkInfo> links_;
  std::map<std::string, NodeId> by_name_;
  std::map<NodeId, std::vector<std::pair<NodeId, std::size_t>>> adj_;
  std::uint64_t generation_ = 0;
};

/// Canned topologies used by examples and benches.
namespace topo {

/// A linear chain: client - s1 - s2 - ... - sN - server.
[[nodiscard]] Topology chain(std::size_t switches,
                             SimTime hop_latency = 10 * kMicrosecond);

/// A small ISP-style topology for the Athens scenario: two hosts, edge
/// switches, a core ring, a DPI appliance and an appraiser node hanging
/// off the core.
[[nodiscard]] Topology isp();

/// k=4 fat-tree-ish 3-tier datacenter pod (2 cores, 4 aggs, 4 tors,
/// 8 hosts) plus an appraiser on core1.
[[nodiscard]] Topology datacenter();

/// Fleet-scale management topology for hierarchical appraisal: a "root"
/// host with the central "Appraiser" hanging off it, ceil(n/fanout)
/// regional switches "r0".."rK" star-linked to root, and n leaf switches
/// "sw0".."sw<n-1>" star-linked to their regional (leaf i under regional
/// i/fanout). The regionals are ordinary attested switches — the fleet
/// control plane delegates appraisal to them and the root attests *them*.
[[nodiscard]] Topology fleet(std::size_t n_switches, std::size_t fanout,
                             SimTime hop_latency = 20 * kMicrosecond);

}  // namespace topo

}  // namespace pera::netsim
