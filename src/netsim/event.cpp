#include "netsim/event.h"

#include <stdexcept>

namespace pera::netsim {

void EventQueue::schedule_at(SimTime at, Handler fn) {
  if (at < now_) {
    throw std::invalid_argument("EventQueue: scheduling in the past");
  }
  queue_.push(Item{at, next_seq_++, std::move(fn)});
}

std::size_t EventQueue::run(SimTime until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    if (step()) ++n;
  }
  return n;
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the handler (cheap: std::function) and pop.
  Item item = queue_.top();
  queue_.pop();
  now_ = item.at;
  item.fn();
  return true;
}

}  // namespace pera::netsim
