// Small statistics helpers shared by benches and examples.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace pera::netsim {

/// Streaming summary of a series of samples (latencies, sizes, ...).
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// q in [0,1]; nearest-rank on a sorted copy.
  [[nodiscard]] double percentile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  }

 private:
  std::vector<double> samples_;
};

}  // namespace pera::netsim
