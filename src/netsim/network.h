// The message-passing network: topology + event queue + per-node handlers.
//
// Delivery of a message over a link costs latency + size/bandwidth.
// Multi-hop sends are routed over latency-shortest paths and delivered
// hop-by-hop so that on-path nodes (switches, PERA elements) see and can
// transform every message that transits them.
#pragma once

#include <functional>
#include <vector>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "crypto/bytes.h"
#include "crypto/drbg.h"
#include "netsim/event.h"
#include "netsim/topology.h"

namespace pera::netsim {

/// Sentinel meaning "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// A message in flight. `headers` carries structured metadata (e.g. the
/// serialized attestation policy header); `payload` is opaque bytes.
struct Message {
  NodeId src = 0;
  NodeId dst = 0;             // final destination
  NodeId reply_to = kNoNode;  // who should receive any response
  std::string type;     // "data", "attest-req", "evidence", ...
  crypto::Bytes headers;
  crypto::Bytes payload;
  std::uint64_t flow_id = 0;
  SimTime sent_at = 0;  // stamped by Network::send

  /// Wire size used for transmission delay.
  [[nodiscard]] std::size_t wire_size() const {
    return 64 + headers.size() + payload.size();  // 64 B of L2-L4 framing
  }
};

class Network;

/// Outcome of a transit hook: forward or drop, plus extra processing
/// latency spent at the node (e.g. PERA evidence creation).
struct TransitResult {
  bool forward = true;
  SimTime delay = 0;

  static TransitResult dropped() { return {false, 0}; }
};

/// A node's behaviour. on_transit fires when a message passes *through*
/// the node on its way elsewhere (it may mutate or drop the message and
/// add processing delay); on_deliver fires at the final destination.
class NodeBehavior {
 public:
  virtual ~NodeBehavior() = default;

  virtual TransitResult on_transit(Network& net, NodeId self, Message& msg) {
    (void)net;
    (void)self;
    (void)msg;
    return {};
  }

  virtual void on_deliver(Network& net, NodeId self, Message msg) {
    (void)net;
    (void)self;
    (void)msg;
  }
};

/// Per-network statistics.
struct NetStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  // dropped by a node's transit hook
  std::uint64_t messages_lost = 0;     // lost to link-level loss
  std::uint64_t hops_traversed = 0;
  std::uint64_t bytes_sent = 0;  // sum over hops of wire size
  std::uint64_t data_rerouted = 0;     // data hops steered off the
                                       // unrestricted shortest path by a
                                       // quarantine
  std::uint64_t reroute_fallbacks = 0;  // no quarantine-free path existed;
                                        // the message took the normal one
};

/// One line of a protocol trace (a textual Fig. 2 sequence diagram).
struct TraceEvent {
  enum class Kind { kSent, kDelivered, kLost };
  Kind kind = Kind::kSent;
  SimTime at = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::string type;
};

class Network {
 public:
  explicit Network(Topology topo) : topo_(std::move(topo)) {}

  /// Per-hop message loss probability (0 = reliable, the default).
  /// Deterministic for a given seed.
  void set_loss(double per_hop_probability, std::uint64_t seed);

  /// Record send/deliver/loss events into `sink` (nullptr disables).
  /// The sink must outlive the network or be reset first.
  void record_trace(std::vector<TraceEvent>* sink) { trace_ = sink; }

  [[nodiscard]] Topology& topology() { return topo_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] EventQueue& events() { return events_; }
  [[nodiscard]] SimTime now() const { return events_.now(); }
  [[nodiscard]] const NetStats& stats() const { return stats_; }

  /// Attach behaviour to a node (by id or name). Unattached nodes forward
  /// transit messages untouched and drop deliveries.
  void attach(NodeId id, NodeBehavior* behavior);
  void attach(const std::string& name, NodeBehavior* behavior);

  /// The behaviour currently attached to a node (nullptr when none).
  [[nodiscard]] NodeBehavior* behavior_of(NodeId id) const;

  // --- quarantine-driven rerouting (the ctrl control plane) ----------------
  /// Steer *data* traffic around a node: while quarantined, "data"
  /// messages are routed hop-by-hop over quarantine-free paths (falling
  /// back to the normal path — counted in stats — when none exists).
  /// Control-plane traffic (challenges, evidence, results) is unaffected,
  /// so a quarantined switch can still be re-attested and reinstated.
  void set_node_quarantined(NodeId id, bool quarantined);
  void set_node_quarantined(const std::string& name, bool quarantined);
  [[nodiscard]] const std::set<NodeId>& quarantined_nodes() const {
    return quarantined_;
  }

  /// Send `msg` from msg.src toward msg.dst along the shortest path.
  /// Throws std::invalid_argument when no path exists.
  void send(Message msg);

  /// Run the simulation to quiescence (or until `until`).
  std::size_t run(SimTime until = INT64_MAX) { return events_.run(until); }

  /// Cached (at, dst) -> next-hop entries served for control traffic
  /// since the cache was last invalidated (fleet-scale visibility).
  [[nodiscard]] std::uint64_t route_cache_hits() const {
    return route_cache_hits_;
  }

 private:
  void forward_from(NodeId at, Message msg);
  [[nodiscard]] NodeId next_hop_for(NodeId at, const Message& msg);

  Topology topo_;
  EventQueue events_;
  std::map<NodeId, NodeBehavior*> behaviors_;
  std::set<NodeId> quarantined_;
  NetStats stats_;
  double loss_ = 0.0;
  std::optional<crypto::Drbg> loss_rng_;
  std::vector<TraceEvent>* trace_ = nullptr;
  /// Next-hop cache for traffic routed on the unrestricted shortest path
  /// (everything except quarantine-steered data). At fleet scale the
  /// per-hop Dijkstra dominates the control plane; entries are keyed by
  /// (at, dst) and the whole cache drops when the topology's generation
  /// counter moves (link failures, added links/nodes).
  std::map<std::pair<NodeId, NodeId>, NodeId> route_cache_;
  std::uint64_t route_cache_generation_ = 0;
  std::uint64_t route_cache_hits_ = 0;
};

/// Render a trace as a readable sequence diagram (one line per event).
[[nodiscard]] std::string format_trace(const Topology& topo,
                                       const std::vector<TraceEvent>& trace);

}  // namespace pera::netsim
