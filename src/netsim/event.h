// Discrete-event core: a time-ordered queue of closures. Deterministic:
// ties are broken by insertion sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "netsim/time.h"

namespace pera::netsim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `at` (must be >= now).
  /// Throws std::invalid_argument on scheduling in the past.
  void schedule_at(SimTime at, Handler fn);

  /// Schedule `fn` after `delay` from now.
  void schedule_in(SimTime delay, Handler fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Run events until the queue is empty or `until` is passed.
  /// Returns the number of events executed.
  std::size_t run(SimTime until = INT64_MAX);

  /// Execute exactly one event if available. Returns false if empty.
  bool step();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pera::netsim
