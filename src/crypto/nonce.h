// Nonce generation and replay tracking.
//
// Copland attestation requests are bound by a nonce parameter `n`
// (expressions (3)/(4) and Helble et al.). NonceRegistry issues fresh
// nonces on the relying-party side and detects replays on the appraiser
// side.
#pragma once

#include <cstdint>
#include <set>

#include "crypto/drbg.h"
#include "crypto/sha256.h"

namespace pera::crypto {

/// A 256-bit attestation nonce.
struct Nonce {
  Digest value{};

  friend bool operator==(const Nonce&, const Nonce&) = default;
  friend auto operator<=>(const Nonce&, const Nonce&) = default;

  [[nodiscard]] std::string hex() const { return value.hex(); }
};

/// Issues fresh nonces and remembers which have been seen/consumed.
class NonceRegistry {
 public:
  explicit NonceRegistry(std::uint64_t seed) : drbg_(seed) {}

  /// Issue a fresh nonce (recorded as issued).
  [[nodiscard]] Nonce issue();

  /// Record an observed nonce. Returns false if it was already observed
  /// (replay) — first observation returns true.
  bool observe(const Nonce& n);

  /// True if this registry issued `n`.
  [[nodiscard]] bool issued(const Nonce& n) const {
    return issued_.contains(n.value);
  }

  [[nodiscard]] std::size_t issued_count() const { return issued_.size(); }
  [[nodiscard]] std::size_t observed_count() const { return observed_.size(); }

 private:
  Drbg drbg_;
  std::set<Digest> issued_;
  std::set<Digest> observed_;
};

}  // namespace pera::crypto
