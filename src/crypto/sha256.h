// Streaming SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the root primitive of the whole attestation stack: program
// measurement, evidence hashing (Copland's `#` operator), HMAC, WOTS+
// chains and Merkle trees all bottom out here. The 64-byte block
// compression itself is delegated to the runtime-dispatched backend
// engine (crypto/sha256_backend.h) — scalar, SHA-NI or AVX2
// multi-buffer — so every path below speeds up with the host CPU.
#pragma once

#include <cstdint>

#include "crypto/bytes.h"
#include "crypto/sha256_backend.h"

namespace pera::crypto {

/// Incremental SHA-256 context. Usable as:
///   Sha256 h; h.update(a).update(b); Digest d = h.finish();
/// or via the one-shot helpers below.
class Sha256 {
 public:
  Sha256() { reset(); }

  /// Reset to the initial state (reusable after finish()).
  void reset();

  /// Absorb more input. Chainable.
  Sha256& update(BytesView data);
  Sha256& update(std::string_view s) { return update(as_bytes(s)); }
  Sha256& update(const Digest& d) {
    return update(BytesView{d.v.data(), d.v.size()});
  }

  /// Finalize and return the digest. The context must be reset() before
  /// further use.
  [[nodiscard]] Digest finish();

  /// One-shot fast path: hash `data` into `out`. Block-aligned input is
  /// compressed directly from `data` without staging through the
  /// streaming buffer, and the padding is built in one scratch block.
  /// Byte-identical to sha256(data).
  static void digest_into(BytesView data, Digest& out);

  /// Copy the eight 32-bit chaining words. Only meaningful when the
  /// streaming buffer is block-aligned (e.g. an HMAC ipad/opad midstate);
  /// lets lane-batched callers restart compression from a midstate via
  /// the backend engine.
  void export_state(std::uint32_t out[8]) const;

 private:
  void process_block(const std::uint8_t* block);
  void extract_digest(Digest& out) const;

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// One-shot SHA-256.
[[nodiscard]] Digest sha256(BytesView data);
[[nodiscard]] Digest sha256(std::string_view s);

/// Hash the concatenation of two digests — the Merkle-tree node combiner.
[[nodiscard]] Digest sha256_pair(const Digest& left, const Digest& right);

/// Batched one-block hasher: out[i] = SHA-256 of the exactly-64-byte
/// message blocks[i], stepped through the backend engine's multi-buffer
/// lanes. The Merkle level builder (n sibling pairs per level) runs on
/// this; digests are byte-identical to sha256() per block.
void sha256_block_multi(const std::uint8_t (*blocks)[64], Digest* out,
                        std::size_t n);

}  // namespace pera::crypto
