// Streaming SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the root primitive of the whole attestation stack: program
// measurement, evidence hashing (Copland's `#` operator), HMAC, WOTS+
// chains and Merkle trees all bottom out here.
#pragma once

#include <cstdint>

#include "crypto/bytes.h"

namespace pera::crypto {

/// Incremental SHA-256 context. Usable as:
///   Sha256 h; h.update(a).update(b); Digest d = h.finish();
/// or via the one-shot helpers below.
class Sha256 {
 public:
  Sha256() { reset(); }

  /// Reset to the initial state (reusable after finish()).
  void reset();

  /// Absorb more input. Chainable.
  Sha256& update(BytesView data);
  Sha256& update(std::string_view s) { return update(as_bytes(s)); }
  Sha256& update(const Digest& d) {
    return update(BytesView{d.v.data(), d.v.size()});
  }

  /// Finalize and return the digest. The context must be reset() before
  /// further use.
  [[nodiscard]] Digest finish();

  /// One-shot fast path: hash `data` into `out`. Block-aligned input is
  /// compressed directly from `data` without staging through the
  /// streaming buffer, and the padding is built in one scratch block
  /// instead of finish()'s byte-at-a-time update loop. Byte-identical to
  /// sha256(data) — the Merkle node combiner (sha256_pair) runs on this.
  static void digest_into(BytesView data, Digest& out);

 private:
  void process_block(const std::uint8_t* block);
  void extract_digest(Digest& out) const;

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// One-shot SHA-256.
[[nodiscard]] Digest sha256(BytesView data);
[[nodiscard]] Digest sha256(std::string_view s);

/// Hash the concatenation of two digests — the Merkle-tree node combiner.
[[nodiscard]] Digest sha256_pair(const Digest& left, const Digest& right);

}  // namespace pera::crypto
