#include "crypto/hmac.h"

namespace pera::crypto {

namespace {

// Prepare the 64-byte padded key block: hash long keys, zero-pad short ones.
std::array<std::uint8_t, 64> pad_key(BytesView key) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Digest d = sha256(key);
    std::copy(d.v.begin(), d.v.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }
  return block;
}

}  // namespace

Hmac::Hmac(BytesView key) {
  const auto block = pad_key(key);
  std::array<std::uint8_t, 64> ipad{};
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad_key_[i] = block[i] ^ 0x5c;
  }
  inner_.update(BytesView{ipad.data(), ipad.size()});
}

Hmac& Hmac::update(BytesView data) {
  inner_.update(data);
  return *this;
}

Digest Hmac::finish() {
  const Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(BytesView{opad_key_.data(), opad_key_.size()});
  outer.update(inner_digest);
  return outer.finish();
}

Digest hmac_sha256(BytesView key, BytesView data) {
  Hmac h(key);
  h.update(data);
  return h.finish();
}

std::vector<Digest> derive_keys(BytesView root, std::string_view label,
                                std::size_t n) {
  std::vector<Digest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Hmac h(root);
    h.update(label);
    Bytes idx;
    append_u64(idx, i);
    h.update(BytesView{idx.data(), idx.size()});
    out.push_back(h.finish());
  }
  return out;
}

}  // namespace pera::crypto
