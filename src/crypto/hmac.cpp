#include "crypto/hmac.h"

namespace pera::crypto {

namespace {

// Prepare the 64-byte padded key block: hash long keys, zero-pad short ones.
std::array<std::uint8_t, 64> pad_key(BytesView key) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Digest d = sha256(key);
    std::copy(d.v.begin(), d.v.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }
  return block;
}

}  // namespace

HmacKey::HmacKey(BytesView key) {
  const auto block = pad_key(key);
  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }
  inner_mid_.update(BytesView{ipad.data(), ipad.size()});
  outer_mid_.update(BytesView{opad.data(), opad.size()});
}

Digest HmacKey::mac(BytesView data) const {
  Sha256 inner = inner_mid_;
  inner.update(data);
  Sha256 outer = outer_mid_;
  outer.update(inner.finish());
  return outer.finish();
}

Hmac& Hmac::update(BytesView data) {
  inner_.update(data);
  return *this;
}

Digest Hmac::finish() {
  outer_mid_.update(inner_.finish());
  return outer_mid_.finish();
}

Digest hmac_sha256(BytesView key, BytesView data) {
  return HmacKey(key).mac(data);
}

std::vector<Digest> derive_keys(BytesView root, std::string_view label,
                                std::size_t n) {
  const HmacKey key(root);  // one key schedule for all n derivations
  std::vector<Digest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Hmac h(key);
    h.update(label);
    Bytes idx;
    append_u64(idx, i);
    h.update(BytesView{idx.data(), idx.size()});
    out.push_back(h.finish());
  }
  return out;
}

}  // namespace pera::crypto
