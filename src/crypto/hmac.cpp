#include "crypto/hmac.h"

#include <cstring>

#include "crypto/sha256_backend.h"

namespace pera::crypto {

namespace {

// Prepare the 64-byte padded key block: hash long keys, zero-pad short ones.
std::array<std::uint8_t, 64> pad_key(BytesView key) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Digest d = sha256(key);
    std::copy(d.v.begin(), d.v.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }
  return block;
}

}  // namespace

HmacKey::HmacKey(BytesView key) {
  const auto block = pad_key(key);
  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }
  inner_mid_.update(BytesView{ipad.data(), ipad.size()});
  outer_mid_.update(BytesView{opad.data(), opad.size()});
}

void HmacKey::export_midstates(std::uint32_t inner[8],
                               std::uint32_t outer[8]) const {
  inner_mid_.export_state(inner);
  outer_mid_.export_state(outer);
}

Digest HmacKey::mac(BytesView data) const {
  Sha256 inner = inner_mid_;
  inner.update(data);
  Sha256 outer = outer_mid_;
  outer.update(inner.finish());
  return outer.finish();
}

Hmac& Hmac::update(BytesView data) {
  inner_.update(data);
  return *this;
}

Digest Hmac::finish() {
  outer_mid_.update(inner_.finish());
  return outer_mid_.finish();
}

Digest hmac_sha256(BytesView key, BytesView data) {
  return HmacKey(key).mac(data);
}

namespace {

inline void store_be32_at(std::uint8_t* p, std::uint32_t x) {
  p[0] = static_cast<std::uint8_t>(x >> 24);
  p[1] = static_cast<std::uint8_t>(x >> 16);
  p[2] = static_cast<std::uint8_t>(x >> 8);
  p[3] = static_cast<std::uint8_t>(x);
}

inline void store_be64_at(std::uint8_t* p, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(x >> (56 - 8 * i));
  }
}

// Inner message per derivation is label || be64(i); it and the padding
// fit one block iff label.size() + 8 + 1 + 8 <= 64.
constexpr std::size_t kMaxOneBlockLabel = 47;

void derive_keys_batched(const HmacKey& key, std::string_view label,
                         Digest* out, std::size_t n) {
  using engine::kMaxLanes;
  const engine::Backend& be = engine::active();
  const std::size_t lanes =
      be.lanes < 1 ? 1 : (be.lanes > kMaxLanes ? kMaxLanes : be.lanes);

  std::uint32_t inner_mid[8];
  std::uint32_t outer_mid[8];
  key.export_midstates(inner_mid, outer_mid);

  const std::size_t len = label.size();
  const std::uint64_t inner_bits = (64 + len + 8) * 8;
  constexpr std::uint64_t kOuterBits = (64 + 32) * 8;

  // Per-lane block template: label, a counter slot, padding and the
  // inner bit length. Only the counter changes between derivations.
  alignas(32) std::uint8_t blk[kMaxLanes][64];
  std::uint32_t st[kMaxLanes][8];
  for (std::size_t j = 0; j < lanes; ++j) {
    std::memset(blk[j], 0, 64);
    std::memcpy(blk[j], label.data(), len);
    blk[j][len + 8] = 0x80;
    store_be64_at(blk[j] + 56, inner_bits);
  }

  for (std::size_t base = 0; base < n; base += lanes) {
    const std::size_t m = base + lanes <= n ? lanes : n - base;
    for (std::size_t j = 0; j < m; ++j) {
      store_be64_at(blk[j] + len, base + j);
      std::memcpy(st[j], inner_mid, sizeof(st[j]));
    }
    be.compress_multi(st, blk, m);
    // Rewrite each lane's block as the outer block: inner digest,
    // padding, 768-bit length.
    for (std::size_t j = 0; j < m; ++j) {
      for (int i = 0; i < 8; ++i) store_be32_at(blk[j] + 4 * i, st[j][i]);
      std::memset(blk[j] + 32, 0, 32);
      blk[j][32] = 0x80;
      store_be64_at(blk[j] + 56, kOuterBits);
      std::memcpy(st[j], outer_mid, sizeof(st[j]));
    }
    be.compress_multi(st, blk, m);
    for (std::size_t j = 0; j < m; ++j) {
      for (int i = 0; i < 8; ++i) {
        store_be32_at(out[base + j].v.data() + 4 * i, st[j][i]);
      }
      // Restore the inner-template constants the outer rewrite clobbered.
      std::memset(blk[j], 0, 64);
      std::memcpy(blk[j], label.data(), len);
      blk[j][len + 8] = 0x80;
      store_be64_at(blk[j] + 56, inner_bits);
    }
  }
}

}  // namespace

void derive_keys_into(BytesView root, std::string_view label, Digest* out,
                      std::size_t n) {
  const HmacKey key(root);  // one key schedule for all n derivations
  if (label.size() <= kMaxOneBlockLabel) {
    derive_keys_batched(key, label, out, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    Hmac h(key);
    h.update(label);
    Bytes idx;
    append_u64(idx, i);
    h.update(BytesView{idx.data(), idx.size()});
    out[i] = h.finish();
  }
}

std::vector<Digest> derive_keys(BytesView root, std::string_view label,
                                std::size_t n) {
  std::vector<Digest> out(n);
  derive_keys_into(root, label, out.data(), n);
  return out;
}

}  // namespace pera::crypto
