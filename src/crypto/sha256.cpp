#include "crypto/sha256.h"

#include <cstring>

namespace pera::crypto {

namespace {

inline void store_be64(std::uint8_t* p, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(x >> (56 - 8 * i));
  }
}

}  // namespace

void Sha256::reset() {
  std::memcpy(state_, engine::kInit, sizeof(state_));
  buffer_len_ = 0;
  total_bits_ = 0;
}

void Sha256::process_block(const std::uint8_t* block) {
  engine::compress(state_, block);
}

Sha256& Sha256::update(BytesView data) {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t i = 0;
  if (buffer_len_ > 0) {
    while (buffer_len_ < 64 && i < data.size()) {
      buffer_[buffer_len_++] = data[i++];
    }
    if (buffer_len_ == 64) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }
  while (i + 64 <= data.size()) {
    process_block(data.data() + i);
    i += 64;
  }
  while (i < data.size()) {
    buffer_[buffer_len_++] = data[i++];
  }
  return *this;
}

void Sha256::extract_digest(Digest& out) const {
  for (int i = 0; i < 8; ++i) {
    out.v[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out.v[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out.v[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out.v[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
}

void Sha256::export_state(std::uint32_t out[8]) const {
  std::memcpy(out, state_, sizeof(state_));
}

Digest Sha256::finish() {
  // Padding assembled directly in the block buffer — no byte-at-a-time
  // update loop on the (hot) HMAC finish path.
  const std::uint64_t bits = total_bits_;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_ + buffer_len_, 0, 64 - buffer_len_);
    process_block(buffer_);
    buffer_len_ = 0;
  }
  std::memset(buffer_ + buffer_len_, 0, 56 - buffer_len_);
  store_be64(buffer_ + 56, bits);
  process_block(buffer_);

  Digest out;
  extract_digest(out);
  return out;
}

void Sha256::digest_into(BytesView data, Digest& out) {
  Sha256 h;
  const std::size_t n = data.size();
  std::size_t i = 0;
  while (i + 64 <= n) {
    h.process_block(data.data() + i);
    i += 64;
  }

  // Tail + padding assembled in scratch blocks (no streaming buffer).
  const std::size_t rem = n - i;
  std::uint8_t block[64] = {};
  if (rem > 0) std::memcpy(block, data.data() + i, rem);
  block[rem] = 0x80;
  const std::uint64_t bits = static_cast<std::uint64_t>(n) * 8;
  if (rem < 56) {
    store_be64(block + 56, bits);
    h.process_block(block);
  } else {
    h.process_block(block);
    std::uint8_t last[64] = {};
    store_be64(last + 56, bits);
    h.process_block(last);
  }
  h.extract_digest(out);
}

Digest sha256(BytesView data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest sha256(std::string_view s) { return sha256(as_bytes(s)); }

Digest sha256_pair(const Digest& left, const Digest& right) {
  // Exactly one aligned block: the digest_into fast path compresses it
  // straight off the stack — the Merkle proof-path combiner runs on this.
  std::uint8_t block[64];
  std::memcpy(block, left.v.data(), 32);
  std::memcpy(block + 32, right.v.data(), 32);
  Digest out;
  Sha256::digest_into(BytesView{block, 64}, out);
  return out;
}

void sha256_block_multi(const std::uint8_t (*blocks)[64], Digest* out,
                        std::size_t n) {
  using engine::kMaxLanes;
  const engine::Backend& be = engine::active();
  const std::size_t lanes =
      be.lanes < 1 ? 1 : (be.lanes > kMaxLanes ? kMaxLanes : be.lanes);

  // The second compression round is the same padding block for every
  // lane: after 64 message bytes, 0x80 then the 512-bit big-endian
  // length (0x0200 at bytes 62..63).
  struct PadLanes {
    alignas(32) std::uint8_t b[kMaxLanes][64]{};
    PadLanes() {
      for (auto& blk : b) {
        blk[0] = 0x80;
        blk[62] = 2;
      }
    }
  };
  static const PadLanes pad;

  std::uint32_t states[kMaxLanes][8];
  for (std::size_t base = 0; base < n; base += lanes) {
    const std::size_t m = base + lanes <= n ? lanes : n - base;
    for (std::size_t j = 0; j < m; ++j) {
      std::memcpy(states[j], engine::kInit, sizeof(states[j]));
    }
    be.compress_multi(states, blocks + base, m);
    be.compress_multi(states, pad.b, m);
    for (std::size_t j = 0; j < m; ++j) {
      for (int i = 0; i < 8; ++i) {
        const std::uint32_t x = states[j][i];
        out[base + j].v[4 * i] = static_cast<std::uint8_t>(x >> 24);
        out[base + j].v[4 * i + 1] = static_cast<std::uint8_t>(x >> 16);
        out[base + j].v[4 * i + 2] = static_cast<std::uint8_t>(x >> 8);
        out[base + j].v[4 * i + 3] = static_cast<std::uint8_t>(x);
      }
    }
  }
}

}  // namespace pera::crypto
