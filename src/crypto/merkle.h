// Merkle trees and an XMSS-style many-time signature scheme.
//
// MerkleTree is also used on its own by the evidence engine to commit to
// table contents (a PERA switch attests the Merkle root of its match-action
// tables rather than shipping every entry).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/sha256.h"
#include "crypto/wots.h"

namespace pera::crypto {

/// Authentication path for one leaf: sibling digests bottom-up.
struct MerkleProof {
  std::uint64_t leaf_index = 0;
  std::vector<Digest> siblings;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static MerkleProof deserialize(BytesView data);
};

/// Binary Merkle tree over pre-hashed leaves. Odd nodes are promoted
/// (duplicated-free: the unpaired node moves up unchanged).
class MerkleTree {
 public:
  /// Build from leaf digests. An empty tree has the all-zero root.
  explicit MerkleTree(std::vector<Digest> leaves);

  [[nodiscard]] const Digest& root() const { return root_; }
  [[nodiscard]] std::size_t leaf_count() const { return levels_.empty() ? 0 : levels_[0].size(); }

  /// Authentication path for leaf `index`. Throws std::out_of_range.
  [[nodiscard]] MerkleProof prove(std::uint64_t index) const;

  /// Recompute the root implied by (leaf, proof).
  [[nodiscard]] static Digest root_from_proof(const Digest& leaf,
                                              const MerkleProof& proof);

  /// Full verification against a known root.
  [[nodiscard]] static bool verify(const Digest& root, const Digest& leaf,
                                   const MerkleProof& proof);

 private:
  std::vector<std::vector<Digest>> levels_;  // levels_[0] = leaves
  Digest root_{};
};

/// XMSS-style many-time signature: a Merkle tree over 2^height WOTS public
/// keys. The signer is *stateful* — each signature consumes one leaf.
struct XmssSignature {
  std::uint64_t leaf_index = 0;
  wots::Signature ots;
  MerkleProof auth_path;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static XmssSignature deserialize(BytesView data);
  [[nodiscard]] std::size_t wire_size() const;
};

class XmssKeyPair {
 public:
  /// Generate a keypair with 2^height one-time keys from `seed`.
  XmssKeyPair(const Digest& seed, unsigned height);

  [[nodiscard]] const Digest& public_root() const { return tree_->root(); }
  [[nodiscard]] std::uint64_t capacity() const { return std::uint64_t{1} << height_; }
  [[nodiscard]] std::uint64_t signatures_used() const { return next_leaf_; }
  [[nodiscard]] bool exhausted() const { return next_leaf_ >= capacity(); }

  /// Sign a message digest, consuming the next leaf.
  /// Throws std::runtime_error when the keypair is exhausted.
  [[nodiscard]] XmssSignature sign(const Digest& message);

  /// Verify a signature against a public root.
  [[nodiscard]] static bool verify(const Digest& public_root,
                                   const Digest& message,
                                   const XmssSignature& sig);

 private:
  Digest seed_{};
  unsigned height_;
  std::uint64_t next_leaf_ = 0;
  std::optional<MerkleTree> tree_;
};

}  // namespace pera::crypto
