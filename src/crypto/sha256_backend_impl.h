// Internal backend entry points — implementation detail of the engine.
//
// Each SIMD translation unit is compiled with its target flags only when
// the toolchain supports them on this architecture (see
// src/crypto/CMakeLists.txt); otherwise it compiles to a stub whose
// *_compiled() probe returns false, and the dispatcher never exposes the
// backend. This keeps non-x86 builds green without a single #ifdef
// outside the crypto engine.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pera::crypto::engine::detail {

/// FIPS 180-4 round constants K0..K63 (shared by every backend; the
/// SHA-NI schedule loads them four at a time).
extern const std::uint32_t kRound[64];

void scalar_compress(std::uint32_t state[8], const std::uint8_t block[64]);
void scalar_compress_multi(std::uint32_t (*states)[8],
                           const std::uint8_t (*blocks)[64], std::size_t n);

[[nodiscard]] bool shani_compiled();
void shani_compress(std::uint32_t state[8], const std::uint8_t block[64]);
void shani_compress_multi(std::uint32_t (*states)[8],
                          const std::uint8_t (*blocks)[64], std::size_t n);

[[nodiscard]] bool avx2_compiled();
void avx2_compress_multi(std::uint32_t (*states)[8],
                         const std::uint8_t (*blocks)[64], std::size_t n);

}  // namespace pera::crypto::engine::detail
