// AVX2 8-lane multi-buffer SHA-256 backend.
//
// Structure-of-arrays over eight *independent* blocks: ymm word i holds
// W[t] (or working variable) of lanes 0..7, so the 64 scalar rounds run
// once for eight hashes. Lane transposition in/out is done with strided
// vpgatherdd loads (the (*)[64] / (*)[8] array signatures guarantee the
// fixed 64- and 32-byte strides) and store+scatter on exit. Partial
// batches are padded into a local 8-lane buffer — correctness over
// micro-optimizing the tail, which the lockstep callers rarely hit.
//
// Compiled with -mavx2 only when the toolchain supports it
// (PERA_SHA256_AVX2 set by CMake); otherwise a stub.
#include "crypto/sha256_backend_impl.h"

#if defined(PERA_SHA256_AVX2)

#include <immintrin.h>

#include <cstring>

namespace pera::crypto::engine::detail {

bool avx2_compiled() { return true; }

namespace {

template <int N>
inline __m256i rotr(__m256i x) {
  return _mm256_or_si256(_mm256_srli_epi32(x, N), _mm256_slli_epi32(x, 32 - N));
}

inline __m256i add3(__m256i a, __m256i b, __m256i c) {
  return _mm256_add_epi32(_mm256_add_epi32(a, b), c);
}

// Compress exactly eight lanes.
void compress8(std::uint32_t (*states)[8], const std::uint8_t (*blocks)[64]) {
  // Per-lane byte offsets between consecutive blocks / states.
  const __m256i block_idx =
      _mm256_setr_epi32(0, 64, 128, 192, 256, 320, 384, 448);
  const __m256i state_idx = _mm256_setr_epi32(0, 8, 16, 24, 32, 40, 48, 56);
  const __m256i bswap = _mm256_setr_epi8(
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,  //
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);

  __m256i w[16];
  for (int t = 0; t < 16; ++t) {
    const __m256i v = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(blocks[0] + 4 * t), block_idx, 1);
    w[t] = _mm256_shuffle_epi8(v, bswap);
  }

  __m256i s[8];
  for (int i = 0; i < 8; ++i) {
    s[i] = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(&states[0][i]), state_idx, 4);
  }
  __m256i a = s[0], b = s[1], c = s[2], d = s[3];
  __m256i e = s[4], f = s[5], g = s[6], h = s[7];

  for (int t = 0; t < 64; ++t) {
    __m256i wt;
    if (t < 16) {
      wt = w[t];
    } else {
      const __m256i w15 = w[(t - 15) & 15];
      const __m256i w2 = w[(t - 2) & 15];
      const __m256i s0 = _mm256_xor_si256(
          _mm256_xor_si256(rotr<7>(w15), rotr<18>(w15)),
          _mm256_srli_epi32(w15, 3));
      const __m256i s1 = _mm256_xor_si256(
          _mm256_xor_si256(rotr<17>(w2), rotr<19>(w2)),
          _mm256_srli_epi32(w2, 10));
      wt = add3(_mm256_add_epi32(w[t & 15], s0), w[(t - 7) & 15], s1);
      w[t & 15] = wt;
    }
    const __m256i sig1 = _mm256_xor_si256(
        _mm256_xor_si256(rotr<6>(e), rotr<11>(e)), rotr<25>(e));
    const __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f),
                                        _mm256_andnot_si256(e, g));
    const __m256i t1 = add3(_mm256_add_epi32(h, sig1),
                            _mm256_add_epi32(ch, _mm256_set1_epi32(
                                static_cast<int>(kRound[t]))),
                            wt);
    const __m256i sig0 = _mm256_xor_si256(
        _mm256_xor_si256(rotr<2>(a), rotr<13>(a)), rotr<22>(a));
    const __m256i maj = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
        _mm256_and_si256(b, c));
    const __m256i t2 = _mm256_add_epi32(sig0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, t1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(t1, t2);
  }

  const __m256i out[8] = {
      _mm256_add_epi32(s[0], a), _mm256_add_epi32(s[1], b),
      _mm256_add_epi32(s[2], c), _mm256_add_epi32(s[3], d),
      _mm256_add_epi32(s[4], e), _mm256_add_epi32(s[5], f),
      _mm256_add_epi32(s[6], g), _mm256_add_epi32(s[7], h)};
  alignas(32) std::uint32_t tmp[8];
  for (int i = 0; i < 8; ++i) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), out[i]);
    for (int lane = 0; lane < 8; ++lane) states[lane][i] = tmp[lane];
  }
}

}  // namespace

void avx2_compress_multi(std::uint32_t (*states)[8],
                         const std::uint8_t (*blocks)[64], std::size_t n) {
  while (n >= 8) {
    compress8(states, blocks);
    states += 8;
    blocks += 8;
    n -= 8;
  }
  if (n == 0) return;
  // Tail: pad to a full 8-lane batch (unused lanes replay lane 0).
  alignas(32) std::uint8_t pblocks[8][64];
  std::uint32_t pstates[8][8];
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t src = i < n ? i : 0;
    std::memcpy(pblocks[i], blocks[src], 64);
    std::memcpy(pstates[i], states[src], sizeof(pstates[i]));
  }
  compress8(pstates, pblocks);
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(states[i], pstates[i], sizeof(pstates[i]));
  }
}

}  // namespace pera::crypto::engine::detail

#else  // !PERA_SHA256_AVX2

namespace pera::crypto::engine::detail {

bool avx2_compiled() { return false; }

void avx2_compress_multi(std::uint32_t (*)[8], const std::uint8_t (*)[64],
                         std::size_t) {}

}  // namespace pera::crypto::engine::detail

#endif  // PERA_SHA256_AVX2
