#include "crypto/drbg.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace pera::crypto {

namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b;
  d = std::rotl(d ^ a, 16);
  c += d;
  b = std::rotl(b ^ c, 12);
  a += b;
  d = std::rotl(d ^ a, 8);
  c += d;
  b = std::rotl(b ^ c, 7);
}

constexpr std::uint32_t kSigma[4] = {0x61707865u, 0x3320646eu, 0x79622d32u,
                                     0x6b206574u};

}  // namespace

Drbg::Drbg(std::uint64_t seed) : Drbg(sha256(BytesView{
                                      reinterpret_cast<const std::uint8_t*>(&seed),
                                      sizeof(seed)})) {}

Drbg::Drbg(const Digest& seed) {
  state_[0] = kSigma[0];
  state_[1] = kSigma[1];
  state_[2] = kSigma[2];
  state_[3] = kSigma[3];
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = (static_cast<std::uint32_t>(seed.v[4 * i]) << 24) |
                    (static_cast<std::uint32_t>(seed.v[4 * i + 1]) << 16) |
                    (static_cast<std::uint32_t>(seed.v[4 * i + 2]) << 8) |
                    static_cast<std::uint32_t>(seed.v[4 * i + 3]);
  }
  state_[12] = 0;  // block counter
  state_[13] = 0;
  state_[14] = 0;
  state_[15] = 0;
}

void Drbg::refill() {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t w = x[i] + state_[i];
    block_[4 * i] = static_cast<std::uint8_t>(w);
    block_[4 * i + 1] = static_cast<std::uint8_t>(w >> 8);
    block_[4 * i + 2] = static_cast<std::uint8_t>(w >> 16);
    block_[4 * i + 3] = static_cast<std::uint8_t>(w >> 24);
  }
  // 64-bit counter over words 12-13.
  if (++state_[12] == 0) ++state_[13];
  pos_ = 0;
}

void Drbg::fill(std::uint8_t* out, std::size_t len) {
  std::size_t i = 0;
  while (i < len) {
    if (pos_ == 64) refill();
    const std::size_t take = std::min(len - i, std::size_t{64} - pos_);
    std::memcpy(out + i, block_.data() + pos_, take);
    pos_ += take;
    i += take;
  }
}

Bytes Drbg::bytes(std::size_t n) {
  Bytes out(n);
  fill(out.data(), n);
  return out;
}

Digest Drbg::digest() {
  Digest d;
  fill(d.v.data(), d.v.size());
  return d;
}

std::uint64_t Drbg::next_u64() {
  std::uint8_t buf[8];
  fill(buf, 8);
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x = (x << 8) | buf[i];
  return x;
}

std::uint64_t Drbg::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Drbg::uniform: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % bound;
}

double Drbg::uniform01() {
  // 53 random bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Drbg::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Drbg Drbg::fork(std::string_view label) {
  Hmac h(BytesView{reinterpret_cast<const std::uint8_t*>(state_.data()),
                   state_.size() * sizeof(std::uint32_t)});
  h.update(as_bytes(label));
  Bytes ctr;
  append_u64(ctr, fork_count_++);
  h.update(BytesView{ctr.data(), ctr.size()});
  return Drbg(h.finish());
}

}  // namespace pera::crypto
