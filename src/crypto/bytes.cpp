#include "crypto/bytes.h"

#include <stdexcept>

namespace pera::crypto {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string Digest::hex() const { return to_hex(BytesView{v.data(), v.size()}); }

std::string Digest::short_hex() const { return hex().substr(0, 8); }

void append_u32(Bytes& dst, std::uint32_t x) {
  dst.push_back(static_cast<std::uint8_t>(x >> 24));
  dst.push_back(static_cast<std::uint8_t>(x >> 16));
  dst.push_back(static_cast<std::uint8_t>(x >> 8));
  dst.push_back(static_cast<std::uint8_t>(x));
}

void append_u64(Bytes& dst, std::uint64_t x) {
  append_u32(dst, static_cast<std::uint32_t>(x >> 32));
  append_u32(dst, static_cast<std::uint32_t>(x));
}

std::uint32_t read_u32(BytesView src, std::size_t off) {
  if (off + 4 > src.size()) {
    throw std::out_of_range("read_u32: past end of buffer");
  }
  return (static_cast<std::uint32_t>(src[off]) << 24) |
         (static_cast<std::uint32_t>(src[off + 1]) << 16) |
         (static_cast<std::uint32_t>(src[off + 2]) << 8) |
         static_cast<std::uint32_t>(src[off + 3]);
}

std::uint64_t read_u64(BytesView src, std::size_t off) {
  return (static_cast<std::uint64_t>(read_u32(src, off)) << 32) |
         read_u32(src, off + 4);
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace pera::crypto
