// Incremental Merkle tree: a MerkleTree with a persistent node store and
// O(log n) dirty-path recompute, so re-digesting mutable state costs
// O(changes since the last root) instead of O(state).
//
// The build rule is byte-identical to MerkleTree (sibling pairs hashed
// with sha256_pair semantics, unpaired trailing nodes promoted unchanged),
// so for any leaf sequence root() == MerkleTree(leaves).root(). Dirty
// leaves are flushed level by level through the backend engine's
// multi-buffer SHA-256 lanes (sha256_block_multi), exactly like the batch
// builder in merkle.cpp.
//
// Not thread-safe: root() mutates the node store. The dataplane owns one
// tree per table / register file and digests from a single thread.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace pera::crypto {

class IncrementalMerkleTree {
 public:
  /// Cumulative work counters, for the dataplane.digest.* metrics and the
  /// O(Δ) assertions in tests/bench.
  struct Stats {
    std::uint64_t leaf_writes = 0;     // set_leaf / append_leaf calls
    std::uint64_t truncates = 0;
    std::uint64_t flushes = 0;         // root() calls that had work to do
    std::uint64_t nodes_rehashed = 0;  // inner nodes recomputed by hashing
    std::uint64_t full_rebuilds = 0;   // assign() calls
  };

  IncrementalMerkleTree() = default;
  explicit IncrementalMerkleTree(std::vector<Digest> leaves) {
    assign(std::move(leaves));
  }

  /// Replace the whole leaf set (full O(n) rebuild on next root()).
  void assign(std::vector<Digest> leaves);

  /// Overwrite leaf `index`; only its root path is recomputed on the next
  /// root(). Throws std::out_of_range.
  void set_leaf(std::size_t index, const Digest& d);

  /// Append a leaf; returns its index. The previous last leaf's path is
  /// also marked dirty (its promotion status may have changed).
  std::size_t append_leaf(const Digest& d);

  /// Drop trailing leaves until `new_count` remain. No-op when new_count
  /// >= leaf_count(). truncate(0) empties the tree (all-zero root).
  void truncate(std::size_t new_count);

  void clear() { truncate(0); }

  [[nodiscard]] std::size_t leaf_count() const {
    return levels_.empty() ? 0 : levels_[0].size();
  }
  [[nodiscard]] const Digest& leaf(std::size_t index) const;

  /// Recompute dirty paths (if any) and return the cached root.
  [[nodiscard]] const Digest& root();

  /// True when root() would have to rehash something.
  [[nodiscard]] bool dirty() const { return !clean_; }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Reference root: rebuild from the current leaves via the batch
  /// builder, ignoring the incremental store (for differential tests).
  [[nodiscard]] Digest full_root() const;

 private:
  void flush();

  std::vector<std::vector<Digest>> levels_;  // levels_[0] = leaves
  std::vector<std::size_t> dirty_;           // dirty leaf indices (dups ok)
  bool all_dirty_ = false;                   // assign() pending
  bool clean_ = true;                        // root_ matches the leaves
  Digest root_{};
  Stats stats_;
};

}  // namespace pera::crypto
