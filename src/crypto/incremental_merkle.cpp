#include "crypto/incremental_merkle.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "crypto/merkle.h"

namespace pera::crypto {

void IncrementalMerkleTree::assign(std::vector<Digest> leaves) {
  levels_.clear();
  if (!leaves.empty()) levels_.push_back(std::move(leaves));
  dirty_.clear();
  all_dirty_ = true;
  clean_ = false;
  ++stats_.full_rebuilds;
}

void IncrementalMerkleTree::set_leaf(std::size_t index, const Digest& d) {
  if (levels_.empty() || index >= levels_[0].size()) {
    throw std::out_of_range("IncrementalMerkleTree::set_leaf: index");
  }
  if (levels_[0][index] == d) return;  // no-op write: subtree stays valid
  levels_[0][index] = d;
  dirty_.push_back(index);
  clean_ = false;
  ++stats_.leaf_writes;
}

std::size_t IncrementalMerkleTree::append_leaf(const Digest& d) {
  if (levels_.empty()) levels_.emplace_back();
  auto& leaves = levels_[0];
  const std::size_t index = leaves.size();
  leaves.push_back(d);
  dirty_.push_back(index);
  // The formerly-last leaf's ancestors are the last node of every level;
  // growing the tree can flip their promotion status.
  if (index > 0) dirty_.push_back(index - 1);
  clean_ = false;
  ++stats_.leaf_writes;
  return index;
}

void IncrementalMerkleTree::truncate(std::size_t new_count) {
  if (new_count >= leaf_count()) return;
  ++stats_.truncates;
  if (new_count == 0) {
    levels_.clear();
    dirty_.clear();
    all_dirty_ = false;
    root_ = Digest{};
    clean_ = true;
    return;
  }
  levels_[0].resize(new_count);
  // The new last leaf's path covers every level's right edge, where
  // promotion status may have changed.
  dirty_.push_back(new_count - 1);
  clean_ = false;
}

const Digest& IncrementalMerkleTree::leaf(std::size_t index) const {
  if (levels_.empty() || index >= levels_[0].size()) {
    throw std::out_of_range("IncrementalMerkleTree::leaf: index");
  }
  return levels_[0][index];
}

const Digest& IncrementalMerkleTree::root() {
  if (!clean_) flush();
  return root_;
}

void IncrementalMerkleTree::flush() {
  ++stats_.flushes;
  if (levels_.empty() || levels_[0].empty()) {
    levels_.clear();
    dirty_.clear();
    all_dirty_ = false;
    root_ = Digest{};
    clean_ = true;
    return;
  }

  // Dirty node indices at the current level (sorted, unique, in range).
  std::vector<std::size_t> cur;
  if (!all_dirty_) {
    cur = dirty_;
    std::sort(cur.begin(), cur.end());
    cur.erase(std::unique(cur.begin(), cur.end()), cur.end());
    while (!cur.empty() && cur.back() >= levels_[0].size()) cur.pop_back();
  }

  constexpr std::size_t kChunk = 64;  // parent nodes staged per hash batch
  alignas(32) std::uint8_t blocks[kChunk][64];
  Digest outs[kChunk];
  std::size_t staged[kChunk];

  std::size_t lvl = 0;
  while (levels_[lvl].size() > 1) {
    // Grow the outer vector *before* taking inner references: emplace_back
    // may reallocate it and would dangle them.
    if (lvl + 1 == levels_.size()) levels_.emplace_back();
    const auto& prev = levels_[lvl];
    const std::size_t next_size = (prev.size() + 1) / 2;
    auto& next = levels_[lvl + 1];
    const std::size_t old_size = next.size();
    next.resize(next_size);

    std::vector<std::size_t> parents;
    if (all_dirty_) {
      parents.resize(next_size);
      for (std::size_t j = 0; j < next_size; ++j) parents[j] = j;
    } else {
      parents.reserve(cur.size() + 1);
      for (const std::size_t i : cur) parents.push_back(i / 2);
      // Tail nodes that appeared when the level grew (their children are
      // appended leaves' ancestors, so this is usually redundant, but it
      // keeps the invariant local to this loop).
      for (std::size_t j = old_size; j < next_size; ++j) parents.push_back(j);
      std::sort(parents.begin(), parents.end());
      parents.erase(std::unique(parents.begin(), parents.end()),
                    parents.end());
    }

    std::size_t m = 0;
    const auto flush_batch = [&] {
      if (m == 0) return;
      sha256_block_multi(blocks, outs, m);
      for (std::size_t k = 0; k < m; ++k) next[staged[k]] = outs[k];
      stats_.nodes_rehashed += m;
      m = 0;
    };
    for (const std::size_t p : parents) {
      const std::size_t li = 2 * p;
      if (li + 1 < prev.size()) {
        std::memcpy(blocks[m], prev[li].v.data(), 32);
        std::memcpy(blocks[m] + 32, prev[li + 1].v.data(), 32);
        staged[m] = p;
        if (++m == kChunk) flush_batch();
      } else {
        next[p] = prev[li];  // promote unpaired trailing node unchanged
      }
    }
    flush_batch();
    cur = std::move(parents);
    ++lvl;
  }

  levels_.resize(lvl + 1);  // drop levels left over from truncation
  root_ = levels_[lvl][0];
  dirty_.clear();
  all_dirty_ = false;
  clean_ = true;
}

Digest IncrementalMerkleTree::full_root() const {
  if (levels_.empty()) return Digest{};
  return MerkleTree(levels_[0]).root();
}

}  // namespace pera::crypto
