// Byte-buffer primitives shared by the whole crypto substrate.
//
// Everything in pera is deterministic and in-memory, so a plain
// std::vector<uint8_t> is the universal currency for octet strings.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pera::crypto {

/// Octet string. Owned, growable.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over an octet string.
using BytesView = std::span<const std::uint8_t>;

/// A 256-bit digest (output of SHA-256 / HMAC-SHA-256).
struct Digest {
  std::array<std::uint8_t, 32> v{};

  friend bool operator==(const Digest&, const Digest&) = default;
  friend auto operator<=>(const Digest&, const Digest&) = default;

  /// Render as lowercase hex (64 chars).
  [[nodiscard]] std::string hex() const;

  /// First 8 hex chars — handy for logs and pseudonyms.
  [[nodiscard]] std::string short_hex() const;

  [[nodiscard]] Bytes to_bytes() const { return Bytes(v.begin(), v.end()); }

  [[nodiscard]] bool is_zero() const {
    for (auto b : v) {
      if (b != 0) return false;
    }
    return true;
  }
};

/// Encode arbitrary bytes as lowercase hex.
[[nodiscard]] std::string to_hex(BytesView data);

/// Decode lowercase/uppercase hex. Throws std::invalid_argument on bad input.
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// View over the bytes of a std::string (no copy).
[[nodiscard]] inline BytesView as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Copy a string into an owned byte buffer.
[[nodiscard]] inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Append `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

inline void append(Bytes& dst, const Digest& d) {
  dst.insert(dst.end(), d.v.begin(), d.v.end());
}

/// Append a big-endian 32-bit integer.
void append_u32(Bytes& dst, std::uint32_t x);

/// Append a big-endian 64-bit integer.
void append_u64(Bytes& dst, std::uint64_t x);

/// Read a big-endian 32-bit integer at `off`. Throws std::out_of_range.
[[nodiscard]] std::uint32_t read_u32(BytesView src, std::size_t off);

/// Read a big-endian 64-bit integer at `off`. Throws std::out_of_range.
[[nodiscard]] std::uint64_t read_u64(BytesView src, std::size_t off);

/// Constant-time equality for fixed-size secrets.
[[nodiscard]] bool ct_equal(BytesView a, BytesView b);

}  // namespace pera::crypto
