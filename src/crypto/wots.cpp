#include "crypto/wots.h"

#include <stdexcept>

#include "crypto/hmac.h"

namespace pera::crypto::wots {

namespace {

// Domain-separated chain step: F(chain_index, position, value).
Digest chain_step(std::size_t chain, std::size_t position, const Digest& value) {
  Sha256 h;
  Bytes hdr;
  append_u32(hdr, static_cast<std::uint32_t>(chain));
  append_u32(hdr, static_cast<std::uint32_t>(position));
  h.update(BytesView{hdr.data(), hdr.size()});
  h.update(value);
  return h.finish();
}

// Apply `steps` chain steps starting at base position `from`.
Digest chain(std::size_t chain_index, const Digest& start, std::size_t from,
             std::size_t steps) {
  Digest v = start;
  for (std::size_t i = 0; i < steps; ++i) {
    v = chain_step(chain_index, from + i, v);
  }
  return v;
}

}  // namespace

std::array<std::uint8_t, kLen> chunk_message(const Digest& message) {
  std::array<std::uint8_t, kLen> chunks{};
  // 64 message chunks: 4 bits each, big-endian nibbles.
  for (std::size_t i = 0; i < 32; ++i) {
    chunks[2 * i] = message.v[i] >> 4;
    chunks[2 * i + 1] = message.v[i] & 0xf;
  }
  // Checksum: sum of (w-1 - chunk) over message chunks, base-w little chunks.
  std::uint32_t csum = 0;
  for (std::size_t i = 0; i < kLen1; ++i) {
    csum += static_cast<std::uint32_t>(kW - 1 - chunks[i]);
  }
  for (std::size_t i = 0; i < kLen2; ++i) {
    chunks[kLen1 + i] = static_cast<std::uint8_t>((csum >> (4 * i)) & 0xf);
  }
  return chunks;
}

SecretKey keygen_secret(const Digest& seed, std::uint64_t address) {
  SecretKey sk;
  Bytes root(seed.v.begin(), seed.v.end());
  append_u64(root, address);
  const auto derived = derive_keys(BytesView{root.data(), root.size()},
                                   "pera.wots.chain", kLen);
  for (std::size_t i = 0; i < kLen; ++i) sk.chains[i] = derived[i];
  return sk;
}

PublicKey derive_public(const SecretKey& sk) {
  Sha256 compress;
  for (std::size_t i = 0; i < kLen; ++i) {
    const Digest end = chain(i, sk.chains[i], 0, kW - 1);
    compress.update(end);
  }
  return PublicKey{compress.finish()};
}

Signature sign(const SecretKey& sk, const Digest& message) {
  const auto chunks = chunk_message(message);
  Signature sig;
  for (std::size_t i = 0; i < kLen; ++i) {
    sig.chains[i] = chain(i, sk.chains[i], 0, chunks[i]);
  }
  return sig;
}

PublicKey recover_public(const Signature& sig, const Digest& message) {
  const auto chunks = chunk_message(message);
  Sha256 compress;
  for (std::size_t i = 0; i < kLen; ++i) {
    const Digest end = chain(i, sig.chains[i], chunks[i], kW - 1 - chunks[i]);
    compress.update(end);
  }
  return PublicKey{compress.finish()};
}

bool verify(const PublicKey& pk, const Digest& message, const Signature& sig) {
  return recover_public(sig, message) == pk;
}

Bytes Signature::serialize() const {
  Bytes out;
  out.reserve(kWireSize);
  for (const auto& d : chains) append(out, d);
  return out;
}

Signature Signature::deserialize(BytesView data) {
  if (data.size() != kWireSize) {
    throw std::invalid_argument("wots::Signature::deserialize: bad size");
  }
  Signature sig;
  for (std::size_t i = 0; i < kLen; ++i) {
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(32 * i),
              data.begin() + static_cast<std::ptrdiff_t>(32 * (i + 1)),
              sig.chains[i].v.begin());
  }
  return sig;
}

}  // namespace pera::crypto::wots
