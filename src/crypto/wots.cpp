#include "crypto/wots.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "crypto/hmac.h"
#include "crypto/sha256_backend.h"

namespace pera::crypto::wots {

namespace {

using engine::kMaxLanes;

// Every chain step hashes a 40-byte domain-separated message:
// be32(chain) || be32(position) || value. That fits one padded SHA-256
// block, so a step is exactly one compression from H(0) over a
// stack-resident block template — no heap, no streaming context. Only
// the position word and the value bytes change between steps.
constexpr std::size_t kStepMsgLen = 40;

inline void store_be32(std::uint8_t* p, std::uint32_t x) {
  p[0] = static_cast<std::uint8_t>(x >> 24);
  p[1] = static_cast<std::uint8_t>(x >> 16);
  p[2] = static_cast<std::uint8_t>(x >> 8);
  p[3] = static_cast<std::uint8_t>(x);
}

// Constant parts of a chain-step block: chain index, the 0x80 padding
// byte after the 40-byte message, and the 320-bit length.
inline void init_step_block(std::uint8_t block[64], std::uint32_t chain) {
  std::memset(block, 0, 64);
  store_be32(block, chain);
  block[kStepMsgLen] = 0x80;
  const std::uint64_t bits = kStepMsgLen * 8;  // 320 = 0x0140
  block[62] = static_cast<std::uint8_t>(bits >> 8);
  block[63] = static_cast<std::uint8_t>(bits);
}

inline void extract_be(const std::uint32_t st[8], std::uint8_t out[32]) {
  for (int i = 0; i < 8; ++i) {
#if defined(__GNUC__) || defined(__clang__)
    std::uint32_t x = st[i];
    if constexpr (std::endian::native == std::endian::little) {
      x = __builtin_bswap32(x);
    }
    std::memcpy(out + 4 * i, &x, 4);
#else
    store_be32(out + 4 * i, st[i]);
#endif
  }
}

// Advance n independent chains, chain i by steps[i] single-compression
// steps starting at position from[i], through the backend's multi-buffer
// lanes in lockstep: each occupied lane owns one chain's block template;
// every round compresses all occupied lanes at once, and a finished
// chain's lane is refilled with the next pending chain. out[i] receives
// the final value (== start[i] when steps[i] == 0); `out` must not alias
// `start`... except element-wise copies are fine since each out[i] is
// written exactly once after start[i] was last read.
void run_chains(std::size_t n, const std::uint32_t* chain_index,
                const std::uint8_t* from, const std::uint8_t* steps,
                const Digest* start, Digest* out) {
  const engine::Backend& be = engine::active();
  const std::size_t lanes = std::clamp<std::size_t>(be.lanes, 1, kMaxLanes);

  alignas(32) std::uint8_t blk[kMaxLanes][64];
  std::uint32_t st[kMaxLanes][8];
  std::uint32_t pos[kMaxLanes];
  std::uint32_t rem[kMaxLanes];
  std::size_t owner[kMaxLanes];
  std::size_t next = 0;  // next chain to load into a free lane
  std::size_t m = 0;     // occupied lanes: always slots [0, m)

  auto seed = [&](std::size_t slot) -> bool {
    while (next < n && steps[next] == 0) {
      out[next] = start[next];
      ++next;
    }
    if (next == n) return false;
    init_step_block(blk[slot], chain_index[next]);
    std::memcpy(blk[slot] + 8, start[next].v.data(), 32);
    pos[slot] = from[next];
    rem[slot] = steps[next];
    owner[slot] = next;
    ++next;
    return true;
  };

  while (m < lanes && seed(m)) ++m;

  while (m > 0) {
    for (std::size_t s = 0; s < m; ++s) {
      store_be32(blk[s] + 4, pos[s]);
      std::memcpy(st[s], engine::kInit, sizeof(st[s]));
    }
    be.compress_multi(st, blk, m);
    for (std::size_t s = 0; s < m; ++s) {
      extract_be(st[s], blk[s] + 8);  // digest becomes the next value
      ++pos[s];
      --rem[s];
    }
    for (std::size_t s = 0; s < m;) {
      if (rem[s] > 0) {
        ++s;
        continue;
      }
      std::memcpy(out[owner[s]].v.data(), blk[s] + 8, 32);
      if (seed(s)) {
        ++s;
        continue;
      }
      // No pending chain: close the hole with the last occupied lane.
      --m;
      if (s != m) {
        std::memcpy(blk[s], blk[m], 64);
        pos[s] = pos[m];
        rem[s] = rem[m];
        owner[s] = owner[m];
      }
    }
  }
  // Trailing zero-step chains never enter a lane.
  for (; next < n; ++next) out[next] = start[next];
}

// Step all kLen chains of `start`, chain i from position from[i] by
// steps[i], into `ends`.
void run_all_chains(const std::array<std::uint8_t, kLen>& from,
                    const std::array<std::uint8_t, kLen>& steps,
                    const std::array<Digest, kLen>& start,
                    std::array<Digest, kLen>& ends) {
  std::array<std::uint32_t, kLen> idx;
  for (std::size_t i = 0; i < kLen; ++i) {
    idx[i] = static_cast<std::uint32_t>(i);
  }
  run_chains(kLen, idx.data(), from.data(), steps.data(), start.data(),
             ends.data());
}

Digest compress_ends(const std::array<Digest, kLen>& ends) {
  Sha256 compress;
  for (const Digest& d : ends) compress.update(d);
  return compress.finish();
}

}  // namespace

std::array<std::uint8_t, kLen> chunk_message(const Digest& message) {
  std::array<std::uint8_t, kLen> chunks{};
  // 64 message chunks: 4 bits each, big-endian nibbles.
  for (std::size_t i = 0; i < 32; ++i) {
    chunks[2 * i] = message.v[i] >> 4;
    chunks[2 * i + 1] = message.v[i] & 0xf;
  }
  // Checksum: sum of (w-1 - chunk) over message chunks, base-w little chunks.
  std::uint32_t csum = 0;
  for (std::size_t i = 0; i < kLen1; ++i) {
    csum += static_cast<std::uint32_t>(kW - 1 - chunks[i]);
  }
  for (std::size_t i = 0; i < kLen2; ++i) {
    chunks[kLen1 + i] = static_cast<std::uint8_t>((csum >> (4 * i)) & 0xf);
  }
  return chunks;
}

SecretKey keygen_secret(const Digest& seed, std::uint64_t address) {
  SecretKey sk;
  std::uint8_t root[40];
  std::memcpy(root, seed.v.data(), 32);
  for (int i = 0; i < 8; ++i) {
    root[32 + i] = static_cast<std::uint8_t>(address >> (56 - 8 * i));
  }
  derive_keys_into(BytesView{root, sizeof(root)}, "pera.wots.chain",
                   sk.chains.data(), kLen);
  return sk;
}

PublicKey derive_public(const SecretKey& sk) {
  std::array<std::uint8_t, kLen> from{};
  std::array<std::uint8_t, kLen> steps;
  steps.fill(kW - 1);
  std::array<Digest, kLen> ends;
  run_all_chains(from, steps, sk.chains, ends);
  return PublicKey{compress_ends(ends)};
}

Signature sign(const SecretKey& sk, const Digest& message) {
  const auto chunks = chunk_message(message);
  const std::array<std::uint8_t, kLen> from{};
  Signature sig;
  run_all_chains(from, chunks, sk.chains, sig.chains);
  return sig;
}

PublicKey recover_public(const Signature& sig, const Digest& message) {
  const auto chunks = chunk_message(message);
  std::array<std::uint8_t, kLen> steps;
  for (std::size_t i = 0; i < kLen; ++i) {
    steps[i] = static_cast<std::uint8_t>(kW - 1 - chunks[i]);
  }
  std::array<Digest, kLen> ends;
  run_all_chains(chunks, steps, sig.chains, ends);
  return PublicKey{compress_ends(ends)};
}

bool verify(const PublicKey& pk, const Digest& message, const Signature& sig) {
  return recover_public(sig, message) == pk;
}

Bytes Signature::serialize() const {
  Bytes out;
  out.reserve(kWireSize);
  for (const auto& d : chains) append(out, d);
  return out;
}

Signature Signature::deserialize(BytesView data) {
  if (data.size() != kWireSize) {
    throw std::invalid_argument("wots::Signature::deserialize: bad size");
  }
  Signature sig;
  for (std::size_t i = 0; i < kLen; ++i) {
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(32 * i),
              data.begin() + static_cast<std::ptrdiff_t>(32 * (i + 1)),
              sig.chains[i].v.begin());
  }
  return sig;
}

}  // namespace pera::crypto::wots
