#include "crypto/sha256_backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "crypto/sha256_backend_impl.h"
#include "obs/obs.h"

namespace pera::crypto::engine {

namespace {

using detail::avx2_compiled;
using detail::avx2_compress_multi;
using detail::scalar_compress;
using detail::scalar_compress_multi;
using detail::shani_compiled;
using detail::shani_compress;
using detail::shani_compress_multi;

constexpr Backend kScalar{"scalar", 1, scalar_compress, scalar_compress_multi};
constexpr Backend kShani{"shani", 1, shani_compress, shani_compress_multi};
// Single-block calls on the avx2 backend go through the scalar
// compressor: one lane cannot amortize the SoA transpose.
constexpr Backend kAvx2{"avx2", 8, scalar_compress, avx2_compress_multi};

std::atomic<const Backend*> g_active{nullptr};

bool shani_usable() { return shani_compiled() && cpu_has_shani(); }
bool avx2_usable() { return avx2_compiled() && cpu_has_avx2(); }

// Best compiled-in backend this CPU runs: shani beats avx2 because every
// streaming hash (HMAC, evidence digests) is single-block bound and
// SHA-NI wins even against 8-wide multi-buffer on chained workloads.
const Backend* auto_backend() {
  if (shani_usable()) return &kShani;
  if (avx2_usable()) return &kAvx2;
  return &kScalar;
}

const Backend* backend_by_name(std::string_view name) {
  if (name == "auto") return auto_backend();
  if (name == "scalar") return &kScalar;
  if (name == "shani" && shani_usable()) return &kShani;
  if (name == "avx2" && avx2_usable()) return &kAvx2;
  return nullptr;
}

const Backend* resolve_default() {
  if (const char* env = std::getenv("PERA_SHA256_BACKEND")) {
    if (const Backend* b = backend_by_name(env)) return b;
    std::fprintf(stderr,
                 "pera: PERA_SHA256_BACKEND=%s unknown or unsupported on "
                 "this CPU; falling back to auto dispatch\n",
                 env);
  }
  return auto_backend();
}

}  // namespace

bool cpu_has_shani() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sha") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Backend& active() {
  const Backend* b = g_active.load(std::memory_order_acquire);
  if (b == nullptr) {
    // Benign race: concurrent first calls resolve to the same backend.
    b = resolve_default();
    g_active.store(b, std::memory_order_release);
  }
  return *b;
}

bool select(std::string_view name) {
  const Backend* b = backend_by_name(name);
  if (b == nullptr) return false;
  g_active.store(b, std::memory_order_release);
  return true;
}

std::vector<std::string> available() {
  std::vector<std::string> out{"scalar"};
  if (shani_usable()) out.emplace_back("shani");
  if (avx2_usable()) out.emplace_back("avx2");
  return out;
}

void publish_metrics() {
  if (!obs::enabled()) return;
  const Backend& b = active();
  obs::gauge_set(std::string("crypto.sha256.backend.") + b.name, 1);
  obs::gauge_set("crypto.sha256.lanes", static_cast<std::int64_t>(b.lanes));
}

}  // namespace pera::crypto::engine
