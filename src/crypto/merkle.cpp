#include "crypto/merkle.h"

#include <cstring>
#include <stdexcept>

namespace pera::crypto {

namespace {

// Build one tree level: hash each sibling pair through the backend
// engine's multi-buffer lanes (each left||right pair is exactly one
// message block), promoting an unpaired trailing node unchanged.
std::vector<Digest> build_level(const std::vector<Digest>& prev) {
  const std::size_t pairs = prev.size() / 2;
  std::vector<Digest> next((prev.size() + 1) / 2);

  constexpr std::size_t kChunk = 64;  // pairs staged per batch
  alignas(32) std::uint8_t blocks[kChunk][64];
  for (std::size_t base = 0; base < pairs; base += kChunk) {
    const std::size_t m = base + kChunk <= pairs ? kChunk : pairs - base;
    for (std::size_t j = 0; j < m; ++j) {
      std::memcpy(blocks[j], prev[2 * (base + j)].v.data(), 32);
      std::memcpy(blocks[j] + 32, prev[2 * (base + j) + 1].v.data(), 32);
    }
    sha256_block_multi(blocks, next.data() + base, m);
  }
  if (prev.size() % 2 == 1) {
    next.back() = prev.back();  // promote unpaired node
  }
  return next;
}

}  // namespace

MerkleTree::MerkleTree(std::vector<Digest> leaves) {
  if (leaves.empty()) {
    root_ = Digest{};
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    levels_.push_back(build_level(levels_.back()));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::prove(std::uint64_t index) const {
  if (levels_.empty() || index >= levels_[0].size()) {
    throw std::out_of_range("MerkleTree::prove: leaf index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  std::size_t idx = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& nodes = levels_[lvl];
    const std::size_t sibling = (idx % 2 == 0) ? idx + 1 : idx - 1;
    if (sibling < nodes.size()) {
      proof.siblings.push_back(nodes[sibling]);
    } else {
      // Unpaired node: mark with the zero digest; verification skips it.
      proof.siblings.push_back(Digest{});
    }
    idx /= 2;
  }
  return proof;
}

Digest MerkleTree::root_from_proof(const Digest& leaf,
                                   const MerkleProof& proof) {
  Digest acc = leaf;
  std::uint64_t idx = proof.leaf_index;
  for (const Digest& sib : proof.siblings) {
    if (sib.is_zero()) {
      // Promoted unpaired node: value carries up unchanged.
    } else if (idx % 2 == 0) {
      acc = sha256_pair(acc, sib);
    } else {
      acc = sha256_pair(sib, acc);
    }
    idx /= 2;
  }
  return acc;
}

bool MerkleTree::verify(const Digest& root, const Digest& leaf,
                        const MerkleProof& proof) {
  return root_from_proof(leaf, proof) == root;
}

Bytes MerkleProof::serialize() const {
  Bytes out;
  append_u64(out, leaf_index);
  append_u32(out, static_cast<std::uint32_t>(siblings.size()));
  for (const auto& d : siblings) append(out, d);
  return out;
}

MerkleProof MerkleProof::deserialize(BytesView data) {
  MerkleProof p;
  p.leaf_index = read_u64(data, 0);
  const std::uint32_t n = read_u32(data, 8);
  if (data.size() != 12 + std::size_t{n} * 32) {
    throw std::invalid_argument("MerkleProof::deserialize: bad size");
  }
  p.siblings.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::copy(data.begin() + 12 + 32 * i, data.begin() + 12 + 32 * (i + 1),
              p.siblings[i].v.begin());
  }
  return p;
}

XmssKeyPair::XmssKeyPair(const Digest& seed, unsigned height)
    : seed_(seed), height_(height) {
  if (height > 20) {
    throw std::invalid_argument("XmssKeyPair: height too large (max 20)");
  }
  const std::uint64_t n = std::uint64_t{1} << height;
  std::vector<Digest> leaves;
  leaves.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto sk = wots::keygen_secret(seed_, i);
    leaves.push_back(wots::derive_public(sk).compressed);
  }
  tree_.emplace(std::move(leaves));
}

XmssSignature XmssKeyPair::sign(const Digest& message) {
  if (exhausted()) {
    throw std::runtime_error("XmssKeyPair::sign: one-time keys exhausted");
  }
  const std::uint64_t leaf = next_leaf_++;
  XmssSignature sig;
  sig.leaf_index = leaf;
  sig.ots = wots::sign(wots::keygen_secret(seed_, leaf), message);
  sig.auth_path = tree_->prove(leaf);
  return sig;
}

bool XmssKeyPair::verify(const Digest& public_root, const Digest& message,
                         const XmssSignature& sig) {
  if (sig.auth_path.leaf_index != sig.leaf_index) return false;
  const wots::PublicKey implied = wots::recover_public(sig.ots, message);
  return MerkleTree::verify(public_root, implied.compressed, sig.auth_path);
}

Bytes XmssSignature::serialize() const {
  Bytes out;
  append_u64(out, leaf_index);
  const Bytes ots_bytes = ots.serialize();
  append_u32(out, static_cast<std::uint32_t>(ots_bytes.size()));
  append(out, BytesView{ots_bytes.data(), ots_bytes.size()});
  const Bytes path = auth_path.serialize();
  append_u32(out, static_cast<std::uint32_t>(path.size()));
  append(out, BytesView{path.data(), path.size()});
  return out;
}

XmssSignature XmssSignature::deserialize(BytesView data) {
  XmssSignature sig;
  sig.leaf_index = read_u64(data, 0);
  const std::uint32_t ots_len = read_u32(data, 8);
  std::size_t off = 12;
  if (off + ots_len > data.size()) {
    throw std::invalid_argument("XmssSignature::deserialize: truncated OTS");
  }
  sig.ots = wots::Signature::deserialize(data.subspan(off, ots_len));
  off += ots_len;
  const std::uint32_t path_len = read_u32(data, off);
  off += 4;
  if (off + path_len != data.size()) {
    throw std::invalid_argument("XmssSignature::deserialize: bad path size");
  }
  sig.auth_path = MerkleProof::deserialize(data.subspan(off, path_len));
  return sig;
}

std::size_t XmssSignature::wire_size() const { return serialize().size(); }

}  // namespace pera::crypto
