// Principal key registry.
//
// Models the out-of-band provisioning step every RA deployment needs: the
// appraiser is provisioned with verification keys (or shared device keys)
// for the attesting elements it will appraise. Keys are indexed by
// principal name (a place name in Copland terms) and by key id.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "crypto/drbg.h"
#include "crypto/signer.h"

namespace pera::crypto {

/// Registry mapping principal names to signers (attester side) and
/// verifiers (appraiser side). A single KeyStore instance models the
/// deployment's key-provisioning authority; real deployments would split
/// it, which the API supports via export_verifiers().
class KeyStore {
 public:
  explicit KeyStore(std::uint64_t seed) : drbg_(seed) {}

  /// Provision an HMAC device-key signer for `principal`. Returns signer.
  /// Idempotent per principal: re-provisioning replaces keys.
  Signer& provision_hmac(const std::string& principal);

  /// Provision an HMAC signer/verifier under a caller-supplied key — the
  /// out-of-band import path for a key that already exists elsewhere
  /// (e.g. a socket appraiser's certificate key shared with a relying
  /// party's registry).
  Signer& provision_hmac_key(const std::string& principal, const Digest& key);

  /// Provision an XMSS signer with 2^height one-time keys.
  Signer& provision_xmss(const std::string& principal, unsigned height = 6);

  /// Signer for a principal, or nullptr if none provisioned.
  [[nodiscard]] Signer* signer_for(const std::string& principal);

  /// Verifier for a principal, or nullptr.
  [[nodiscard]] const Verifier* verifier_for(const std::string& principal) const;

  /// Verifier by key id, or nullptr — used when appraising signatures whose
  /// producer is identified only by key id.
  [[nodiscard]] const Verifier* verifier_by_key_id(const Digest& key_id) const;

  /// Principal name owning `key_id`, if known.
  [[nodiscard]] std::optional<std::string> principal_of(const Digest& key_id) const;

  [[nodiscard]] bool has(const std::string& principal) const {
    return signers_.contains(principal);
  }

  [[nodiscard]] std::size_t size() const { return signers_.size(); }

 private:
  void index(const std::string& principal, std::unique_ptr<Signer> signer,
             std::unique_ptr<Verifier> verifier);

  Drbg drbg_;
  std::map<std::string, std::unique_ptr<Signer>> signers_;
  std::map<std::string, std::unique_ptr<Verifier>> verifiers_;
  std::map<Digest, std::string> by_key_id_;
};

}  // namespace pera::crypto
