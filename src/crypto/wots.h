// Winternitz one-time signatures (WOTS) over SHA-256.
//
// This is the public-key primitive behind Copland's `!` (sign) operator in
// our reproduction. Hash-based signatures were chosen because they are real
// public-key crypto implementable from scratch (no bignum arithmetic), with
// the same sign/verify asymmetry an attestation ASIC would expose.
//
// Parameters: n = 32 bytes, w = 16 (4-bit chunks) =>
//   len1 = 64 message chunks, len2 = 3 checksum chunks, len = 67 chains.
#pragma once

#include <cstdint>

#include "crypto/bytes.h"
#include "crypto/drbg.h"
#include "crypto/sha256.h"

namespace pera::crypto::wots {

inline constexpr std::size_t kW = 16;        // Winternitz parameter
inline constexpr std::size_t kLen1 = 64;     // 256 bits / 4 bits per chunk
inline constexpr std::size_t kLen2 = 3;      // checksum chunks
inline constexpr std::size_t kLen = kLen1 + kLen2;  // 67 chains

/// A WOTS secret key: one 32-byte start value per chain.
struct SecretKey {
  std::array<Digest, kLen> chains{};
};

/// A WOTS public key, compressed to a single digest.
struct PublicKey {
  Digest compressed{};

  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

/// A WOTS signature: one intermediate chain value per chain.
struct Signature {
  std::array<Digest, kLen> chains{};

  /// Serialized size in bytes.
  static constexpr std::size_t kWireSize = kLen * 32;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Signature deserialize(BytesView data);
};

/// Deterministically generate a secret key from a seed and address. The
/// address keeps distinct leaves of a Merkle tree from sharing chains.
[[nodiscard]] SecretKey keygen_secret(const Digest& seed, std::uint64_t address);

/// Derive the public key for a secret key.
[[nodiscard]] PublicKey derive_public(const SecretKey& sk);

/// Sign a 256-bit message digest.
[[nodiscard]] Signature sign(const SecretKey& sk, const Digest& message);

/// Recompute the public key a signature implies for `message`. Verification
/// succeeds when this equals the signer's public key.
[[nodiscard]] PublicKey recover_public(const Signature& sig,
                                       const Digest& message);

/// Convenience: full verification.
[[nodiscard]] bool verify(const PublicKey& pk, const Digest& message,
                          const Signature& sig);

/// Split a digest into kLen base-w chunks (message chunks + checksum).
/// Exposed for tests.
[[nodiscard]] std::array<std::uint8_t, kLen> chunk_message(const Digest& message);

}  // namespace pera::crypto::wots
