#include "crypto/nonce.h"

namespace pera::crypto {

Nonce NonceRegistry::issue() {
  Nonce n{drbg_.digest()};
  issued_.insert(n.value);
  return n;
}

bool NonceRegistry::observe(const Nonce& n) {
  return observed_.insert(n.value).second;
}

}  // namespace pera::crypto
