// Portable scalar SHA-256 block compression (FIPS 180-4) — the always-
// available backend and the reference every SIMD backend is differential-
// tested against. Unrolled rounds with a rolling 16-word schedule and
// word-at-a-time big-endian loads.
#include <bit>
#include <cstring>

#include "crypto/sha256_backend_impl.h"

namespace pera::crypto::engine::detail {

const std::uint32_t kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

namespace {

inline std::uint32_t rotr(std::uint32_t x, int n) { return std::rotr(x, n); }

inline std::uint32_t bswap32(std::uint32_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_bswap32(x);
#else
  return (x >> 24) | ((x >> 8) & 0xff00u) | ((x << 8) & 0xff0000u) |
         (x << 24);
#endif
}

inline std::uint32_t big_s0(std::uint32_t x) {
  return rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22);
}
inline std::uint32_t big_s1(std::uint32_t x) {
  return rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25);
}
inline std::uint32_t sml_s0(std::uint32_t x) {
  return rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3);
}
inline std::uint32_t sml_s1(std::uint32_t x) {
  return rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10);
}
// Three-op forms of the boolean functions (vs four with the textbook
// (e&f)^(~e&g) / (a&b)^(a&c)^(b&c)).
inline std::uint32_t ch(std::uint32_t e, std::uint32_t f, std::uint32_t g) {
  return g ^ (e & (f ^ g));
}
inline std::uint32_t maj(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  return (a & b) | (c & (a | b));
}

// One round with the working variables passed in rotated roles, so the
// unrolled body never shuffles eight registers.
#define PERA_SHA_RND(a, b, c, d, e, f, g, h, k, wv)        \
  do {                                                     \
    const std::uint32_t t1 = (h) + big_s1(e) + ch((e), (f), (g)) + (k) + (wv); \
    (d) += t1;                                             \
    (h) = t1 + big_s0(a) + maj((a), (b), (c));             \
  } while (0)

// Rolling 16-entry schedule: W[i] lives in w[i & 15].
#define PERA_SHA_W(i) w[(i) & 15]
#define PERA_SHA_EXPAND(i)                                          \
  (PERA_SHA_W(i) += sml_s1(PERA_SHA_W((i) - 2)) + PERA_SHA_W((i) - 7) + \
                    sml_s0(PERA_SHA_W((i) - 15)))

}  // namespace

void scalar_compress(std::uint32_t state[8], const std::uint8_t block[64]) {
  std::uint32_t w[16];
  std::memcpy(w, block, 64);
  if constexpr (std::endian::native == std::endian::little) {
    for (int i = 0; i < 16; ++i) w[i] = bswap32(w[i]);
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

  for (int i = 0; i < 16; i += 8) {
    PERA_SHA_RND(a, b, c, d, e, f, g, h, kRound[i + 0], w[i + 0]);
    PERA_SHA_RND(h, a, b, c, d, e, f, g, kRound[i + 1], w[i + 1]);
    PERA_SHA_RND(g, h, a, b, c, d, e, f, kRound[i + 2], w[i + 2]);
    PERA_SHA_RND(f, g, h, a, b, c, d, e, kRound[i + 3], w[i + 3]);
    PERA_SHA_RND(e, f, g, h, a, b, c, d, kRound[i + 4], w[i + 4]);
    PERA_SHA_RND(d, e, f, g, h, a, b, c, kRound[i + 5], w[i + 5]);
    PERA_SHA_RND(c, d, e, f, g, h, a, b, kRound[i + 6], w[i + 6]);
    PERA_SHA_RND(b, c, d, e, f, g, h, a, kRound[i + 7], w[i + 7]);
  }
  for (int i = 16; i < 64; i += 8) {
    PERA_SHA_RND(a, b, c, d, e, f, g, h, kRound[i + 0], PERA_SHA_EXPAND(i + 0));
    PERA_SHA_RND(h, a, b, c, d, e, f, g, kRound[i + 1], PERA_SHA_EXPAND(i + 1));
    PERA_SHA_RND(g, h, a, b, c, d, e, f, kRound[i + 2], PERA_SHA_EXPAND(i + 2));
    PERA_SHA_RND(f, g, h, a, b, c, d, e, kRound[i + 3], PERA_SHA_EXPAND(i + 3));
    PERA_SHA_RND(e, f, g, h, a, b, c, d, kRound[i + 4], PERA_SHA_EXPAND(i + 4));
    PERA_SHA_RND(d, e, f, g, h, a, b, c, kRound[i + 5], PERA_SHA_EXPAND(i + 5));
    PERA_SHA_RND(c, d, e, f, g, h, a, b, kRound[i + 6], PERA_SHA_EXPAND(i + 6));
    PERA_SHA_RND(b, c, d, e, f, g, h, a, kRound[i + 7], PERA_SHA_EXPAND(i + 7));
  }

#undef PERA_SHA_RND
#undef PERA_SHA_W
#undef PERA_SHA_EXPAND

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

void scalar_compress_multi(std::uint32_t (*states)[8],
                           const std::uint8_t (*blocks)[64], std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) scalar_compress(states[i], blocks[i]);
}

}  // namespace pera::crypto::engine::detail
