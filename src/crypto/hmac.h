// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//
// Used for (a) the simulated TPM device-key signer and (b) key derivation
// inside the DRBG and WOTS+ keygen.
#pragma once

#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace pera::crypto {

/// One-shot HMAC-SHA-256 over `data` with `key` (any length).
[[nodiscard]] Digest hmac_sha256(BytesView key, BytesView data);

/// Incremental HMAC context for multi-part messages.
class Hmac {
 public:
  explicit Hmac(BytesView key);

  Hmac& update(BytesView data);
  Hmac& update(std::string_view s) { return update(as_bytes(s)); }
  Hmac& update(const Digest& d) {
    return update(BytesView{d.v.data(), d.v.size()});
  }

  [[nodiscard]] Digest finish();

 private:
  Sha256 inner_;
  std::array<std::uint8_t, 64> opad_key_{};
};

/// HKDF-style expansion: derive `n` independent digests from a root key and
/// a context label. Deterministic; used to derive per-chain WOTS+ secrets.
[[nodiscard]] std::vector<Digest> derive_keys(BytesView root,
                                              std::string_view label,
                                              std::size_t n);

}  // namespace pera::crypto
