// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//
// Used for (a) the simulated TPM device-key signer and (b) key derivation
// inside the DRBG and WOTS+ keygen.
#pragma once

#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace pera::crypto {

/// Precomputed HMAC key schedule: the SHA-256 midstates left after
/// compressing the ipad- and opad-padded key blocks. Building one costs
/// the two key-schedule compressions exactly once; every mac() after that
/// clones the midstates instead of re-running the schedule — the fix for
/// per-signature key-schedule work in HmacSigner::sign.
class HmacKey {
 public:
  explicit HmacKey(BytesView key);

  /// HMAC-SHA-256 over `data` with the precomputed key.
  [[nodiscard]] Digest mac(BytesView data) const;
  [[nodiscard]] Digest mac(const Digest& d) const {
    return mac(BytesView{d.v.data(), d.v.size()});
  }

  /// Copy the raw ipad/opad chaining words. Both midstates are
  /// block-aligned by construction, so lane-batched callers can restart
  /// compression from them through the backend engine.
  void export_midstates(std::uint32_t inner[8], std::uint32_t outer[8]) const;

 private:
  friend class Hmac;
  Sha256 inner_mid_;  // state after the ipad key block
  Sha256 outer_mid_;  // state after the opad key block
};

/// One-shot HMAC-SHA-256 over `data` with `key` (any length).
[[nodiscard]] Digest hmac_sha256(BytesView key, BytesView data);

/// Incremental HMAC context for multi-part messages.
class Hmac {
 public:
  explicit Hmac(BytesView key) : Hmac(HmacKey(key)) {}
  explicit Hmac(const HmacKey& key)
      : inner_(key.inner_mid_), outer_mid_(key.outer_mid_) {}

  Hmac& update(BytesView data);
  Hmac& update(std::string_view s) { return update(as_bytes(s)); }
  Hmac& update(const Digest& d) {
    return update(BytesView{d.v.data(), d.v.size()});
  }

  [[nodiscard]] Digest finish();

 private:
  Sha256 inner_;
  Sha256 outer_mid_;
};

/// HKDF-style expansion: derive `n` independent digests from a root key and
/// a context label. Deterministic; used to derive per-chain WOTS+ secrets
/// and per-shard pipeline device keys.
///
/// out[i] = HMAC(root, label || be64(i)). When the label is short enough
/// that each inner hash fits a single padded block (label <= 47 bytes —
/// every in-tree label), the n derivations restart from the ipad/opad
/// midstates and batch through the backend engine's multi-buffer lanes
/// with no per-derivation allocation.
void derive_keys_into(BytesView root, std::string_view label, Digest* out,
                      std::size_t n);

/// Allocating convenience wrapper around derive_keys_into().
[[nodiscard]] std::vector<Digest> derive_keys(BytesView root,
                                              std::string_view label,
                                              std::size_t n);

}  // namespace pera::crypto
