#include "crypto/keystore.h"

namespace pera::crypto {

void KeyStore::index(const std::string& principal,
                     std::unique_ptr<Signer> signer,
                     std::unique_ptr<Verifier> verifier) {
  // Drop a stale key-id index entry if re-provisioning.
  if (auto it = signers_.find(principal); it != signers_.end()) {
    by_key_id_.erase(it->second->key_id());
  }
  by_key_id_[signer->key_id()] = principal;
  signers_[principal] = std::move(signer);
  verifiers_[principal] = std::move(verifier);
}

Signer& KeyStore::provision_hmac(const std::string& principal) {
  const Digest key = drbg_.fork("hmac-key:" + principal).digest();
  auto signer = std::make_unique<HmacSigner>(key);
  auto verifier = std::make_unique<HmacVerifier>(key);
  Signer& ref = *signer;
  index(principal, std::move(signer), std::move(verifier));
  return ref;
}

Signer& KeyStore::provision_hmac_key(const std::string& principal,
                                     const Digest& key) {
  auto signer = std::make_unique<HmacSigner>(key);
  auto verifier = std::make_unique<HmacVerifier>(key);
  Signer& ref = *signer;
  index(principal, std::move(signer), std::move(verifier));
  return ref;
}

Signer& KeyStore::provision_xmss(const std::string& principal,
                                 unsigned height) {
  const Digest seed = drbg_.fork("xmss-seed:" + principal).digest();
  auto signer = std::make_unique<XmssSigner>(seed, height);
  auto verifier = std::make_unique<XmssVerifier>(signer->public_root());
  Signer& ref = *signer;
  index(principal, std::move(signer), std::move(verifier));
  return ref;
}

Signer* KeyStore::signer_for(const std::string& principal) {
  const auto it = signers_.find(principal);
  return it == signers_.end() ? nullptr : it->second.get();
}

const Verifier* KeyStore::verifier_for(const std::string& principal) const {
  const auto it = verifiers_.find(principal);
  return it == verifiers_.end() ? nullptr : it->second.get();
}

const Verifier* KeyStore::verifier_by_key_id(const Digest& key_id) const {
  const auto it = by_key_id_.find(key_id);
  if (it == by_key_id_.end()) return nullptr;
  return verifier_for(it->second);
}

std::optional<std::string> KeyStore::principal_of(const Digest& key_id) const {
  const auto it = by_key_id_.find(key_id);
  if (it == by_key_id_.end()) return std::nullopt;
  return it->second;
}

}  // namespace pera::crypto
