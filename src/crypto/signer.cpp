#include "crypto/signer.h"

#include <stdexcept>

#include "crypto/hmac.h"

namespace pera::crypto {

std::string to_string(SignatureScheme s) {
  switch (s) {
    case SignatureScheme::kHmacDeviceKey:
      return "hmac-device-key";
    case SignatureScheme::kXmss:
      return "xmss";
    case SignatureScheme::kBatched:
      return "merkle-batched";
  }
  return "unknown";
}

Signature wrap_batched(const Digest& root, const MerkleProof& proof,
                       const Signature& root_sig) {
  Signature out;
  out.scheme = SignatureScheme::kBatched;
  out.key_id = root_sig.key_id;
  append(out.payload, root);
  const Bytes proof_bytes = proof.serialize();
  append_u32(out.payload, static_cast<std::uint32_t>(proof_bytes.size()));
  append(out.payload, BytesView{proof_bytes.data(), proof_bytes.size()});
  const Bytes inner = root_sig.serialize();
  append_u32(out.payload, static_cast<std::uint32_t>(inner.size()));
  append(out.payload, BytesView{inner.data(), inner.size()});
  return out;
}

bool verify_any(const Verifier& verifier, const Digest& message,
                const Signature& sig) {
  if (sig.scheme != SignatureScheme::kBatched) {
    return verifier.verify(message, sig);
  }
  try {
    const BytesView data{sig.payload.data(), sig.payload.size()};
    if (data.size() < 32) return false;
    Digest root;
    std::copy(data.begin(), data.begin() + 32, root.v.begin());
    std::size_t off = 32;
    const std::uint32_t proof_len = read_u32(data, off);
    off += 4;
    if (off + proof_len > data.size()) return false;
    const MerkleProof proof =
        MerkleProof::deserialize(data.subspan(off, proof_len));
    off += proof_len;
    const std::uint32_t inner_len = read_u32(data, off);
    off += 4;
    if (off + inner_len != data.size()) return false;
    const Signature inner =
        Signature::deserialize(data.subspan(off, inner_len));
    if (inner.scheme == SignatureScheme::kBatched) return false;  // no nesting
    return MerkleTree::verify(root, message, proof) &&
           verifier.verify(root, inner);
  } catch (const std::exception&) {
    return false;
  }
}

Digest make_key_id(SignatureScheme scheme, const Digest& material) {
  Sha256 h;
  h.update("pera.keyid.");
  h.update(to_string(scheme));
  h.update(material);
  return h.finish();
}

Bytes Signature::serialize() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(scheme));
  append(out, key_id);
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  append(out, BytesView{payload.data(), payload.size()});
  return out;
}

Signature Signature::deserialize(BytesView data) {
  if (data.size() < 37) {
    throw std::invalid_argument("Signature::deserialize: too short");
  }
  Signature sig;
  sig.scheme = static_cast<SignatureScheme>(data[0]);
  if (sig.scheme != SignatureScheme::kHmacDeviceKey &&
      sig.scheme != SignatureScheme::kXmss &&
      sig.scheme != SignatureScheme::kBatched) {
    throw std::invalid_argument("Signature::deserialize: unknown scheme");
  }
  std::copy(data.begin() + 1, data.begin() + 33, sig.key_id.v.begin());
  const std::uint32_t len = read_u32(data, 33);
  if (data.size() != 37 + std::size_t{len}) {
    throw std::invalid_argument("Signature::deserialize: bad payload size");
  }
  sig.payload.assign(data.begin() + 37, data.end());
  return sig;
}

std::size_t Signature::wire_size() const { return 37 + payload.size(); }

HmacSigner::HmacSigner(Digest device_key)
    : schedule_(BytesView{device_key.v.data(), device_key.v.size()}),
      key_id_(make_key_id(SignatureScheme::kHmacDeviceKey,
                          sha256(BytesView{device_key.v.data(),
                                           device_key.v.size()}))) {}

Signature HmacSigner::sign(const Digest& message) {
  Signature sig;
  sig.scheme = SignatureScheme::kHmacDeviceKey;
  sig.key_id = key_id_;
  sig.payload = schedule_.mac(message).to_bytes();
  return sig;
}

HmacVerifier::HmacVerifier(Digest device_key)
    : schedule_(BytesView{device_key.v.data(), device_key.v.size()}),
      key_id_(make_key_id(SignatureScheme::kHmacDeviceKey,
                          sha256(BytesView{device_key.v.data(),
                                           device_key.v.size()}))) {}

bool HmacVerifier::verify(const Digest& message, const Signature& sig) const {
  if (sig.scheme != SignatureScheme::kHmacDeviceKey) return false;
  if (sig.key_id != key_id_) return false;
  const Digest expect = schedule_.mac(message);
  return ct_equal(BytesView{expect.v.data(), expect.v.size()},
                  BytesView{sig.payload.data(), sig.payload.size()});
}

XmssSigner::XmssSigner(const Digest& seed, unsigned height)
    : keypair_(seed, height),
      key_id_(make_key_id(SignatureScheme::kXmss, keypair_.public_root())) {}

Signature XmssSigner::sign(const Digest& message) {
  Signature sig;
  sig.scheme = SignatureScheme::kXmss;
  sig.key_id = key_id_;
  sig.payload = keypair_.sign(message).serialize();
  return sig;
}

XmssVerifier::XmssVerifier(Digest public_root)
    : public_root_(public_root),
      key_id_(make_key_id(SignatureScheme::kXmss, public_root)) {}

bool XmssVerifier::verify(const Digest& message, const Signature& sig) const {
  if (sig.scheme != SignatureScheme::kXmss) return false;
  if (sig.key_id != key_id_) return false;
  XmssSignature parsed;
  try {
    parsed = XmssSignature::deserialize(
        BytesView{sig.payload.data(), sig.payload.size()});
  } catch (const std::exception&) {
    return false;  // malformed payload: out_of_range or invalid_argument
  }
  return XmssKeyPair::verify(public_root_, message, parsed);
}

}  // namespace pera::crypto
