// Pluggable SHA-256 compression backends with one-time runtime dispatch.
//
// Every hash in the tree bottoms out in the 64-byte block compression
// function, so that is the unit the engine abstracts: a Backend is a pair
// of entry points — compress one block, or compress up to kMaxLanes
// *independent* blocks in one call (multi-buffer, SPHINCS+/OpenSSL
// style). Three backends exist:
//
//   * scalar — the portable FIPS 180-4 compressor (always available);
//   * shani  — x86 SHA-NI single-block instructions (fastest per block,
//              multi-buffer falls back to a loop);
//   * avx2   — 8-lane SoA multi-buffer compressor (single-block calls
//              use the scalar path; wins only on wide batches).
//
// Selection happens once, on first use: CPUID picks the best compiled-in
// backend (shani > avx2 > scalar), the PERA_SHA256_BACKEND environment
// variable overrides it ("scalar", "shani", "avx2", "auto"), and tests
// re-pin it via select(). The active backend is surfaced to observability
// as the gauge crypto.sha256.backend.<name> (see publish_metrics).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pera::crypto::engine {

/// Widest multi-buffer batch any backend accepts in one call.
inline constexpr std::size_t kMaxLanes = 8;

/// FIPS 180-4 initial hash value H(0).
inline constexpr std::uint32_t kInit[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

/// One compression backend. `compress` folds a single 64-byte block into
/// `state`; `compress_multi` folds n <= kMaxLanes independent
/// (state, block) pairs — lane i never sees lane j's data, so callers
/// batch unrelated hashes (WOTS chains, Merkle siblings, HKDF counters).
struct Backend {
  const char* name;
  /// Preferred batch width for lane-parallel callers (1 = no benefit
  /// from batching beyond amortized bookkeeping).
  std::size_t lanes;
  void (*compress)(std::uint32_t state[8], const std::uint8_t block[64]);
  void (*compress_multi)(std::uint32_t (*states)[8],
                         const std::uint8_t (*blocks)[64], std::size_t n);
};

/// The selected backend. First call resolves it (env override, then
/// CPUID); subsequent calls are one relaxed atomic load.
[[nodiscard]] const Backend& active();

/// Re-pin the backend by name ("auto" re-runs CPUID selection). Returns
/// false — leaving the selection unchanged — when the name is unknown or
/// the backend is not usable on this machine.
bool select(std::string_view name);

/// Names of every backend compiled in *and* supported by this CPU
/// (always contains "scalar").
[[nodiscard]] std::vector<std::string> available();

/// CPUID probes (false on non-x86 builds).
[[nodiscard]] bool cpu_has_shani();
[[nodiscard]] bool cpu_has_avx2();

/// Export the selection to the obs metrics registry:
/// crypto.sha256.backend.<name> = 1 and crypto.sha256.lanes. No-op while
/// observability is disabled; call sites sit on setup paths (pipeline
/// start, engine construction), never per packet.
void publish_metrics();

/// Convenience wrappers over active().
inline void compress(std::uint32_t state[8], const std::uint8_t block[64]) {
  active().compress(state, block);
}
inline void compress_multi(std::uint32_t (*states)[8],
                           const std::uint8_t (*blocks)[64], std::size_t n) {
  active().compress_multi(states, blocks, n);
}

}  // namespace pera::crypto::engine
