// x86 SHA-NI single-block backend.
//
// The sha256rnds2/sha256msg1/sha256msg2 instructions retire four rounds
// per issue, so one block costs ~16 round instructions plus the message
// schedule — about an order of magnitude under the scalar compressor.
// The 64 rounds are driven as 16 groups of four; the message-schedule
// window slides with the group index instead of being unrolled by hand,
// loading K four-at-a-time from the shared kRound table so no constant
// is transcribed. Multi-buffer calls loop the single-block kernel:
// per-block cost is already low enough that lane transposition would
// cost more than it saves.
//
// Compiled with -msha -msse4.1 -mssse3 only when the toolchain supports
// them (PERA_SHA256_SHANI set by CMake); otherwise this TU is a stub and
// the dispatcher hides the backend.
#include "crypto/sha256_backend_impl.h"

#if defined(PERA_SHA256_SHANI)

#include <immintrin.h>

namespace pera::crypto::engine::detail {

bool shani_compiled() { return true; }

void shani_compress(std::uint32_t state[8], const std::uint8_t block[64]) {
  // Big-endian 32-bit lane loads.
  const __m128i kMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack {a,b,c,d},{e,f,g,h} into the ABEF/CDGH layout rnds2 expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;

  // m[i] holds W[4g..4g+3] for the group currently congruent to i mod 4.
  __m128i m[4];
  for (int i = 0; i < 4; ++i) {
    m[i] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16 * i)),
        kMask);
  }

  for (int g = 0; g < 16; ++g) {
    __m128i msg = _mm_add_epi32(
        m[g & 3],
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kRound[4 * g])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    if (g >= 3 && g <= 14) {
      // Finish W for group g+1: add W[t-7] (straddles two registers,
      // hence the alignr) and run the msg2 half of the schedule.
      const __m128i t = _mm_alignr_epi8(m[g & 3], m[(g + 3) & 3], 4);
      m[(g + 1) & 3] =
          _mm_sha256msg2_epu32(_mm_add_epi32(m[(g + 1) & 3], t), m[g & 3]);
    }
    if (g >= 1 && g <= 12) {
      // Start W for group g+3: the msg1 half over the block just retired.
      m[(g + 3) & 3] = _mm_sha256msg1_epu32(m[(g + 3) & 3], m[g & 3]);
    }
  }

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  // Repack ABEF/CDGH back to {a..d},{e..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);    // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

void shani_compress_multi(std::uint32_t (*states)[8],
                          const std::uint8_t (*blocks)[64], std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) shani_compress(states[i], blocks[i]);
}

}  // namespace pera::crypto::engine::detail

#else  // !PERA_SHA256_SHANI

namespace pera::crypto::engine::detail {

bool shani_compiled() { return false; }

void shani_compress(std::uint32_t[8], const std::uint8_t[64]) {}

void shani_compress_multi(std::uint32_t (*)[8], const std::uint8_t (*)[64],
                          std::size_t) {}

}  // namespace pera::crypto::engine::detail

#endif  // PERA_SHA256_SHANI
