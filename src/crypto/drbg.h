// Deterministic random bit generator built on the ChaCha20 block function
// (RFC 8439). The whole reproduction is seed-deterministic: every principal,
// workload generator and adversary draws randomness from a Drbg seeded from
// the experiment seed, so runs are exactly repeatable.
#pragma once

#include <cstdint>

#include "crypto/bytes.h"

namespace pera::crypto {

/// ChaCha20-based DRBG. Not a CSPRNG interface for production use — a
/// deterministic stream expander for simulation and key generation.
class Drbg {
 public:
  /// Seed from a 64-bit value (convenience for experiments).
  explicit Drbg(std::uint64_t seed);

  /// Seed from a 32-byte key.
  explicit Drbg(const Digest& seed);

  /// Fill `out` with pseudo-random bytes.
  void fill(std::uint8_t* out, std::size_t len);

  /// Produce `n` pseudo-random bytes.
  [[nodiscard]] Bytes bytes(std::size_t n);

  /// Produce a pseudo-random 256-bit value (e.g. a nonce or key seed).
  [[nodiscard]] Digest digest();

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p);

  /// Fork a child generator with an independent stream, labelled so that
  /// unrelated subsystems never share a stream even with equal seeds.
  [[nodiscard]] Drbg fork(std::string_view label);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> block_{};
  std::size_t pos_ = 64;  // exhausted
  std::uint64_t fork_count_ = 0;
};

}  // namespace pera::crypto
