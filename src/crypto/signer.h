// Unified signing/verification interface for attestation principals.
//
// Two concrete signers model the paper's "trustworthy evidence-producing
// hardware components" (§3 threat model):
//
//  * HmacSigner — a symmetric device key shared with the appraiser, like a
//    TPM-held HMAC key. Cheap; verifier must hold the key.
//  * XmssSigner — a hash-based public-key signer. Anyone holding the public
//    root can verify; each signature consumes a one-time key.
//
// A Signature tags which scheme produced it so evidence bundles can mix
// signers along a path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "crypto/bytes.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace pera::crypto {

enum class SignatureScheme : std::uint8_t {
  kHmacDeviceKey = 1,
  kXmss = 2,
  /// A Merkle-batched signature: the payload carries (root, auth path,
  /// inner signature over the root). The signed message is a leaf of the
  /// tree; one inner signature covers a whole batch (see pera::
  /// EvidenceBatcher). Verified via verify_any().
  kBatched = 3,
};

[[nodiscard]] std::string to_string(SignatureScheme s);

/// A signature over a message digest, together with the scheme and the
/// signer's identity (key id = SHA-256 of the public material).
struct Signature {
  SignatureScheme scheme = SignatureScheme::kHmacDeviceKey;
  Digest key_id{};   // identifies the signing key
  Bytes payload;     // scheme-specific signature bytes

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Signature deserialize(BytesView data);
  [[nodiscard]] std::size_t wire_size() const;

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Abstract signer held by an attesting element.
class Signer {
 public:
  virtual ~Signer() = default;

  /// Sign a message digest (Copland `!`).
  [[nodiscard]] virtual Signature sign(const Digest& message) = 0;

  /// Key id this signer produces.
  [[nodiscard]] virtual Digest key_id() const = 0;

  [[nodiscard]] virtual SignatureScheme scheme() const = 0;
};

/// Abstract verifier held by an appraiser.
class Verifier {
 public:
  virtual ~Verifier() = default;

  [[nodiscard]] virtual bool verify(const Digest& message,
                                    const Signature& sig) const = 0;

  [[nodiscard]] virtual Digest key_id() const = 0;
};

/// Symmetric device-key signer (simulated TPM HMAC key). The HMAC key
/// schedule (ipad/opad compressions) is precomputed at construction;
/// sign() clones the midstates instead of re-deriving them per signature.
class HmacSigner final : public Signer {
 public:
  explicit HmacSigner(Digest device_key);

  [[nodiscard]] Signature sign(const Digest& message) override;
  [[nodiscard]] Digest key_id() const override { return key_id_; }
  [[nodiscard]] SignatureScheme scheme() const override {
    return SignatureScheme::kHmacDeviceKey;
  }

 private:
  HmacKey schedule_;
  Digest key_id_;
};

/// Verifier counterpart of HmacSigner (requires the shared key).
class HmacVerifier final : public Verifier {
 public:
  explicit HmacVerifier(Digest device_key);

  [[nodiscard]] bool verify(const Digest& message,
                            const Signature& sig) const override;
  [[nodiscard]] Digest key_id() const override { return key_id_; }

 private:
  HmacKey schedule_;
  Digest key_id_;
};

/// Hash-based public-key signer (stateful; 2^height signatures).
class XmssSigner final : public Signer {
 public:
  XmssSigner(const Digest& seed, unsigned height);

  [[nodiscard]] Signature sign(const Digest& message) override;
  [[nodiscard]] Digest key_id() const override { return key_id_; }
  [[nodiscard]] SignatureScheme scheme() const override {
    return SignatureScheme::kXmss;
  }

  [[nodiscard]] const Digest& public_root() const {
    return keypair_.public_root();
  }
  [[nodiscard]] std::uint64_t signatures_remaining() const {
    return keypair_.capacity() - keypair_.signatures_used();
  }

 private:
  XmssKeyPair keypair_;
  Digest key_id_;
};

/// Verifier counterpart of XmssSigner (holds only the public root).
class XmssVerifier final : public Verifier {
 public:
  explicit XmssVerifier(Digest public_root);

  [[nodiscard]] bool verify(const Digest& message,
                            const Signature& sig) const override;
  [[nodiscard]] Digest key_id() const override { return key_id_; }

 private:
  Digest public_root_;
  Digest key_id_;
};

/// Key id convention: SHA-256 over a scheme label and the public material.
[[nodiscard]] Digest make_key_id(SignatureScheme scheme, const Digest& material);

/// Wrap a batch membership into a Signature: `root_sig` is the inner
/// signature over `root`; `proof` authenticates the leaf this signature
/// will be attached to. The wrapped signature keeps the inner key id so
/// appraisers resolve the same verifier.
[[nodiscard]] Signature wrap_batched(const Digest& root,
                                     const MerkleProof& proof,
                                     const Signature& root_sig);

/// Scheme-dispatching verification: direct schemes go to the verifier;
/// kBatched signatures are decomposed (leaf-in-tree, then inner signature
/// over the root). Use this wherever evidence signatures are checked.
[[nodiscard]] bool verify_any(const Verifier& verifier, const Digest& message,
                              const Signature& sig);

}  // namespace pera::crypto
