// NetKAT denotational semantics.
//
// Two evaluators:
//  * eval over PacketSet — standard set semantics ignoring dup; Kleene
//    star is the least fixpoint (terminates: packet space reachable from a
//    finite input under finitely many mods is finite).
//  * eval_hist over HistorySet — dup records the current packet into the
//    history, used to extract the *paths* packets take, which is what the
//    `*⇒` operator of network-aware Copland quantifies over.
#pragma once

#include "netkat/policy.h"

namespace pera::netkat {

/// Set semantics (dup behaves as id).
[[nodiscard]] PacketSet eval(const PolicyPtr& pol, const PacketSet& input);

/// Convenience: single input packet.
[[nodiscard]] PacketSet eval(const PolicyPtr& pol, const Packet& input);

/// History semantics: dup prepends a copy of the current packet.
/// Star iterates to fixpoint with an iteration bound; exceeding the bound
/// throws std::runtime_error (a dup inside a loop makes histories grow
/// forever — bound it like any forwarding loop).
[[nodiscard]] HistorySet eval_hist(const PolicyPtr& pol,
                                   const HistorySet& input,
                                   std::size_t max_iters = 1024);

[[nodiscard]] HistorySet eval_hist(const PolicyPtr& pol, const Packet& input,
                                   std::size_t max_iters = 1024);

/// Decide p ≡ q on a finite universe of test packets.
[[nodiscard]] bool equivalent_on(const PolicyPtr& p, const PolicyPtr& q,
                                 const PacketSet& universe);

/// Reachability (Prim3 support): does any packet from `input`, forwarded
/// by `(program ; topology)* ; program`, satisfy `goal`?
[[nodiscard]] bool reachable(const PolicyPtr& program, const PolicyPtr& topology,
                             const Packet& input, const PredPtr& goal);

/// Extract the sequence of `sw` field values along each history —
/// i.e. the switch-level paths packets took (oldest first).
[[nodiscard]] std::set<std::vector<std::uint64_t>> switch_paths(
    const HistorySet& hs, const std::string& sw_field = "sw");

}  // namespace pera::netkat
