// NetKAT predicates and policies.
//
// Predicates (Boolean algebra):   1 | 0 | f = n | a + b | a ; b | !a
// Policies  (Kleene algebra):     filter a | f := n | p + q | p ; q | p* | dup
//
// The paper borrows two elements for network-aware Copland: the Boolean
// test prefix (the `▶` guard, Prim3) and the Kleene star (the `*⇒` path
// abstraction, Prim1). This module implements the full algebra so both
// borrowings have real semantics behind them.
#pragma once

#include <memory>
#include <string>

#include "netkat/packet.h"

namespace pera::netkat {

// --- predicates --------------------------------------------------------------

struct Predicate;
using PredPtr = std::shared_ptr<const Predicate>;

enum class PredKind { kTrue, kFalse, kTest, kTestMasked, kAnd, kOr, kNot };

struct Predicate {
  PredKind kind = PredKind::kTrue;
  std::string field;        // kTest / kTestMasked
  std::uint64_t value = 0;  // kTest / kTestMasked
  std::uint64_t mask = ~0ULL;  // kTestMasked: (pkt.f & mask) == (value & mask)
  PredPtr left;             // kAnd / kOr / kNot (left only)
  PredPtr right;

  static PredPtr tru();
  static PredPtr fls();
  static PredPtr test(std::string field, std::uint64_t value);
  /// Bitwise extension used to model LPM/ternary match-action entries:
  /// (pkt.field & mask) == (value & mask). mask 0 is `true`.
  static PredPtr test_masked(std::string field, std::uint64_t value,
                             std::uint64_t mask);
  static PredPtr conj(PredPtr a, PredPtr b);   // a ; b
  static PredPtr disj(PredPtr a, PredPtr b);   // a + b
  static PredPtr neg(PredPtr a);               // !a
};

/// Evaluate a predicate on a single packet.
[[nodiscard]] bool eval(const PredPtr& pred, const Packet& pkt);

[[nodiscard]] std::string to_string(const PredPtr& pred);

// --- policies ----------------------------------------------------------------

struct Policy;
using PolicyPtr = std::shared_ptr<const Policy>;

enum class PolicyKind { kFilter, kMod, kUnion, kSeq, kStar, kDup };

struct Policy {
  PolicyKind kind = PolicyKind::kFilter;
  PredPtr pred;            // kFilter
  std::string field;       // kMod
  std::uint64_t value = 0; // kMod
  PolicyPtr left;          // kUnion / kSeq / kStar (left only)
  PolicyPtr right;

  static PolicyPtr filter(PredPtr pred);
  static PolicyPtr drop();                       // filter 0
  static PolicyPtr id();                         // filter 1
  static PolicyPtr mod(std::string field, std::uint64_t value);
  static PolicyPtr unite(PolicyPtr a, PolicyPtr b);  // p + q
  static PolicyPtr seq(PolicyPtr a, PolicyPtr b);    // p ; q
  static PolicyPtr star(PolicyPtr a);                // p*
  static PolicyPtr dup();
};

[[nodiscard]] std::string to_string(const PolicyPtr& pol);

/// Number of AST nodes.
[[nodiscard]] std::size_t size(const PolicyPtr& pol);

}  // namespace pera::netkat
