#include "netkat/eval.h"

#include <stdexcept>

namespace pera::netkat {

PacketSet eval(const PolicyPtr& pol, const PacketSet& input) {
  switch (pol->kind) {
    case PolicyKind::kFilter: {
      PacketSet out;
      for (const auto& p : input) {
        if (eval(pol->pred, p)) out.insert(p);
      }
      return out;
    }
    case PolicyKind::kMod: {
      PacketSet out;
      for (auto p : input) {
        p.set(pol->field, pol->value);
        out.insert(std::move(p));
      }
      return out;
    }
    case PolicyKind::kUnion: {
      PacketSet out = eval(pol->left, input);
      const PacketSet r = eval(pol->right, input);
      out.insert(r.begin(), r.end());
      return out;
    }
    case PolicyKind::kSeq:
      return eval(pol->right, eval(pol->left, input));
    case PolicyKind::kStar: {
      // Least fixpoint: accumulate until no new packets appear.
      PacketSet acc = input;
      PacketSet frontier = input;
      while (!frontier.empty()) {
        const PacketSet next = eval(pol->left, frontier);
        PacketSet fresh;
        for (const auto& p : next) {
          if (!acc.contains(p)) fresh.insert(p);
        }
        acc.insert(fresh.begin(), fresh.end());
        frontier = std::move(fresh);
      }
      return acc;
    }
    case PolicyKind::kDup:
      return input;  // set semantics: dup is id
  }
  return {};
}

PacketSet eval(const PolicyPtr& pol, const Packet& input) {
  return eval(pol, PacketSet{input});
}

HistorySet eval_hist(const PolicyPtr& pol, const HistorySet& input,
                     std::size_t max_iters) {
  switch (pol->kind) {
    case PolicyKind::kFilter: {
      HistorySet out;
      for (const auto& h : input) {
        if (!h.empty() && eval(pol->pred, h.front())) out.insert(h);
      }
      return out;
    }
    case PolicyKind::kMod: {
      HistorySet out;
      for (auto h : input) {
        if (h.empty()) continue;
        h.front().set(pol->field, pol->value);
        out.insert(std::move(h));
      }
      return out;
    }
    case PolicyKind::kUnion: {
      HistorySet out = eval_hist(pol->left, input, max_iters);
      const HistorySet r = eval_hist(pol->right, input, max_iters);
      out.insert(r.begin(), r.end());
      return out;
    }
    case PolicyKind::kSeq:
      return eval_hist(pol->right, eval_hist(pol->left, input, max_iters),
                       max_iters);
    case PolicyKind::kStar: {
      HistorySet acc = input;
      HistorySet frontier = input;
      std::size_t iters = 0;
      while (!frontier.empty()) {
        if (++iters > max_iters) {
          throw std::runtime_error(
              "netkat::eval_hist: star did not converge (forwarding loop "
              "with dup?)");
        }
        const HistorySet next = eval_hist(pol->left, frontier, max_iters);
        HistorySet fresh;
        for (const auto& h : next) {
          if (!acc.contains(h)) fresh.insert(h);
        }
        acc.insert(fresh.begin(), fresh.end());
        frontier = std::move(fresh);
      }
      return acc;
    }
    case PolicyKind::kDup: {
      HistorySet out;
      for (auto h : input) {
        if (h.empty()) continue;
        h.insert(h.begin() + 1, h.front());  // record a copy behind current
        out.insert(std::move(h));
      }
      return out;
    }
  }
  return {};
}

HistorySet eval_hist(const PolicyPtr& pol, const Packet& input,
                     std::size_t max_iters) {
  return eval_hist(pol, HistorySet{History{input}}, max_iters);
}

bool equivalent_on(const PolicyPtr& p, const PolicyPtr& q,
                   const PacketSet& universe) {
  for (const auto& pkt : universe) {
    if (eval(p, pkt) != eval(q, pkt)) return false;
  }
  return true;
}

bool reachable(const PolicyPtr& program, const PolicyPtr& topology,
               const Packet& input, const PredPtr& goal) {
  // (program ; topology)* gives every intermediate arrival state; the goal
  // holds if any reachable state satisfies it (a packet "reaches" a node
  // even when that node's own program then drops it).
  const PolicyPtr step = Policy::seq(program, topology);
  const PacketSet out = eval(Policy::star(step), input);
  for (const auto& p : out) {
    if (eval(goal, p)) return true;
  }
  return false;
}

std::set<std::vector<std::uint64_t>> switch_paths(const HistorySet& hs,
                                                  const std::string& sw_field) {
  std::set<std::vector<std::uint64_t>> out;
  for (const auto& h : hs) {
    std::vector<std::uint64_t> path;
    // Histories store newest first; reverse for oldest-first paths, and
    // collapse consecutive duplicates (a dup without an sw change).
    for (auto it = h.rbegin(); it != h.rend(); ++it) {
      const std::uint64_t sw = it->get(sw_field);
      if (path.empty() || path.back() != sw) path.push_back(sw);
    }
    out.insert(std::move(path));
  }
  return out;
}

}  // namespace pera::netkat
