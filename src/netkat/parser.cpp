#include "netkat/parser.h"

#include <cctype>
#include <vector>

namespace pera::netkat {

namespace {

enum class Tok {
  kIdent,   // field path or keyword
  kNumber,
  kPlus,
  kSemi,
  kStar,
  kBang,
  kAmp,
  kEq,
  kAssign,  // :=
  kSlash,
  kLParen,
  kRParen,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::uint64_t number = 0;
  std::size_t pos = 0;
};

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    const std::size_t pos = i;
    if (c == ':' && i + 1 < src.size() && src[i + 1] == '=') {
      out.push_back({Tok::kAssign, ":=", 0, pos});
      i += 2;
      continue;
    }
    switch (c) {
      case '+': out.push_back({Tok::kPlus, "+", 0, pos}); ++i; continue;
      case ';': out.push_back({Tok::kSemi, ";", 0, pos}); ++i; continue;
      case '*': out.push_back({Tok::kStar, "*", 0, pos}); ++i; continue;
      case '!': out.push_back({Tok::kBang, "!", 0, pos}); ++i; continue;
      case '&': out.push_back({Tok::kAmp, "&", 0, pos}); ++i; continue;
      case '=': out.push_back({Tok::kEq, "=", 0, pos}); ++i; continue;
      case '/': out.push_back({Tok::kSlash, "/", 0, pos}); ++i; continue;
      case '(': out.push_back({Tok::kLParen, "(", 0, pos}); ++i; continue;
      case ')': out.push_back({Tok::kRParen, ")", 0, pos}); ++i; continue;
      default: break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t value = 0;
      if (c == '0' && i + 1 < src.size() &&
          (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        i += 2;
        const std::size_t start = i;
        while (i < src.size() &&
               std::isxdigit(static_cast<unsigned char>(src[i]))) {
          const char h = src[i++];
          const int nib = h <= '9'   ? h - '0'
                          : h <= 'F' ? h - 'A' + 10
                                     : h - 'a' + 10;
          value = (value << 4) | static_cast<std::uint64_t>(nib);
        }
        if (i == start) throw NetkatParseError("malformed hex literal", pos);
      } else {
        while (i < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[i]))) {
          value = value * 10 + static_cast<std::uint64_t>(src[i++] - '0');
        }
      }
      out.push_back({Tok::kNumber, "", value, pos});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) ||
              src[j] == '_' || src[j] == '.')) {
        ++j;
      }
      out.push_back({Tok::kIdent, std::string(src.substr(i, j - i)), 0, pos});
      i = j;
      continue;
    }
    throw NetkatParseError(std::string("unexpected character '") + c + "'",
                           pos);
  }
  out.push_back({Tok::kEnd, "", 0, src.size()});
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  PolicyPtr policy_top() {
    PolicyPtr p = parse_policy();
    expect(Tok::kEnd);
    return p;
  }

  PredPtr pred_top() {
    PredPtr p = parse_pred();
    expect(Tok::kEnd);
    return p;
  }

 private:
  PolicyPtr parse_policy() {
    PolicyPtr p = parse_seq();
    while (at(Tok::kPlus)) {
      advance();
      p = Policy::unite(std::move(p), parse_seq());
    }
    return p;
  }

  PolicyPtr parse_seq() {
    PolicyPtr p = parse_star();
    while (at(Tok::kSemi)) {
      advance();
      p = Policy::seq(std::move(p), parse_star());
    }
    return p;
  }

  PolicyPtr parse_star() {
    PolicyPtr p = parse_atom();
    while (at(Tok::kStar)) {
      advance();
      p = Policy::star(std::move(p));
    }
    return p;
  }

  PolicyPtr parse_atom() {
    if (at(Tok::kLParen)) {
      advance();
      PolicyPtr p = parse_policy();
      expect(Tok::kRParen);
      return p;
    }
    if (at(Tok::kIdent)) {
      const Token head = advance();
      if (head.text == "drop") return Policy::drop();
      if (head.text == "id") return Policy::id();
      if (head.text == "dup") return Policy::dup();
      if (head.text == "filter") {
        // filter binds one negation-level predicate; parenthesize
        // disjunctions/conjunctions ("filter (a + b)").
        return Policy::filter(parse_pred_neg());
      }
      // field := value
      expect(Tok::kAssign);
      const Token value = expect(Tok::kNumber);
      return Policy::mod(head.text, value.number);
    }
    throw NetkatParseError("expected a policy, found '" + cur().text + "'",
                           cur().pos);
  }

  // --- predicates -----------------------------------------------------------
  PredPtr parse_pred() {
    PredPtr p = parse_pred_conj();
    while (at(Tok::kPlus)) {
      advance();
      p = Predicate::disj(std::move(p), parse_pred_conj());
    }
    return p;
  }

  PredPtr parse_pred_conj() {
    PredPtr p = parse_pred_neg();
    while (at(Tok::kAmp) || at(Tok::kSemi)) {
      advance();
      p = Predicate::conj(std::move(p), parse_pred_neg());
    }
    return p;
  }

  PredPtr parse_pred_neg() {
    if (at(Tok::kBang)) {
      advance();
      return Predicate::neg(parse_pred_neg());
    }
    return parse_pred_atom();
  }

  PredPtr parse_pred_atom() {
    if (at(Tok::kLParen)) {
      advance();
      PredPtr p = parse_pred();
      expect(Tok::kRParen);
      return p;
    }
    if (at(Tok::kNumber)) {
      const Token t = advance();
      if (t.number == 1) return Predicate::tru();
      if (t.number == 0) return Predicate::fls();
      throw NetkatParseError("predicate constants are 0 or 1", t.pos);
    }
    const Token field = expect(Tok::kIdent);
    if (at(Tok::kAmp)) {
      // field & mask = value
      advance();
      const Token mask = expect(Tok::kNumber);
      expect(Tok::kEq);
      const Token value = expect(Tok::kNumber);
      return Predicate::test_masked(field.text, value.number, mask.number);
    }
    expect(Tok::kEq);
    const Token value = expect(Tok::kNumber);
    if (at(Tok::kSlash)) {
      // field = value/prefix : top `prefix` bits of a 64-bit field. For a
      // narrower field, write the explicit mask form.
      advance();
      const Token plen = expect(Tok::kNumber);
      if (plen.number == 0 || plen.number > 64) {
        throw NetkatParseError("prefix length must be 1..64", plen.pos);
      }
      const std::uint64_t mask =
          plen.number >= 64
              ? ~0ULL
              : (((std::uint64_t{1} << plen.number) - 1)
                 << (64 - plen.number));
      return Predicate::test_masked(field.text, value.number, mask);
    }
    return Predicate::test(field.text, value.number);
  }

  // --- helpers ----------------------------------------------------------------
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] bool at(Tok k) const { return cur().kind == k; }
  Token advance() { return toks_[pos_++]; }

  Token expect(Tok k) {
    if (!at(k)) {
      throw NetkatParseError("unexpected token '" + cur().text + "'",
                             cur().pos);
    }
    return advance();
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

PolicyPtr parse_policy(std::string_view src) {
  Parser p(lex(src));
  return p.policy_top();
}

PredPtr parse_predicate(std::string_view src) {
  Parser p(lex(src));
  return p.pred_top();
}

}  // namespace pera::netkat
