#include "netkat/topology.h"

namespace pera::netkat {

PolicyPtr topology_policy(const std::vector<Link>& links,
                          const std::string& sw_field,
                          const std::string& pt_field) {
  std::vector<PolicyPtr> hops;
  hops.reserve(links.size());
  for (const Link& l : links) {
    PolicyPtr hop = Policy::seq(
        Policy::filter(Predicate::conj(Predicate::test(sw_field, l.from_sw),
                                       Predicate::test(pt_field, l.from_pt))),
        Policy::seq(Policy::mod(sw_field, l.to_sw),
                    Policy::mod(pt_field, l.to_pt)));
    hops.push_back(std::move(hop));
  }
  return union_all(hops);
}

PolicyPtr forward_rule(std::uint64_t sw, PredPtr match, std::uint64_t out_port,
                       const std::string& sw_field,
                       const std::string& pt_field) {
  return Policy::seq(
      Policy::filter(Predicate::conj(Predicate::test(sw_field, sw),
                                     std::move(match))),
      Policy::mod(pt_field, out_port));
}

PolicyPtr union_all(const std::vector<PolicyPtr>& pols) {
  if (pols.empty()) return Policy::drop();
  PolicyPtr acc = pols[0];
  for (std::size_t i = 1; i < pols.size(); ++i) {
    acc = Policy::unite(acc, pols[i]);
  }
  return acc;
}

PolicyPtr instrumented_network(const PolicyPtr& program,
                               const PolicyPtr& topology) {
  const PolicyPtr step =
      Policy::seq(Policy::dup(), Policy::seq(program, topology));
  return Policy::seq(Policy::star(step),
                     Policy::seq(Policy::dup(), program));
}

}  // namespace pera::netkat
