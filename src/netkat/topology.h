// Topology encoding helpers: build the NetKAT link policy `t` of a
// network so that `(p ; t)* ; p` is the network-wide behaviour of a
// per-switch program `p` (the standard NetKAT encoding).
#pragma once

#include <vector>

#include "netkat/policy.h"

namespace pera::netkat {

/// One unidirectional link: (switch a, port ap) -> (switch b, port bp).
struct Link {
  std::uint64_t from_sw = 0;
  std::uint64_t from_pt = 0;
  std::uint64_t to_sw = 0;
  std::uint64_t to_pt = 0;
};

/// Build the topology policy: the union over links of
///   sw=a ; pt=ap ; sw:=b ; pt:=bp
/// An empty link set yields drop.
[[nodiscard]] PolicyPtr topology_policy(const std::vector<Link>& links,
                                        const std::string& sw_field = "sw",
                                        const std::string& pt_field = "pt");

/// Forwarding-rule helper: at switch `sw`, send packets matching `match`
/// out of port `out_port`:   sw=s ; match ; pt:=out_port
[[nodiscard]] PolicyPtr forward_rule(std::uint64_t sw, PredPtr match,
                                     std::uint64_t out_port,
                                     const std::string& sw_field = "sw",
                                     const std::string& pt_field = "pt");

/// Union a list of policies (drop for an empty list).
[[nodiscard]] PolicyPtr union_all(const std::vector<PolicyPtr>& pols);

/// `dup`-instrumented network program for path extraction:
///   (dup ; p ; t)* ; dup ; p
[[nodiscard]] PolicyPtr instrumented_network(const PolicyPtr& program,
                                             const PolicyPtr& topology);

}  // namespace pera::netkat
