// Textual NetKAT, so network specifications live as source alongside the
// P4-mini programs they constrain.
//
// Grammar (precedence loosest first; whitespace-insensitive, '#' comments):
//   policy  := seq ('+' seq)*                 union
//   seq     := star (';' star)*               sequential composition
//   star    := atom '*'?                      Kleene star
//   atom    := 'drop' | 'id' | 'dup'
//            | FIELD ':=' NUMBER              modification
//            | 'filter' pred
//            | '(' policy ')'
//   pred    := psum
//   psum    := pprod ('+' pprod)*             disjunction
//   pprod   := pneg ('&' pneg)*               conjunction  (';' in papers)
//   pneg    := '!' pneg | patom
//   patom   := '1' | '0'
//            | FIELD '=' NUMBER ['/' NUMBER]  test; /w gives masked test
//                                             over the top w bits of 64
//            | FIELD '&' NUMBER '=' NUMBER    masked test (explicit mask)
//            | '(' pred ')'
//   FIELD   := IDENT ('.' IDENT)*             e.g. sw, pt, ipv4.dst
//   NUMBER  := decimal | 0x hex
//
// Inside `filter (...)`, '+' and '&' are predicate operators; at policy
// level '+' is union. The parser disambiguates by context.
#pragma once

#include <stdexcept>
#include <string_view>

#include "netkat/policy.h"

namespace pera::netkat {

class NetkatParseError : public std::runtime_error {
 public:
  NetkatParseError(const std::string& msg, std::size_t pos)
      : std::runtime_error("netkat:" + std::to_string(pos) + ": " + msg),
        pos_(pos) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  std::size_t pos_;
};

/// Parse a NetKAT policy from text.
[[nodiscard]] PolicyPtr parse_policy(std::string_view src);

/// Parse a bare predicate from text.
[[nodiscard]] PredPtr parse_predicate(std::string_view src);

}  // namespace pera::netkat
