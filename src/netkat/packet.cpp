#include "netkat/packet.h"

namespace pera::netkat {

std::string Packet::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : fields_) {
    if (!first) out += ", ";
    first = false;
    out += k + "=" + std::to_string(v);
  }
  out += "}";
  return out;
}

std::string to_string(const PacketSet& ps) {
  std::string out = "[";
  bool first = true;
  for (const auto& p : ps) {
    if (!first) out += "; ";
    first = false;
    out += p.to_string();
  }
  out += "]";
  return out;
}

}  // namespace pera::netkat
