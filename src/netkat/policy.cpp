#include "netkat/policy.h"

namespace pera::netkat {

namespace {
std::shared_ptr<Predicate> make_pred(PredKind k) {
  auto p = std::make_shared<Predicate>();
  p->kind = k;
  return p;
}
std::shared_ptr<Policy> make_pol(PolicyKind k) {
  auto p = std::make_shared<Policy>();
  p->kind = k;
  return p;
}
}  // namespace

PredPtr Predicate::tru() {
  static const PredPtr kT = make_pred(PredKind::kTrue);
  return kT;
}

PredPtr Predicate::fls() {
  static const PredPtr kF = make_pred(PredKind::kFalse);
  return kF;
}

PredPtr Predicate::test(std::string field, std::uint64_t value) {
  auto p = make_pred(PredKind::kTest);
  p->field = std::move(field);
  p->value = value;
  return p;
}

PredPtr Predicate::test_masked(std::string field, std::uint64_t value,
                               std::uint64_t mask) {
  auto p = make_pred(PredKind::kTestMasked);
  p->field = std::move(field);
  p->value = value;
  p->mask = mask;
  return p;
}

PredPtr Predicate::conj(PredPtr a, PredPtr b) {
  auto p = make_pred(PredKind::kAnd);
  p->left = std::move(a);
  p->right = std::move(b);
  return p;
}

PredPtr Predicate::disj(PredPtr a, PredPtr b) {
  auto p = make_pred(PredKind::kOr);
  p->left = std::move(a);
  p->right = std::move(b);
  return p;
}

PredPtr Predicate::neg(PredPtr a) {
  auto p = make_pred(PredKind::kNot);
  p->left = std::move(a);
  return p;
}

bool eval(const PredPtr& pred, const Packet& pkt) {
  switch (pred->kind) {
    case PredKind::kTrue: return true;
    case PredKind::kFalse: return false;
    case PredKind::kTest: return pkt.get(pred->field) == pred->value;
    case PredKind::kTestMasked:
      return (pkt.get(pred->field) & pred->mask) ==
             (pred->value & pred->mask);
    case PredKind::kAnd: return eval(pred->left, pkt) && eval(pred->right, pkt);
    case PredKind::kOr: return eval(pred->left, pkt) || eval(pred->right, pkt);
    case PredKind::kNot: return !eval(pred->left, pkt);
  }
  return false;
}

std::string to_string(const PredPtr& pred) {
  switch (pred->kind) {
    case PredKind::kTrue: return "1";
    case PredKind::kFalse: return "0";
    case PredKind::kTest:
      return pred->field + "=" + std::to_string(pred->value);
    case PredKind::kTestMasked:
      return pred->field + "&" + std::to_string(pred->mask) + "=" +
             std::to_string(pred->value & pred->mask);
    case PredKind::kAnd:
      return "(" + to_string(pred->left) + ";" + to_string(pred->right) + ")";
    case PredKind::kOr:
      return "(" + to_string(pred->left) + "+" + to_string(pred->right) + ")";
    case PredKind::kNot:
      return "!(" + to_string(pred->left) + ")";
  }
  return "?";
}

PolicyPtr Policy::filter(PredPtr pred) {
  auto p = make_pol(PolicyKind::kFilter);
  p->pred = std::move(pred);
  return p;
}

PolicyPtr Policy::drop() { return filter(Predicate::fls()); }

PolicyPtr Policy::id() { return filter(Predicate::tru()); }

PolicyPtr Policy::mod(std::string field, std::uint64_t value) {
  auto p = make_pol(PolicyKind::kMod);
  p->field = std::move(field);
  p->value = value;
  return p;
}

PolicyPtr Policy::unite(PolicyPtr a, PolicyPtr b) {
  auto p = make_pol(PolicyKind::kUnion);
  p->left = std::move(a);
  p->right = std::move(b);
  return p;
}

PolicyPtr Policy::seq(PolicyPtr a, PolicyPtr b) {
  auto p = make_pol(PolicyKind::kSeq);
  p->left = std::move(a);
  p->right = std::move(b);
  return p;
}

PolicyPtr Policy::star(PolicyPtr a) {
  auto p = make_pol(PolicyKind::kStar);
  p->left = std::move(a);
  return p;
}

PolicyPtr Policy::dup() {
  static const PolicyPtr kDupInstance = make_pol(PolicyKind::kDup);
  return kDupInstance;
}

std::string to_string(const PolicyPtr& pol) {
  switch (pol->kind) {
    case PolicyKind::kFilter: return "filter " + to_string(pol->pred);
    case PolicyKind::kMod:
      return pol->field + ":=" + std::to_string(pol->value);
    case PolicyKind::kUnion:
      return "(" + to_string(pol->left) + " + " + to_string(pol->right) + ")";
    case PolicyKind::kSeq:
      return "(" + to_string(pol->left) + " ; " + to_string(pol->right) + ")";
    case PolicyKind::kStar: return "(" + to_string(pol->left) + ")*";
    case PolicyKind::kDup: return "dup";
  }
  return "?";
}

namespace {
std::size_t pred_size(const PredPtr& p) {
  if (!p) return 0;
  return 1 + pred_size(p->left) + pred_size(p->right);
}
}  // namespace

std::size_t size(const PolicyPtr& pol) {
  if (!pol) return 0;
  return 1 + pred_size(pol->pred) + size(pol->left) + size(pol->right);
}

}  // namespace pera::netkat
