// NetKAT packet model (Anderson et al., POPL'14).
//
// A packet is a total assignment of values to a finite set of named
// fields. For the reproduction the interesting fields are `sw` (switch),
// `pt` (port) and a few header fields, but the model is generic.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pera::netkat {

/// Field name -> value. Missing fields read as 0.
class Packet {
 public:
  Packet() = default;
  Packet(std::initializer_list<std::pair<const std::string, std::uint64_t>> init)
      : fields_(init) {}

  [[nodiscard]] std::uint64_t get(const std::string& field) const {
    const auto it = fields_.find(field);
    return it == fields_.end() ? 0 : it->second;
  }

  void set(const std::string& field, std::uint64_t value) {
    if (value == 0) {
      fields_.erase(field);  // canonical form: zero fields are absent
    } else {
      fields_[field] = value;
    }
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& fields() const {
    return fields_;
  }

  friend bool operator==(const Packet&, const Packet&) = default;
  friend auto operator<=>(const Packet&, const Packet&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> fields_;
};

using PacketSet = std::set<Packet>;

/// A packet history: the current packet plus the trail recorded by `dup`.
/// history[0] is the current packet; later entries are older.
using History = std::vector<Packet>;
using HistorySet = std::set<History>;

/// Render a packet set for debugging.
[[nodiscard]] std::string to_string(const PacketSet& ps);

}  // namespace pera::netkat
