// Bounded lock-free single-producer/single-consumer ring queue.
//
// The dispatcher (sole producer) and one shard worker (sole consumer)
// communicate exclusively through one of these, so the packet hot path
// never takes a lock: push is a tail store with release ordering, pop a
// head store with release ordering, and each side reads the other's index
// with acquire ordering. Capacity is rounded up to a power of two so the
// index math is a mask, like the rte_ring/NFOS-style rings this models.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace pera::pipeline {

/// Escalating wait strategy for ring idle/full loops. A bare
/// yield-forever loop makes every idle shard re-runnable on each
/// scheduler pass, so on hosts with fewer cores than shards the busy
/// worker keeps getting preempted by spinners — the 8-shard wall-clock
/// regression. Escalate instead: a short pause-spin catches
/// sub-microsecond handoffs without leaving the CPU, a few yields cover
/// same-core producers, then short sleeps take oversubscribed spinners
/// off the run queue entirely.
class Backoff {
 public:
  void wait() {
    if (round_ < kPauseRounds) {
      ++round_;
      cpu_pause();
      return;
    }
    if (round_ < kPauseRounds + kYieldRounds) {
      ++round_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  /// Call after useful work: the next wait() starts back at pause-spin.
  void reset() { round_ = 0; }

 private:
  static void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  }

  static constexpr unsigned kPauseRounds = 64;
  static constexpr unsigned kYieldRounds = 16;
  unsigned round_ = 0;
};

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the ring is full (backpressure —
  /// the caller decides whether to drop or retry).
  bool try_push(T&& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;  // full
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;  // empty
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact only when called by producer or
  /// consumer while the other side is quiescent). Used for depth gauges.
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
};

}  // namespace pera::pipeline
