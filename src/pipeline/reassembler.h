// Appraiser-side reassembly of shard-interleaved evidence streams.
//
// Shards emit evidence records in their own local order, so what reaches
// the appraiser is an interleaving across flows. Appraisal buckets
// records per flow, restores per-flow order by dispatcher sequence
// number, verifies each signature against the per-shard device keys
// (derived from the same root the pipeline used), and folds the per-flow
// composition — chained (Seq) or pointwise (§5.2, Fig. 4).
//
// Two drivers share one appraisal core (appraise_record + fold_flow, so
// their verdicts are bit-identical by construction):
//
//  * ShardedAppraiser — the serial reference: ingest everything, then
//    appraise. Deterministic, single-threaded, used by the equivalence
//    tests as the fixed point.
//  * ParallelAppraiser (appraiser.h) — per-shard appraiser workers that
//    verify concurrently while the pipeline is still running, with a
//    deterministic merge.
//
// The per-flow transcript digest deliberately covers only the *signed
// content* (the evidence under the signature node) plus the verification
// outcome, not the signature bytes: shard keys differ by shard, so the
// same flow processed by shard 0 (at 1 shard) or shard 3 (at 4 shards)
// yields different signatures over bit-identical content. That is what
// makes verdicts shard-count invariant — the property the determinism
// tests pin down.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "crypto/signer.h"
#include "nac/binder.h"
#include "pipeline/worker.h"

namespace pera::pipeline {

struct FlowVerdict {
  std::uint64_t flow = 0;
  std::size_t records = 0;
  std::size_t signature_failures = 0;
  bool ok = false;               // all records present-and-verified
  crypto::Digest transcript{};   // composition-mode-sensitive fold
};

/// The per-shard verifiers an appraiser provisions from the shared root
/// key: one per derived device key, resolved by key id. Supports the
/// symmetric HmacSigner scheme and the hash-based XmssSigner scheme
/// (whose WOTS chain walk rides the multi-lane SHA-256 engine).
class VerifierSet {
 public:
  VerifierSet(const crypto::Digest& root_key, std::string_view label,
              std::size_t max_shards,
              crypto::SignatureScheme scheme =
                  crypto::SignatureScheme::kHmacDeviceKey,
              unsigned xmss_height = 8);

  /// nullptr when no provisioned key matches.
  [[nodiscard]] const crypto::Verifier* by_key_id(
      const crypto::Digest& id) const;

  [[nodiscard]] std::size_t size() const { return verifiers_.size(); }

 private:
  std::vector<std::unique_ptr<crypto::Verifier>> verifiers_;
  std::map<crypto::Digest, std::size_t> by_key_id_;
};

/// One evidence record after signature verification, ready for the
/// per-flow fold. `content` is the evidence under the signature node
/// (or the whole term for unsigned records); null when decoding failed.
struct AppraisedRecord {
  std::uint64_t seq = 0;
  std::uint32_t shard = 0;
  bool decoded = false;
  bool sig_ok = false;
  copland::EvidencePtr content;
};

/// Decode + verify one evidence item (the parallelizable per-record
/// work). Counts pipeline.appraise.sig_ok/.sig_fail.
[[nodiscard]] AppraisedRecord appraise_record(const EvidenceItem& item,
                                              const VerifierSet& verifiers);

/// Order `records` by (seq, shard) — stable, so same-packet records keep
/// their emission order — and fold them into the flow verdict under
/// `mode`. Consumes the record order in place.
[[nodiscard]] FlowVerdict fold_flow(std::uint64_t flow,
                                    std::vector<AppraisedRecord>& records,
                                    nac::CompositionMode mode);

class ShardedAppraiser {
 public:
  /// Provision verifiers for up to `max_shards` derived device keys (the
  /// appraiser does not know the attester's shard count; signatures are
  /// resolved by key id).
  ShardedAppraiser(const crypto::Digest& root_key, std::string_view label,
                   std::size_t max_shards,
                   nac::CompositionMode mode = nac::CompositionMode::kChained,
                   crypto::SignatureScheme scheme =
                       crypto::SignatureScheme::kHmacDeviceKey,
                   unsigned xmss_height = 8);

  /// Feed one record; any order, any interleaving.
  void ingest(const EvidenceItem& item);
  void ingest(const std::vector<EvidenceItem>& items) {
    for (const EvidenceItem& i : items) ingest(i);
  }

  /// Verify + reassemble every buffered flow. Deterministic: flows are
  /// keyed and records ordered by (seq, shard).
  [[nodiscard]] std::map<std::uint64_t, FlowVerdict> appraise() const;

  /// Digest over all flow transcripts — one value to compare across
  /// shard counts (the determinism tests' fixed point).
  [[nodiscard]] static crypto::Digest summary(
      const std::map<std::uint64_t, FlowVerdict>& verdicts);

  [[nodiscard]] std::size_t flows() const { return flows_.size(); }

 private:
  nac::CompositionMode mode_;
  VerifierSet verifiers_;
  std::map<std::uint64_t, std::vector<EvidenceItem>> flows_;
};

}  // namespace pera::pipeline
