// Appraiser-side reassembly of shard-interleaved evidence streams.
//
// Shards emit evidence records in their own local order, so what reaches
// the appraiser is an interleaving across flows. The reassembler buckets
// records per flow, restores per-flow order by dispatcher sequence
// number, verifies each signature against the per-shard device keys
// (derived from the same root the pipeline used), and folds the per-flow
// composition — chained (Seq) or pointwise (§5.2, Fig. 4).
//
// The per-flow transcript digest deliberately covers only the *signed
// content* (the evidence under the signature node) plus the verification
// outcome, not the signature bytes: shard keys differ by shard, so the
// same flow processed by shard 0 (at 1 shard) or shard 3 (at 4 shards)
// yields different signatures over bit-identical content. That is what
// makes verdicts shard-count invariant — the property the determinism
// tests pin down.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "crypto/signer.h"
#include "nac/binder.h"
#include "pipeline/worker.h"

namespace pera::pipeline {

struct FlowVerdict {
  std::uint64_t flow = 0;
  std::size_t records = 0;
  std::size_t signature_failures = 0;
  bool ok = false;               // all records present-and-verified
  crypto::Digest transcript{};   // composition-mode-sensitive fold
};

class ShardedAppraiser {
 public:
  /// Provision verifiers for up to `max_shards` derived device keys (the
  /// appraiser does not know the attester's shard count; signatures are
  /// resolved by key id).
  ShardedAppraiser(const crypto::Digest& root_key, std::string_view label,
                   std::size_t max_shards,
                   nac::CompositionMode mode = nac::CompositionMode::kChained);

  /// Feed one record; any order, any interleaving.
  void ingest(const EvidenceItem& item);
  void ingest(const std::vector<EvidenceItem>& items) {
    for (const EvidenceItem& i : items) ingest(i);
  }

  /// Verify + reassemble every buffered flow. Deterministic: flows are
  /// keyed and records ordered by (seq, shard).
  [[nodiscard]] std::map<std::uint64_t, FlowVerdict> appraise() const;

  /// Digest over all flow transcripts — one value to compare across
  /// shard counts (the determinism tests' fixed point).
  [[nodiscard]] static crypto::Digest summary(
      const std::map<std::uint64_t, FlowVerdict>& verdicts);

  [[nodiscard]] std::size_t flows() const { return flows_.size(); }

 private:
  nac::CompositionMode mode_;
  std::vector<crypto::HmacVerifier> verifiers_;
  std::map<crypto::Digest, std::size_t> by_key_id_;
  std::map<std::uint64_t, std::vector<EvidenceItem>> flows_;
};

}  // namespace pera::pipeline
