#include "pipeline/pipeline.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "pipeline/affinity.h"

namespace pera::pipeline {

namespace prof = obs::profiler;

netsim::SimTime PipelineReport::latency_percentile(double p) const {
  if (latencies.empty()) return 0;
  const double rank = p * static_cast<double>(latencies.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(rank + 0.5);
  return latencies[std::min(idx, latencies.size() - 1)];
}

std::vector<crypto::Digest> PeraPipeline::shard_keys(
    const crypto::Digest& root_key, std::string_view label, std::size_t n) {
  return crypto::derive_keys(
      crypto::BytesView{root_key.v.data(), root_key.v.size()}, label, n);
}

PeraPipeline::PeraPipeline(std::string name, ProgramFactory factory,
                           const crypto::Digest& root_key,
                           PipelineOptions options)
    : name_(std::move(name)), options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  const std::vector<crypto::Digest> keys =
      shard_keys(root_key, options_.shard_key_label, options_.shards);
  workers_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    workers_.push_back(std::make_unique<ShardWorker>(
        static_cast<std::uint32_t>(i), name_, factory, keys[i], epochs_,
        options_.pera, options_.queue_capacity, options_.base_packet_cost,
        options_.scheme, options_.xmss_height));
    if (options_.pin_cores) {
      workers_.back()->set_pin_cpu(static_cast<int>(i));
    }
  }
  if (options_.appraisers > 0) {
    AppraiserOptions ao;
    ao.workers = options_.appraisers;
    ao.queue_capacity = options_.appraiser_queue_capacity;
    ao.mode = options_.appraise_mode;
    ao.scheme = options_.scheme;
    ao.xmss_height = options_.xmss_height;
    ao.verify_burst = options_.verify_burst;
    ao.pin_base =
        options_.pin_cores ? static_cast<int>(options_.shards) : -1;
    appraiser_ = std::make_unique<ParallelAppraiser>(
        root_key, options_.shard_key_label, options_.shards, ao);
    for (auto& w : workers_) w->set_sink(appraiser_.get());
  }
}

PeraPipeline::~PeraPipeline() { stop(); }

void PeraPipeline::start() {
  if (started_) return;
  crypto::engine::publish_metrics();
  started_ = true;
  stop_.store(false, std::memory_order_release);
  if (appraiser_) appraiser_->start(workers_.size());
  threads_.reserve(workers_.size());
  for (auto& w : workers_) {
    threads_.emplace_back([worker = w.get(), this] { worker->run(stop_); });
  }
}

bool PeraPipeline::submit(const dataplane::RawPacket& raw,
                          const nac::PolicyHeader* header) {
  const prof::ScopedStage dispatching(prof::Stage::kDispatch);
  const std::uint64_t flow = flow_hash(extract_flow_key(raw));
  const std::size_t shard = static_cast<std::size_t>(
      (static_cast<unsigned __int128>(flow) * workers_.size()) >> 64);

  dispatch_clock_ += options_.dispatch_cost;
  PacketJob job;
  // Allocation-free fast path: reuse the capacity of a buffer the target
  // shard already spent, instead of allocating a fresh copy.
  crypto::Bytes pooled;
  if (workers_[shard]->recycle().try_pop(pooled)) {
    pooled.assign(raw.data.begin(), raw.data.end());
    job.raw.port = raw.port;
    job.raw.data = std::move(pooled);
    ++pool_reused_;
  } else {
    job.raw = raw;
    ++pool_fresh_;
  }
  job.header = header;
  job.flow = flow;
  job.seq = next_seq_++;
  job.arrival = dispatch_clock_;

  // try_push moves from the job only on success, so a full ring leaves it
  // intact for the retry loop.
  SpscQueue<PacketJob>& q = workers_[shard]->queue();
  if (!q.try_push(std::move(job))) {
    if (options_.drop_on_full) {
      ++dropped_;
      PERA_OBS_COUNT("pipeline.drops");
      return false;
    }
    // Lossless backpressure: wait (with escalating backoff, so an
    // oversubscribed worker actually gets cycles) until a slot frees.
    const prof::ScopedStage blocked(prof::Stage::kRingTransit);
    Backoff full;
    while (!q.try_push(std::move(job))) full.wait();
  }
  if (obs::enabled()) {
    obs::gauge_set("pipeline.queue.depth.shard" + std::to_string(shard),
                   static_cast<std::int64_t>(q.size()));
  }
  return true;
}

void PeraPipeline::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  // Defined drain order: (1) each worker empties its ring and flushes its
  // batcher on its own thread before run() returns (so streamed evidence
  // reaches the appraiser rings); (2) the appraiser drains, folds and
  // merges. drain_deferred() here is the idempotent fallback for the
  // inline path (it is empty after a threaded run).
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  for (auto& w : workers_) w->drain_deferred();
  if (appraiser_) appraiser_->finish();
}

void PeraPipeline::load_program(ProgramFactory factory) {
  ControlOp op;
  op.kind = ControlOp::Kind::kLoadProgram;
  op.factory = std::move(factory);
  epochs_.publish(std::move(op));
  PERA_OBS_COUNT("pipeline.control.program_swaps");
}

void PeraPipeline::update_table(std::string table,
                                dataplane::TableEntry entry) {
  ControlOp op;
  op.kind = ControlOp::Kind::kUpdateTable;
  op.table = std::move(table);
  op.entry = std::move(entry);
  epochs_.publish(std::move(op));
  PERA_OBS_COUNT("pipeline.control.table_updates");
}

std::vector<EvidenceItem> PeraPipeline::collect_evidence() const {
  std::vector<EvidenceItem> out;
  for (const auto& w : workers_) {
    out.insert(out.end(), w->evidence().begin(), w->evidence().end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const EvidenceItem& a, const EvidenceItem& b) {
                     if (a.flow != b.flow) return a.flow < b.flow;
                     if (a.seq != b.seq) return a.seq < b.seq;
                     return a.shard < b.shard;
                   });
  return out;
}

PipelineReport PeraPipeline::report() const {
  PipelineReport rep;
  rep.submitted = next_seq_;
  rep.dropped = dropped_;
  rep.pool_reused = pool_reused_;
  rep.pool_fresh = pool_fresh_;
  rep.makespan = dispatch_clock_;
  for (const auto& w : workers_) {
    rep.shards.push_back(w->report());
    rep.makespan = std::max(rep.makespan, rep.shards.back().completion);
    rep.latencies.insert(rep.latencies.end(), w->latencies().begin(),
                         w->latencies().end());
  }
  std::sort(rep.latencies.begin(), rep.latencies.end());
  if (rep.makespan > 0) {
    rep.sim_packets_per_sec =
        static_cast<double>(rep.processed()) *
        static_cast<double>(netsim::kSecond) /
        static_cast<double>(rep.makespan);
  }
  return rep;
}

}  // namespace pera::pipeline
