// One shard of the parallel PERA pipeline.
//
// A ShardWorker is shared-nothing on the packet path: it owns its own
// PeraSwitch (and through it a MeasurementUnit, EvidenceCache and
// EvidenceBatcher), its own HmacSigner keyed with a per-shard device key,
// and its own SPSC ingress queue. The only cross-shard state it touches
// is the EpochBlock version word (one acquire load per packet) — control
// ops are replayed onto the shard-private switch only when that word
// moves, and the switch's measurement-epoch machinery then invalidates
// cached evidence lazily, exactly as on the serial path.
//
// Every worker uses the *same* place name (the pipeline's switch name):
// the shards model the parallel pipes of one PERA element, so unsigned
// evidence content is bit-identical no matter which shard produced it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "pera/pera_switch.h"
#include "pipeline/epoch.h"
#include "pipeline/spsc_queue.h"

namespace pera::pipeline {

/// A dispatched packet: raw bytes plus the dispatcher-assigned flow hash,
/// global sequence number and simulated arrival time. `header` borrows
/// the caller's policy header — it must outlive the pipeline run.
struct PacketJob {
  dataplane::RawPacket raw;
  const nac::PolicyHeader* header = nullptr;
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;
  netsim::SimTime arrival = 0;
};

/// One evidence record leaving a shard, tagged for reassembly: the
/// appraiser reorders shard-interleaved streams per flow by (flow, seq).
struct EvidenceItem {
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;
  std::uint32_t shard = 0;
  crypto::Bytes evidence;  // copland::encode() of the signed evidence
  crypto::Nonce nonce{};
};

struct ShardReport {
  std::uint64_t processed = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t attested = 0;
  std::uint64_t epoch_syncs = 0;
  netsim::SimTime busy = 0;        // sum of per-packet simulated costs
  netsim::SimTime completion = 0;  // shard sim clock after its last packet
  pera::CacheStats cache;
};

class ShardWorker {
 public:
  ShardWorker(std::uint32_t id, std::string place, const ProgramFactory& factory,
              const crypto::Digest& device_key, const EpochBlock& epochs,
              pera::PeraConfig config, std::size_t queue_capacity,
              netsim::SimTime base_packet_cost);

  [[nodiscard]] SpscQueue<PacketJob>& queue() { return queue_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }

  /// Thread body: pop-process until `stop` is set AND the queue is dry.
  void run(const std::atomic<bool>& stop);

  /// Process one packet (also the inline single-threaded mode).
  void process(PacketJob job);

  /// Flush evidence still deferred in the batcher (call after run()).
  void drain_deferred();

  // --- post-run results (owner thread only, after join) -------------------
  [[nodiscard]] const std::vector<EvidenceItem>& evidence() const {
    return evidence_;
  }
  [[nodiscard]] const std::vector<netsim::SimTime>& latencies() const {
    return latencies_;
  }
  [[nodiscard]] ShardReport report() const;
  [[nodiscard]] const ::pera::pera::PeraSwitch& pera_switch() const {
    return switch_;
  }

 private:
  void sync_epoch();

  std::uint32_t id_;
  crypto::HmacSigner signer_;
  ::pera::pera::PeraSwitch switch_;
  const EpochBlock* epochs_;
  SpscQueue<PacketJob> queue_;
  netsim::SimTime base_packet_cost_;

  std::uint64_t synced_version_ = 0;
  std::size_t applied_ops_ = 0;
  netsim::SimTime clock_ = 0;  // shard-local simulated clock

  ShardReport report_;
  std::vector<EvidenceItem> evidence_;
  std::vector<netsim::SimTime> latencies_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> deferred_;  // flow,seq
};

}  // namespace pera::pipeline
