// One shard of the parallel PERA pipeline.
//
// A ShardWorker is shared-nothing on the packet path: it owns its own
// PeraSwitch (and through it a MeasurementUnit, EvidenceCache and
// EvidenceBatcher), its own signer keyed with a per-shard device key
// (HMAC by default, XMSS/WOTS optionally), and its own SPSC ingress
// queue. The only cross-shard state it touches is the EpochBlock version
// word (one acquire load per packet) — control ops are replayed onto the
// shard-private switch only when that word moves, and the switch's
// measurement-epoch machinery then invalidates cached evidence lazily,
// exactly as on the serial path.
//
// Every worker uses the *same* place name (the pipeline's switch name):
// the shards model the parallel pipes of one PERA element, so unsigned
// evidence content is bit-identical no matter which shard produced it.
//
// Evidence leaves a shard one of two ways: buffered locally in
// `evidence_` (post-run collection), or streamed into an EvidenceSink
// (the parallel appraiser) the moment it is produced. The end-of-stream
// drain order is fixed: a worker first empties its ingress ring, then
// flushes its batcher's deferred evidence — both *on the worker thread*,
// before run() returns — so every record reaches the sink before the
// appraiser side is allowed to finish (see PeraPipeline::stop()).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "crypto/signer.h"
#include "pera/pera_switch.h"
#include "pipeline/epoch.h"
#include "pipeline/spsc_queue.h"

namespace pera::pipeline {

/// A dispatched packet: raw bytes plus the dispatcher-assigned flow hash,
/// global sequence number and simulated arrival time. `header` borrows
/// the caller's policy header — it must outlive the pipeline run.
struct PacketJob {
  dataplane::RawPacket raw;
  const nac::PolicyHeader* header = nullptr;
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;
  netsim::SimTime arrival = 0;
};

/// One evidence record leaving a shard, tagged for reassembly: the
/// appraiser reorders shard-interleaved streams per flow by (flow, seq).
struct EvidenceItem {
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;
  std::uint32_t shard = 0;
  crypto::Bytes evidence;  // copland::encode() of the signed evidence
  crypto::Nonce nonce{};
};

/// Consumer of evidence items as they are produced (the streaming hand-off
/// to the parallel appraiser). accept() is called from the producing
/// shard's worker thread; implementations must be safe for concurrent
/// calls from *different* producers (the ParallelAppraiser keeps one SPSC
/// ring per (producer, appraiser) pair, so it never locks).
class EvidenceSink {
 public:
  virtual ~EvidenceSink() = default;
  /// Returns false when the item was dropped (sink shutting down).
  virtual bool accept(std::uint32_t producer, EvidenceItem&& item) = 0;
};

struct ShardReport {
  std::uint64_t processed = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t attested = 0;
  std::uint64_t epoch_syncs = 0;
  netsim::SimTime busy = 0;        // sum of per-packet simulated costs
  netsim::SimTime completion = 0;  // shard sim clock after its last packet
  pera::CacheStats cache;
};

class ShardWorker {
 public:
  ShardWorker(std::uint32_t id, std::string place, const ProgramFactory& factory,
              const crypto::Digest& device_key, const EpochBlock& epochs,
              pera::PeraConfig config, std::size_t queue_capacity,
              netsim::SimTime base_packet_cost,
              crypto::SignatureScheme scheme =
                  crypto::SignatureScheme::kHmacDeviceKey,
              unsigned xmss_height = 8);

  [[nodiscard]] SpscQueue<PacketJob>& queue() { return queue_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }

  /// Stream evidence into `sink` instead of buffering it locally. Set
  /// before start(); the sink must outlive the run.
  void set_sink(EvidenceSink* sink) { sink_ = sink; }

  /// Pin the worker thread to `cpu` when it starts (affinity.h).
  void set_pin_cpu(int cpu) { pin_cpu_ = cpu; }

  /// The packet-buffer recycle ring: the worker (producer side) returns
  /// spent `RawPacket::data` buffers; the dispatcher (consumer side)
  /// reuses their capacity for the next submit — the dispatch stage then
  /// allocates only while the ring warms up.
  [[nodiscard]] SpscQueue<crypto::Bytes>& recycle() { return recycle_; }

  /// Thread body: pop-process until `stop` is set AND the queue is dry,
  /// then flush deferred (batched) evidence — the defined drain order.
  void run(const std::atomic<bool>& stop);

  /// Process one packet (also the inline single-threaded mode).
  void process(PacketJob job);

  /// Flush evidence still deferred in the batcher. run() already drains
  /// on the worker thread before returning; this is the inline-mode /
  /// never-started path (idempotent — a second flush is empty).
  void drain_deferred();

  // --- post-run results (owner thread only, after join) -------------------
  [[nodiscard]] const std::vector<EvidenceItem>& evidence() const {
    return evidence_;
  }
  [[nodiscard]] const std::vector<netsim::SimTime>& latencies() const {
    return latencies_;
  }
  [[nodiscard]] ShardReport report() const;
  [[nodiscard]] const ::pera::pera::PeraSwitch& pera_switch() const {
    return switch_;
  }

 private:
  void sync_epoch();
  void emit(EvidenceItem&& item);

  std::uint32_t id_;
  std::unique_ptr<crypto::Signer> signer_;
  ::pera::pera::PeraSwitch switch_;
  const EpochBlock* epochs_;
  SpscQueue<PacketJob> queue_;
  SpscQueue<crypto::Bytes> recycle_;
  netsim::SimTime base_packet_cost_;
  EvidenceSink* sink_ = nullptr;
  int pin_cpu_ = -1;

  std::uint64_t synced_version_ = 0;
  std::size_t applied_ops_ = 0;
  netsim::SimTime clock_ = 0;  // shard-local simulated clock

  ShardReport report_;
  std::vector<EvidenceItem> evidence_;
  std::vector<netsim::SimTime> latencies_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> deferred_;  // flow,seq
};

}  // namespace pera::pipeline
