// Optional core pinning for pipeline threads (dispatcher, shard
// workers, appraiser workers). Best-effort: on hosts with fewer cores
// than threads, or on platforms without an affinity API, pinning
// silently degrades to a no-op — the pipeline is correct either way,
// pinning only removes scheduler migration noise from the wall-clock
// numbers (see docs/PERFORMANCE.md).
#pragma once

namespace pera::pipeline {

/// Pin the calling thread to `cpu` (modulo the online core count).
/// Returns true when the affinity call succeeded. Counts
/// pipeline.pin.applied / pipeline.pin.failed when obs is enabled.
bool pin_current_thread(unsigned cpu);

/// Online core count (hardware_concurrency, min 1).
unsigned core_count();

}  // namespace pera::pipeline
