// RSS-style flow classification for the sharded pipeline dispatcher.
//
// The dispatcher reads the 5-tuple straight out of the raw wire bytes
// (like a NIC RSS engine — no full parse) and hashes it to pick a shard.
// Every packet of a flow lands on the same shard, which is what preserves
// per-flow evidence ordering and makes chained composition shard-invariant.
#pragma once

#include <compare>
#include <cstdint>

#include "dataplane/packet.h"

namespace pera::pipeline {

/// Canonical 5-tuple-ish flow key. For non-IPv4 (or truncated) packets
/// `valid` is false and the key degrades to a prefix hash of the frame,
/// so odd traffic still spreads deterministically.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint8_t proto = 0;
  bool valid = false;
  std::uint64_t fallback = 0;  // prefix hash when !valid

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

/// Extract the flow key from raw wire bytes (eth/ipv4/tcp-or-udp offsets
/// of the standard schema; ports read only for TCP/UDP).
[[nodiscard]] FlowKey extract_flow_key(const dataplane::RawPacket& raw);

/// 64-bit mix of a flow key (FNV-1a over the canonical tuple encoding).
[[nodiscard]] std::uint64_t flow_hash(const FlowKey& key);

/// Convenience: hash the raw packet and reduce onto `shards` workers.
[[nodiscard]] std::size_t shard_of(const dataplane::RawPacket& raw,
                                   std::size_t shards);

}  // namespace pera::pipeline
