#include "pipeline/reassembler.h"

#include <algorithm>

#include "copland/evidence.h"
#include "crypto/hmac.h"
#include "obs/obs.h"
#include "pipeline/pipeline.h"

namespace pera::pipeline {

ShardedAppraiser::ShardedAppraiser(const crypto::Digest& root_key,
                                   std::string_view label,
                                   std::size_t max_shards,
                                   nac::CompositionMode mode)
    : mode_(mode) {
  const std::vector<crypto::Digest> keys =
      PeraPipeline::shard_keys(root_key, label, max_shards);
  verifiers_.reserve(keys.size());
  for (const crypto::Digest& k : keys) {
    verifiers_.emplace_back(k);
    by_key_id_[verifiers_.back().key_id()] = verifiers_.size() - 1;
  }
}

void ShardedAppraiser::ingest(const EvidenceItem& item) {
  flows_[item.flow].push_back(item);
}

std::map<std::uint64_t, FlowVerdict> ShardedAppraiser::appraise() const {
  std::map<std::uint64_t, FlowVerdict> out;
  for (const auto& [flow, records] : flows_) {
    // Restore per-flow order: the dispatcher's sequence numbers are
    // global, so they order a flow's records no matter which shard (or
    // how many shards) produced them.
    std::vector<const EvidenceItem*> ordered;
    ordered.reserve(records.size());
    for (const EvidenceItem& r : records) ordered.push_back(&r);
    std::sort(ordered.begin(), ordered.end(),
              [](const EvidenceItem* a, const EvidenceItem* b) {
                if (a->seq != b->seq) return a->seq < b->seq;
                return a->shard < b->shard;
              });

    FlowVerdict verdict;
    verdict.flow = flow;
    verdict.records = ordered.size();
    verdict.ok = true;

    copland::EvidencePtr chain = copland::Evidence::empty();
    crypto::Sha256 pointwise;
    pointwise.update("pera.pipeline.pointwise");

    for (const EvidenceItem* item : ordered) {
      bool sig_ok = false;
      copland::EvidencePtr content;
      try {
        const copland::EvidencePtr ev = copland::decode(
            crypto::BytesView{item->evidence.data(), item->evidence.size()});
        if (ev->kind == copland::EvidenceKind::kSignature &&
            ev->child != nullptr) {
          const auto it = by_key_id_.find(ev->sig.key_id);
          if (it != by_key_id_.end()) {
            sig_ok = crypto::verify_any(verifiers_[it->second],
                                        copland::digest(ev->child), ev->sig);
          }
          content = ev->child;
        } else {
          content = ev;  // unsigned evidence: content-only appraisal
          sig_ok = true;
        }
      } catch (const std::exception&) {
        verdict.ok = false;
        ++verdict.signature_failures;
        continue;
      }
      PERA_OBS_COUNT(sig_ok ? "pipeline.appraise.sig_ok"
                            : "pipeline.appraise.sig_fail");
      if (!sig_ok) {
        verdict.ok = false;
        ++verdict.signature_failures;
      }
      // Fold the signed content (shard-key independent) into the flow
      // transcript under the policy's composition mode.
      if (mode_ == nac::CompositionMode::kChained) {
        chain = copland::Evidence::extend(chain, content);
      } else {
        pointwise.update(copland::digest(content));
        pointwise.update(crypto::BytesView{
            reinterpret_cast<const std::uint8_t*>(&sig_ok), 1});
      }
    }

    if (mode_ == nac::CompositionMode::kChained) {
      crypto::Sha256 h;
      h.update("pera.pipeline.chained");
      h.update(copland::digest(chain));
      const std::uint8_t ok_byte = verdict.ok ? 1 : 0;
      h.update(crypto::BytesView{&ok_byte, 1});
      verdict.transcript = h.finish();
    } else {
      verdict.transcript = pointwise.finish();
    }
    PERA_OBS_EVENT(obs::SpanKind::kAppraise, "pipeline", 0,
                   verdict.ok ? 1 : 0);
    out[flow] = verdict;
  }
  return out;
}

crypto::Digest ShardedAppraiser::summary(
    const std::map<std::uint64_t, FlowVerdict>& verdicts) {
  crypto::Sha256 h;
  h.update("pera.pipeline.summary");
  for (const auto& [flow, v] : verdicts) {
    crypto::Bytes b;
    crypto::append_u64(b, flow);
    crypto::append_u64(b, v.records);
    crypto::append_u64(b, v.signature_failures);
    b.push_back(v.ok ? 1 : 0);
    h.update(crypto::BytesView{b.data(), b.size()});
    h.update(v.transcript);
  }
  return h.finish();
}

}  // namespace pera::pipeline
