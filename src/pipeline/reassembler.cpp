#include "pipeline/reassembler.h"

#include <algorithm>

#include "copland/evidence.h"
#include "crypto/hmac.h"
#include "obs/obs.h"
#include "pipeline/pipeline.h"

namespace pera::pipeline {

VerifierSet::VerifierSet(const crypto::Digest& root_key,
                         std::string_view label, std::size_t max_shards,
                         crypto::SignatureScheme scheme,
                         unsigned xmss_height) {
  const std::vector<crypto::Digest> keys =
      PeraPipeline::shard_keys(root_key, label, max_shards);
  verifiers_.reserve(keys.size());
  for (const crypto::Digest& k : keys) {
    if (scheme == crypto::SignatureScheme::kXmss) {
      // The appraiser re-derives the shard's XMSS keypair from the
      // shared derived seed to learn the public root (symmetric
      // provisioning, like the HMAC device keys), then keeps only the
      // public-root verifier.
      const crypto::XmssSigner provision(k, xmss_height);
      verifiers_.push_back(
          std::make_unique<crypto::XmssVerifier>(provision.public_root()));
    } else {
      verifiers_.push_back(std::make_unique<crypto::HmacVerifier>(k));
    }
    by_key_id_[verifiers_.back()->key_id()] = verifiers_.size() - 1;
  }
}

const crypto::Verifier* VerifierSet::by_key_id(
    const crypto::Digest& id) const {
  const auto it = by_key_id_.find(id);
  return it == by_key_id_.end() ? nullptr : verifiers_[it->second].get();
}

AppraisedRecord appraise_record(const EvidenceItem& item,
                                const VerifierSet& verifiers) {
  AppraisedRecord rec;
  rec.seq = item.seq;
  rec.shard = item.shard;
  try {
    const copland::EvidencePtr ev = copland::decode(
        crypto::BytesView{item.evidence.data(), item.evidence.size()});
    rec.decoded = true;
    if (ev->kind == copland::EvidenceKind::kSignature && ev->child != nullptr) {
      if (const crypto::Verifier* v = verifiers.by_key_id(ev->sig.key_id)) {
        rec.sig_ok =
            crypto::verify_any(*v, copland::digest(ev->child), ev->sig);
      }
      rec.content = ev->child;
    } else {
      rec.content = ev;  // unsigned evidence: content-only appraisal
      rec.sig_ok = true;
    }
  } catch (const std::exception&) {
    return rec;  // decoded=false: counted as a failure by the fold
  }
  PERA_OBS_COUNT(rec.sig_ok ? "pipeline.appraise.sig_ok"
                            : "pipeline.appraise.sig_fail");
  return rec;
}

FlowVerdict fold_flow(std::uint64_t flow,
                      std::vector<AppraisedRecord>& records,
                      nac::CompositionMode mode) {
  // Restore per-flow order: the dispatcher's sequence numbers are
  // global, so they order a flow's records no matter which shard (or
  // how many shards) produced them. Stable, so the several records one
  // packet can emit keep their emission order.
  std::stable_sort(records.begin(), records.end(),
                   [](const AppraisedRecord& a, const AppraisedRecord& b) {
                     if (a.seq != b.seq) return a.seq < b.seq;
                     return a.shard < b.shard;
                   });

  FlowVerdict verdict;
  verdict.flow = flow;
  verdict.records = records.size();
  verdict.ok = true;

  copland::EvidencePtr chain = copland::Evidence::empty();
  crypto::Sha256 pointwise;
  pointwise.update("pera.pipeline.pointwise");

  for (const AppraisedRecord& rec : records) {
    if (!rec.decoded) {
      verdict.ok = false;
      ++verdict.signature_failures;
      continue;
    }
    if (!rec.sig_ok) {
      verdict.ok = false;
      ++verdict.signature_failures;
    }
    // Fold the signed content (shard-key independent) into the flow
    // transcript under the policy's composition mode.
    if (mode == nac::CompositionMode::kChained) {
      chain = copland::Evidence::extend(chain, rec.content);
    } else {
      pointwise.update(copland::digest(rec.content));
      pointwise.update(crypto::BytesView{
          reinterpret_cast<const std::uint8_t*>(&rec.sig_ok), 1});
    }
  }

  if (mode == nac::CompositionMode::kChained) {
    crypto::Sha256 h;
    h.update("pera.pipeline.chained");
    h.update(copland::digest(chain));
    const std::uint8_t ok_byte = verdict.ok ? 1 : 0;
    h.update(crypto::BytesView{&ok_byte, 1});
    verdict.transcript = h.finish();
  } else {
    verdict.transcript = pointwise.finish();
  }
  PERA_OBS_EVENT(obs::SpanKind::kAppraise, "pipeline", 0,
                 verdict.ok ? 1 : 0);
  return verdict;
}

ShardedAppraiser::ShardedAppraiser(const crypto::Digest& root_key,
                                   std::string_view label,
                                   std::size_t max_shards,
                                   nac::CompositionMode mode,
                                   crypto::SignatureScheme scheme,
                                   unsigned xmss_height)
    : mode_(mode), verifiers_(root_key, label, max_shards, scheme,
                              xmss_height) {}

void ShardedAppraiser::ingest(const EvidenceItem& item) {
  flows_[item.flow].push_back(item);
}

std::map<std::uint64_t, FlowVerdict> ShardedAppraiser::appraise() const {
  std::map<std::uint64_t, FlowVerdict> out;
  for (const auto& [flow, records] : flows_) {
    std::vector<AppraisedRecord> appraised;
    appraised.reserve(records.size());
    for (const EvidenceItem& r : records) {
      appraised.push_back(appraise_record(r, verifiers_));
    }
    out[flow] = fold_flow(flow, appraised, mode_);
  }
  return out;
}

crypto::Digest ShardedAppraiser::summary(
    const std::map<std::uint64_t, FlowVerdict>& verdicts) {
  crypto::Sha256 h;
  h.update("pera.pipeline.summary");
  for (const auto& [flow, v] : verdicts) {
    crypto::Bytes b;
    crypto::append_u64(b, flow);
    crypto::append_u64(b, v.records);
    crypto::append_u64(b, v.signature_failures);
    b.push_back(v.ok ? 1 : 0);
    h.update(crypto::BytesView{b.data(), b.size()});
    h.update(v.transcript);
  }
  return h.finish();
}

}  // namespace pera::pipeline
