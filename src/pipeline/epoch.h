// Seqlock-style shared epoch block — the only state that crosses shards.
//
// Control-plane mutations (program swap, table writes) are the slow,
// rare events of the pipeline; packet processing is the fast, constant
// one. The epoch block keeps the fast path lock-free: workers read a
// single version counter with an acquire load per packet, and only when
// it moved do they take the mutex, replay the missed control ops onto
// their own shard-private switch, and let the existing MeasurementUnit
// epoch machinery invalidate their evidence caches lazily.
//
// Seqlock convention: the version is even when stable and odd while a
// writer is mid-publish. A worker that observes an odd version simply
// treats it as "changed" and resynchronizes on the mutex — publication
// is never blocked by readers and readers never spin.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dataplane/program.h"
#include "dataplane/table.h"

namespace pera::pipeline {

/// Builds a fresh, shard-private instance of a dataplane program.
/// DataplaneProgram owns its tables (unique_ptr, not copyable), so each
/// shard materializes its own copy — exactly like each hardware pipe
/// having its own table memory — and the factory must be deterministic so
/// shard program digests agree.
using ProgramFactory =
    std::function<std::shared_ptr<dataplane::DataplaneProgram>()>;

/// One control-plane mutation, replayed by every shard.
struct ControlOp {
  enum class Kind : std::uint8_t { kLoadProgram, kUpdateTable };
  Kind kind = Kind::kUpdateTable;
  ProgramFactory factory;            // kLoadProgram
  std::string table;                 // kUpdateTable
  dataplane::TableEntry entry;       // kUpdateTable
};

class EpochBlock {
 public:
  /// Lock-free fast-path read (acquire). Even = stable; odd = a publish
  /// is in flight. Workers compare against their last-synced version.
  [[nodiscard]] std::uint64_t version() const {
    return seq_.load(std::memory_order_acquire);
  }

  /// Append one control op and advance the version (even -> odd ->
  /// even). Writers are serialized on the mutex.
  void publish(ControlOp op);

  /// Cold path: copy every op the reader has not applied yet.
  /// `applied_ops` is the count of ops the reader already replayed;
  /// returns the new stable version. Takes the mutex.
  [[nodiscard]] std::uint64_t ops_since(std::size_t applied_ops,
                                        std::vector<ControlOp>& out) const;

  /// Total ops ever published (for stats / tests).
  [[nodiscard]] std::size_t op_count() const;

 private:
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> seq_{0};
  std::vector<ControlOp> log_;
};

}  // namespace pera::pipeline
