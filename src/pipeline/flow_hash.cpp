#include "pipeline/flow_hash.h"

namespace pera::pipeline {

namespace {

// Wire offsets of the standard eth(14)/ipv4(16)/l4 schema used by the
// canned programs (see dataplane::stdhdr): the simplified ipv4 header is
// ver_ihl(1) dscp(1) len(2) ttl(1) proto(1) csum(2) src(4) dst(4).
constexpr std::size_t kEthertypeOff = 12;
constexpr std::size_t kIpProtoOff = 19;
constexpr std::size_t kIpSrcOff = 22;
constexpr std::size_t kIpDstOff = 26;
constexpr std::size_t kL4Off = 30;
constexpr std::uint16_t kEthertypeIpv4 = 0x0800;
constexpr std::uint8_t kProtoTcp = 6;
constexpr std::uint8_t kProtoUdp = 17;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint32_t read_be32(const crypto::Bytes& d, std::size_t off) {
  return (static_cast<std::uint32_t>(d[off]) << 24) |
         (static_cast<std::uint32_t>(d[off + 1]) << 16) |
         (static_cast<std::uint32_t>(d[off + 2]) << 8) |
         static_cast<std::uint32_t>(d[off + 3]);
}

std::uint16_t read_be16(const crypto::Bytes& d, std::size_t off) {
  return static_cast<std::uint16_t>((d[off] << 8) | d[off + 1]);
}

}  // namespace

FlowKey extract_flow_key(const dataplane::RawPacket& raw) {
  FlowKey key;
  const crypto::Bytes& d = raw.data;
  if (d.size() >= kIpDstOff + 4 &&
      read_be16(d, kEthertypeOff) == kEthertypeIpv4) {
    key.valid = true;
    key.proto = d[kIpProtoOff];
    key.src_ip = read_be32(d, kIpSrcOff);
    key.dst_ip = read_be32(d, kIpDstOff);
    if ((key.proto == kProtoTcp || key.proto == kProtoUdp) &&
        d.size() >= kL4Off + 4) {
      key.sport = read_be16(d, kL4Off);
      key.dport = read_be16(d, kL4Off + 2);
    }
    return key;
  }
  // Non-IPv4 / truncated frame: deterministic prefix hash.
  key.fallback = fnv1a(kFnvOffset, d.data(), d.size() < 32 ? d.size() : 32);
  return key;
}

std::uint64_t flow_hash(const FlowKey& key) {
  if (!key.valid) return key.fallback == 0 ? 1 : key.fallback;
  std::uint8_t tuple[13];
  tuple[0] = static_cast<std::uint8_t>(key.src_ip >> 24);
  tuple[1] = static_cast<std::uint8_t>(key.src_ip >> 16);
  tuple[2] = static_cast<std::uint8_t>(key.src_ip >> 8);
  tuple[3] = static_cast<std::uint8_t>(key.src_ip);
  tuple[4] = static_cast<std::uint8_t>(key.dst_ip >> 24);
  tuple[5] = static_cast<std::uint8_t>(key.dst_ip >> 16);
  tuple[6] = static_cast<std::uint8_t>(key.dst_ip >> 8);
  tuple[7] = static_cast<std::uint8_t>(key.dst_ip);
  tuple[8] = static_cast<std::uint8_t>(key.sport >> 8);
  tuple[9] = static_cast<std::uint8_t>(key.sport);
  tuple[10] = static_cast<std::uint8_t>(key.dport >> 8);
  tuple[11] = static_cast<std::uint8_t>(key.dport);
  tuple[12] = key.proto;
  const std::uint64_t h = fnv1a(kFnvOffset, tuple, sizeof(tuple));
  return h == 0 ? 1 : h;  // 0 is reserved as "no flow"
}

std::size_t shard_of(const dataplane::RawPacket& raw, std::size_t shards) {
  if (shards <= 1) return 0;
  // Multiply-shift reduction: evenly spreads the FNV output without the
  // modulo bias of `h % shards` on sequential tuples.
  const std::uint64_t h = flow_hash(extract_flow_key(raw));
  return static_cast<std::size_t>((static_cast<unsigned __int128>(h) *
                                   shards) >>
                                  64);
}

}  // namespace pera::pipeline
