#include "pipeline/affinity.h"

#include <thread>

#include "obs/obs.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pera::pipeline {

unsigned core_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_current_thread(unsigned cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % core_count(), &set);
  const bool ok =
      pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
  PERA_OBS_COUNT(ok ? "pipeline.pin.applied" : "pipeline.pin.failed");
  return ok;
#else
  (void)cpu;
  PERA_OBS_COUNT("pipeline.pin.failed");
  return false;
#endif
}

}  // namespace pera::pipeline
