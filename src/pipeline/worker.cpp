#include "pipeline/worker.h"

#include <algorithm>
#include <thread>

#include "obs/obs.h"

namespace pera::pipeline {

ShardWorker::ShardWorker(std::uint32_t id, std::string place,
                         const ProgramFactory& factory,
                         const crypto::Digest& device_key,
                         const EpochBlock& epochs, pera::PeraConfig config,
                         std::size_t queue_capacity,
                         netsim::SimTime base_packet_cost)
    : id_(id),
      signer_(device_key),
      switch_(std::move(place), factory(), signer_, config),
      epochs_(&epochs),
      queue_(queue_capacity),
      base_packet_cost_(base_packet_cost) {}

void ShardWorker::run(const std::atomic<bool>& stop) {
  crypto::engine::publish_metrics();
  PacketJob job;
  Backoff idle;
  for (;;) {
    if (queue_.try_pop(job)) {
      idle.reset();
      process(std::move(job));
      continue;
    }
    if (stop.load(std::memory_order_acquire) && queue_.empty()) break;
    idle.wait();
  }
}

void ShardWorker::sync_epoch() {
  std::vector<ControlOp> ops;
  const std::uint64_t v = epochs_->ops_since(applied_ops_, ops);
  for (const ControlOp& op : ops) {
    if (op.kind == ControlOp::Kind::kLoadProgram) {
      switch_.load_program(op.factory());
    } else {
      switch_.update_table(op.table, op.entry);
    }
    ++applied_ops_;
  }
  synced_version_ = v;
  ++report_.epoch_syncs;
  PERA_OBS_COUNT("pipeline.epoch.syncs");
}

void ShardWorker::process(PacketJob job) {
  // Seqlock fast path: one acquire load; an odd (mid-publish) or moved
  // version sends us to the mutex-protected resync.
  if (epochs_->version() != synced_version_) sync_epoch();

  const std::uint64_t attested_before = switch_.ra_stats().attestations;
  nac::EvidenceCarrier carrier;
  const ::pera::pera::PeraResult res =
      switch_.process(job.raw, job.header, &carrier);

  // Simulated-time accounting: the shard is a serial pipe; a packet
  // starts when both it and the pipe are ready.
  const netsim::SimTime cost = base_packet_cost_ + res.ra_latency;
  const netsim::SimTime start = std::max(clock_, job.arrival);
  clock_ = start + cost;
  report_.busy += cost;
  report_.completion = clock_;
  latencies_.push_back(clock_ - job.arrival);

  ++report_.processed;
  if (res.forwarded.has_value()) ++report_.forwarded;
  if (res.attested) ++report_.attested;
  PERA_OBS_COUNT("pipeline.shard.packets." + std::to_string(id_));

  // In-band evidence surfaces on the carrier immediately.
  for (const nac::EvidenceRecord& rec : carrier.records) {
    evidence_.push_back(
        EvidenceItem{job.flow, job.seq, id_, rec.evidence, job.header->nonce});
  }
  // Every remaining attestation went out of band and will surface as
  // exactly one record — now, or later when the batcher flushes. Tag them
  // (flow, seq) in FIFO order, which the batcher preserves. (With a
  // batcher configured, signed OOB evidence is uniformly batched, so
  // immediate and deferred records never interleave across packets.)
  const std::uint64_t delta =
      switch_.ra_stats().attestations - attested_before;
  const std::uint64_t oob = delta - carrier.records.size();
  for (std::uint64_t k = 0; k < oob; ++k) {
    deferred_.emplace_back(job.flow, job.seq);
  }
  for (const ::pera::pera::OutOfBandEvidence& oob : res.out_of_band) {
    const auto [flow, seq] = deferred_.front();
    deferred_.pop_front();
    evidence_.push_back(EvidenceItem{flow, seq, id_, oob.evidence, oob.nonce});
  }
}

void ShardWorker::drain_deferred() {
  for (const ::pera::pera::OutOfBandEvidence& oob : switch_.flush_pending()) {
    const auto [flow, seq] = deferred_.front();
    deferred_.pop_front();
    evidence_.push_back(EvidenceItem{flow, seq, id_, oob.evidence, oob.nonce});
  }
}

ShardReport ShardWorker::report() const {
  ShardReport r = report_;
  r.cache = switch_.cache().stats();
  return r;
}

}  // namespace pera::pipeline
