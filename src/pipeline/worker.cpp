#include "pipeline/worker.h"

#include <algorithm>
#include <thread>

#include "obs/obs.h"
#include "obs/profiler.h"
#include "pipeline/affinity.h"

namespace pera::pipeline {

namespace {

std::unique_ptr<crypto::Signer> make_signer(const crypto::Digest& device_key,
                                            crypto::SignatureScheme scheme,
                                            unsigned xmss_height) {
  if (scheme == crypto::SignatureScheme::kXmss) {
    return std::make_unique<crypto::XmssSigner>(device_key, xmss_height);
  }
  return std::make_unique<crypto::HmacSigner>(device_key);
}

}  // namespace

ShardWorker::ShardWorker(std::uint32_t id, std::string place,
                         const ProgramFactory& factory,
                         const crypto::Digest& device_key,
                         const EpochBlock& epochs, pera::PeraConfig config,
                         std::size_t queue_capacity,
                         netsim::SimTime base_packet_cost,
                         crypto::SignatureScheme scheme, unsigned xmss_height)
    : id_(id),
      signer_(make_signer(device_key, scheme, xmss_height)),
      switch_(std::move(place), factory(), *signer_, config),
      epochs_(&epochs),
      queue_(queue_capacity),
      recycle_(queue_capacity),
      base_packet_cost_(base_packet_cost) {}

void ShardWorker::run(const std::atomic<bool>& stop) {
  crypto::engine::publish_metrics();
  if (pin_cpu_ >= 0) pin_current_thread(static_cast<unsigned>(pin_cpu_));
  namespace prof = obs::profiler;
  const prof::ScopedThread profile("shard" + std::to_string(id_),
                                   prof::Stage::kIdle);
  PacketJob job;
  Backoff idle;
  for (;;) {
    if (queue_.try_pop(job)) {
      idle.reset();
      prof::enter(prof::Stage::kShardWork);
      process(std::move(job));
      continue;
    }
    if (stop.load(std::memory_order_acquire) && queue_.empty()) break;
    prof::enter(prof::Stage::kIdle);
    idle.wait();
  }
  // Defined drain order, step 2 (after the ring is dry): flush the
  // batcher's deferred evidence on this thread, so when streaming into a
  // sink the final batch reaches the appraiser before finish().
  prof::enter(prof::Stage::kShardWork);
  drain_deferred();
}

void ShardWorker::sync_epoch() {
  std::vector<ControlOp> ops;
  const std::uint64_t v = epochs_->ops_since(applied_ops_, ops);
  for (const ControlOp& op : ops) {
    if (op.kind == ControlOp::Kind::kLoadProgram) {
      switch_.load_program(op.factory());
    } else {
      switch_.update_table(op.table, op.entry);
    }
    ++applied_ops_;
  }
  synced_version_ = v;
  ++report_.epoch_syncs;
  PERA_OBS_COUNT("pipeline.epoch.syncs");
}

void ShardWorker::emit(EvidenceItem&& item) {
  if (sink_ != nullptr) {
    obs::profiler::ScopedStage transit(obs::profiler::Stage::kRingTransit);
    (void)sink_->accept(id_, std::move(item));
    return;
  }
  evidence_.push_back(std::move(item));
}

void ShardWorker::process(PacketJob job) {
  // Seqlock fast path: one acquire load; an odd (mid-publish) or moved
  // version sends us to the mutex-protected resync.
  if (epochs_->version() != synced_version_) sync_epoch();

  const std::uint64_t attested_before = switch_.ra_stats().attestations;
  nac::EvidenceCarrier carrier;
  ::pera::pera::PeraResult res =
      switch_.process(job.raw, job.header, &carrier);

  // Simulated-time accounting: the shard is a serial pipe; a packet
  // starts when both it and the pipe are ready.
  const netsim::SimTime cost = base_packet_cost_ + res.ra_latency;
  const netsim::SimTime start = std::max(clock_, job.arrival);
  clock_ = start + cost;
  report_.busy += cost;
  report_.completion = clock_;
  latencies_.push_back(clock_ - job.arrival);

  ++report_.processed;
  if (res.forwarded.has_value()) ++report_.forwarded;
  if (res.attested) ++report_.attested;
  PERA_OBS_COUNT("pipeline.shard.packets." + std::to_string(id_));

  // The packet's payload buffer is spent: hand its capacity back to the
  // dispatcher through the recycle ring (full ring = let it free).
  if (job.raw.data.capacity() > 0) {
    (void)recycle_.try_push(std::move(job.raw.data));
  }

  // In-band evidence surfaces on the carrier immediately. The carrier is
  // packet-local, so its record buffers move out instead of copying.
  for (nac::EvidenceRecord& rec : carrier.records) {
    emit(EvidenceItem{job.flow, job.seq, id_, std::move(rec.evidence),
                      job.header->nonce});
  }
  // Every remaining attestation went out of band and will surface as
  // exactly one record — now, or later when the batcher flushes. Tag them
  // (flow, seq) in FIFO order, which the batcher preserves. (With a
  // batcher configured, signed OOB evidence is uniformly batched, so
  // immediate and deferred records never interleave across packets.)
  const std::uint64_t delta =
      switch_.ra_stats().attestations - attested_before;
  const std::uint64_t oob = delta - carrier.records.size();
  for (std::uint64_t k = 0; k < oob; ++k) {
    deferred_.emplace_back(job.flow, job.seq);
  }
  for (::pera::pera::OutOfBandEvidence& oob_ev : res.out_of_band) {
    const auto [flow, seq] = deferred_.front();
    deferred_.pop_front();
    emit(EvidenceItem{flow, seq, id_, std::move(oob_ev.evidence),
                      oob_ev.nonce});
  }
}

void ShardWorker::drain_deferred() {
  for (::pera::pera::OutOfBandEvidence& oob : switch_.flush_pending()) {
    const auto [flow, seq] = deferred_.front();
    deferred_.pop_front();
    emit(EvidenceItem{flow, seq, id_, std::move(oob.evidence), oob.nonce});
  }
}

ShardReport ShardWorker::report() const {
  ShardReport r = report_;
  r.cache = switch_.cache().stats();
  return r;
}

}  // namespace pera::pipeline
