// The sharded multi-worker PERA packet pipeline.
//
// An RSS-style dispatcher flow-hashes incoming packets onto N shard
// workers over bounded lock-free SPSC rings; each worker is a
// shared-nothing PERA pipe (own dataplane tables, measurement unit,
// evidence cache, batcher and HMAC device key derived per shard from the
// pipeline root key). Control-plane mutations go through the seqlock
// EpochBlock; everything else is per-shard. See docs/ARCHITECTURE.md
// ("Parallel pipeline") for the protocol and the shard-invariance
// argument.
//
// Two clocks run at once:
//  * wall clock — the workers really are std::threads, so ThreadSanitizer
//    and the race tests exercise true concurrency;
//  * simulated time — every packet is also cost-accounted through the
//    CostModel (like the rest of the reproduction), giving deterministic
//    packets/sec and latency percentiles that don't depend on host cores.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/appraiser.h"
#include "pipeline/flow_hash.h"
#include "pipeline/worker.h"

namespace pera::pipeline {

struct PipelineOptions {
  std::size_t shards = 4;
  std::size_t queue_capacity = 1024;  // rounded up to a power of two
  /// Full ring policy: true = drop the packet (counted), false = the
  /// dispatcher spins (requires started workers) — lossless backpressure.
  bool drop_on_full = true;
  ::pera::pera::PeraConfig pera;
  /// Simulated dispatcher cost per packet (flow hash + ring push) — the
  /// serial fraction that Amdahl-limits shard scaling.
  netsim::SimTime dispatch_cost = 25;
  /// Simulated parse/match/deparse cost per packet on a shard, on top of
  /// the RA cost the evidence engine reports.
  netsim::SimTime base_packet_cost = 120;
  /// Label for per-shard device-key derivation from the root key.
  std::string shard_key_label = "pera.pipeline.shard";
  /// > 0: run a ParallelAppraiser with this many workers concurrently
  /// with the pipeline — shards stream evidence straight into it and
  /// stop() finishes it (the defined drain order). 0 (default): evidence
  /// buffers per shard for post-run collect_evidence(), as before.
  std::size_t appraisers = 0;
  /// Fold mode the in-pipeline appraiser uses per flow.
  nac::CompositionMode appraise_mode = nac::CompositionMode::kChained;
  /// Evidence signature scheme for every shard signer (and the matching
  /// appraiser verifiers). kXmss routes each verification's WOTS chain
  /// walk through the multi-lane SHA-256 engine.
  crypto::SignatureScheme scheme = crypto::SignatureScheme::kHmacDeviceKey;
  unsigned xmss_height = 8;
  /// Capacity of each (shard, appraiser) evidence ring.
  std::size_t appraiser_queue_capacity = 4096;
  /// Items an appraiser pops per ring visit (verification batch grain).
  std::size_t verify_burst = 16;
  /// Pin threads round-robin: shard i -> core i, appraiser j -> core
  /// shards + j (modulo the host's core count). Best effort.
  bool pin_cores = false;
};

struct PipelineReport {
  std::uint64_t submitted = 0;
  std::uint64_t dropped = 0;
  /// Packet buffers whose capacity came from the recycle pool vs. fresh
  /// allocations (dispatch-side; pool_reused / (reused + fresh) is the
  /// hot-path allocation-avoidance rate).
  std::uint64_t pool_reused = 0;
  std::uint64_t pool_fresh = 0;
  std::vector<ShardReport> shards;
  /// Simulated makespan: dispatcher end vs. the slowest shard.
  netsim::SimTime makespan = 0;
  /// Simulated packets/sec over the makespan (processed only).
  double sim_packets_per_sec = 0.0;
  /// Sorted per-packet simulated latencies (queue wait + processing).
  std::vector<netsim::SimTime> latencies;

  [[nodiscard]] std::uint64_t processed() const {
    std::uint64_t n = 0;
    for (const ShardReport& s : shards) n += s.processed;
    return n;
  }
  [[nodiscard]] netsim::SimTime latency_percentile(double p) const;
};

class PeraPipeline {
 public:
  /// `factory` must deterministically build identical programs (each
  /// shard materializes its own instance). The per-shard HMAC device
  /// keys are derive_keys(root_key, options.shard_key_label, shards);
  /// appraisers derive the same set — see ShardedAppraiser.
  PeraPipeline(std::string name, ProgramFactory factory,
               const crypto::Digest& root_key, PipelineOptions options = {});
  ~PeraPipeline();

  PeraPipeline(const PeraPipeline&) = delete;
  PeraPipeline& operator=(const PeraPipeline&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t shards() const { return workers_.size(); }
  [[nodiscard]] const PipelineOptions& options() const { return options_; }

  /// Spawn one thread per shard. Idempotent.
  void start();

  /// Dispatch one packet: flow-hash, stamp (seq, sim arrival), push onto
  /// the owning shard's ring. Returns false when the packet was dropped
  /// (ring full under drop_on_full). `header` must outlive stop().
  bool submit(const dataplane::RawPacket& raw,
              const nac::PolicyHeader* header);

  /// Signal end-of-stream, let workers drain their rings, join threads
  /// and flush deferred evidence batches. Idempotent.
  void stop();

  /// Shard a packet would land on (exposed for tests).
  [[nodiscard]] std::size_t shard_of_packet(
      const dataplane::RawPacket& raw) const {
    return shard_of(raw, workers_.size());
  }

  // --- control plane (any thread; serialized on the epoch block) ----------
  /// Swap the dataplane program on every shard (lazily, at each shard's
  /// next packet). Bumps each shard's program epoch on replay.
  void load_program(ProgramFactory factory);

  /// Add a table entry on every shard (lazily). Bumps tables epochs.
  void update_table(std::string table, dataplane::TableEntry entry);

  [[nodiscard]] const EpochBlock& epochs() const { return epochs_; }

  /// The in-pipeline parallel appraiser (null unless options.appraisers
  /// > 0). Verdicts/summary are valid after stop().
  [[nodiscard]] ParallelAppraiser* appraiser() { return appraiser_.get(); }
  [[nodiscard]] const ParallelAppraiser* appraiser() const {
    return appraiser_.get();
  }

  // --- post-run results (call after stop()) -------------------------------
  /// All shards' evidence, merged and sorted by (flow, seq, shard) — a
  /// canonical order independent of shard count and thread timing.
  /// Empty when evidence streamed into an appraiser instead.
  [[nodiscard]] std::vector<EvidenceItem> collect_evidence() const;

  [[nodiscard]] PipelineReport report() const;

  [[nodiscard]] const ShardWorker& worker(std::size_t i) const {
    return *workers_[i];
  }

  /// The per-shard device keys this pipeline derived (appraiser-side
  /// provisioning uses the same derivation).
  [[nodiscard]] static std::vector<crypto::Digest> shard_keys(
      const crypto::Digest& root_key, std::string_view label, std::size_t n);

 private:
  std::string name_;
  PipelineOptions options_;
  EpochBlock epochs_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  std::unique_ptr<ParallelAppraiser> appraiser_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t pool_reused_ = 0;
  std::uint64_t pool_fresh_ = 0;
  netsim::SimTime dispatch_clock_ = 0;
};

}  // namespace pera::pipeline
