#include "pipeline/appraiser.h"

#include <string>

#include "obs/obs.h"
#include "obs/profiler.h"
#include "pipeline/affinity.h"

namespace pera::pipeline {

namespace prof = obs::profiler;

ParallelAppraiser::ParallelAppraiser(const crypto::Digest& root_key,
                                     std::string_view label,
                                     std::size_t max_shards,
                                     AppraiserOptions options)
    : options_(options),
      verifiers_(root_key, label, max_shards, options.scheme,
                 options.xmss_height) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.verify_burst == 0) options_.verify_burst = 1;
}

ParallelAppraiser::~ParallelAppraiser() { finish(); }

void ParallelAppraiser::start(std::size_t producers) {
  if (started_) return;
  started_ = true;
  producers_ = producers == 0 ? 1 : producers;
  done_.store(false, std::memory_order_release);
  rings_.reserve(producers_ * options_.workers);
  for (std::size_t i = 0; i < producers_ * options_.workers; ++i) {
    rings_.push_back(
        std::make_unique<SpscQueue<EvidenceItem>>(options_.queue_capacity));
  }
  states_.resize(options_.workers);
  threads_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    threads_.emplace_back([this, w] { run_worker(w); });
  }
}

bool ParallelAppraiser::accept(std::uint32_t producer, EvidenceItem&& item) {
  if (!started_ || producer >= producers_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    PERA_OBS_COUNT("pipeline.appraise.dropped");
    return false;
  }
  SpscQueue<EvidenceItem>& q = ring(producer, worker_of(item.flow));
  if (!q.try_push(std::move(item))) {
    if (done_.load(std::memory_order_acquire)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      PERA_OBS_COUNT("pipeline.appraise.dropped");
      return false;
    }
    // Lossless: the appraiser is the pipeline's consumer of record —
    // spin with escalating backoff until the owning worker catches up.
    Backoff full;
    while (!q.try_push(std::move(item))) full.wait();
  }
  return true;
}

void ParallelAppraiser::run_worker(std::size_t w) {
  if (options_.pin_base >= 0) {
    pin_current_thread(static_cast<unsigned>(options_.pin_base) +
                       static_cast<unsigned>(w));
  }
  const prof::ScopedThread profile("appraiser" + std::to_string(w),
                                   prof::Stage::kIdle);
  WorkerState& state = states_[w];
  EvidenceItem item;
  Backoff idle;
  for (;;) {
    // Visit every producer's ring; pop in bursts so verification runs
    // as a batch per visit.
    std::size_t popped = 0;
    for (std::size_t p = 0; p < producers_; ++p) {
      SpscQueue<EvidenceItem>& q = ring(p, w);
      for (std::size_t n = 0; n < options_.verify_burst; ++n) {
        if (!q.try_pop(item)) break;
        ++popped;
        prof::enter(prof::Stage::kWotsVerify);
        AppraisedRecord rec = appraise_record(item, verifiers_);
        prof::enter(prof::Stage::kReassembly);
        if (options_.record_hook) {
          options_.record_hook(item, std::move(rec));
        } else {
          state.flows[item.flow].push_back(std::move(rec));
        }
        ++state.records;
      }
    }
    if (popped != 0) {
      idle.reset();
      continue;
    }
    if (done_.load(std::memory_order_acquire)) {
      // done_ is set only after every producer thread was joined, so no
      // push can race this final drain: empty one last full pass and
      // the rings stay empty forever.
      for (std::size_t p = 0; p < producers_; ++p) {
        SpscQueue<EvidenceItem>& q = ring(p, w);
        while (q.try_pop(item)) {
          prof::enter(prof::Stage::kWotsVerify);
          AppraisedRecord rec = appraise_record(item, verifiers_);
          prof::enter(prof::Stage::kReassembly);
          if (options_.record_hook) {
            options_.record_hook(item, std::move(rec));
          } else {
            state.flows[item.flow].push_back(std::move(rec));
          }
          ++state.records;
        }
      }
      break;
    }
    prof::enter(prof::Stage::kIdle);
    idle.wait();
  }
  prof::enter(prof::Stage::kReassembly);
  for (auto& [flow, records] : state.flows) {
    state.verdicts[flow] = fold_flow(flow, records, options_.mode);
  }
  state.flows.clear();
}

void ParallelAppraiser::finish() {
  if (!started_ || finished_) return;
  finished_ = true;
  done_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Deterministic merge: flow slices are disjoint across workers, and
  // std::map orders by flow id — the merged map is independent of worker
  // count and thread timing.
  const prof::ScopedStage merge(prof::Stage::kMerge);
  for (WorkerState& state : states_) {
    records_ += state.records;
    verdicts_.merge(state.verdicts);
  }
  PERA_OBS_COUNT("pipeline.appraise.flows", verdicts_.size());
}

}  // namespace pera::pipeline
