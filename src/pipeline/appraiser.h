// Parallel appraisal: per-shard appraiser workers with a deterministic
// merge.
//
// PR 2's ShardedAppraiser verified and folded every flow on one thread
// *after* the pipeline run — the serial tail that kept wall-clock
// packets/sec flat while simulated packets/sec scaled with shards. This
// splits appraisal the way Petz & Alexander layer attestation managers:
// N independent appraiser workers each own a disjoint slice of the flow
// space (the same multiplicative hash-partition the dispatcher uses for
// shards), verify evidence *concurrently with the pipeline run*, and
// their per-flow verdicts compose through a cheap deterministic merge —
// per-flow work is identical to the serial path (appraise_record +
// fold_flow in reassembler.h), and flow slices are disjoint, so the
// merged verdict map and summary digest are bit-identical to
// ShardedAppraiser for any (shard count × appraiser count).
//
// Wiring: one SPSC ring per (producer shard, appraiser worker) pair —
// the producing shard thread is the only pusher and the owning appraiser
// the only popper, so the evidence hand-off takes zero locks, like the
// packet rings. Workers pop in bursts so signature verification runs in
// batches (with the XMSS scheme each verification's WOTS chain walk
// rides the multi-lane SHA-256 engine from PR 4).
//
// Shutdown (the defined drain order, see PeraPipeline::stop()):
//   1. shard rings drain, shard batchers flush — on the shard threads;
//   2. finish() marks producers done; appraiser workers drain their
//      rings dry, fold their flows, and exit;
//   3. the caller's thread merges the disjoint verdict maps.
// Verdicts for evidence deferred to the very last batch therefore can
// never be dropped, at any batch size or packet count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "pipeline/reassembler.h"

namespace pera::pipeline {

struct AppraiserOptions {
  std::size_t workers = 1;
  std::size_t queue_capacity = 4096;  // per (producer, worker) ring
  nac::CompositionMode mode = nac::CompositionMode::kChained;
  crypto::SignatureScheme scheme = crypto::SignatureScheme::kHmacDeviceKey;
  unsigned xmss_height = 8;
  /// Max items popped per ring visit — the verification batch grain.
  std::size_t verify_burst = 16;
  /// Pin worker i to core pin_base + i (affinity.h); < 0 = no pinning.
  int pin_base = -1;
  /// Streaming mode: when set, each appraised record is handed to this
  /// hook on the worker thread instead of being bucketed for the
  /// per-flow fold. This is the long-running-server path — verdicts go
  /// out per round, so per-flow state must not accumulate and finish()
  /// yields an empty verdict map. The hook may be called concurrently
  /// from different workers (never twice concurrently for one flow).
  std::function<void(const EvidenceItem&, AppraisedRecord&&)> record_hook;
};

class ParallelAppraiser final : public EvidenceSink {
 public:
  /// Provision verifiers for up to `max_shards` derived device keys,
  /// exactly like ShardedAppraiser.
  ParallelAppraiser(const crypto::Digest& root_key, std::string_view label,
                    std::size_t max_shards, AppraiserOptions options = {});
  ~ParallelAppraiser() override;

  ParallelAppraiser(const ParallelAppraiser&) = delete;
  ParallelAppraiser& operator=(const ParallelAppraiser&) = delete;

  /// Spawn the appraiser workers, wired for `producers` producing
  /// shards. Idempotent.
  void start(std::size_t producers);

  /// EvidenceSink: called from producer shard threads. Lossless — spins
  /// with backoff while the owning worker's ring is full. Returns false
  /// only after finish() (late evidence is dropped and counted).
  bool accept(std::uint32_t producer, EvidenceItem&& item) override;

  /// Drain, fold, join, merge. Call after every producer stopped
  /// emitting (PeraPipeline::stop() returned). Idempotent.
  void finish();

  // --- results (valid after finish()) -------------------------------------
  [[nodiscard]] const std::map<std::uint64_t, FlowVerdict>& verdicts() const {
    return verdicts_;
  }
  [[nodiscard]] crypto::Digest summary() const {
    return ShardedAppraiser::summary(verdicts_);
  }
  [[nodiscard]] std::size_t flows() const { return verdicts_.size(); }
  [[nodiscard]] std::uint64_t records() const { return records_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t workers() const { return options_.workers; }

  /// Appraiser worker a flow lands on (exposed for tests).
  [[nodiscard]] std::size_t worker_of(std::uint64_t flow) const {
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(flow) * options_.workers) >> 64);
  }

 private:
  struct WorkerState {
    // Flow buckets: verified records awaiting the per-flow fold.
    std::map<std::uint64_t, std::vector<AppraisedRecord>> flows;
    std::map<std::uint64_t, FlowVerdict> verdicts;
    std::uint64_t records = 0;
  };

  void run_worker(std::size_t w);
  [[nodiscard]] SpscQueue<EvidenceItem>& ring(std::size_t producer,
                                              std::size_t worker) {
    return *rings_[producer * options_.workers + worker];
  }

  AppraiserOptions options_;
  VerifierSet verifiers_;
  std::size_t producers_ = 0;
  // [producer][worker], flattened; unique_ptr keeps SpscQueue immovable.
  std::vector<std::unique_ptr<SpscQueue<EvidenceItem>>> rings_;
  std::vector<WorkerState> states_;
  std::vector<std::thread> threads_;
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> dropped_{0};
  bool started_ = false;
  bool finished_ = false;

  std::map<std::uint64_t, FlowVerdict> verdicts_;
  std::uint64_t records_ = 0;
};

}  // namespace pera::pipeline
