#include "pipeline/epoch.h"

namespace pera::pipeline {

void EpochBlock::publish(ControlOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  // even -> odd: readers that peek now resync once the op lands.
  seq_.fetch_add(1, std::memory_order_release);
  log_.push_back(std::move(op));
  // odd -> even: stable again.
  seq_.fetch_add(1, std::memory_order_release);
}

std::uint64_t EpochBlock::ops_since(std::size_t applied_ops,
                                    std::vector<ControlOp>& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = applied_ops; i < log_.size(); ++i) {
    out.push_back(log_[i]);
  }
  return seq_.load(std::memory_order_relaxed);
}

std::size_t EpochBlock::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

}  // namespace pera::pipeline
