// Wire formats for §5.2: "The policy will be compiled by the Relying Party
// and serialized into an options header in the transport layer, to be
// evaluated along the path of traffic that it is sending out."
//
// PolicyHeader  — the compiled policy, prepended to flow traffic.
// EvidenceCarrier — accumulated in-band evidence records riding behind the
//                   policy header (Fig. 2 "In-band Evidence").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/nonce.h"
#include "nac/compiler.h"

namespace pera::nac {

/// Header flags.
enum PolicyFlags : std::uint8_t {
  kFlagInBand = 1 << 0,    // evidence rides with the packet
  kFlagChained = 1 << 1,   // chained composition (else pointwise)
};

/// The options header carrying a compiled policy.
struct PolicyHeader {
  static constexpr std::uint16_t kMagic = 0x5241;  // "RA"
  static constexpr std::uint8_t kVersion = 1;

  std::uint8_t flags = 0;
  std::uint8_t sampling_log2 = 0;  // attest 1 in 2^k packets of the flow
  crypto::Nonce nonce{};
  crypto::Digest policy_id{};
  std::string appraiser;
  std::vector<HopInstruction> hops;

  [[nodiscard]] bool in_band() const { return (flags & kFlagInBand) != 0; }
  [[nodiscard]] bool chained() const { return (flags & kFlagChained) != 0; }

  [[nodiscard]] crypto::Bytes serialize() const;
  /// Throws std::invalid_argument on malformed input.
  [[nodiscard]] static PolicyHeader deserialize(crypto::BytesView data);

  [[nodiscard]] std::size_t wire_size() const { return serialize().size(); }

  /// Instructions applying to `place`: its pinned instruction if any,
  /// otherwise the wildcard instructions.
  [[nodiscard]] std::vector<const HopInstruction*> instructions_for(
      const std::string& place) const;
};

/// Build a header from a compiled policy.
[[nodiscard]] PolicyHeader make_header(const CompiledPolicy& policy,
                                       const crypto::Nonce& nonce,
                                       bool in_band,
                                       std::uint8_t sampling_log2 = 0);

/// In-band evidence records appended hop by hop.
struct EvidenceRecord {
  std::string place;
  crypto::Bytes evidence;  // copland::encode() of the hop's evidence
};

struct EvidenceCarrier {
  std::vector<EvidenceRecord> records;

  void add(std::string place, crypto::Bytes evidence);

  [[nodiscard]] crypto::Bytes serialize() const;
  [[nodiscard]] static EvidenceCarrier deserialize(crypto::BytesView data);
  [[nodiscard]] std::size_t wire_size() const;
};

}  // namespace pera::nac
