// Place binding for network-aware Copland (§5.1).
//
// A policy like AP1
//   *bank<n,X> : forall hop, client :
//       (@hop [Khop |> attest(n, X) -> !] -+< @Appraiser [appraise -> store(n)])
//       *=> @client [Kclient |> ...]
// abstracts over the forwarding path. bind_path() instantiates it against a
// concrete path: the star's left phrase is replicated once per hop (with
// the hop variable substituted), sequenced, and composed with the tail.
//
// Exactly one forall variable may occur free in the left arm of each
// *=> (the hop variable); every other variable must be bound explicitly in
// PathBinding::bindings. This matches how AP1-AP3 are written: AP1 has the
// hop var `hop` plus the pinned var `client`; AP3 pins peer1/p/q/r/peer2.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "copland/ast.h"

namespace pera::nac {

/// How per-hop evidence is composed along the path (Fig. 4's Composition
/// axis). Pointwise: each hop's evidence is independent (-<-). Chained:
/// each hop receives and folds in the previous hops' evidence (+<+).
enum class CompositionMode { kPointwise, kChained };

struct PathBinding {
  /// Concrete place names the star expands over, in path order.
  std::vector<std::string> hops;
  /// Explicit bindings for the non-hop forall variables.
  std::map<std::string, std::string> bindings;
  CompositionMode composition = CompositionMode::kChained;
};

/// Substitute place names throughout a term (places in @P, measurement
/// places, guard names are NOT substituted — guards are test names).
[[nodiscard]] copland::TermPtr substitute_places(
    const copland::TermPtr& t, const std::map<std::string, std::string>& env);

/// Free place names of a term (places used that are not concrete is the
/// caller's judgement; this returns all place names used).
[[nodiscard]] std::vector<std::string> place_names(const copland::TermPtr& t);

/// Bind a network-aware policy body against a concrete path, yielding a
/// plain Copland term the standard evaluator accepts.
/// Throws std::invalid_argument on unbindable policies (two free hop vars,
/// unbound non-hop vars, ...).
[[nodiscard]] copland::TermPtr bind_path(const copland::TermPtr& policy,
                                         const PathBinding& binding);

}  // namespace pera::nac
