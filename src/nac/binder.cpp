#include "nac/binder.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace pera::nac {

using copland::Term;
using copland::TermKind;
using copland::TermPtr;

TermPtr substitute_places(const TermPtr& t,
                          const std::map<std::string, std::string>& env) {
  if (!t) return t;
  const auto subst = [&env](const std::string& name) {
    const auto it = env.find(name);
    return it == env.end() ? name : it->second;
  };
  switch (t->kind) {
    case TermKind::kNil:
    case TermKind::kSign:
    case TermKind::kHash:
    case TermKind::kAtom:
      return t;
    case TermKind::kMeasure:
      return Term::measure(t->asp, subst(t->place), t->target);
    case TermKind::kAtPlace:
      return Term::at(subst(t->place), substitute_places(t->child, env));
    case TermKind::kFunc: {
      std::vector<TermPtr> args;
      args.reserve(t->args.size());
      for (const auto& a : t->args) args.push_back(substitute_places(a, env));
      return Term::call(t->func, std::move(args));
    }
    case TermKind::kPipe:
      return Term::pipe(substitute_places(t->left, env),
                        substitute_places(t->right, env));
    case TermKind::kBranch: {
      if (t->branch == copland::BranchKind::kSeq) {
        return Term::seq(substitute_places(t->left, env),
                         substitute_places(t->right, env), t->pass_left,
                         t->pass_right);
      }
      return Term::par(substitute_places(t->left, env),
                       substitute_places(t->right, env), t->pass_left,
                       t->pass_right);
    }
    case TermKind::kGuard:
      return Term::guard(t->test, substitute_places(t->child, env));
    case TermKind::kPathStar:
      return Term::path_star(substitute_places(t->left, env),
                             substitute_places(t->right, env));
    case TermKind::kForall: {
      // Shadowing: don't substitute variables re-bound here.
      std::map<std::string, std::string> inner = env;
      for (const auto& v : t->vars) inner.erase(v);
      return Term::forall(t->vars, substitute_places(t->child, inner));
    }
  }
  return t;
}

std::vector<std::string> place_names(const TermPtr& t) {
  return copland::places_of(t);
}

namespace {

// Compose a list of terms sequentially with the mode's evidence-passing
// flags. Empty list -> nil.
TermPtr seq_all(const std::vector<TermPtr>& terms, CompositionMode mode) {
  if (terms.empty()) return Term::nil();
  TermPtr acc = terms[0];
  const bool pass = mode == CompositionMode::kChained;
  for (std::size_t i = 1; i < terms.size(); ++i) {
    acc = Term::seq(acc, terms[i], /*pass_l=*/false, /*pass_r=*/pass);
  }
  return acc;
}

struct BindCtx {
  const PathBinding* binding = nullptr;
  std::set<std::string> abstract_vars;  // declared by enclosing foralls
};

TermPtr bind_rec(const TermPtr& t, BindCtx& ctx);

// Expand `left *=> right`.
TermPtr bind_path_star(const TermPtr& t, BindCtx& ctx) {
  // Which abstract vars occur free (unbound) in the left phrase?
  std::vector<std::string> free_hops;
  for (const std::string& p : copland::places_of(t->left)) {
    if (ctx.abstract_vars.contains(p) && !ctx.binding->bindings.contains(p)) {
      free_hops.push_back(p);
    }
  }
  TermPtr expanded_left;
  if (free_hops.empty()) {
    // No hop variable: the segment instantiates once as written.
    expanded_left = bind_rec(t->left, ctx);
  } else if (free_hops.size() == 1) {
    const std::string& hop_var = free_hops[0];
    std::vector<TermPtr> instances;
    instances.reserve(ctx.binding->hops.size());
    for (const std::string& hop : ctx.binding->hops) {
      const TermPtr inst =
          substitute_places(t->left, {{hop_var, hop}});
      instances.push_back(bind_rec(inst, ctx));
    }
    expanded_left = seq_all(instances, ctx.binding->composition);
  } else {
    throw std::invalid_argument(
        "bind_path: more than one free hop variable in *=> left phrase: " +
        free_hops[0] + ", " + free_hops[1]);
  }
  const TermPtr bound_right = bind_rec(t->right, ctx);
  const bool pass = ctx.binding->composition == CompositionMode::kChained;
  return Term::seq(expanded_left, bound_right, /*pass_l=*/false,
                   /*pass_r=*/pass);
}

TermPtr bind_rec(const TermPtr& t, BindCtx& ctx) {
  if (!t) return t;
  switch (t->kind) {
    case TermKind::kForall: {
      for (const auto& v : t->vars) ctx.abstract_vars.insert(v);
      TermPtr body = substitute_places(t->child, ctx.binding->bindings);
      return bind_rec(body, ctx);
    }
    case TermKind::kPathStar:
      return bind_path_star(t, ctx);
    case TermKind::kAtPlace: {
      if (ctx.abstract_vars.contains(t->place) &&
          !ctx.binding->bindings.contains(t->place)) {
        throw std::invalid_argument("bind_path: unbound place variable '" +
                                    t->place + "'");
      }
      return Term::at(t->place, bind_rec(t->child, ctx));
    }
    case TermKind::kPipe:
      return Term::pipe(bind_rec(t->left, ctx), bind_rec(t->right, ctx));
    case TermKind::kBranch: {
      TermPtr l = bind_rec(t->left, ctx);
      TermPtr r = bind_rec(t->right, ctx);
      return t->branch == copland::BranchKind::kSeq
                 ? Term::seq(l, r, t->pass_left, t->pass_right)
                 : Term::par(l, r, t->pass_left, t->pass_right);
    }
    case TermKind::kGuard:
      return Term::guard(t->test, bind_rec(t->child, ctx));
    case TermKind::kFunc: {
      std::vector<TermPtr> args;
      args.reserve(t->args.size());
      for (const auto& a : t->args) args.push_back(bind_rec(a, ctx));
      return Term::call(t->func, std::move(args));
    }
    default:
      return t;
  }
}

}  // namespace

namespace {
// Guards are evaluatable by the plain CVM; only residual quantifiers and
// path stars make a term unexecutable.
bool has_residual_abstraction(const TermPtr& t) {
  if (!t) return false;
  if (t->kind == TermKind::kPathStar || t->kind == TermKind::kForall) {
    return true;
  }
  for (const auto& c : {t->child, t->left, t->right}) {
    if (has_residual_abstraction(c)) return true;
  }
  for (const auto& a : t->args) {
    if (has_residual_abstraction(a)) return true;
  }
  return false;
}
}  // namespace

TermPtr bind_path(const TermPtr& policy, const PathBinding& binding) {
  BindCtx ctx;
  ctx.binding = &binding;
  TermPtr bound = bind_rec(policy, ctx);
  if (has_residual_abstraction(bound)) {
    throw std::invalid_argument(
        "bind_path: residual network-aware nodes after binding");
  }
  return bound;
}

}  // namespace pera::nac
