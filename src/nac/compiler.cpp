#include "nac/compiler.h"

#include <algorithm>
#include <set>

#include "copland/parser.h"
#include "copland/pretty.h"

namespace pera::nac {

using copland::Term;
using copland::TermKind;
using copland::TermPtr;

std::size_t CompiledPolicy::wildcard_count() const {
  return static_cast<std::size_t>(
      std::count_if(hops.begin(), hops.end(),
                    [](const HopInstruction& h) { return h.wildcard; }));
}

namespace {

const std::set<std::string> kCollectorFuncs = {"appraise", "certify", "store",
                                               "retrieve"};

struct Compiler {
  CompiledPolicy out;
  std::set<std::string> abstract_vars;
  std::set<std::string> params;

  // Fill one hop instruction from the body of an @place[...] block.
  // Nested @place blocks are emitted as further hops after this one.
  void compile_hop_body(const TermPtr& t, HopInstruction& hop,
                        bool in_star_left,
                        std::vector<TermPtr>& nested) {
    switch (t->kind) {
      case TermKind::kGuard:
        hop.guard = t->test;
        compile_hop_body(t->child, hop, in_star_left, nested);
        return;
      case TermKind::kPipe:
        compile_hop_body(t->left, hop, in_star_left, nested);
        compile_hop_body(t->right, hop, in_star_left, nested);
        return;
      case TermKind::kSign:
        hop.sign_evidence = true;
        return;
      case TermKind::kHash:
        hop.hash_evidence = true;
        return;
      case TermKind::kNil:
        return;
      case TermKind::kAtom:
        add_target(hop, t->target);
        return;
      case TermKind::kMeasure:
        hop.custom_targets.push_back(copland::to_string(t));
        return;
      case TermKind::kFunc: {
        if (kCollectorFuncs.contains(t->func)) {
          hop.is_collector = true;
          return;
        }
        if (t->func == "attest") {
          for (const auto& arg : t->args) add_attest_arg(hop, arg);
          return;
        }
        // Unknown function: carried as a custom processing step.
        hop.custom_targets.push_back(copland::to_string(t));
        return;
      }
      case TermKind::kBranch:
        compile_hop_body(t->left, hop, in_star_left, nested);
        compile_hop_body(t->right, hop, in_star_left, nested);
        return;
      case TermKind::kAtPlace:
        nested.push_back(t);
        return;
      default:
        throw CompileError("unsupported construct inside hop body: " +
                           copland::to_string(t));
    }
  }

  void add_attest_arg(HopInstruction& hop, const TermPtr& arg) {
    switch (arg->kind) {
      case TermKind::kAtom: {
        const std::string& name = arg->target;
        if (params.contains(name)) {
          // Policy parameter: a nonce rides in the header; a property
          // parameter (AP1's X) defaults to program+tables detail.
          hop.custom_targets.push_back(name);
          hop.detail |= EvidenceDetail::kProgram | EvidenceDetail::kTables;
          return;
        }
        add_target(hop, name);
        return;
      }
      case TermKind::kBranch:  // attest(Hardware -~- Program)
        add_attest_arg(hop, arg->left);
        add_attest_arg(hop, arg->right);
        return;
      default:
        hop.custom_targets.push_back(copland::to_string(arg));
        return;
    }
  }

  void add_target(HopInstruction& hop, const std::string& name) {
    hop.detail = static_cast<DetailMask>(
        hop.detail | mask_of(detail_from_target(name)));
    if (name != "Hardware" && name != "Program" && name != "Tables" &&
        name != "State" && name != "ProgState" && name != "Packet") {
      hop.custom_targets.push_back(name);
    }
  }

  void emit_hop(const TermPtr& at_place, bool in_star_left) {
    HopInstruction hop;
    hop.place = at_place->place;
    // Only abstract places inside a *=> left phrase compile to wildcard
    // (execute-on-every-AE) instructions; abstract places elsewhere (AP1's
    // `client`) stay symbolic and are pinned at deployment time.
    hop.wildcard = in_star_left && abstract_vars.contains(at_place->place);
    if (hop.wildcard) hop.place = "";

    std::vector<TermPtr> nested;
    compile_hop_body(at_place->child, hop, in_star_left, nested);

    if (hop.is_collector) {
      if (out.appraiser.empty() && !hop.wildcard) {
        out.appraiser = at_place->place;
      }
      // A collector inside the star-left means per-hop evidence leaves the
      // path immediately: mark the preceding attesting hop out-of-band.
      if (in_star_left) {
        for (auto it = out.hops.rbegin(); it != out.hops.rend(); ++it) {
          if (!it->is_collector) {
            it->out_of_band = true;
            break;
          }
        }
      }
    }
    out.hops.push_back(std::move(hop));
    for (const auto& n : nested) emit_hop(n, in_star_left);
  }

  void walk(const TermPtr& t, bool in_star_left) {
    switch (t->kind) {
      case TermKind::kForall:
        for (const auto& v : t->vars) abstract_vars.insert(v);
        walk(t->child, in_star_left);
        return;
      case TermKind::kPathStar:
        walk(t->left, true);
        walk(t->right, in_star_left);
        return;
      case TermKind::kBranch:
      case TermKind::kPipe:
        walk(t->left, in_star_left);
        walk(t->right, in_star_left);
        return;
      case TermKind::kAtPlace:
        emit_hop(t, in_star_left);
        return;
      case TermKind::kGuard: {
        // A top-level guard before a block: attach to the first hop the
        // block emits by wrapping.
        const std::size_t before = out.hops.size();
        walk(t->child, in_star_left);
        if (out.hops.size() > before && out.hops[before].guard.empty()) {
          out.hops[before].guard = t->test;
        }
        return;
      }
      default:
        throw CompileError("unsupported top-level construct: " +
                           copland::to_string(t));
    }
  }
};

}  // namespace

namespace {

PrecompileCheck& precompile_check_slot() {
  static PrecompileCheck slot;
  return slot;
}

}  // namespace

PrecompileCheck set_precompile_check(PrecompileCheck check) {
  PrecompileCheck prev = std::move(precompile_check_slot());
  precompile_check_slot() = std::move(check);
  return prev;
}

CompiledPolicy compile(const copland::Request& req,
                       CompositionMode composition) {
  if (const PrecompileCheck& check = precompile_check_slot()) check(req);
  Compiler c;
  c.out.relying_party = req.relying_party;
  c.out.params = req.params;
  c.out.composition = composition;
  c.params.insert(req.params.begin(), req.params.end());
  c.out.policy_id = crypto::sha256(copland::to_string(req));
  c.walk(req.body, false);
  if (c.out.hops.empty()) {
    throw CompileError("policy compiles to no hop instructions");
  }
  return c.out;
}

CompiledPolicy compile(const std::string& source,
                       CompositionMode composition) {
  return compile(copland::parse_request(source), composition);
}

}  // namespace pera::nac
