// Evidence detail levels — Fig. 4's vertical axis, ordered by inertia:
// hardware identity changes never, the program on control-plane pushes,
// tables on rule updates, program state on register writes, and packets
// every packet. Higher-inertia evidence caches longer (§5.2).
#pragma once

#include <cstdint>
#include <string>

namespace pera::nac {

enum class EvidenceDetail : std::uint8_t {
  kHardware = 1 << 0,
  kProgram = 1 << 1,
  kTables = 1 << 2,
  kProgState = 1 << 3,
  kPacket = 1 << 4,
};

using DetailMask = std::uint8_t;

constexpr DetailMask mask_of(EvidenceDetail d) {
  return static_cast<DetailMask>(d);
}

constexpr DetailMask operator|(EvidenceDetail a, EvidenceDetail b) {
  return static_cast<DetailMask>(static_cast<std::uint8_t>(a) |
                                 static_cast<std::uint8_t>(b));
}

constexpr DetailMask operator|(DetailMask a, EvidenceDetail b) {
  return static_cast<DetailMask>(a | static_cast<std::uint8_t>(b));
}

constexpr DetailMask operator|(EvidenceDetail a, DetailMask b) {
  return static_cast<DetailMask>(static_cast<std::uint8_t>(a) | b);
}

constexpr bool has_detail(DetailMask m, EvidenceDetail d) {
  return (m & static_cast<std::uint8_t>(d)) != 0;
}

constexpr DetailMask kAllDetail =
    static_cast<DetailMask>(0x1f);

/// Map a Copland attest() target name ("Hardware", "Program", "Tables",
/// "State", "Packet") to its detail bit; unknown names map to kProgram
/// (configuration properties ride along with the program measurement).
[[nodiscard]] EvidenceDetail detail_from_target(const std::string& name);

[[nodiscard]] std::string to_string(EvidenceDetail d);
[[nodiscard]] std::string describe_mask(DetailMask m);

}  // namespace pera::nac
