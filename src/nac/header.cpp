#include "nac/header.h"

#include <stdexcept>

namespace pera::nac {

using crypto::Bytes;
using crypto::BytesView;

namespace {

void put_str(Bytes& out, const std::string& s) {
  crypto::append_u32(out, static_cast<std::uint32_t>(s.size()));
  crypto::append(out, crypto::as_bytes(s));
}

std::string get_str(BytesView data, std::size_t& off) {
  const std::uint32_t len = crypto::read_u32(data, off);
  off += 4;
  if (off + len > data.size()) {
    throw std::invalid_argument("header decode: truncated string");
  }
  std::string s(reinterpret_cast<const char*>(data.data() + off), len);
  off += len;
  return s;
}

crypto::Digest get_digest(BytesView data, std::size_t& off) {
  if (off + 32 > data.size()) {
    throw std::invalid_argument("header decode: truncated digest");
  }
  crypto::Digest d;
  std::copy(data.begin() + static_cast<std::ptrdiff_t>(off),
            data.begin() + static_cast<std::ptrdiff_t>(off + 32), d.v.begin());
  off += 32;
  return d;
}

}  // namespace

Bytes PolicyHeader::serialize() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(kMagic >> 8));
  out.push_back(static_cast<std::uint8_t>(kMagic & 0xff));
  out.push_back(kVersion);
  out.push_back(flags);
  out.push_back(sampling_log2);
  crypto::append(out, nonce.value);
  crypto::append(out, policy_id);
  put_str(out, appraiser);
  crypto::append_u32(out, static_cast<std::uint32_t>(hops.size()));
  for (const auto& h : hops) {
    put_str(out, h.place);
    put_str(out, h.guard);
    std::uint8_t hflags = 0;
    if (h.wildcard) hflags |= 1;
    if (h.hash_evidence) hflags |= 2;
    if (h.sign_evidence) hflags |= 4;
    if (h.is_collector) hflags |= 8;
    if (h.out_of_band) hflags |= 16;
    out.push_back(hflags);
    out.push_back(h.detail);
    crypto::append_u32(out, static_cast<std::uint32_t>(h.custom_targets.size()));
    for (const auto& t : h.custom_targets) put_str(out, t);
  }
  return out;
}

PolicyHeader PolicyHeader::deserialize(BytesView data) {
  if (data.size() < 5) {
    throw std::invalid_argument("PolicyHeader: too short");
  }
  if ((static_cast<std::uint16_t>(data[0]) << 8 | data[1]) != kMagic) {
    throw std::invalid_argument("PolicyHeader: bad magic");
  }
  if (data[2] != kVersion) {
    throw std::invalid_argument("PolicyHeader: unsupported version");
  }
  PolicyHeader h;
  h.flags = data[3];
  h.sampling_log2 = data[4];
  std::size_t off = 5;
  h.nonce.value = get_digest(data, off);
  h.policy_id = get_digest(data, off);
  h.appraiser = get_str(data, off);
  const std::uint32_t n = crypto::read_u32(data, off);
  off += 4;
  // A hop needs at least two length-prefixed strings + flags + detail +
  // target count = 14 bytes; reject counts the payload cannot hold before
  // reserving attacker-controlled amounts of memory.
  if (n > (data.size() - off) / 14) {
    throw std::invalid_argument("PolicyHeader: hop count exceeds payload");
  }
  h.hops.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    HopInstruction hop;
    hop.place = get_str(data, off);
    hop.guard = get_str(data, off);
    if (off + 2 > data.size()) {
      throw std::invalid_argument("PolicyHeader: truncated hop");
    }
    const std::uint8_t hflags = data[off++];
    hop.wildcard = (hflags & 1) != 0;
    hop.hash_evidence = (hflags & 2) != 0;
    hop.sign_evidence = (hflags & 4) != 0;
    hop.is_collector = (hflags & 8) != 0;
    hop.out_of_band = (hflags & 16) != 0;
    hop.detail = data[off++];
    const std::uint32_t nt = crypto::read_u32(data, off);
    off += 4;
    if (nt > (data.size() - off) / 4) {  // >= 4 bytes per string
      throw std::invalid_argument("PolicyHeader: target count exceeds payload");
    }
    hop.custom_targets.reserve(nt);
    for (std::uint32_t j = 0; j < nt; ++j) {
      hop.custom_targets.push_back(get_str(data, off));
    }
    h.hops.push_back(std::move(hop));
  }
  if (off != data.size()) {
    throw std::invalid_argument("PolicyHeader: trailing bytes");
  }
  return h;
}

std::vector<const HopInstruction*> PolicyHeader::instructions_for(
    const std::string& place) const {
  std::vector<const HopInstruction*> out;
  bool pinned = false;
  for (const auto& h : hops) {
    if (!h.wildcard && h.place == place && !h.is_collector) {
      out.push_back(&h);
      pinned = true;
    }
  }
  if (!pinned) {
    for (const auto& h : hops) {
      if (h.wildcard && !h.is_collector) out.push_back(&h);
    }
  }
  return out;
}

PolicyHeader make_header(const CompiledPolicy& policy,
                         const crypto::Nonce& nonce, bool in_band,
                         std::uint8_t sampling_log2) {
  PolicyHeader h;
  h.flags = 0;
  if (in_band) h.flags |= kFlagInBand;
  if (policy.composition == CompositionMode::kChained) {
    h.flags |= kFlagChained;
  }
  h.sampling_log2 = sampling_log2;
  h.nonce = nonce;
  h.policy_id = policy.policy_id;
  h.appraiser = policy.appraiser;
  h.hops = policy.hops;
  return h;
}

void EvidenceCarrier::add(std::string place, Bytes evidence) {
  records.push_back(EvidenceRecord{std::move(place), std::move(evidence)});
}

Bytes EvidenceCarrier::serialize() const {
  Bytes out;
  crypto::append_u32(out, static_cast<std::uint32_t>(records.size()));
  for (const auto& r : records) {
    put_str(out, r.place);
    crypto::append_u32(out, static_cast<std::uint32_t>(r.evidence.size()));
    crypto::append(out, BytesView{r.evidence.data(), r.evidence.size()});
  }
  return out;
}

EvidenceCarrier EvidenceCarrier::deserialize(BytesView data) {
  EvidenceCarrier c;
  std::size_t off = 0;
  const std::uint32_t n = crypto::read_u32(data, off);
  off += 4;
  if (n > (data.size() - off) / 8) {  // >= 8 bytes per record
    throw std::invalid_argument("EvidenceCarrier: record count exceeds payload");
  }
  c.records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    EvidenceRecord r;
    r.place = get_str(data, off);
    const std::uint32_t len = crypto::read_u32(data, off);
    off += 4;
    if (off + len > data.size()) {
      throw std::invalid_argument("EvidenceCarrier: truncated record");
    }
    r.evidence.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                      data.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
    c.records.push_back(std::move(r));
  }
  if (off != data.size()) {
    throw std::invalid_argument("EvidenceCarrier: trailing bytes");
  }
  return c;
}

std::size_t EvidenceCarrier::wire_size() const { return serialize().size(); }

}  // namespace pera::nac
