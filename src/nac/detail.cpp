#include "nac/detail.h"

namespace pera::nac {

EvidenceDetail detail_from_target(const std::string& name) {
  if (name == "Hardware") return EvidenceDetail::kHardware;
  if (name == "Program") return EvidenceDetail::kProgram;
  if (name == "Tables") return EvidenceDetail::kTables;
  if (name == "State" || name == "ProgState") return EvidenceDetail::kProgState;
  if (name == "Packet") return EvidenceDetail::kPacket;
  return EvidenceDetail::kProgram;
}

std::string to_string(EvidenceDetail d) {
  switch (d) {
    case EvidenceDetail::kHardware: return "Hardware";
    case EvidenceDetail::kProgram: return "Program";
    case EvidenceDetail::kTables: return "Tables";
    case EvidenceDetail::kProgState: return "ProgState";
    case EvidenceDetail::kPacket: return "Packet";
  }
  return "?";
}

std::string describe_mask(DetailMask m) {
  std::string out;
  for (EvidenceDetail d :
       {EvidenceDetail::kHardware, EvidenceDetail::kProgram,
        EvidenceDetail::kTables, EvidenceDetail::kProgState,
        EvidenceDetail::kPacket}) {
    if (has_detail(m, d)) {
      if (!out.empty()) out += "+";
      out += to_string(d);
    }
  }
  return out.empty() ? "none" : out;
}

}  // namespace pera::nac
