// Compiler from network-aware Copland policies to per-hop attestation
// instructions — the artifact §5.2 says the Relying Party serializes into
// a transport options header and the PERA switch interprets per flow.
//
// Supported policy shape (covers AP1-AP3 and expressions (3)/(4)):
//   [forall vars :] segment (*=> segment)*
//   segment  := hopterm ([+-]<[+-] hopterm)*
//   hopterm  := @place [ [guard |>] attest(args) / measurements -> [#] -> [!] ]
//             | @Appraiser [ appraise -> ... ]       (collector)
// Each @place[...] becomes one HopInstruction; a hop whose place is a free
// forall variable compiles to a *wildcard* instruction executed by every
// RA-capable element on the path.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "copland/ast.h"
#include "crypto/sha256.h"
#include "nac/binder.h"
#include "nac/detail.h"

namespace pera::nac {

/// What one attesting element must do for a matching packet/flow.
struct HopInstruction {
  std::string place;      // concrete place name; "" = wildcard (any AE)
  bool wildcard = false;
  std::string guard;      // Boolean test to pass first ("" = none)
  DetailMask detail = 0;  // which inertia levels to attest
  bool hash_evidence = false;   // '#'
  bool sign_evidence = false;   // '!'
  bool is_collector = false;    // an appraise step (the Appraiser's hop)
  bool out_of_band = false;     // evidence leaves the packet path here
  std::vector<std::string> custom_targets;  // non-standard attest args

  friend bool operator==(const HopInstruction&,
                         const HopInstruction&) = default;
};

struct CompiledPolicy {
  crypto::Digest policy_id{};   // digest of the source policy text/AST
  std::string relying_party;
  std::vector<std::string> params;
  std::vector<HopInstruction> hops;
  std::string appraiser;        // first collector place, if any
  CompositionMode composition = CompositionMode::kChained;

  [[nodiscard]] std::size_t wildcard_count() const;
};

class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Compile a parsed request. `composition` selects the Fig. 4 composition
/// mode encoded into the header.
[[nodiscard]] CompiledPolicy compile(const copland::Request& req,
                                     CompositionMode composition =
                                         CompositionMode::kChained);

/// Compile from policy source text.
[[nodiscard]] CompiledPolicy compile(const std::string& source,
                                     CompositionMode composition =
                                         CompositionMode::kChained);

/// Optional pre-compile verification hook (installed by the static
/// verifier, see verify/verifier.h): when set, `compile()` invokes it with
/// the parsed request before code generation; the hook refuses a policy by
/// throwing CompileError. Returns the previously installed hook so callers
/// can restore it (RAII-style nesting). Not thread-safe: install once at
/// startup or guard externally.
using PrecompileCheck = std::function<void(const copland::Request&)>;
PrecompileCheck set_precompile_check(PrecompileCheck check);

}  // namespace pera::nac
