// pera-verify: static pre-deployment verification of network-aware
// Copland policies against a concrete topology and deployment model.
//
// The paper treats attestation policies (AP1-AP3, expressions (1)-(4)) as
// specifications that must hold over a concrete network. Nothing in the
// compiler enforces that: a '*=>' segment can span a partitioned
// topology, a '|>' guard can be unsatisfiable, a 'forall' place can have
// an empty instantiation domain, evidence can leave a place unsigned, and
// a signing place can lack a device key. This pass finds all five classes
// *before* nac::compile emits hop instructions:
//
//   V1  path realizability    — consecutive pinned places of every policy
//                               segment are connected in the topology, and
//                               every evidence producer reaches the
//                               collector (reuses core/reachability's
//                               NetKAT encoding, the paper's Prim3).
//   V2  dead guards           — a '|>' test no packet can satisfy.
//   V3  quantifier domains    — every forall-bound place has >= 1
//                               RA-capable instantiation; wildcard hops
//                               only land on RA-capable elements.
//   V4  evidence flow         — measurements are signed ('!') before
//                               their evidence crosses a network place
//                               boundary (cross-place extension of the
//                               copland/analysis happens-before events).
//   V5  key availability      — every signing place has a device key
//                               derivable from the keystore.
//
// Plus V0: the existing check_well_formed() lints, reported as warnings.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "copland/ast.h"
#include "crypto/keystore.h"
#include "netkat/policy.h"
#include "netsim/topology.h"
#include "verify/diagnostics.h"

namespace pera::verify {

/// The concrete deployment a policy is verified against. All pointers are
/// non-owning and may be null: a null topology skips V1/V3 path checks, a
/// null keystore skips V5.
struct VerifyModel {
  const netsim::Topology* topology = nullptr;

  /// RA-capable elements (places with a PERA engine). nullopt derives the
  /// default from the topology: every switch and appliance node. An
  /// explicitly empty set means "no element is RA-capable" (V3 errors).
  std::optional<std::set<std::string>> ra_capable;

  /// Deployment-time pins for abstract (forall-bound) places, e.g.
  /// {"client", "laptop"}. Unpinned non-hop variables get a V3 warning.
  std::map<std::string, std::string> bindings;

  /// Device-key provisioning authority; null skips V5.
  const crypto::KeyStore* keys = nullptr;

  /// Named '|>' guard tests modelled as NetKAT predicates. Guards with no
  /// entry are assumed satisfiable (a note is emitted).
  std::map<std::string, netkat::PredPtr> guards;

  /// Packet universe for dead-guard checking. When non-empty, a guard is
  /// dead iff no universe packet satisfies it; when empty, satisfiability
  /// is decided over candidate packets enumerated from the values the
  /// predicate mentions.
  std::vector<netkat::Packet> packet_universe;

  /// Expected (src, dst) flows the policy will be attached to; used by V3
  /// to check that wildcard hops only land on RA-capable elements along
  /// each flow's forwarding path.
  std::vector<std::pair<std::string, std::string>> flows;
};

/// Run every check over a parsed request; diagnostics accumulate into
/// `de`. Returns de.ok() (no error-severity diagnostics).
bool verify(const copland::Request& req, const VerifyModel& model,
            DiagnosticEngine& de);

/// Parse `source` and verify. Lexical/syntax errors become P0 diagnostics
/// (with the failing offset as span) instead of exceptions.
bool verify_source(const std::string& source, const VerifyModel& model,
                   DiagnosticEngine& de);

// --- individual passes (exposed for tests and tooling) ----------------------
void check_well_formed_lints(const copland::Request& req, DiagnosticEngine& de);
void check_path_realizability(const copland::Request& req,
                              const VerifyModel& model, DiagnosticEngine& de);
void check_dead_guards(const copland::Request& req, const VerifyModel& model,
                       DiagnosticEngine& de);
void check_quantifier_domains(const copland::Request& req,
                              const VerifyModel& model, DiagnosticEngine& de);
void check_evidence_flow(const copland::Request& req, const VerifyModel& model,
                         DiagnosticEngine& de);
void check_key_availability(const copland::Request& req,
                            const VerifyModel& model, DiagnosticEngine& de);

/// RAII integration with the compiler: while alive, nac::compile() runs
/// the verifier over every request and throws nac::CompileError (with the
/// rendered diagnostics as message) when verification reports errors —
/// unless constructed with force=true, which demotes refusal to a
/// pass-through (diagnostics are still computed). Restores the previously
/// installed hook on destruction.
class ScopedCompileGuard {
 public:
  explicit ScopedCompileGuard(VerifyModel model, bool force = false);
  ~ScopedCompileGuard();

  ScopedCompileGuard(const ScopedCompileGuard&) = delete;
  ScopedCompileGuard& operator=(const ScopedCompileGuard&) = delete;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace pera::verify
