// Attestation-coverage static analysis (V6-V9): check a Copland policy
// against the dataplane program it is supposed to measure, not just
// against the topology (V1-V5 in verifier.h). Each check statically
// pre-empts one adversary from the dataplane-security taxonomy mined in
// ROADMAP item 5:
//
//   V6  measurement coverage  — every mutable Table / register array in
//                               the program is observed by some detail
//                               level the policy actually attests.
//                               Uncovered state can be tampered with and
//                               restored between rounds (TOCTOU) without
//                               any evidence changing: error.
//   V7  staleness windows     — with a re-attestation cadence (the same
//                               ctrl::CadenceSpec the scheduler runs),
//                               bound the worst case between a mutation
//                               and the next round observing it; windows
//                               over the budget — or levels never
//                               scheduled at all — are flagged.
//   V8  replay binding        — every signed attest() must bind the round
//                               nonce, and measurements of mutable state
//                               must take the challenge (or the Epoch
//                               pseudo-target) into the measurement
//                               itself; otherwise a rogue dataplane can
//                               replay a stale digest across rounds or
//                               state epochs: error.
//   V9  exhaustion paths      — walk the parser -> match-action graph for
//                               tables / registers writable from
//                               packet-controlled paths with no capacity
//                               or eviction guard (StatefulNat's LRU slot
//                               recycling is the guarded exemplar).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "copland/ast.h"
#include "ctrl/cadence.h"
#include "dataplane/program.h"
#include "nac/detail.h"
#include "netsim/time.h"
#include "verify/diagnostics.h"

namespace pera::verify {

/// Staleness budget used when neither the model nor the cadence config
/// provides one: a mutation must be observable within a second.
inline constexpr netsim::SimTime kDefaultStalenessBudget = netsim::kSecond;

/// The program-side deployment the policy is verified against. A null
/// program skips V6/V7/V9 (V8 is policy-only and always runs); a missing
/// cadence skips V7.
struct CoverageModel {
  const dataplane::DataplaneProgram* program = nullptr;

  /// Re-attestation cadence the deployment will run (--cadence). The V7
  /// check reads the same spec ctrl::scheduler_config_from() feeds the
  /// live scheduler.
  std::optional<ctrl::CadenceSpec> cadence;

  /// V7 budget override; wins over cadence->staleness_budget.
  std::optional<netsim::SimTime> staleness_budget;

  /// Detail levels attested through request parameters (--measures):
  /// AP1's `attest(n, X)` measures whatever property X names at runtime,
  /// so the operator declares what X covers, e.g. {"X", Program|Tables}.
  std::map<std::string, nac::DetailMask> param_details;
};

/// Run V6-V9 over a parsed request; diagnostics accumulate into `de`.
/// Returns de.ok() (over everything accumulated so far).
bool check_coverage(const copland::Request& req, const CoverageModel& model,
                    DiagnosticEngine& de);

// --- individual passes (exposed for tests and tooling) ----------------------
void check_measurement_coverage(const copland::Request& req,
                                const CoverageModel& model,
                                DiagnosticEngine& de);
void check_staleness_windows(const copland::Request& req,
                             const CoverageModel& model, DiagnosticEngine& de);
void check_replay_binding(const copland::Request& req,
                          const CoverageModel& model, DiagnosticEngine& de);
void check_exhaustion_reachability(const CoverageModel& model,
                                   DiagnosticEngine& de);

/// The detail levels `req` attests, resolved against the model's
/// param mappings (the V6 input, exposed for tests and the CLI summary).
[[nodiscard]] nac::DetailMask attested_detail_mask(const copland::Request& req,
                                                   const CoverageModel& model);

}  // namespace pera::verify
