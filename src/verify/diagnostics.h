// Diagnostics for the pre-deployment policy verifier (pera-verify).
//
// Every analysis pass reports through a DiagnosticEngine: a stable code
// (V1..V5 for the deployment checks, V0 for well-formedness lints, P0 for
// parse failures), a severity, a message, and — when the offending AST
// node was parsed from text — a byte span into the policy source that the
// human renderer turns into a caret-underlined excerpt. The JSON renderer
// emits the same data machine-readably (schema in docs/VERIFY.md).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pera::verify {

enum class Severity { kNote, kWarning, kError };

[[nodiscard]] std::string to_string(Severity s);

/// Half-open byte range [begin, end) into the policy source text.
struct Span {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] bool valid() const { return end > begin; }

  friend bool operator==(const Span&, const Span&) = default;
};

// Diagnostic codes, one per analysis (docs/VERIFY.md documents them).
inline constexpr const char* kCodeParse = "P0";          // source rejected
inline constexpr const char* kCodeWellFormed = "V0";     // structural lints
inline constexpr const char* kCodePath = "V1";           // path realizability
inline constexpr const char* kCodeDeadGuard = "V2";      // unsatisfiable '|>'
inline constexpr const char* kCodeQuantifier = "V3";     // forall domains
inline constexpr const char* kCodeEvidenceFlow = "V4";   // unsigned crossings
inline constexpr const char* kCodeKey = "V5";            // key availability
inline constexpr const char* kCodeCoverage = "V6";       // measurement coverage
inline constexpr const char* kCodeStaleness = "V7";      // staleness windows
inline constexpr const char* kCodeReplay = "V8";         // replay binding
inline constexpr const char* kCodeExhaustion = "V9";     // exhaustion paths

struct Diagnostic {
  std::string code;
  Severity severity = Severity::kError;
  std::string message;
  Span span;          // {0,0} when no source location applies
  std::string place;  // offending place name, when one is identifiable
};

/// Accumulates diagnostics for one policy and renders them. Construct with
/// the policy source text to get source excerpts in the human rendering.
class DiagnosticEngine {
 public:
  DiagnosticEngine() = default;
  explicit DiagnosticEngine(std::string source) : source_(std::move(source)) {}

  void report(Diagnostic d);
  void error(std::string code, std::string message, Span span = {},
             std::string place = "");
  void warning(std::string code, std::string message, Span span = {},
               std::string place = "");
  void note(std::string code, std::string message, Span span = {},
            std::string place = "");

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] std::size_t error_count() const {
    return count(Severity::kError);
  }
  [[nodiscard]] std::size_t warning_count() const {
    return count(Severity::kWarning);
  }
  /// True iff no error-severity diagnostics were reported.
  [[nodiscard]] bool ok() const { return error_count() == 0; }

  [[nodiscard]] const std::string& source() const { return source_; }

  /// Sort diagnostics into the canonical output order — (span.begin,
  /// span.end, code, severity, message, place) — so renderings are
  /// byte-identical regardless of which order the analyses ran or
  /// iterated their inputs. Library callers keep insertion order unless
  /// they opt in; the pera_verify CLI always sorts before rendering.
  void sort_stable();

  /// Compiler-style rendering: one "severity[code]: message" line per
  /// diagnostic, with a caret-underlined source excerpt when a span and
  /// source text are available, then a summary line.
  [[nodiscard]] std::string render_human() const;

  /// Machine-readable rendering (docs/VERIFY.md documents the schema).
  [[nodiscard]] std::string render_json() const;

 private:
  std::string source_;
  std::vector<Diagnostic> diags_;
};

}  // namespace pera::verify
