#include "verify/verifier.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "copland/analysis.h"
#include "copland/parser.h"
#include "core/reachability.h"
#include "nac/compiler.h"
#include "netkat/eval.h"

namespace pera::verify {

using copland::Term;
using copland::TermKind;
using copland::TermPtr;

namespace {

const std::set<std::string> kCollectorFuncs = {"appraise", "certify", "store",
                                               "retrieve"};

Span span_of(const Term* t) {
  return (t != nullptr && t->has_span()) ? Span{t->src_begin, t->src_end}
                                         : Span{};
}

Span span_of(const TermPtr& t) { return span_of(t.get()); }

// Pre-order walk carrying the enclosing place context and whether the node
// sits inside the left phrase of a '*=>' (where abstract places become
// wildcard hops).
using NodeFn =
    std::function<void(const TermPtr&, const std::string& place, bool star_left)>;

void walk_places(const TermPtr& t, const std::string& place, bool star_left,
                 const NodeFn& fn) {
  if (!t) return;
  fn(t, place, star_left);
  switch (t->kind) {
    case TermKind::kAtPlace:
      walk_places(t->child, t->place, star_left, fn);
      return;
    case TermKind::kGuard:
    case TermKind::kForall:
      walk_places(t->child, place, star_left, fn);
      return;
    case TermKind::kPipe:
    case TermKind::kBranch:
      walk_places(t->left, place, star_left, fn);
      walk_places(t->right, place, star_left, fn);
      return;
    case TermKind::kPathStar:
      walk_places(t->left, place, true, fn);
      walk_places(t->right, place, star_left, fn);
      return;
    case TermKind::kFunc:
      for (const auto& a : t->args) walk_places(a, place, star_left, fn);
      return;
    default:
      return;
  }
}

// Does this hop body satisfy `pred` on some node, not counting nested '@'
// blocks (those are their own hops)?
bool body_contains(const TermPtr& t, bool (*pred)(const Term&)) {
  if (!t) return false;
  if (t->kind == TermKind::kAtPlace) return false;
  if (pred(*t)) return true;
  switch (t->kind) {
    case TermKind::kPipe:
    case TermKind::kBranch:
    case TermKind::kPathStar:
      return body_contains(t->left, pred) || body_contains(t->right, pred);
    case TermKind::kGuard:
    case TermKind::kForall:
      return body_contains(t->child, pred);
    case TermKind::kFunc:
      return std::any_of(t->args.begin(), t->args.end(),
                         [pred](const TermPtr& a) {
                           return body_contains(a, pred);
                         });
    default:
      return false;
  }
}

// A collector step (appraise/certify/...) in this hop body?
bool body_is_collector(const TermPtr& t) {
  return body_contains(t, [](const Term& n) {
    return n.kind == TermKind::kFunc && kCollectorFuncs.contains(n.func);
  });
}

// A PERA-engine attest() call in this hop body? (Software measurements —
// bare atoms, 'asp place target' — run on any host; attest() needs an
// RA-capable element.)
bool body_attests(const TermPtr& t) {
  return body_contains(t, [](const Term& n) {
    return n.kind == TermKind::kFunc && n.func == "attest";
  });
}

// Everything the passes share about one policy + model.
struct Ctx {
  const copland::Request& req;
  const VerifyModel& model;

  std::set<std::string> abstract_vars;  // every forall-bound variable
  std::set<std::string> hop_vars;       // abstract vars used as '@' place
                                        // inside a '*=>' left phrase
  std::set<std::string> attesting_vars;  // abstract vars whose hop body
                                         // calls the PERA engine (attest)
  std::set<std::string> ra;             // resolved RA-capable element set

  explicit Ctx(const copland::Request& r, const VerifyModel& m)
      : req(r), model(m) {
    walk_places(r.body, r.relying_party, false,
                [this](const TermPtr& t, const std::string&, bool star_left) {
                  if (t->kind == TermKind::kForall) {
                    abstract_vars.insert(t->vars.begin(), t->vars.end());
                  }
                  if (t->kind == TermKind::kAtPlace &&
                      abstract_vars.contains(t->place)) {
                    if (star_left) hop_vars.insert(t->place);
                    if (body_attests(t->child)) {
                      attesting_vars.insert(t->place);
                    }
                  }
                });
    if (model.ra_capable.has_value()) {
      ra = *model.ra_capable;
    } else if (model.topology != nullptr) {
      for (const auto& n : model.topology->nodes()) {
        if (n.kind == netsim::NodeKind::kSwitch ||
            n.kind == netsim::NodeKind::kAppliance) {
          ra.insert(n.name);
        }
      }
    }
  }

  [[nodiscard]] bool is_bound(const std::string& place) const {
    return model.bindings.contains(place);
  }

  [[nodiscard]] bool is_abstract(const std::string& place) const {
    return abstract_vars.contains(place) && !is_bound(place);
  }

  /// Deployment-time name of a policy place (identity for concrete ones).
  [[nodiscard]] std::string resolve(const std::string& place) const {
    const auto it = model.bindings.find(place);
    return it == model.bindings.end() ? place : it->second;
  }

  [[nodiscard]] bool in_topology(const std::string& place) const {
    return model.topology != nullptr &&
           model.topology->find(place).has_value();
  }
};

// One '@place [...]' block in policy order.
struct Stop {
  std::string raw;       // place name as written
  std::string resolved;  // after deployment bindings
  Span span;
  bool is_collector = false;
  bool is_abstract = false;
};

std::vector<Stop> itinerary(const Ctx& ctx) {
  std::vector<Stop> stops;
  walk_places(ctx.req.body, ctx.req.relying_party, false,
              [&](const TermPtr& t, const std::string&, bool) {
                if (t->kind != TermKind::kAtPlace) return;
                Stop s;
                s.raw = t->place;
                s.resolved = ctx.resolve(t->place);
                s.span = span_of(t);
                s.is_collector = body_is_collector(t->child);
                s.is_abstract = ctx.is_abstract(t->place);
                stops.push_back(std::move(s));
              });
  return stops;
}

}  // namespace

// --- V0: structural lints ----------------------------------------------------

void check_well_formed_lints(const copland::Request& req,
                             DiagnosticEngine& de) {
  const copland::WellFormedness wf = copland::check_well_formed(req.body);
  for (const auto& issue : wf.issues) {
    de.warning(kCodeWellFormed, issue);
  }
}

// --- V1: path realizability --------------------------------------------------

void check_path_realizability(const copland::Request& req,
                              const VerifyModel& model, DiagnosticEngine& de) {
  if (model.topology == nullptr) {
    de.note(kCodePath, "no topology model given; path realizability (V1) "
                       "not checked");
    return;
  }
  const Ctx ctx(req, model);
  const core::NetkatTopology nt = core::encode_topology(*model.topology);
  const std::vector<Stop> stops = itinerary(ctx);

  // Places the topology does not know are host-internal (the paper's
  // ks/us kernel- and user-space places) — noted once, then skipped.
  std::set<std::string> noted;
  const auto known = [&](const Stop& s) {
    if (s.is_abstract) return false;
    if (ctx.in_topology(s.resolved)) return true;
    if (noted.insert(s.resolved).second) {
      de.note(kCodePath,
              "place '" + s.resolved +
                  "' is not a network element in the topology; treated as "
                  "host-internal",
              s.span, s.resolved);
    }
    return false;
  };

  // (a) Consecutive pinned on-path places must be connected — this is the
  // realizability of every policy segment, '*=>' gaps included (the star
  // matches zero or more hops *along some path*, so its two concrete
  // endpoints must be connected for any instantiation to exist).
  const Stop* prev = nullptr;
  for (const Stop& s : stops) {
    if (s.is_collector || s.is_abstract) continue;
    if (!known(s)) continue;
    if (prev != nullptr && prev->resolved != s.resolved &&
        !core::reachable_in(nt, prev->resolved, s.resolved)) {
      de.error(kCodePath,
               "policy segment from '" + prev->resolved + "' to '" +
                   s.resolved +
                   "' is not realizable: the topology has no path between "
                   "them",
               s.span, s.resolved);
    }
    prev = &s;
  }

  // (b) Every evidence producer must reach the evidence collector
  // (Prim3: the appraiser's reachability, checked over the NetKAT
  // encoding rather than an ad-hoc BFS).
  const Stop* collector = nullptr;
  for (const Stop& s : stops) {
    if (s.is_collector && !s.is_abstract && ctx.in_topology(s.resolved)) {
      collector = &s;
      break;
    }
  }
  if (collector == nullptr) return;
  std::set<std::string> checked;
  for (const Stop& s : stops) {
    if (s.is_collector || s.is_abstract) continue;
    if (!ctx.in_topology(s.resolved)) continue;
    if (!checked.insert(s.resolved).second) continue;
    if (s.resolved != collector->resolved &&
        !core::reachable_in(nt, s.resolved, collector->resolved)) {
      de.error(kCodePath,
               "evidence producer '" + s.resolved +
                   "' cannot reach the collector '" + collector->resolved +
                   "'",
               s.span, s.resolved);
    }
  }
  // Wildcard hops execute on every RA-capable element: each must be able
  // to deliver its evidence to the collector.
  if (!ctx.hop_vars.empty()) {
    for (const auto& element : ctx.ra) {
      if (!ctx.in_topology(element)) continue;
      if (element != collector->resolved &&
          !core::reachable_in(nt, element, collector->resolved)) {
        de.error(kCodePath,
                 "RA-capable element '" + element +
                     "' (a wildcard hop candidate) cannot reach the "
                     "collector '" +
                     collector->resolved + "'",
                 collector->span, element);
      }
    }
  }
}

// --- V2: dead guards ---------------------------------------------------------

namespace {

void collect_pred_values(const netkat::PredPtr& p,
                         std::map<std::string, std::set<std::uint64_t>>& out) {
  if (!p) return;
  switch (p->kind) {
    case netkat::PredKind::kTest:
    case netkat::PredKind::kTestMasked:
      out[p->field].insert(p->value);
      out[p->field].insert(0);
      break;
    case netkat::PredKind::kAnd:
    case netkat::PredKind::kOr:
    case netkat::PredKind::kNot:
      collect_pred_values(p->left, out);
      collect_pred_values(p->right, out);
      break;
    default:
      break;
  }
}

// Finite-witness satisfiability: a NetKAT predicate only distinguishes
// packets through the (field, value) tests it mentions, so trying every
// combination of mentioned values (plus 0 = "absent") per field decides
// satisfiability exactly.
bool pred_satisfiable(const netkat::PredPtr& p, bool* decided) {
  *decided = true;
  std::map<std::string, std::set<std::uint64_t>> values;
  collect_pred_values(p, values);
  std::vector<std::string> fields;
  std::vector<std::vector<std::uint64_t>> choices;
  std::size_t combos = 1;
  for (const auto& [field, vals] : values) {
    fields.push_back(field);
    choices.emplace_back(vals.begin(), vals.end());
    combos *= vals.size();
    if (combos > 4096) {  // guard against pathological predicates
      *decided = false;
      return true;
    }
  }
  std::vector<std::size_t> idx(fields.size(), 0);
  for (;;) {
    netkat::Packet pkt;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      pkt.set(fields[i], choices[i][idx[i]]);
    }
    if (netkat::eval(p, pkt)) return true;
    std::size_t i = 0;
    for (; i < idx.size(); ++i) {
      if (++idx[i] < choices[i].size()) break;
      idx[i] = 0;
    }
    if (i == idx.size()) return false;
  }
}

}  // namespace

void check_dead_guards(const copland::Request& req, const VerifyModel& model,
                       DiagnosticEngine& de) {
  const Ctx ctx(req, model);
  walk_places(
      req.body, req.relying_party, false,
      [&](const TermPtr& t, const std::string& place, bool) {
        if (t->kind != TermKind::kGuard) return;
        const auto it = model.guards.find(t->test);
        if (it == model.guards.end()) {
          de.note(kCodeDeadGuard,
                  "guard '" + t->test +
                      "' has no predicate model; assumed satisfiable",
                  span_of(t), ctx.resolve(place));
          return;
        }
        bool satisfiable;
        if (!model.packet_universe.empty()) {
          satisfiable = std::any_of(
              model.packet_universe.begin(), model.packet_universe.end(),
              [&](const netkat::Packet& pkt) {
                return netkat::eval(it->second, pkt);
              });
        } else {
          bool decided = true;
          satisfiable = pred_satisfiable(it->second, &decided);
          if (!decided) {
            de.note(kCodeDeadGuard,
                    "guard '" + t->test +
                        "' is too large to decide; assumed satisfiable",
                    span_of(t), ctx.resolve(place));
            return;
          }
        }
        if (!satisfiable) {
          de.error(kCodeDeadGuard,
                   "guard '" + t->test + "' at place '" +
                       ctx.resolve(place) +
                       "' is dead: no packet reaching this place can "
                       "satisfy it",
                   span_of(t), ctx.resolve(place));
        }
      });
}

// --- V3: quantifier domains --------------------------------------------------

void check_quantifier_domains(const copland::Request& req,
                              const VerifyModel& model, DiagnosticEngine& de) {
  const Ctx ctx(req, model);

  // Span of the forall node binding each variable.
  std::map<std::string, Span> var_span;
  Span star_span;
  walk_places(req.body, req.relying_party, false,
              [&](const TermPtr& t, const std::string&, bool) {
                if (t->kind == TermKind::kForall) {
                  for (const auto& v : t->vars) {
                    var_span.emplace(v, span_of(t));
                  }
                }
                if (t->kind == TermKind::kPathStar && !star_span.valid()) {
                  star_span = span_of(t);
                }
              });

  for (const auto& v : ctx.abstract_vars) {
    const Span vspan = var_span.contains(v) ? var_span.at(v) : Span{};
    if (ctx.is_bound(v)) {
      const std::string target = ctx.resolve(v);
      if (model.topology != nullptr && !ctx.in_topology(target)) {
        de.error(kCodeQuantifier,
                 "binding of forall place '" + v + "' to '" + target +
                     "' names no element in the deployment topology",
                 vspan, target);
      } else if (ctx.attesting_vars.contains(v) && !ctx.ra.contains(target)) {
        // Only attest() needs a PERA engine; guard/sign-only bodies (AP3's
        // path endpoints) may bind to plain hosts.
        de.error(kCodeQuantifier,
                 "forall place '" + v + "' calls attest() but its binding '" +
                     target + "' is not RA-capable",
                 vspan, target);
      }
      continue;
    }
    if (ctx.hop_vars.contains(v)) {
      // Wildcard hop variable: its domain is the RA-capable elements.
      std::size_t domain = 0;
      for (const auto& element : ctx.ra) {
        if (model.topology == nullptr || ctx.in_topology(element)) ++domain;
      }
      if (domain == 0) {
        de.error(kCodeQuantifier,
                 "forall place '" + v +
                     "' has an empty instantiation domain: the deployment "
                     "has no RA-capable element",
                 vspan, v);
      }
      continue;
    }
    de.warning(kCodeQuantifier,
               "abstract place '" + v +
                   "' is not pinned by the deployment model; bind it "
                   "before this policy can run",
               vspan, v);
  }

  // Wildcard hops execute on every element of the forwarding path: any
  // non-RA-capable switch/appliance on an expected flow's path is a hole
  // in the attestation chain.
  if (!ctx.hop_vars.empty() && model.topology != nullptr) {
    for (const auto& [src, dst] : model.flows) {
      if (!ctx.in_topology(src) || !ctx.in_topology(dst)) {
        de.warning(kCodeQuantifier,
                   "flow endpoint '" +
                       (ctx.in_topology(src) ? dst : src) +
                       "' is not in the topology; wildcard-hop coverage "
                       "not checked for this flow",
                   star_span);
        continue;
      }
      const auto path = model.topology->shortest_path(src, dst);
      for (const auto id : path) {
        const auto& n = model.topology->node(id);
        const bool forwarding = n.kind == netsim::NodeKind::kSwitch ||
                                n.kind == netsim::NodeKind::kAppliance;
        if (forwarding && !ctx.ra.contains(n.name)) {
          de.error(kCodeQuantifier,
                   "wildcard hop lands on non-RA-capable element '" +
                       n.name + "' on the path " + src + " -> " + dst,
                   star_span, n.name);
        }
      }
    }
  }
}

// --- V4: evidence flow -------------------------------------------------------

void check_evidence_flow(const copland::Request& req, const VerifyModel& model,
                         DiagnosticEngine& de) {
  const Ctx ctx(req, model);
  const std::vector<copland::CrossPlaceLeak> leaks =
      copland::find_cross_place_leaks(req.body, req.relying_party, req.params);
  for (const auto& leak : leaks) {
    const std::string from = ctx.resolve(leak.from_place);
    const std::string to = ctx.resolve(leak.to_place);
    const std::string msg = leak.description + " crosses the place boundary '" +
                            from + "' -> '" + to + "' unsigned";
    // A crossing that provably touches a network element is an error: an
    // on-path adversary can alter the evidence undetected. Host-internal
    // boundaries (ks/us) or unmodelled places stay warnings.
    const bool network = ctx.in_topology(from) || ctx.in_topology(to);
    if (network) {
      de.error(kCodeEvidenceFlow,
               msg + " — an on-path adversary can alter it undetected; "
                     "sign ('!') before the evidence leaves '" +
                   from + "'",
               span_of(leak.node), from);
    } else {
      de.warning(kCodeEvidenceFlow, msg + " (host-internal boundary)",
                 span_of(leak.node), from);
    }
  }
}

// --- V5: key availability ----------------------------------------------------

void check_key_availability(const copland::Request& req,
                            const VerifyModel& model, DiagnosticEngine& de) {
  if (model.keys == nullptr) {
    de.note(kCodeKey, "no keystore model given; key availability (V5) not "
                      "checked");
    return;
  }
  const Ctx ctx(req, model);
  std::set<std::string> flagged;
  walk_places(
      req.body, req.relying_party, false,
      [&](const TermPtr& t, const std::string& place, bool) {
        if (t->kind != TermKind::kSign) return;
        if (ctx.is_abstract(place)) {
          if (!ctx.hop_vars.contains(place)) return;  // V3 already warns
          // A wildcard signing hop runs on every RA-capable element, so
          // each needs a device key.
          for (const auto& element : ctx.ra) {
            if (!model.keys->has(element) && flagged.insert(element).second) {
              de.error(kCodeKey,
                       "wildcard signing hop '" + place +
                           "': no device key derivable for RA-capable "
                           "element '" +
                           element + "'",
                       span_of(t), element);
            }
          }
          return;
        }
        const std::string resolved = ctx.resolve(place);
        if (!model.keys->has(resolved) && flagged.insert(resolved).second) {
          de.error(kCodeKey,
                   "no device key derivable for signing place '" + resolved +
                       "'",
                   span_of(t), resolved);
        }
      });
}

// --- driver ------------------------------------------------------------------

bool verify(const copland::Request& req, const VerifyModel& model,
            DiagnosticEngine& de) {
  check_well_formed_lints(req, de);
  check_path_realizability(req, model, de);
  check_dead_guards(req, model, de);
  check_quantifier_domains(req, model, de);
  check_evidence_flow(req, model, de);
  check_key_availability(req, model, de);
  return de.ok();
}

bool verify_source(const std::string& source, const VerifyModel& model,
                   DiagnosticEngine& de) {
  copland::Request req;
  try {
    req = copland::parse_request(source);
  } catch (const copland::ParseError& e) {
    de.error(kCodeParse, e.what(), Span{e.pos(), e.pos() + 1});
    return false;
  }
  return verify(req, model, de);
}

// --- compiler integration ----------------------------------------------------

struct ScopedCompileGuard::Impl {
  VerifyModel model;
  bool force = false;
  nac::PrecompileCheck prev;
};

ScopedCompileGuard::ScopedCompileGuard(VerifyModel model, bool force)
    : impl_(std::make_shared<Impl>()) {
  impl_->model = std::move(model);
  impl_->force = force;
  auto impl = impl_;
  impl_->prev =
      nac::set_precompile_check([impl](const copland::Request& req) {
        DiagnosticEngine de;
        if (!verify(req, impl->model, de) && !impl->force) {
          throw nac::CompileError("policy failed static verification:\n" +
                                  de.render_human());
        }
      });
}

ScopedCompileGuard::~ScopedCompileGuard() {
  nac::set_precompile_check(std::move(impl_->prev));
}

}  // namespace pera::verify
