#include "verify/coverage.h"

#include <deque>
#include <set>
#include <vector>

#include "copland/analysis.h"
#include "pera/measurement.h"

namespace pera::verify {

namespace {

Span span_of(const copland::Term* t) {
  if (t == nullptr || t->src_end <= t->src_begin) return {};
  return Span{t->src_begin, t->src_end};
}

Span body_span(const copland::Request& req) { return span_of(req.body.get()); }

/// Strict inertia-level recognition. detail_from_target() deliberately
/// maps unknown names to kProgram (configuration properties ride along
/// with the program measurement); the analyzer recognizes the canonical
/// names explicitly so it can *note* the ride-along instead of silently
/// widening coverage.
bool is_level_name(const std::string& s) {
  return s == "Hardware" || s == "Program" || s == "Tables" || s == "State" ||
         s == "ProgState" || s == "Packet";
}

/// Pseudo-target: "measure the live revision counters alongside the
/// digests" — binds mutable-state measurements to their epoch (V8).
bool is_epoch_target(const std::string& s) { return s == "Epoch"; }

bool is_mutable_level(nac::EvidenceDetail d) {
  return d == nac::EvidenceDetail::kTables ||
         d == nac::EvidenceDetail::kProgState;
}

std::string object_kind(const dataplane::StateObject& obj) {
  return obj.kind == dataplane::StateObject::Kind::kTable ? "table"
                                                          : "register array";
}

std::string fmt_duration(netsim::SimTime t) {
  if (t >= netsim::kSecond && t % netsim::kSecond == 0) {
    return std::to_string(t / netsim::kSecond) + "s";
  }
  if (t >= netsim::kMillisecond && t % netsim::kMillisecond == 0) {
    return std::to_string(t / netsim::kMillisecond) + "ms";
  }
  if (t >= netsim::kMicrosecond && t % netsim::kMicrosecond == 0) {
    return std::to_string(t / netsim::kMicrosecond) + "us";
  }
  return std::to_string(t) + "ns";
}

std::vector<copland::AttestSite> sites_of(const copland::Request& req) {
  return copland::find_attest_sites(req.body, req.relying_party, req.params);
}

}  // namespace

nac::DetailMask attested_detail_mask(const copland::Request& req,
                                     const CoverageModel& model) {
  nac::DetailMask mask = 0;
  for (const auto& site : sites_of(req)) {
    for (const auto& target : site.targets) {
      if (is_epoch_target(target)) continue;
      mask = mask | nac::detail_from_target(target);
    }
    for (const auto& param : site.bound_params) {
      const auto it = model.param_details.find(param);
      if (it != model.param_details.end()) mask |= it->second;
    }
  }
  return mask;
}

void check_measurement_coverage(const copland::Request& req,
                                const CoverageModel& model,
                                DiagnosticEngine& de) {
  if (model.program == nullptr) return;
  const auto& program = *model.program;
  const auto sites = sites_of(req);
  const auto objects = program.state_objects();

  if (sites.empty()) {
    de.error(kCodeCoverage,
             "policy '" + req.relying_party +
                 "' never calls attest(): none of the " +
                 std::to_string(objects.size()) +
                 " mutable state object(s) of program '" + program.name() +
                 "' is measured",
             body_span(req));
    return;
  }

  std::set<std::string> noted;
  for (const auto& site : sites) {
    for (const auto& param : site.bound_params) {
      if (model.param_details.contains(param)) continue;
      if (!noted.insert("p:" + param).second) continue;
      de.note(kCodeCoverage,
              "request parameter '" + param +
                  "' is measured by attest() but has no declared detail "
                  "mapping (--measures " +
                  param + "=...): it contributes nothing to state coverage",
              span_of(site.node), site.place);
    }
    for (const auto& target : site.targets) {
      if (is_level_name(target) || is_epoch_target(target)) continue;
      if (!noted.insert("t:" + target).second) continue;
      de.note(kCodeCoverage,
              "attest target '" + target +
                  "' is not an inertia level; counted as a program-level "
                  "configuration property",
              span_of(site.node), site.place);
    }
  }

  const nac::DetailMask mask = attested_detail_mask(req, model);
  if (!nac::has_detail(mask, nac::EvidenceDetail::kProgram)) {
    de.warning(kCodeCoverage,
               "the dataplane program itself is never attested (coverage: " +
                   nac::describe_mask(mask) +
                   "): an Athens-style program swap between rounds is "
                   "invisible; attest Program",
               body_span(req));
  }
  for (const auto& obj : objects) {
    const nac::EvidenceDetail level = pera::covering_level(obj);
    if (nac::has_detail(mask, level)) continue;
    de.error(kCodeCoverage,
             "mutable " + object_kind(obj) + " '" + obj.name +
                 "' of program '" + program.name() +
                 "' is not covered by any attested detail level (policy "
                 "attests " +
                 nac::describe_mask(mask) +
                 "): tampering between rounds is invisible to every round "
                 "(TOCTOU); attest " +
                 nac::to_string(level),
             body_span(req));
  }
}

void check_staleness_windows(const copland::Request& req,
                             const CoverageModel& model,
                             DiagnosticEngine& de) {
  if (model.program == nullptr) return;
  if (!model.cadence) {
    de.note(kCodeStaleness,
            "no re-attestation cadence given (--cadence): staleness "
            "windows (V7) not checked");
    return;
  }
  const ctrl::CadenceSpec& spec = *model.cadence;
  const netsim::SimTime budget =
      model.staleness_budget.value_or(spec.staleness_budget.value_or(
          kDefaultStalenessBudget));
  const nac::DetailMask mask = attested_detail_mask(req, model);

  for (const auto& obj : model.program->state_objects()) {
    const nac::EvidenceDetail level = pera::covering_level(obj);
    if (!nac::has_detail(mask, level)) continue;  // V6 already reported it
    if (!nac::has_detail(spec.levels, level)) {
      de.error(kCodeStaleness,
               object_kind(obj) + " '" + obj.name + "' is attested at level " +
                   nac::to_string(level) +
                   " but that level is not in the scheduled set (" +
                   nac::describe_mask(spec.levels) +
                   "): its staleness window is unbounded — a mutation is "
                   "never re-observed");
      continue;
    }
    const netsim::SimTime window = spec.cadence.interval_for(level);
    if (window > budget) {
      de.error(kCodeStaleness,
               "worst-case staleness window " + fmt_duration(window) +
                   " for " + object_kind(obj) + " '" + obj.name +
                   "' (level " + nac::to_string(level) +
                   " re-attested every " + fmt_duration(window) +
                   ") exceeds the budget " + fmt_duration(budget) +
                   ": a mutate-and-restore between rounds goes unobserved "
                   "for longer than the deployment tolerates");
    }
  }
}

void check_replay_binding(const copland::Request& req,
                          const CoverageModel& /*model*/,
                          DiagnosticEngine& de) {
  for (const auto& site : sites_of(req)) {
    // Unsigned measurement evidence is V4's finding (evidence flow); a
    // replay analysis of an unsigned blob adds nothing.
    if (!site.covered_by_sign) continue;

    if (site.bound_params.empty() && !site.initial_evidence_reaches) {
      de.error(kCodeReplay,
               "signed attest() at place '" + site.place +
                   "' does not bind the round nonce: the request's initial "
                   "evidence never reaches this pipeline (branch drops it "
                   "with a '-' pass flag) and no request parameter is "
                   "measured — the signature verifies identically in every "
                   "round, so recorded evidence can be replayed",
               span_of(site.node), site.place);
      continue;
    }

    std::vector<std::string> mutable_targets;
    bool has_epoch = false;
    for (const auto& target : site.targets) {
      if (is_epoch_target(target)) {
        has_epoch = true;
      } else if (is_level_name(target) &&
                 is_mutable_level(nac::detail_from_target(target))) {
        mutable_targets.push_back(target);
      }
    }
    if (mutable_targets.empty() || has_epoch || !site.bound_params.empty()) {
      continue;
    }
    std::string joined;
    for (const auto& t : mutable_targets) {
      if (!joined.empty()) joined += ", ";
      joined += t;
    }
    de.error(kCodeReplay,
             "attest(" + joined + ") at place '" + site.place +
                 "' signs mutable-state digests bound to the nonce only at "
                 "signing time, not at measurement time: a rogue dataplane "
                 "can substitute a digest recorded in an earlier state "
                 "epoch; measure the request nonce (or the Epoch "
                 "pseudo-target) inside attest()",
             span_of(site.node), site.place);
  }
}

void check_exhaustion_reachability(const CoverageModel& model,
                                   DiagnosticEngine& de) {
  if (model.program == nullptr) return;
  const auto& program = *model.program;

  // Parser reachability: which parse states can execute, hence which
  // headers a wire packet can present to the pipeline.
  const auto& states = program.parser().states();
  std::set<std::string> reachable;
  std::set<std::string> parseable_headers;
  std::deque<std::string> frontier{"start"};
  while (!frontier.empty()) {
    const std::string name = frontier.front();
    frontier.pop_front();
    if (name == "accept" || !reachable.insert(name).second) continue;
    const auto it = states.find(name);
    if (it == states.end()) continue;  // dangling edge; parse() throws there
    const auto& st = it->second;
    if (!st.header.empty()) parseable_headers.insert(st.header);
    if (st.select) {
      for (const auto& [value, next] : st.select->cases) {
        frontier.push_back(next);
      }
      frontier.push_back(st.select->default_next);
    } else {
      frontier.push_back(st.next);
    }
  }
  for (const auto& [name, st] : states) {
    if (reachable.contains(name)) continue;
    de.note(kCodeExhaustion,
            "parser state '" + name +
                "' is unreachable from start: header '" + st.header +
                "' can never be extracted, so matches keyed on it are dead");
  }

  // Packet-triggerable actions: every pipeline table runs per packet, so
  // its default action always can fire; entry actions additionally need
  // their key headers parseable (an absent header never matches).
  struct Writer {
    std::string table;
    std::string action;
    bool flow_indexed = false;  // writing table learns entries from packets
  };
  std::map<std::string, std::vector<Writer>> writers;  // register -> writers
  for (const auto& table : program.tables()) {
    bool keys_parseable = true;
    for (const auto& key : table->keys()) {
      if (key.field.header != "meta" &&
          !parseable_headers.contains(key.field.header)) {
        keys_parseable = false;
      }
    }
    std::set<std::string> triggerable;
    if (!table->default_action().empty()) {
      triggerable.insert(table->default_action());
    }
    if (keys_parseable) {
      for (const auto& entry : table->entries()) {
        triggerable.insert(entry.action);
      }
    }
    for (const auto& action_name : triggerable) {
      const dataplane::ActionDef* action = program.action(action_name);
      if (action == nullptr) continue;  // load/run reports this
      for (const auto& op : action->ops) {
        if (op.kind != dataplane::OpKind::kRegWrite) continue;
        writers[op.reg].push_back(
            Writer{table->name(), action_name, table->packet_writable()});
      }
    }
  }

  // Table guards: packet-installed entries need a bounded, recycled store.
  for (const auto& table : program.tables()) {
    if (!table->packet_writable()) continue;
    if (table->capacity() == 0) {
      de.error(kCodeExhaustion,
               "flow-learning table '" + table->name() + "' of program '" +
                   program.name() +
                   "' installs entries from packet arrivals with no "
                   "capacity bound: an address sweep grows it until the "
                   "switch exhausts memory; bound it and recycle slots "
                   "(StatefulNat's LRU is the guarded pattern)");
    } else if (table->eviction() == dataplane::EvictionPolicy::kNone) {
      de.error(kCodeExhaustion,
               "flow-learning table '" + table->name() + "' of program '" +
                   program.name() + "' is capacity-bounded (" +
                   std::to_string(table->capacity()) +
                   " entries) but has no eviction policy: once an "
                   "adversary fills it, legitimate new flows are denied "
                   "until operator intervention; evict LRU/TTL like "
                   "StatefulNat");
    }
  }

  // Register guards.
  std::set<std::string> seen_regs;
  for (const auto& decl : program.register_decls()) {
    seen_regs.insert(decl.name);
    const auto wit = writers.find(decl.name);
    const bool action_written = wit != writers.end();
    if (!decl.packet_writable && !action_written) continue;
    if (decl.guard != dataplane::StateGuard::kNone) continue;
    bool flow_indexed = decl.packet_writable;
    std::string via;
    if (action_written) {
      for (const auto& w : wit->second) {
        flow_indexed = flow_indexed || w.flow_indexed;
        if (via.empty()) via = "action '" + w.action + "' (table '" +
                               w.table + "')";
      }
    }
    if (flow_indexed) {
      de.error(kCodeExhaustion,
               "register array '" + decl.name + "' of program '" +
                   program.name() +
                   "' holds per-flow state written from packet-controlled "
                   "paths with no overwrite guard: an adversary burns "
                   "through all " + std::to_string(decl.size) +
                   " slots and wedges the state; declare 'guard slots' "
                   "(recycle with the owning flow) or 'guard saturate'");
    } else {
      de.warning(kCodeExhaustion,
                 "register '" + decl.name + "' is written by packet-"
                     "triggered " + via +
                     " with no guard: fixed slots cannot be exhausted, but "
                     "an adversary can saturate or poison the stored "
                     "values; declare a guard to make the bound explicit");
    }
  }
  for (const auto& [reg, by] : writers) {
    if (seen_regs.contains(reg)) continue;
    de.error(kCodeExhaustion,
             "action '" + by.front().action + "' (table '" +
                 by.front().table + "') writes undeclared register '" + reg +
                 "': the write faults at runtime");
  }
}

bool check_coverage(const copland::Request& req, const CoverageModel& model,
                    DiagnosticEngine& de) {
  if (model.program != nullptr) {
    check_measurement_coverage(req, model, de);
    check_staleness_windows(req, model, de);
    check_exhaustion_reachability(model, de);
  } else if (model.cadence || !model.param_details.empty()) {
    de.note(kCodeCoverage,
            "no dataplane program given (--program): measurement coverage "
            "(V6), staleness (V7) and exhaustion (V9) checks skipped");
  }
  check_replay_binding(req, model, de);
  return de.ok();
}

}  // namespace pera::verify
