#include "verify/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string_view>
#include <tuple>
#include <utility>

namespace pera::verify {

std::string to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

void DiagnosticEngine::report(Diagnostic d) { diags_.push_back(std::move(d)); }

void DiagnosticEngine::error(std::string code, std::string message, Span span,
                             std::string place) {
  report(Diagnostic{std::move(code), Severity::kError, std::move(message),
                    span, std::move(place)});
}

void DiagnosticEngine::warning(std::string code, std::string message,
                               Span span, std::string place) {
  report(Diagnostic{std::move(code), Severity::kWarning, std::move(message),
                    span, std::move(place)});
}

void DiagnosticEngine::note(std::string code, std::string message, Span span,
                            std::string place) {
  report(Diagnostic{std::move(code), Severity::kNote, std::move(message),
                    span, std::move(place)});
}

void DiagnosticEngine::sort_stable() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.span.begin, a.span.end, a.code,
                                     a.severity, a.message, a.place) <
                            std::tie(b.span.begin, b.span.end, b.code,
                                     b.severity, b.message, b.place);
                   });
}

std::size_t DiagnosticEngine::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

namespace {

// Line containing `offset` (for multi-line policy files) and the offset of
// its first character.
std::pair<std::string_view, std::size_t> line_at(std::string_view src,
                                                 std::size_t offset) {
  if (offset > src.size()) offset = src.size();
  std::size_t begin = src.rfind('\n', offset == 0 ? 0 : offset - 1);
  begin = (begin == std::string_view::npos) ? 0 : begin + 1;
  std::size_t end = src.find('\n', offset);
  if (end == std::string_view::npos) end = src.size();
  if (end < begin) end = begin;
  return {src.substr(begin, end - begin), begin};
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string DiagnosticEngine::render_human() const {
  std::ostringstream out;
  for (const Diagnostic& d : diags_) {
    out << to_string(d.severity) << '[' << d.code << "]: " << d.message
        << '\n';
    if (d.span.valid() && !source_.empty() && d.span.begin < source_.size()) {
      const auto [line, line_begin] = line_at(source_, d.span.begin);
      const std::size_t col = d.span.begin - line_begin;
      const std::size_t len =
          std::max<std::size_t>(1, std::min(d.span.end, line_begin +
                                                            line.size()) -
                                       d.span.begin);
      out << "  --> offset " << d.span.begin << '\n';
      out << "   | " << line << '\n';
      out << "   | " << std::string(col, ' ') << std::string(len, '^')
          << '\n';
    }
  }
  out << error_count() << " error(s), " << warning_count() << " warning(s)\n";
  return out.str();
}

std::string DiagnosticEngine::render_json() const {
  std::string out = "{\n  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : diags_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"code\": ";
    append_json_string(out, d.code);
    out += ", \"severity\": ";
    append_json_string(out, to_string(d.severity));
    out += ", \"message\": ";
    append_json_string(out, d.message);
    out += ", \"span\": {\"begin\": " + std::to_string(d.span.begin) +
           ", \"end\": " + std::to_string(d.span.end) + "}";
    if (!d.place.empty()) {
      out += ", \"place\": ";
      append_json_string(out, d.place);
    }
    out += "}";
  }
  out += first ? "]" : "\n  ]";
  out += ",\n  \"errors\": " + std::to_string(error_count());
  out += ",\n  \"warnings\": " + std::to_string(warning_count());
  out += ",\n  \"ok\": ";
  out += ok() ? "true" : "false";
  out += "\n}\n";
  return out;
}

}  // namespace pera::verify
