// Metrics registry — named counters, gauges and fixed-bucket histograms
// with cheap atomic updates and JSON export.
//
// Handles returned by MetricsRegistry::counter()/gauge()/histogram() are
// stable for the registry's lifetime: reset_values() zeroes them in place
// so cached `static` handles at instrumentation sites never dangle.
// Naming scheme (see docs/OBSERVABILITY.md): dot-separated lowercase
// paths, `<module>.<unit>.<what>[.<qualifier>]`, e.g. `pera.cache.hit`,
// `pera.sign.sim_ns`, `net.delivery.sim_ns.evidence`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pera::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written signed value (queue depths, cache sizes, config knobs).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]
/// (bounds strictly increasing); observations above the last bound land
/// in the overflow bucket. Tracks count/sum/min/max exactly.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v);

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Min/max of observed values; 0 when count() == 0.
  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const;
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  void reset();

 private:
  std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Default histogram bounds for simulated latencies: exponential
/// nanosecond buckets from 100 ns to 1 s.
[[nodiscard]] const std::vector<std::int64_t>& default_latency_bounds_ns();

class MetricsRegistry {
 public:
  /// Get or create. References stay valid until the registry dies.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` only applies on first creation of `name`.
  Histogram& histogram(std::string_view name,
                       const std::vector<std::int64_t>& bounds =
                           default_latency_bounds_ns());

  /// nullptr when the metric was never created.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  [[nodiscard]] std::size_t size() const;

  /// Zero every metric in place (handles remain valid).
  void reset_values();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}},
  /// names sorted, deterministic.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace pera::obs
