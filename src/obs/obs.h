// Observability facade — one process-wide MetricsRegistry + TraceSink
// behind a compile-time and a runtime toggle.
//
// Compile-time: build with -DPERA_OBS_ENABLED=0 (CMake option PERA_OBS=OFF)
// and every instrumentation macro compiles to nothing.
// Runtime: obs::set_enabled(bool); while disabled, the macros cost one
// relaxed atomic load and never evaluate their arguments — the
// instrumented hot paths are observably free (<2% on the Fig. 4 bench).
//
// Instrumentation sites use the macros so argument construction (string
// concatenation, size computations) is skipped when disabled:
//
//   PERA_OBS_COUNT("pera.cache.hit");
//   PERA_OBS_COUNT("pera.inband.bytes", encoded.size());
//   PERA_OBS_OBSERVE("pera.sign.sim_ns", cost);
//   PERA_OBS_EVENT(obs::SpanKind::kSign, place_, cost, 0);
//   obs::ScopedSpan span(obs::SpanKind::kEvidenceCreate, place_);
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef PERA_OBS_ENABLED
#define PERA_OBS_ENABLED 1
#endif

namespace pera::obs {

namespace detail {
inline std::atomic<bool> g_enabled{false};
inline std::atomic<netsim::SimTime> g_sim_now{0};
}  // namespace detail

/// Runtime toggle. Off by default — simulations opt in.
inline bool enabled() {
#if PERA_OBS_ENABLED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void set_enabled(bool on);

/// The process-wide registry and trace ring.
MetricsRegistry& metrics();
TraceSink& trace();

/// Zero all metric values and clear the trace (handles stay valid).
void reset();

/// The simulated clock used to stamp trace events. netsim::Network
/// advances it as its event queue runs; outside a simulation it holds
/// whatever was last set (0 at startup).
inline netsim::SimTime sim_now() {
  return detail::g_sim_now.load(std::memory_order_relaxed);
}
inline void set_sim_now(netsim::SimTime t) {
  detail::g_sim_now.store(t, std::memory_order_relaxed);
}

/// Helpers behind the macros. Call through the macros in hot paths so
/// the arguments are not evaluated while disabled.
void count(std::string_view name, std::uint64_t delta = 1);
void gauge_set(std::string_view name, std::int64_t value);
void observe(std::string_view histogram, std::int64_t value);
void event(SpanKind kind, std::string_view name, netsim::SimTime duration = 0,
           std::uint64_t value = 0);

/// Full JSON dump: {"metrics": ..., "trace": ...}.
[[nodiscard]] std::string dump_json();

/// RAII span: records one trace event (and a per-kind counter) when it
/// goes out of scope, iff observability was enabled at construction.
/// Simulated cost is attributed explicitly via add_cost() because sim
/// time does not advance inside a switch's packet path.
class ScopedSpan {
 public:
  ScopedSpan(SpanKind kind, std::string_view name)
      : live_(enabled()), kind_(kind), name_(live_ ? name : "") {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void add_cost(netsim::SimTime c) { cost_ += c; }
  void set_cost(netsim::SimTime c) { cost_ = c; }
  void set_value(std::uint64_t v) { value_ = v; }

  ~ScopedSpan() {
    if (live_) event(kind_, name_, cost_, value_);
  }

 private:
  bool live_;
  SpanKind kind_;
  std::string name_;
  netsim::SimTime cost_ = 0;
  std::uint64_t value_ = 0;
};

}  // namespace pera::obs

#if PERA_OBS_ENABLED
#define PERA_OBS_COUNT(...)                                  \
  do {                                                       \
    if (::pera::obs::enabled()) ::pera::obs::count(__VA_ARGS__); \
  } while (0)
#define PERA_OBS_GAUGE(name, v)                                  \
  do {                                                           \
    if (::pera::obs::enabled()) ::pera::obs::gauge_set(name, v); \
  } while (0)
#define PERA_OBS_OBSERVE(name, v)                              \
  do {                                                         \
    if (::pera::obs::enabled()) ::pera::obs::observe(name, v); \
  } while (0)
#define PERA_OBS_EVENT(...)                                  \
  do {                                                       \
    if (::pera::obs::enabled()) ::pera::obs::event(__VA_ARGS__); \
  } while (0)
#else
#define PERA_OBS_COUNT(...) do {} while (0)
#define PERA_OBS_GAUGE(name, v) do {} while (0)
#define PERA_OBS_OBSERVE(name, v) do {} while (0)
#define PERA_OBS_EVENT(...) do {} while (0)
#endif
