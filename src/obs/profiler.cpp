#include "obs/profiler.h"

#include <chrono>
#include <cstdio>

#include "obs/obs.h"

namespace pera::obs::profiler {

namespace {

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::size_t kMaxThreads = 64;
constexpr std::size_t kRoleBytes = 24;

// One cache-line-padded slot per registered thread. `ns`/`calls` are
// written only by the owning thread (relaxed) and read by the exporter
// after the run (or mid-run, for monitoring — totals are then
// approximate, which is fine for a gauge).
struct alignas(64) Slot {
  std::atomic<bool> used{false};
  std::atomic<std::uint64_t> ns[kStageCount];
  std::atomic<std::uint64_t> calls[kStageCount];
  std::atomic<std::uint64_t> window_ns{0};
  char role[kRoleBytes] = {};
};

struct State {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint32_t> generation{1};
  Slot slots[kMaxThreads];
};

State& state() {
  static State s;
  return s;
}

// Thread-local cursor into the claimed slot. `generation` detects a
// reset() between registration and use: a stale cursor silently
// deactivates instead of writing into a recycled slot.
struct Cursor {
  Slot* slot = nullptr;
  std::uint32_t generation = 0;
  Stage stage = Stage::kIdle;
  std::uint64_t stamp = 0;      // entry time of the current stage
  std::uint64_t began = 0;      // thread_begin time
};

thread_local Cursor t_cursor;

inline Slot* live_slot() {
  Cursor& c = t_cursor;
  if (c.slot == nullptr) return nullptr;
  if (c.generation != state().generation.load(std::memory_order_relaxed)) {
    c.slot = nullptr;
    return nullptr;
  }
  return c.slot;
}

constexpr std::string_view kStageNames[kStageCount] = {
    "dispatch",    "ring_transit", "shard_work", "reassembly",
    "wots_verify", "merge",        "idle"};

}  // namespace

std::string_view to_string(Stage s) {
  return kStageNames[static_cast<std::size_t>(s)];
}

bool enabled() { return state().enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  state().enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  State& s = state();
  // Invalidate every thread-local cursor first so a concurrently live
  // thread stops writing before the slots are zeroed.
  s.generation.fetch_add(1, std::memory_order_relaxed);
  for (Slot& slot : s.slots) {
    for (std::size_t i = 0; i < kStageCount; ++i) {
      slot.ns[i].store(0, std::memory_order_relaxed);
      slot.calls[i].store(0, std::memory_order_relaxed);
    }
    slot.window_ns.store(0, std::memory_order_relaxed);
    slot.role[0] = '\0';
    slot.used.store(false, std::memory_order_release);
  }
}

void thread_begin(std::string_view role, Stage initial) {
  if (!enabled()) return;
  if (live_slot() != nullptr) thread_end();
  State& s = state();
  for (Slot& slot : s.slots) {
    bool expected = false;
    if (!slot.used.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      continue;
    }
    const std::size_t n = role.size() < kRoleBytes - 1 ? role.size()
                                                       : kRoleBytes - 1;
    for (std::size_t i = 0; i < n; ++i) slot.role[i] = role[i];
    slot.role[n] = '\0';
    Cursor& c = t_cursor;
    c.slot = &slot;
    c.generation = s.generation.load(std::memory_order_relaxed);
    c.stage = initial;
    c.began = c.stamp = now_ns();
    return;
  }
  // All slots taken: the thread runs unprofiled.
}

void thread_end() {
  Slot* slot = live_slot();
  if (slot == nullptr) return;
  Cursor& c = t_cursor;
  const std::uint64_t t = now_ns();
  const std::size_t i = static_cast<std::size_t>(c.stage);
  slot->ns[i].fetch_add(t - c.stamp, std::memory_order_relaxed);
  slot->calls[i].fetch_add(1, std::memory_order_relaxed);
  slot->window_ns.fetch_add(t - c.began, std::memory_order_relaxed);
  c.slot = nullptr;
}

void enter(Stage s) {
  Slot* slot = live_slot();
  if (slot == nullptr) return;
  Cursor& c = t_cursor;
  if (s == c.stage) return;  // common fast path: stay in stage
  const std::uint64_t t = now_ns();
  const std::size_t i = static_cast<std::size_t>(c.stage);
  slot->ns[i].fetch_add(t - c.stamp, std::memory_order_relaxed);
  slot->calls[i].fetch_add(1, std::memory_order_relaxed);
  c.stage = s;
  c.stamp = t;
}

ScopedStage::ScopedStage(Stage s) : prev_(Stage::kIdle), live_(false) {
  if (live_slot() == nullptr) return;
  prev_ = t_cursor.stage;
  live_ = true;
  enter(s);
}

ScopedStage::~ScopedStage() {
  if (live_) enter(prev_);
}

StageTotals totals() {
  StageTotals out;
  for (const Slot& slot : state().slots) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    for (std::size_t i = 0; i < kStageCount; ++i) {
      out.wall_ns[i] += slot.ns[i].load(std::memory_order_relaxed);
      out.calls[i] += slot.calls[i].load(std::memory_order_relaxed);
    }
    out.window_ns += slot.window_ns.load(std::memory_order_relaxed);
  }
  return out;
}

void publish_metrics() {
  if (!obs::enabled()) return;
  const StageTotals t = totals();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::string base =
        "pipeline.stage." + std::string(kStageNames[i]);
    obs::metrics().counter(base + ".wall_ns").add(t.wall_ns[i]);
    obs::metrics().counter(base + ".calls").add(t.calls[i]);
  }
}

std::string to_json() {
  const StageTotals t = totals();
  char buf[160];
  std::string out = "{\"stages\":{";
  for (std::size_t i = 0; i < kStageCount; ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%.*s\":{\"wall_ns\":%llu,\"calls\":%llu}",
                  i == 0 ? "" : ",",
                  static_cast<int>(kStageNames[i].size()),
                  kStageNames[i].data(),
                  static_cast<unsigned long long>(t.wall_ns[i]),
                  static_cast<unsigned long long>(t.calls[i]));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "},\"window_ns\":%llu,\"accounted_share\":%.4f,\"threads\":[",
                static_cast<unsigned long long>(t.window_ns),
                t.accounted_share());
  out += buf;
  bool first = true;
  for (const Slot& slot : state().slots) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"role\":\"";
    out += slot.role;
    out += "\"";
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const std::uint64_t ns = slot.ns[i].load(std::memory_order_relaxed);
      if (ns == 0) continue;
      std::snprintf(buf, sizeof(buf), ",\"%.*s\":%llu",
                    static_cast<int>(kStageNames[i].size()),
                    kStageNames[i].data(),
                    static_cast<unsigned long long>(ns));
      out += buf;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace pera::obs::profiler
