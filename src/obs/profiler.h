// Per-stage scalability profiler — wall-clock attribution for the
// parallel pipeline, in the style of NFOS's scalability profiler: every
// participating thread registers a slot, tags the stage it is currently
// in, and the profiler accumulates wall nanoseconds (and transition
// counts) per (thread, stage). Aggregating across threads answers the
// question the throughput bench alone cannot: *which stage* eats the
// wall clock when shard count rises but packets/sec does not.
//
// Design constraints, in order:
//  * Measured, not guessed — a thread is *always* inside exactly one
//    named stage between profile_thread_begin/end, so the per-stage sums
//    cover the thread's whole lifetime and the "unaccounted" residue
//    stays below the 5% gate bench_throughput asserts.
//  * Cheap — stage transitions are two TLS loads, one steady_clock read
//    and two relaxed atomic adds; while the profiler is disabled the
//    macros cost one relaxed load, like the rest of src/obs.
//  * Lock-free — slots are claimed with a CAS at thread registration;
//    the hot path never takes a lock and never allocates.
//
// Stages model the pipeline's stage graph (docs/ARCHITECTURE.md §3):
//
//   dispatch     flow-hash + ring push on the submitting thread
//   ring_transit blocked on a ring (producer full-wait, consumer scan)
//   shard_work   PeraSwitch::process on a shard worker
//   reassembly   appraiser-side bucketing + per-flow ordering/folding
//   wots_verify  signature verification (HMAC / Merkle-batched / XMSS
//                — the WOTS chain walk rides the multi-lane engine)
//   merge        deterministic cross-appraiser verdict merge + summary
//   idle         registered but nothing to do (stop-wait, drain-wait)
//
// Exported two ways: `publish_metrics()` folds totals into the process
// metrics registry (`pipeline.stage.<stage>.wall_ns` / `.calls`), and
// `to_json()` emits the full per-thread breakdown (what
// `bench_throughput --profile-json=PATH` writes).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace pera::obs::profiler {

enum class Stage : std::uint8_t {
  kDispatch = 0,
  kRingTransit,
  kShardWork,
  kReassembly,
  kWotsVerify,
  kMerge,
  kIdle,
};
inline constexpr std::size_t kStageCount = 7;

[[nodiscard]] std::string_view to_string(Stage s);

/// Runtime toggle, independent of obs::set_enabled (benches profile with
/// metrics off and vice versa). Off by default.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Zero every slot and release all thread registrations. Call between
/// runs; live registered threads must re-register afterwards.
void reset();

/// Register the calling thread under `role` (e.g. "dispatcher",
/// "shard3", "appraiser0") and enter `initial`. No-op when disabled or
/// when all slots are taken (the thread then profiles into nothing).
void thread_begin(std::string_view role, Stage initial);

/// Close the calling thread's attribution window (flushes the open
/// stage). Idempotent.
void thread_end();

/// Switch the calling thread's current stage, attributing the elapsed
/// wall time to the stage it was in. Cheap no-op when unregistered.
void enter(Stage s);

/// RAII stage switch: enters `s`, restores the previous stage on scope
/// exit. For leaf sections inside a longer-lived stage.
class ScopedStage {
 public:
  explicit ScopedStage(Stage s);
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;
  ~ScopedStage();

 private:
  Stage prev_;
  bool live_;
};

/// Aggregated view over every slot used since the last reset().
struct StageTotals {
  std::uint64_t wall_ns[kStageCount] = {};
  std::uint64_t calls[kStageCount] = {};
  std::uint64_t window_ns = 0;  // sum of thread begin->end windows

  [[nodiscard]] std::uint64_t accounted_ns() const {
    std::uint64_t n = 0;
    for (const std::uint64_t v : wall_ns) n += v;
    return n;
  }
  /// Fraction of the registered windows the named stages cover, in
  /// [0, 1]. 1.0 when no window was recorded.
  [[nodiscard]] double accounted_share() const {
    return window_ns == 0
               ? 1.0
               : static_cast<double>(accounted_ns()) /
                     static_cast<double>(window_ns);
  }
};

[[nodiscard]] StageTotals totals();

/// Fold totals into obs::metrics() as counters
/// `pipeline.stage.<stage>.wall_ns` / `pipeline.stage.<stage>.calls`
/// (requires obs to be enabled, like every other metrics writer).
void publish_metrics();

/// Full JSON: {"stages": {...}, "accounted_share": x, "threads": [...]}.
[[nodiscard]] std::string to_json();

/// RAII thread registration for worker bodies.
class ScopedThread {
 public:
  ScopedThread(std::string_view role, Stage initial) {
    thread_begin(role, initial);
  }
  ScopedThread(const ScopedThread&) = delete;
  ScopedThread& operator=(const ScopedThread&) = delete;
  ~ScopedThread() { thread_end(); }
};

}  // namespace pera::obs::profiler
