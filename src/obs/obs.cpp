#include "obs/obs.h"

namespace pera::obs {

namespace {

struct Globals {
  MetricsRegistry metrics;
  TraceSink trace;
};

Globals& globals() {
  static Globals g;
  return g;
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry& metrics() { return globals().metrics; }

TraceSink& trace() { return globals().trace; }

void reset() {
  globals().metrics.reset_values();
  globals().trace.clear();
}

void count(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  globals().metrics.counter(name).add(delta);
}

void gauge_set(std::string_view name, std::int64_t value) {
  if (!enabled()) return;
  globals().metrics.gauge(name).set(value);
}

void observe(std::string_view histogram, std::int64_t value) {
  if (!enabled()) return;
  globals().metrics.histogram(histogram).observe(value);
}

void event(SpanKind kind, std::string_view name, netsim::SimTime duration,
           std::uint64_t value) {
  if (!enabled()) return;
  SpanEvent ev;
  ev.kind = kind;
  ev.name = std::string(name);
  ev.at = sim_now();
  ev.duration = duration;
  ev.value = value;
  globals().trace.record(std::move(ev));
}

std::string dump_json() {
  return "{\"metrics\":" + globals().metrics.to_json() +
         ",\"trace\":" + globals().trace.to_json() + "}";
}

}  // namespace pera::obs
