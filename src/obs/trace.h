// Structured trace sink — typed span events from the PERA pipeline,
// ring-buffered with drop accounting.
//
// Every event carries the simulated-clock timestamp at which it was
// recorded (netsim drives the clock; outside a simulation the clock
// stays where it was last set, typically 0) plus a process-wide
// monotonic sequence number, so traces order deterministically even when
// many events share a sim timestamp.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "netsim/time.h"

namespace pera::obs {

/// The span taxonomy (docs/OBSERVABILITY.md §2). One kind per
/// evidence-pipeline stage of Fig. 3 plus the wire/netsim boundaries.
enum class SpanKind : std::uint8_t {
  kMeasure,          // measurement unit reads one detail level
  kCacheHit,         // evidence cache returned a valid entry
  kCacheMiss,        // lookup missed (includes epoch invalidations)
  kSampleDecision,   // sampler chose attest (value=1) or skip (value=0)
  kEvidenceCreate,   // engine Create (Fig. 3 block E)
  kEvidenceInspect,  // engine Inspect
  kEvidenceCompose,  // engine Compose
  kSign,             // sign unit (Fig. 3 block D)
  kVerify,           // signature verification
  kAppraise,         // appraiser verdict over evidence
  kWireEncode,       // protocol message serialized
  kWireDecode,       // protocol message parsed
  kEpochBump,        // a switch's program/tables epoch advanced (value =
                     // new epoch) — correlate with later appraisal failures
  kTrustTransition,  // ctrl trust state machine moved (value = new state)
};

[[nodiscard]] const char* to_string(SpanKind k);

struct SpanEvent {
  SpanKind kind = SpanKind::kMeasure;
  std::string name;               // site label: place, metric path, msg type
  netsim::SimTime at = 0;         // sim clock when recorded
  netsim::SimTime duration = 0;   // simulated cost attributed to the span
  std::uint64_t value = 0;        // kind-specific payload (bytes, flags...)
  std::uint64_t seq = 0;          // stamped by TraceSink::record
};

/// Fixed-capacity ring. When full, the oldest event is overwritten and
/// counted as dropped — the tail of a long run is always retained.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity);

  /// Resize the ring; clears buffered events and drop accounting.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  void record(SpanEvent ev);

  [[nodiscard]] std::size_t size() const;        // events currently held
  [[nodiscard]] std::uint64_t recorded() const;  // total ever recorded
  [[nodiscard]] std::uint64_t dropped() const;   // overwritten (lost)

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<SpanEvent> snapshot() const;

  void clear();

  /// {"capacity":..,"recorded":..,"dropped":..,"events":[...]}
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pera::obs
