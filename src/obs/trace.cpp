#include "obs/trace.h"

#include <stdexcept>

namespace pera::obs {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kMeasure: return "measure";
    case SpanKind::kCacheHit: return "cache_hit";
    case SpanKind::kCacheMiss: return "cache_miss";
    case SpanKind::kSampleDecision: return "sample_decision";
    case SpanKind::kEvidenceCreate: return "evidence_create";
    case SpanKind::kEvidenceInspect: return "evidence_inspect";
    case SpanKind::kEvidenceCompose: return "evidence_compose";
    case SpanKind::kSign: return "sign";
    case SpanKind::kVerify: return "verify";
    case SpanKind::kAppraise: return "appraise";
    case SpanKind::kWireEncode: return "wire_encode";
    case SpanKind::kWireDecode: return "wire_decode";
    case SpanKind::kEpochBump: return "epoch_bump";
    case SpanKind::kTrustTransition: return "trust_transition";
  }
  return "?";
}

TraceSink::TraceSink(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("TraceSink: capacity must be > 0");
  }
  ring_.resize(capacity_);
}

void TraceSink::set_capacity(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceSink: capacity must be > 0");
  }
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  ring_.assign(capacity_, SpanEvent{});
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  next_seq_ = 0;
}

std::size_t TraceSink::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceSink::record(SpanEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  ev.seq = next_seq_++;
  ++recorded_;
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

std::uint64_t TraceSink::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - size_;
}

std::vector<SpanEvent> TraceSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + capacity_ - size_) % capacity_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  next_seq_ = 0;
}

std::string TraceSink::to_json() const {
  const std::vector<SpanEvent> events = snapshot();
  std::uint64_t rec = 0;
  std::uint64_t drop = 0;
  std::size_t cap = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rec = recorded_;
    drop = recorded_ - size_;
    cap = capacity_;
  }
  std::string out = "{\"capacity\":" + std::to_string(cap) +
                    ",\"recorded\":" + std::to_string(rec) +
                    ",\"dropped\":" + std::to_string(drop) + ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    if (i != 0) out += ',';
    out += "{\"seq\":" + std::to_string(e.seq) + ",\"kind\":\"" +
           to_string(e.kind) + "\",\"name\":\"";
    for (const char c : e.name) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\",\"at\":" + std::to_string(e.at) +
           ",\"duration\":" + std::to_string(e.duration) +
           ",\"value\":" + std::to_string(e.value) + '}';
  }
  out += "]}";
  return out;
}

}  // namespace pera::obs
