#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace pera::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: needs at least one bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must strictly increase");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(std::int64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it == bounds_.end()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
  }
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // Single-writer min/max (the simulation is single-threaded; under
  // concurrency these are last-writer-wins approximations).
  if (n == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  } else {
    if (v < min_.load(std::memory_order_relaxed)) {
      min_.store(v, std::memory_order_relaxed);
    }
    if (v > max_.load(std::memory_order_relaxed)) {
      max_.store(v, std::memory_order_relaxed);
    }
  }
}

std::int64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  overflow_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

const std::vector<std::int64_t>& default_latency_bounds_ns() {
  static const std::vector<std::int64_t> kBounds = {
      100,        250,        500,        1'000,       2'500,
      5'000,      10'000,     25'000,     50'000,      100'000,
      250'000,    500'000,    1'000'000,  2'500'000,   5'000'000,
      10'000'000, 50'000'000, 100'000'000, 1'000'000'000};
  return kBounds;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<std::int64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    out += std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum()) +
           ",\"min\":" + std::to_string(h->min()) +
           ",\"max\":" + std::to_string(h->max()) + ",\"buckets\":[";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      if (i != 0) out += ',';
      out += "{\"le\":" + std::to_string(h->bounds()[i]) +
             ",\"count\":" + std::to_string(h->bucket_count(i)) + '}';
    }
    out += "],\"overflow\":" + std::to_string(h->overflow()) + '}';
  }
  out += "}}";
  return out;
}

}  // namespace pera::obs
