// Batched evidence signing — an optimization of Fig. 3's sign/verify unit.
//
// Per-packet signing dominates RA cost at low-inertia detail levels.
// The batcher amortizes it: N evidence digests become leaves of a Merkle
// tree and one signature covers the root; each item ships with its
// authentication path. Verification needs the root signature once plus a
// log2(N) hash path per item. The bench_ablations binary quantifies the
// trade-off (amortized cost vs per-item latency until the batch fills).
#pragma once

#include <optional>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/signer.h"

namespace pera::pera {

/// What one batched item carries in place of a full signature.
struct BatchedSignature {
  crypto::Digest root{};
  crypto::Signature root_sig;
  crypto::MerkleProof proof;

  [[nodiscard]] std::size_t wire_size() const {
    return 32 + root_sig.wire_size() + proof.serialize().size();
  }
};

class EvidenceBatcher {
 public:
  /// Flush automatically after `batch_size` items (>= 1).
  EvidenceBatcher(crypto::Signer& signer, std::size_t batch_size);

  /// Queue an evidence digest. Returns the receipts for the whole batch
  /// when this item filled it (receipts[i] belongs to the i-th queued
  /// item), nullopt otherwise.
  [[nodiscard]] std::optional<std::vector<BatchedSignature>> add(
      const crypto::Digest& item);

  /// Sign whatever is queued now (end of a measurement interval). Empty
  /// queue yields an empty vector.
  [[nodiscard]] std::vector<BatchedSignature> flush();

  /// Like flush(), but returns crypto::Signatures in the kBatched wrapped
  /// form, directly attachable to evidence nodes and verifiable by any
  /// appraiser through crypto::verify_any().
  [[nodiscard]] std::vector<crypto::Signature> flush_wrapped();

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] std::size_t batches_signed() const { return batches_; }

  /// Verify one item against its batched signature.
  [[nodiscard]] static bool verify(const crypto::Verifier& verifier,
                                   const crypto::Digest& item,
                                   const BatchedSignature& sig);

 private:
  crypto::Signer* signer_;
  std::size_t batch_size_;
  std::vector<crypto::Digest> pending_;
  std::size_t batches_ = 0;
};

}  // namespace pera::pera
