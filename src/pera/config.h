// PERA tuning configuration — the §5.2 "configuration interface that can
// tune the level of detail and frequency of evidence" (Fig. 4's axes).
#pragma once

#include <cstdint>

#include "nac/binder.h"
#include "nac/detail.h"
#include "netsim/time.h"

namespace pera::pera {

/// Latency cost model for the evidence-handling hardware (Fig. 3 D/E).
/// Values are deliberately PISA-plausible defaults; benches sweep them.
struct CostModel {
  netsim::SimTime measure_cost = 200;             // ns per measured level
  netsim::SimTime hash_cost_per_kb = 500;         // ns per KiB hashed
  netsim::SimTime sign_cost_hmac = 2 * netsim::kMicrosecond;
  netsim::SimTime sign_cost_xmss = 50 * netsim::kMicrosecond;
  netsim::SimTime verify_cost = 3 * netsim::kMicrosecond;
  netsim::SimTime compose_cost = 300;             // ns per folded record
  netsim::SimTime cache_lookup_cost = 50;         // ns
};

struct PeraConfig {
  nac::DetailMask default_detail =
      nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram;
  std::uint8_t sampling_log2 = 0;        // attest 1 in 2^k packets
  nac::CompositionMode composition = nac::CompositionMode::kChained;
  bool cache_enabled = true;
  /// Out-of-band evidence signing batch: 1 = sign each item immediately;
  /// N > 1 = defer, Merkle-batch N items under one signature
  /// (kBatched scheme) and emit them together. Amortizes the Fig. 3 D
  /// block at the cost of N-1 packets of evidence latency.
  std::size_t oob_batch_size = 1;
  CostModel costs;
};

}  // namespace pera::pera
