#include "pera/engine.h"

#include "obs/obs.h"

namespace pera::pera {

using copland::Evidence;
using copland::EvidencePtr;

namespace {
constexpr nac::EvidenceDetail kLevels[] = {
    nac::EvidenceDetail::kHardware, nac::EvidenceDetail::kProgram,
    nac::EvidenceDetail::kTables, nac::EvidenceDetail::kProgState,
    nac::EvidenceDetail::kPacket};
}

netsim::SimTime EvidenceEngine::sign_cost() const {
  return signer_->scheme() == crypto::SignatureScheme::kXmss
             ? costs_.sign_cost_xmss
             : costs_.sign_cost_hmac;
}

EngineResult EvidenceEngine::create(const nac::HopInstruction& inst,
                                    const crypto::Nonce& nonce,
                                    const crypto::Bytes* packet_bytes,
                                    const GuardTest* guard) {
  EngineResult res;
  obs::ScopedSpan span(obs::SpanKind::kEvidenceCreate, place_);

  if (!inst.guard.empty()) {
    // "Fail early and avoid the attestation effort" (§5.1).
    const bool pass = guard == nullptr || (*guard)(inst.guard);
    if (!pass) {
      res.evidence = Evidence::empty();
      res.guard_failed = true;
      res.cost = costs_.cache_lookup_cost;  // a test is about as cheap
      PERA_OBS_COUNT("pera.engine.guard_failures");
      span.set_cost(res.cost);
      return res;
    }
  }

  const nac::DetailMask detail =
      inst.detail == 0
          ? nac::mask_of(nac::EvidenceDetail::kProgram)
          : inst.detail;

  // Instruction variant key: same detail with different hash/sign flags or
  // custom targets must not share cache slots.
  crypto::Sha256 variant_h;
  variant_h.update("pera.engine.variant");
  const std::uint8_t fl = static_cast<std::uint8_t>(
      (inst.hash_evidence ? 1 : 0) | (inst.sign_evidence ? 2 : 0));
  variant_h.update(crypto::BytesView{&fl, 1});
  for (const auto& t : inst.custom_targets) variant_h.update(t);
  const crypto::Digest variant = variant_h.finish();

  // Cache covers everything but packet-level freshness.
  res.cost += costs_.cache_lookup_cost;
  if (auto cached = cache_->lookup(detail, nonce, *mu_, variant)) {
    res.evidence = *cached;
    res.from_cache = true;
    span.set_cost(res.cost);
    span.set_value(1);  // served from cache
    return res;
  }

  EvidencePtr acc = Evidence::empty();
  if (!nonce.value.is_zero()) {
    acc = Evidence::extend(acc, Evidence::nonce_ev(nonce));
  }
  for (nac::EvidenceDetail level : kLevels) {
    if (!nac::has_detail(detail, level)) continue;
    const crypto::Digest value = mu_->measure(level, packet_bytes);
    acc = Evidence::extend(
        acc, Evidence::measurement(place_, place_, nac::to_string(level),
                                   value, mu_->claim_text(level)));
    res.cost += costs_.measure_cost;
  }
  for (const std::string& target : inst.custom_targets) {
    // Custom properties are folded in as named measurements of the
    // program configuration.
    const crypto::Digest value =
        mu_->measure(nac::EvidenceDetail::kProgram, nullptr);
    acc = Evidence::extend(
        acc, Evidence::measurement(place_, place_, target, value,
                                   "property " + target));
    res.cost += costs_.measure_cost;
  }

  if (inst.hash_evidence) {
    const std::size_t sz = copland::wire_size(acc);
    acc = Evidence::hashed(place_, copland::digest(acc));
    res.cost += costs_.hash_cost_per_kb *
                static_cast<netsim::SimTime>(sz / 1024 + 1);
    PERA_OBS_COUNT("pera.engine.hashes");
  }
  if (inst.sign_evidence) {
    crypto::Signature sig = signer_->sign(copland::digest(acc));
    acc = Evidence::signature(place_, acc, std::move(sig));
    res.cost += sign_cost();
    PERA_OBS_COUNT("pera.sign.count");
    PERA_OBS_OBSERVE("pera.sign.sim_ns", sign_cost());
    PERA_OBS_EVENT(obs::SpanKind::kSign, place_, sign_cost());
  }

  cache_->store(detail, nonce, acc, *mu_, variant);
  res.evidence = std::move(acc);
  span.set_cost(res.cost);
  return res;
}

EngineResult EvidenceEngine::compose(const EvidencePtr& prior,
                                     const EvidencePtr& fresh,
                                     nac::CompositionMode mode) const {
  EngineResult res;
  res.cost = costs_.compose_cost;
  PERA_OBS_EVENT(obs::SpanKind::kEvidenceCompose, place_, res.cost,
                 mode == nac::CompositionMode::kChained ? 1 : 0);
  if (!prior || prior->kind == copland::EvidenceKind::kEmpty) {
    res.evidence = fresh;
    return res;
  }
  if (mode == nac::CompositionMode::kChained) {
    res.evidence = Evidence::seq(prior, fresh);
  } else {
    res.evidence = Evidence::par(prior, fresh);
  }
  return res;
}

std::pair<std::vector<EvidencePtr>, netsim::SimTime> EvidenceEngine::inspect(
    const nac::EvidenceCarrier& carrier) const {
  std::vector<EvidencePtr> out;
  netsim::SimTime cost = 0;
  out.reserve(carrier.records.size());
  for (const auto& rec : carrier.records) {
    out.push_back(copland::decode(
        crypto::BytesView{rec.evidence.data(), rec.evidence.size()}));
    cost += costs_.compose_cost;
  }
  PERA_OBS_EVENT(obs::SpanKind::kEvidenceInspect, place_, cost,
                 carrier.records.size());
  return {std::move(out), cost};
}

}  // namespace pera::pera
