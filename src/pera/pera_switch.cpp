#include "pera/pera_switch.h"

#include "obs/obs.h"

namespace pera::pera {

using copland::Evidence;
using copland::EvidencePtr;

namespace {

/// Attribute encoded-evidence bytes to each inertia level present in the
/// instruction's detail mask (docs/OBSERVABILITY.md: pera.wire.bytes.*).
void count_wire_bytes_per_level(nac::DetailMask detail, std::size_t bytes) {
  constexpr nac::EvidenceDetail kLevels[] = {
      nac::EvidenceDetail::kHardware, nac::EvidenceDetail::kProgram,
      nac::EvidenceDetail::kTables, nac::EvidenceDetail::kProgState,
      nac::EvidenceDetail::kPacket};
  for (const nac::EvidenceDetail level : kLevels) {
    if (nac::has_detail(detail, level)) {
      obs::count("pera.wire.bytes." + nac::to_string(level), bytes);
    }
  }
}

}  // namespace

PeraSwitch::PeraSwitch(std::string name,
                       std::shared_ptr<dataplane::DataplaneProgram> program,
                       crypto::Signer& signer, PeraConfig config,
                       HardwareIdentity hw)
    : name_(std::move(name)),
      switch_(std::move(program)),
      config_(config),
      mu_([&] {
        if (hw.serial.empty()) hw.serial = name_;
        return MeasurementUnit(hw, switch_);
      }()),
      cache_(config.cache_enabled),
      engine_(name_, signer, mu_, cache_, config.costs) {
  if (config_.oob_batch_size > 1) {
    batcher_.emplace(signer, config_.oob_batch_size);
  }
}

void PeraSwitch::load_program(
    std::shared_ptr<dataplane::DataplaneProgram> program) {
  switch_.load_program(std::move(program));
  mu_.on_program_loaded();
  // The control plane correlates this event with the appraisal failure
  // that follows when the new program's digest is not the golden one.
  PERA_OBS_COUNT("pera.epoch.program");
  PERA_OBS_EVENT(obs::SpanKind::kEpochBump, name_, 0,
                 mu_.epoch(nac::EvidenceDetail::kProgram));
}

void PeraSwitch::update_table(const std::string& table,
                              dataplane::TableEntry entry) {
  dataplane::Table* t = switch_.program().table(table);
  if (t == nullptr) {
    throw std::invalid_argument("update_table: no table '" + table + "' in " +
                                switch_.program().name());
  }
  t->add_entry(std::move(entry));
  mu_.on_tables_updated();
  PERA_OBS_COUNT("pera.epoch.tables");
  PERA_OBS_EVENT(obs::SpanKind::kEpochBump, name_, 0,
                 mu_.epoch(nac::EvidenceDetail::kTables));
}

void PeraSwitch::set_guard(const std::string& name, PacketGuard guard) {
  guards_[name] = std::move(guard);
}

bool PeraSwitch::sampler_fires(const crypto::Digest& flow_key,
                               std::uint8_t sampling_log2) {
  const std::uint64_t count = flow_counters_[flow_key]++;
  if (sampling_log2 == 0) return true;
  const std::uint64_t period = std::uint64_t{1} << sampling_log2;
  return count % period == 0;
}

PeraResult PeraSwitch::process(const dataplane::RawPacket& in,
                               const nac::PolicyHeader* header,
                               nac::EvidenceCarrier* carrier) {
  PeraResult result;

  // (A) parse + (B/C) the ordinary pipeline.
  dataplane::ParsedPacket pkt;
  try {
    pkt = switch_.parse(in);
  } catch (const std::exception&) {
    return result;  // parse error counted by the dataplane
  }
  switch_.run_pipeline(pkt);

  if (header != nullptr) {
    const auto instructions = header->instructions_for(name_);
    if (!instructions.empty() &&
        sampler_fires(header->nonce.value, header->sampling_log2)) {
      PERA_OBS_COUNT("pera.sampler.attest");
      PERA_OBS_EVENT(obs::SpanKind::kSampleDecision, name_, 0, 1);
      for (const nac::HopInstruction* inst : instructions) {
        // Guard tests see the parsed packet.
        const GuardTest guard = [this, &pkt](const std::string& test) {
          const auto it = guards_.find(test);
          return it == guards_.end() ? true : it->second(pkt);
        };
        const bool goes_out_of_band = inst->out_of_band || !header->in_band();
        const bool batch_this = goes_out_of_band && batcher_.has_value() &&
                                inst->sign_evidence;

        // Deferred signing: create the evidence unsigned; the batcher
        // signs one Merkle root per config_.oob_batch_size items.
        nac::HopInstruction effective = *inst;
        if (batch_this) effective.sign_evidence = false;

        const crypto::Bytes pkt_bytes = in.data;
        EngineResult ev =
            engine_.create(effective, header->nonce, &pkt_bytes, &guard);
        result.ra_latency += ev.cost;
        if (ev.guard_failed) {
          ++stats_.guard_failures;
          PERA_OBS_COUNT("pera.guard.failures");
          continue;
        }
        ++stats_.attestations;
        result.attested = true;

        const std::string collector = header->appraiser.empty()
                                          ? std::string{"Appraiser"}
                                          : header->appraiser;
        if (batch_this) {
          pending_oob_.push_back(
              PendingOob{collector, ev.evidence, header->nonce});
          const auto receipts = batcher_->add(copland::digest(ev.evidence));
          if (receipts) {
            // One signing operation amortized over the whole batch.
            result.ra_latency += config_.costs.sign_cost_hmac;
            PERA_OBS_COUNT("pera.batch.flushes");
            PERA_OBS_COUNT("pera.batch.items", receipts->size());
            PERA_OBS_COUNT("pera.sign.count");
            PERA_OBS_OBSERVE("pera.sign.sim_ns", config_.costs.sign_cost_hmac);
            PERA_OBS_EVENT(obs::SpanKind::kSign, name_,
                           config_.costs.sign_cost_hmac, receipts->size());
            for (std::size_t i = 0; i < pending_oob_.size(); ++i) {
              const auto& p = pending_oob_[i];
              const copland::EvidencePtr signed_ev =
                  copland::Evidence::signature(
                      name_, p.evidence,
                      crypto::wrap_batched((*receipts)[i].root,
                                           (*receipts)[i].proof,
                                           (*receipts)[i].root_sig));
              result.out_of_band.push_back(OutOfBandEvidence{
                  p.to, copland::encode(signed_ev), p.nonce});
              ++stats_.out_of_band_messages;
              PERA_OBS_COUNT("pera.oob.messages");
              PERA_OBS_COUNT("pera.oob.bytes",
                             result.out_of_band.back().evidence.size());
            }
            pending_oob_.clear();
          }
          continue;
        }

        const crypto::Bytes encoded = copland::encode(ev.evidence);
        if (obs::enabled()) {
          count_wire_bytes_per_level(effective.detail == 0
                                         ? nac::mask_of(
                                               nac::EvidenceDetail::kProgram)
                                         : effective.detail,
                                     encoded.size());
        }
        PERA_OBS_EVENT(obs::SpanKind::kWireEncode, name_, 0, encoded.size());
        if (goes_out_of_band) {
          result.out_of_band.push_back(
              OutOfBandEvidence{collector, encoded, header->nonce});
          ++stats_.out_of_band_messages;
          PERA_OBS_COUNT("pera.oob.messages");
          PERA_OBS_COUNT("pera.oob.bytes", encoded.size());
        } else if (carrier != nullptr) {
          // In-band: compose with what earlier hops appended.
          carrier->add(name_, encoded);
          result.inband_bytes_added += encoded.size() + name_.size() + 8;
          stats_.inband_bytes_added += encoded.size();
          PERA_OBS_COUNT("pera.inband.bytes", encoded.size());
        }
      }
    } else if (!instructions.empty()) {
      ++stats_.skipped_by_sampling;
      PERA_OBS_COUNT("pera.sampler.skip");
      PERA_OBS_EVENT(obs::SpanKind::kSampleDecision, name_, 0, 0);
    }
  }
  PERA_OBS_OBSERVE("pera.process.sim_ns", result.ra_latency);
  stats_.ra_time_total += result.ra_latency;

  result.forwarded = switch_.deparse(pkt);
  return result;
}

std::vector<OutOfBandEvidence> PeraSwitch::flush_pending() {
  std::vector<OutOfBandEvidence> out;
  if (!batcher_.has_value() || pending_oob_.empty()) return out;
  const std::vector<BatchedSignature> receipts = batcher_->flush();
  stats_.ra_time_total += config_.costs.sign_cost_hmac;
  PERA_OBS_COUNT("pera.batch.flushes");
  PERA_OBS_COUNT("pera.batch.items", receipts.size());
  PERA_OBS_COUNT("pera.sign.count");
  out.reserve(pending_oob_.size());
  for (std::size_t i = 0; i < pending_oob_.size(); ++i) {
    const auto& p = pending_oob_[i];
    const copland::EvidencePtr signed_ev = copland::Evidence::signature(
        name_, p.evidence,
        crypto::wrap_batched(receipts[i].root, receipts[i].proof,
                             receipts[i].root_sig));
    out.push_back(OutOfBandEvidence{p.to, copland::encode(signed_ev),
                                    p.nonce});
    ++stats_.out_of_band_messages;
    PERA_OBS_COUNT("pera.oob.messages");
    PERA_OBS_COUNT("pera.oob.bytes", out.back().evidence.size());
  }
  pending_oob_.clear();
  return out;
}

EvidencePtr PeraSwitch::attest_challenge(nac::DetailMask detail,
                                         const crypto::Nonce& nonce,
                                         bool hash_before_sign) {
  nac::HopInstruction inst;
  inst.place = name_;
  inst.detail = detail;
  inst.hash_evidence = hash_before_sign;
  inst.sign_evidence = true;
  EngineResult res = engine_.create(inst, nonce, nullptr, nullptr);
  ++stats_.attestations;
  stats_.ra_time_total += res.cost;
  return res.evidence;
}

}  // namespace pera::pera
