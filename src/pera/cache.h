// Inertia-aware evidence cache (§5.2: "High-inertia attestations are more
// easily cached since they take longer to expire").
//
// A cached entry records the epoch of every detail level it covers; it is
// valid while all those epochs are unchanged. Nonce-bound evidence keys on
// the nonce too — fresh challenges intentionally defeat caching, which is
// exactly the freshness/overhead trade-off Fig. 4 describes.
#pragma once

#include <map>
#include <optional>

#include "copland/evidence.h"
#include "crypto/nonce.h"
#include "nac/detail.h"
#include "pera/measurement.h"

namespace pera::pera {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  // misses caused by epoch change

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class EvidenceCache {
 public:
  explicit EvidenceCache(bool enabled = true) : enabled_(enabled) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Look up cached evidence for (detail mask, nonce, instruction
  /// variant). Returns the cached evidence when present and every covered
  /// level's epoch still matches. `variant` disambiguates instructions
  /// with equal detail but different hash/sign flags or custom targets.
  [[nodiscard]] std::optional<copland::EvidencePtr> lookup(
      nac::DetailMask detail, const crypto::Nonce& nonce,
      const MeasurementUnit& mu, const crypto::Digest& variant = {});

  /// Store evidence with the current epochs of its covered levels.
  void store(nac::DetailMask detail, const crypto::Nonce& nonce,
             copland::EvidencePtr evidence, const MeasurementUnit& mu,
             const crypto::Digest& variant = {});

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  struct Key {
    nac::DetailMask detail;
    crypto::Digest nonce;
    crypto::Digest variant;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    copland::EvidencePtr evidence;
    std::map<nac::EvidenceDetail, std::uint64_t> epochs;
  };

  bool enabled_;
  std::map<Key, Entry> entries_;
  CacheStats stats_;
};

}  // namespace pera::pera
