// PERA — "PISA Extended with RA" (Fig. 2, §5).
//
// A PeraSwitch wraps a dataplane::PisaSwitch with the evidence-handling
// blocks of Fig. 3: it parses the RA options header riding on flow
// traffic (A), runs the ordinary match+action pipeline (B/C), and when the
// policy and sampler say so, creates/composes evidence (E) and signs it
// (D), either appending it in-band to the packet's carrier or emitting it
// out-of-band toward the appraiser.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataplane/builder.h"
#include "dataplane/program.h"
#include "pera/batcher.h"
#include "pera/engine.h"

namespace pera::pera {

/// Per-switch RA statistics (on top of dataplane::SwitchStats).
struct PeraStats {
  std::uint64_t attestations = 0;
  std::uint64_t skipped_by_sampling = 0;
  std::uint64_t guard_failures = 0;
  std::uint64_t out_of_band_messages = 0;
  std::uint64_t inband_bytes_added = 0;
  netsim::SimTime ra_time_total = 0;
};

/// Evidence leaving the packet path (Fig. 2 ➁ out-of-band).
struct OutOfBandEvidence {
  std::string to;  // appraiser place name
  crypto::Bytes evidence;
  crypto::Nonce nonce{};
};

/// Result of processing one packet.
struct PeraResult {
  std::optional<dataplane::RawPacket> forwarded;
  std::vector<OutOfBandEvidence> out_of_band;
  netsim::SimTime ra_latency = 0;
  std::size_t inband_bytes_added = 0;
  bool attested = false;
};

class PeraSwitch {
 public:
  PeraSwitch(std::string name,
             std::shared_ptr<dataplane::DataplaneProgram> program,
             crypto::Signer& signer, PeraConfig config = {},
             HardwareIdentity hw = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] dataplane::PisaSwitch& dataplane() { return switch_; }
  [[nodiscard]] const dataplane::PisaSwitch& dataplane() const {
    return switch_;
  }
  [[nodiscard]] MeasurementUnit& measurement() { return mu_; }
  [[nodiscard]] const MeasurementUnit& measurement() const { return mu_; }
  [[nodiscard]] EvidenceCache& cache() { return cache_; }
  [[nodiscard]] const EvidenceCache& cache() const { return cache_; }
  [[nodiscard]] EvidenceEngine& engine() { return engine_; }
  [[nodiscard]] const PeraStats& ra_stats() const { return stats_; }
  [[nodiscard]] const PeraConfig& config() const { return config_; }
  [[nodiscard]] PeraConfig& config() { return config_; }

  // --- control plane ------------------------------------------------------
  /// Swap the dataplane program (bumps the program epoch — cached program
  /// evidence immediately expires; this is how RA catches the swap).
  void load_program(std::shared_ptr<dataplane::DataplaneProgram> program);

  /// Add a table entry at runtime (bumps the tables epoch).
  void update_table(const std::string& table, dataplane::TableEntry entry);

  /// Register a named guard test evaluated against the current packet
  /// (the Khop / P predicates of Table 1).
  using PacketGuard = std::function<bool(const dataplane::ParsedPacket&)>;
  void set_guard(const std::string& name, PacketGuard guard);

  // --- data path -----------------------------------------------------------
  /// Process a packet carrying an optional RA header/carrier.
  /// `header`/`carrier` are updated in place when evidence rides in-band.
  [[nodiscard]] PeraResult process(const dataplane::RawPacket& in,
                                   const nac::PolicyHeader* header,
                                   nac::EvidenceCarrier* carrier);

  /// Force-flush evidence deferred by the out-of-band batcher (end of a
  /// measurement interval, pipeline drain). Returns the signed records;
  /// empty when nothing is pending or batching is off.
  [[nodiscard]] std::vector<OutOfBandEvidence> flush_pending();

  /// Items currently queued in the out-of-band batcher.
  [[nodiscard]] std::size_t pending_oob() const { return pending_oob_.size(); }

  // --- direct attestation (Fig. 2, out-of-band challenge) ------------------
  /// Respond to an RP's challenge: attest `detail` levels bound to
  /// `nonce`, hash-then-sign (expression (3)'s  attest -> # -> !).
  [[nodiscard]] copland::EvidencePtr attest_challenge(
      nac::DetailMask detail, const crypto::Nonce& nonce,
      bool hash_before_sign = true);

 private:
  [[nodiscard]] bool sampler_fires(const crypto::Digest& flow_key,
                                   std::uint8_t sampling_log2);

  std::string name_;
  dataplane::PisaSwitch switch_;
  PeraConfig config_;
  MeasurementUnit mu_;
  EvidenceCache cache_;
  EvidenceEngine engine_;
  PeraStats stats_;
  std::map<std::string, PacketGuard> guards_;
  std::map<crypto::Digest, std::uint64_t> flow_counters_;

  // Deferred out-of-band signing (config_.oob_batch_size > 1).
  std::optional<EvidenceBatcher> batcher_;
  struct PendingOob {
    std::string to;
    copland::EvidencePtr evidence;  // unsigned; wrapped at flush
    crypto::Nonce nonce;
  };
  std::vector<PendingOob> pending_oob_;
};

}  // namespace pera::pera
