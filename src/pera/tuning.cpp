#include "pera/tuning.h"

#include <algorithm>
#include <cmath>

namespace pera::pera {

namespace {

constexpr nac::EvidenceDetail kLevels[] = {
    nac::EvidenceDetail::kHardware, nac::EvidenceDetail::kProgram,
    nac::EvidenceDetail::kTables, nac::EvidenceDetail::kProgState,
    nac::EvidenceDetail::kPacket};

// Epoch-change rate (per second) of a detail level under the workload —
// the quantitative reading of Fig. 4's inertia axis.
double churn_rate(nac::EvidenceDetail level, const WorkloadProfile& w) {
  switch (level) {
    case nac::EvidenceDetail::kHardware:
      return 0.0;  // never changes
    case nac::EvidenceDetail::kProgram:
      return 1.0 / (30 * 24 * 3600.0);  // reprogrammed ~monthly
    case nac::EvidenceDetail::kTables:
      return w.table_updates_per_second;
    case nac::EvidenceDetail::kProgState:
      return w.register_writes_per_packet * w.packets_per_second;
    case nac::EvidenceDetail::kPacket:
      return w.packets_per_second;  // every packet differs
  }
  return 0.0;
}

// Probability that a cached entry covering `detail` is still valid for the
// next packet: every covered level must not have churned in between.
double cache_hit_rate(nac::DetailMask detail, const WorkloadProfile& w) {
  if (nac::has_detail(detail, nac::EvidenceDetail::kPacket)) return 0.0;
  double hit = 1.0;
  const double per_packet_interval = 1.0 / std::max(w.packets_per_second, 1.0);
  for (nac::EvidenceDetail level : kLevels) {
    if (!nac::has_detail(detail, level)) continue;
    const double rate = churn_rate(level, w);
    // P(no change during one inter-packet gap), Poisson arrivals.
    hit *= std::exp(-rate * per_packet_interval);
  }
  return hit;
}

// Cost of creating evidence from scratch (miss path).
double miss_cost_ns(const PeraConfig& config, nac::DetailMask detail) {
  double cost = static_cast<double>(config.costs.cache_lookup_cost);
  for (nac::EvidenceDetail level : kLevels) {
    if (nac::has_detail(detail, level)) {
      cost += static_cast<double>(config.costs.measure_cost);
    }
  }
  cost += static_cast<double>(config.costs.sign_cost_hmac);
  cost += static_cast<double>(config.costs.hash_cost_per_kb);  // <=1 KiB
  return cost;
}

}  // namespace

double predict_overhead_ns(const PeraConfig& config,
                           const WorkloadProfile& workload,
                           nac::DetailMask detail) {
  const double sample_fraction =
      1.0 / static_cast<double>(std::uint64_t{1} << config.sampling_log2);
  const double hit =
      config.cache_enabled ? cache_hit_rate(detail, workload) : 0.0;
  const double hit_cost = static_cast<double>(config.costs.cache_lookup_cost);
  const double miss_cost = miss_cost_ns(config, detail);
  const double per_attested_packet = hit * hit_cost + (1.0 - hit) * miss_cost;
  return sample_fraction * per_attested_packet;
}

netsim::SimTime ReattestCadence::interval_for(nac::EvidenceDetail level) const {
  switch (level) {
    case nac::EvidenceDetail::kHardware: return hardware;
    case nac::EvidenceDetail::kProgram: return program;
    case nac::EvidenceDetail::kTables: return tables;
    case nac::EvidenceDetail::kProgState: return prog_state;
    case nac::EvidenceDetail::kPacket: return packet;
  }
  return program;
}

ReattestCadence ReattestCadence::scaled(double factor) const {
  const auto scale = [factor](netsim::SimTime t) {
    const double s = static_cast<double>(t) * factor;
    return s < 1.0 ? netsim::SimTime{1} : static_cast<netsim::SimTime>(s);
  };
  ReattestCadence out;
  out.hardware = scale(hardware);
  out.program = scale(program);
  out.tables = scale(tables);
  out.prog_state = scale(prog_state);
  out.packet = scale(packet);
  return out;
}

ReattestCadence recommend_cadence(const WorkloadProfile& workload,
                                  netsim::SimTime min_interval,
                                  netsim::SimTime max_interval) {
  const auto interval = [&](nac::EvidenceDetail level) {
    const double rate = churn_rate(level, workload);  // epoch changes / s
    if (rate <= 0.0) return max_interval;
    const double ns = 1e9 / rate;  // one expected change, in sim ns
    if (ns >= static_cast<double>(max_interval)) return max_interval;
    if (ns <= static_cast<double>(min_interval)) return min_interval;
    return static_cast<netsim::SimTime>(ns);
  };
  ReattestCadence c;
  c.hardware = interval(nac::EvidenceDetail::kHardware);
  c.program = interval(nac::EvidenceDetail::kProgram);
  c.tables = interval(nac::EvidenceDetail::kTables);
  c.prog_state = interval(nac::EvidenceDetail::kProgState);
  c.packet = interval(nac::EvidenceDetail::kPacket);
  return c;
}

TuningRecommendation recommend_config(const WorkloadProfile& workload,
                                      const AssuranceRequirements& req,
                                      const CostModel& costs) {
  TuningRecommendation rec;
  rec.config.costs = costs;
  rec.config.default_detail = req.detail;
  rec.config.cache_enabled = true;
  rec.config.composition = req.require_path_order
                               ? nac::CompositionMode::kChained
                               : nac::CompositionMode::kPointwise;

  rec.predicted_cache_hit_rate = cache_hit_rate(req.detail, workload);

  // Raise sampling (halving attested packets each step) until the
  // predicted overhead fits, unless per-packet evidence is demanded.
  const std::uint8_t max_log2 = req.every_packet ? 0 : 12;
  std::uint8_t chosen = 0;
  double overhead = predict_overhead_ns(rec.config, workload, req.detail);
  while (overhead > static_cast<double>(req.max_overhead_ns) &&
         chosen < max_log2) {
    ++chosen;
    rec.config.sampling_log2 = chosen;
    overhead = predict_overhead_ns(rec.config, workload, req.detail);
  }
  rec.config.sampling_log2 = chosen;
  rec.predicted_overhead_ns = overhead;
  rec.satisfiable = overhead <= static_cast<double>(req.max_overhead_ns);

  rec.rationale =
      "detail=" + nac::describe_mask(req.detail) +
      ", cache hit rate ~" +
      std::to_string(static_cast<int>(rec.predicted_cache_hit_rate * 100)) +
      "%, sampling 1/" +
      std::to_string(std::uint64_t{1} << chosen) + ", " +
      (rec.config.composition == nac::CompositionMode::kChained
           ? "chained"
           : "pointwise") +
      " composition; predicted " +
      std::to_string(static_cast<long long>(rec.predicted_overhead_ns)) +
      " ns/pkt vs budget " + std::to_string(req.max_overhead_ns) + " ns";
  if (!rec.satisfiable) {
    rec.rationale +=
        " — UNSATISFIABLE: lower the detail level or raise the budget";
  }
  return rec;
}

}  // namespace pera::pera
