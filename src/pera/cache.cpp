#include "pera/cache.h"

#include "obs/obs.h"

namespace pera::pera {

namespace {
constexpr nac::EvidenceDetail kLevels[] = {
    nac::EvidenceDetail::kHardware, nac::EvidenceDetail::kProgram,
    nac::EvidenceDetail::kTables, nac::EvidenceDetail::kProgState,
    nac::EvidenceDetail::kPacket};
}

std::optional<copland::EvidencePtr> EvidenceCache::lookup(
    nac::DetailMask detail, const crypto::Nonce& nonce,
    const MeasurementUnit& mu, const crypto::Digest& variant) {
  if (!enabled_) {
    ++stats_.misses;
    PERA_OBS_COUNT("pera.cache.miss");
    return std::nullopt;
  }
  // Packet-level evidence is never cacheable by construction.
  if (nac::has_detail(detail, nac::EvidenceDetail::kPacket)) {
    ++stats_.misses;
    PERA_OBS_COUNT("pera.cache.miss");
    PERA_OBS_EVENT(obs::SpanKind::kCacheMiss, "pera.cache.uncacheable", 0,
                   detail);
    return std::nullopt;
  }
  const auto it = entries_.find(Key{detail, nonce.value, variant});
  if (it == entries_.end()) {
    ++stats_.misses;
    PERA_OBS_COUNT("pera.cache.miss");
    PERA_OBS_EVENT(obs::SpanKind::kCacheMiss, "pera.cache.cold", 0, detail);
    return std::nullopt;
  }
  for (const auto& [level, epoch] : it->second.epochs) {
    if (mu.epoch(level) != epoch) {
      ++stats_.misses;
      ++stats_.invalidations;
      entries_.erase(it);
      PERA_OBS_COUNT("pera.cache.miss");
      PERA_OBS_COUNT("pera.cache.invalidation");
      PERA_OBS_EVENT(obs::SpanKind::kCacheMiss, "pera.cache.invalidated", 0,
                     detail);
      return std::nullopt;
    }
  }
  ++stats_.hits;
  PERA_OBS_COUNT("pera.cache.hit");
  PERA_OBS_EVENT(obs::SpanKind::kCacheHit, "pera.cache", 0, detail);
  return it->second.evidence;
}

void EvidenceCache::store(nac::DetailMask detail, const crypto::Nonce& nonce,
                          copland::EvidencePtr evidence,
                          const MeasurementUnit& mu,
                          const crypto::Digest& variant) {
  if (!enabled_) return;
  if (nac::has_detail(detail, nac::EvidenceDetail::kPacket)) return;
  Entry entry;
  entry.evidence = std::move(evidence);
  for (nac::EvidenceDetail level : kLevels) {
    if (nac::has_detail(detail, level)) {
      entry.epochs[level] = mu.epoch(level);
    }
  }
  entries_[Key{detail, nonce.value, variant}] = std::move(entry);
  PERA_OBS_GAUGE("pera.cache.entries",
                 static_cast<std::int64_t>(entries_.size()));
}

}  // namespace pera::pera
