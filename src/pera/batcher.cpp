#include "pera/batcher.h"

#include <stdexcept>

#include "obs/obs.h"

namespace pera::pera {

EvidenceBatcher::EvidenceBatcher(crypto::Signer& signer,
                                 std::size_t batch_size)
    : signer_(&signer), batch_size_(batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("EvidenceBatcher: batch_size must be >= 1");
  }
  // Every batch flush runs Merkle + WOTS on the hash engine; record which
  // backend this process resolved so throughput numbers are attributable.
  crypto::engine::publish_metrics();
}

std::optional<std::vector<BatchedSignature>> EvidenceBatcher::add(
    const crypto::Digest& item) {
  pending_.push_back(item);
  if (pending_.size() < batch_size_) return std::nullopt;
  return flush();
}

std::vector<BatchedSignature> EvidenceBatcher::flush() {
  if (pending_.empty()) return {};
  const crypto::MerkleTree tree(pending_);
  const crypto::Signature root_sig = signer_->sign(tree.root());
  std::vector<BatchedSignature> receipts;
  receipts.reserve(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    receipts.push_back(BatchedSignature{tree.root(), root_sig, tree.prove(i)});
  }
  pending_.clear();
  ++batches_;
  PERA_OBS_COUNT("pera.batcher.batches");
  PERA_OBS_COUNT("pera.batcher.items", receipts.size());
  PERA_OBS_EVENT(obs::SpanKind::kSign, "pera.batcher", 0, receipts.size());
  return receipts;
}

std::vector<crypto::Signature> EvidenceBatcher::flush_wrapped() {
  const std::vector<BatchedSignature> receipts = flush();
  std::vector<crypto::Signature> out;
  out.reserve(receipts.size());
  for (const auto& r : receipts) {
    out.push_back(crypto::wrap_batched(r.root, r.proof, r.root_sig));
  }
  return out;
}

bool EvidenceBatcher::verify(const crypto::Verifier& verifier,
                             const crypto::Digest& item,
                             const BatchedSignature& sig) {
  if (!crypto::MerkleTree::verify(sig.root, item, sig.proof)) return false;
  return verifier.verify(sig.root, sig.root_sig);
}

}  // namespace pera::pera
