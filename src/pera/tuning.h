// The §5.2 configuration interface: "we envisage a configuration
// interface that can tune the level of detail and frequency of evidence".
//
// Given a workload description (packet rate, control-plane churn, path
// length) and the relying party's requirements (freshness, what must be
// attested), recommend_config() walks Fig. 4's axes — detail, sampling,
// composition, caching — using the engine's cost model and returns both a
// PeraConfig and the predicted per-packet overhead, so operators can see
// the trade-off before deploying.
#pragma once

#include <string>

#include "pera/config.h"

namespace pera::pera {

/// What the operator knows about the workload.
struct WorkloadProfile {
  double packets_per_second = 1e6;
  double table_updates_per_second = 1.0;   // control-plane churn
  double register_writes_per_packet = 0.0; // stateful program activity
  std::size_t path_hops = 4;
};

/// What the relying party needs.
struct AssuranceRequirements {
  nac::DetailMask detail = nac::EvidenceDetail::kHardware |
                           nac::EvidenceDetail::kProgram;
  /// Maximum tolerable per-packet RA latency (simulated ns). The advisor
  /// raises the sampling rate until predicted overhead fits.
  netsim::SimTime max_overhead_ns = 1000;
  /// Require per-packet evidence (disables sampling relief).
  bool every_packet = false;
  /// Evidence must be ordered along the path (forces chained composition).
  bool require_path_order = true;
};

struct TuningRecommendation {
  PeraConfig config;
  double predicted_overhead_ns = 0.0;  // amortized per packet per hop
  double predicted_cache_hit_rate = 0.0;
  bool satisfiable = true;             // overhead target reachable?
  std::string rationale;               // human-readable explanation
};

/// Predict the amortized per-packet evidence-creation cost for a config
/// and workload (cache hit rate is derived from churn vs packet rate).
[[nodiscard]] double predict_overhead_ns(const PeraConfig& config,
                                         const WorkloadProfile& workload,
                                         nac::DetailMask detail);

/// Recommend a PeraConfig for the workload and requirements.
[[nodiscard]] TuningRecommendation recommend_config(
    const WorkloadProfile& workload, const AssuranceRequirements& req,
    const CostModel& costs = {});

}  // namespace pera::pera
