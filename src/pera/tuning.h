// The §5.2 configuration interface: "we envisage a configuration
// interface that can tune the level of detail and frequency of evidence".
//
// Given a workload description (packet rate, control-plane churn, path
// length) and the relying party's requirements (freshness, what must be
// attested), recommend_config() walks Fig. 4's axes — detail, sampling,
// composition, caching — using the engine's cost model and returns both a
// PeraConfig and the predicted per-packet overhead, so operators can see
// the trade-off before deploying.
#pragma once

#include <string>

#include "pera/config.h"

namespace pera::pera {

/// What the operator knows about the workload.
struct WorkloadProfile {
  double packets_per_second = 1e6;
  double table_updates_per_second = 1.0;   // control-plane churn
  double register_writes_per_packet = 0.0; // stateful program activity
  std::size_t path_hops = 4;
};

/// What the relying party needs.
struct AssuranceRequirements {
  nac::DetailMask detail = nac::EvidenceDetail::kHardware |
                           nac::EvidenceDetail::kProgram;
  /// Maximum tolerable per-packet RA latency (simulated ns). The advisor
  /// raises the sampling rate until predicted overhead fits.
  netsim::SimTime max_overhead_ns = 1000;
  /// Require per-packet evidence (disables sampling relief).
  bool every_packet = false;
  /// Evidence must be ordered along the path (forces chained composition).
  bool require_path_order = true;
};

struct TuningRecommendation {
  PeraConfig config;
  double predicted_overhead_ns = 0.0;  // amortized per packet per hop
  double predicted_cache_hit_rate = 0.0;
  bool satisfiable = true;             // overhead target reachable?
  std::string rationale;               // human-readable explanation
};

/// Predict the amortized per-packet evidence-creation cost for a config
/// and workload (cache hit rate is derived from churn vs packet rate).
[[nodiscard]] double predict_overhead_ns(const PeraConfig& config,
                                         const WorkloadProfile& workload,
                                         nac::DetailMask detail);

/// Recommend a PeraConfig for the workload and requirements.
[[nodiscard]] TuningRecommendation recommend_config(
    const WorkloadProfile& workload, const AssuranceRequirements& req,
    const CostModel& costs = {});

/// Re-attestation cadence per inertia level — the temporal reading of
/// Fig. 4's inertia axis for a *continuous* control plane (src/ctrl):
/// each level is re-attested roughly once per expected epoch change, so
/// hardware identity gets a slow heartbeat while tables under churn are
/// checked near the floor.
struct ReattestCadence {
  netsim::SimTime hardware = 60 * netsim::kSecond;
  netsim::SimTime program = 60 * netsim::kSecond;
  netsim::SimTime tables = netsim::kSecond;
  netsim::SimTime prog_state = 100 * netsim::kMillisecond;
  netsim::SimTime packet = 100 * netsim::kMillisecond;

  [[nodiscard]] netsim::SimTime interval_for(nac::EvidenceDetail level) const;

  /// Uniformly scale every interval (e.g. speed a simulation up).
  [[nodiscard]] ReattestCadence scaled(double factor) const;
};

/// Derive a cadence from the workload's churn rates: interval ~= one
/// expected epoch change, clamped to [min_interval, max_interval]. Levels
/// that never churn (hardware) sit at the ceiling — a liveness heartbeat —
/// and per-packet levels at the floor (they are sampled in-band anyway).
[[nodiscard]] ReattestCadence recommend_cadence(
    const WorkloadProfile& workload,
    netsim::SimTime min_interval = 100 * netsim::kMillisecond,
    netsim::SimTime max_interval = 60 * netsim::kSecond);

}  // namespace pera::pera
