// The measurement unit of a PERA element: turns Fig. 4's inertia levels
// into live digests of the attached switch. This models the "trustworthy
// evidence-producing hardware component" of the §3 threat model — it reads
// the true state of the switch, even if the dataplane program is rogue.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "dataplane/program.h"
#include "nac/detail.h"

namespace pera::pera {

/// Immutable hardware identity (model + serial), the highest-inertia level.
struct HardwareIdentity {
  std::string model = "PERA-1000";
  std::string serial;

  [[nodiscard]] crypto::Digest digest() const {
    crypto::Sha256 h;
    h.update("pera.hardware.v1");
    h.update(model);
    h.update(serial);
    return h.finish();
  }
};

class MeasurementUnit {
 public:
  MeasurementUnit(HardwareIdentity hw, const dataplane::PisaSwitch& sw)
      : hw_(std::move(hw)), switch_(&sw) {}

  /// Measure one detail level. kPacket requires `packet_bytes`.
  [[nodiscard]] crypto::Digest measure(
      nac::EvidenceDetail level,
      const crypto::Bytes* packet_bytes = nullptr) const;

  /// Human-readable claim text for a level.
  [[nodiscard]] std::string claim_text(nac::EvidenceDetail level) const;

  /// Epoch of a level: a counter that advances whenever the measured value
  /// can have changed. Hardware never advances; program advances on
  /// program swaps; tables/state epochs derive from live switch state —
  /// table content revisions and the register-file revision — so *any*
  /// mutation path (control-plane updates, direct table edits, register
  /// writes, re-declarations) invalidates caches, while no-op writes and
  /// hit-counter bumps do not. The program epoch is mixed into the
  /// mutable-state epochs' high bits because a program swap resets the
  /// live revision counters.
  [[nodiscard]] std::uint64_t epoch(nac::EvidenceDetail level) const;

  /// Record a program swap (bumps the program epoch).
  void on_program_loaded() { ++program_epoch_; }
  /// Record a control-plane table update (bumps the tables epoch).
  void on_tables_updated() { ++tables_epoch_; }

  [[nodiscard]] const HardwareIdentity& hardware() const { return hw_; }

 private:
  HardwareIdentity hw_;
  const dataplane::PisaSwitch* switch_;
  std::uint64_t program_epoch_ = 0;
  std::uint64_t tables_epoch_ = 0;
};

/// Detail level whose digest observes a state object's *content*: table
/// entries are covered by the kTables Merkle root, register arrays by the
/// kProgState digest. (Schema changes ride kProgram, but the V6 coverage
/// check is about content mutations between rounds.)
[[nodiscard]] nac::EvidenceDetail covering_level(
    const dataplane::StateObject& obj);

/// All mutable state objects of `program` that a measurement at the detail
/// levels in `mask` observes — the detail-level → measured-object mapping
/// the V6 coverage check inverts to find TOCTOU-blind state.
[[nodiscard]] std::vector<dataplane::StateObject> objects_measured_by(
    const dataplane::DataplaneProgram& program, nac::DetailMask mask);

}  // namespace pera::pera
