// The evidence engine of Fig. 3: Create / Inspect / Compose (block E) plus
// the Sign/Verify unit (block D). Every operation returns both evidence
// and a simulated latency cost so netsim experiments can account for RA
// overhead in the packet path.
#pragma once

#include <functional>
#include <string>

#include "copland/evidence.h"
#include "crypto/signer.h"
#include "nac/header.h"
#include "pera/cache.h"
#include "pera/config.h"

namespace pera::pera {

struct EngineResult {
  copland::EvidencePtr evidence;
  netsim::SimTime cost = 0;
  bool from_cache = false;
  bool guard_failed = false;
};

/// Boolean packet/flow test evaluated for a `T |> ...` guard.
using GuardTest = std::function<bool(const std::string& name)>;

class EvidenceEngine {
 public:
  EvidenceEngine(std::string place, crypto::Signer& signer,
                 MeasurementUnit& mu, EvidenceCache& cache, CostModel costs)
      : place_(std::move(place)),
        signer_(&signer),
        mu_(&mu),
        cache_(&cache),
        costs_(costs) {
    crypto::engine::publish_metrics();
  }

  /// Create evidence for one hop instruction (Fig. 3 E "Create").
  /// `packet_bytes` backs kPacket-level measurement; `guard` evaluates the
  /// instruction's test (nullptr = all tests pass).
  [[nodiscard]] EngineResult create(const nac::HopInstruction& inst,
                                    const crypto::Nonce& nonce,
                                    const crypto::Bytes* packet_bytes,
                                    const GuardTest* guard);

  /// Fold a fresh record into accumulated evidence (Fig. 3 E "Compose").
  [[nodiscard]] EngineResult compose(const copland::EvidencePtr& prior,
                                     const copland::EvidencePtr& fresh,
                                     nac::CompositionMode mode) const;

  /// Decode and structurally check an in-band carrier (Fig. 3 E
  /// "Inspect"). Returns the decoded evidence list cost-accounted; throws
  /// std::invalid_argument on malformed carriers.
  [[nodiscard]] std::pair<std::vector<copland::EvidencePtr>, netsim::SimTime>
  inspect(const nac::EvidenceCarrier& carrier) const;

  [[nodiscard]] const std::string& place() const { return place_; }
  [[nodiscard]] crypto::Signer& signer() { return *signer_; }

 private:
  [[nodiscard]] netsim::SimTime sign_cost() const;

  std::string place_;
  crypto::Signer* signer_;
  MeasurementUnit* mu_;
  EvidenceCache* cache_;
  CostModel costs_;
};

}  // namespace pera::pera
