#include "pera/measurement.h"

#include <stdexcept>

#include "obs/obs.h"

namespace pera::pera {

crypto::Digest MeasurementUnit::measure(nac::EvidenceDetail level,
                                        const crypto::Bytes* packet_bytes) const {
  PERA_OBS_COUNT("pera.measure." + nac::to_string(level));
  PERA_OBS_EVENT(obs::SpanKind::kMeasure, nac::to_string(level), 0,
                 static_cast<std::uint64_t>(level));
  switch (level) {
    case nac::EvidenceDetail::kHardware:
      return hw_.digest();
    case nac::EvidenceDetail::kProgram:
      return switch_->program().program_digest();
    case nac::EvidenceDetail::kTables:
      return switch_->program().tables_digest();
    case nac::EvidenceDetail::kProgState:
      return switch_->registers().state_digest();
    case nac::EvidenceDetail::kPacket: {
      if (packet_bytes == nullptr) {
        throw std::invalid_argument(
            "MeasurementUnit: packet-level measurement needs packet bytes");
      }
      return crypto::sha256(
          crypto::BytesView{packet_bytes->data(), packet_bytes->size()});
    }
  }
  throw std::invalid_argument("MeasurementUnit: unknown detail level");
}

std::string MeasurementUnit::claim_text(nac::EvidenceDetail level) const {
  switch (level) {
    case nac::EvidenceDetail::kHardware:
      return "hardware " + hw_.model + "/" + hw_.serial;
    case nac::EvidenceDetail::kProgram:
      return "program " + switch_->program().name() + " " +
             switch_->program().version();
    case nac::EvidenceDetail::kTables:
      return "tables of " + switch_->program().name();
    case nac::EvidenceDetail::kProgState:
      return "register state of " + switch_->program().name();
    case nac::EvidenceDetail::kPacket:
      return "packet contents";
  }
  return "?";
}

nac::EvidenceDetail covering_level(const dataplane::StateObject& obj) {
  return obj.kind == dataplane::StateObject::Kind::kTable
             ? nac::EvidenceDetail::kTables
             : nac::EvidenceDetail::kProgState;
}

std::vector<dataplane::StateObject> objects_measured_by(
    const dataplane::DataplaneProgram& program, nac::DetailMask mask) {
  std::vector<dataplane::StateObject> out;
  for (auto& obj : program.state_objects()) {
    if (nac::has_detail(mask, covering_level(obj))) {
      out.push_back(std::move(obj));
    }
  }
  return out;
}

std::uint64_t MeasurementUnit::epoch(nac::EvidenceDetail level) const {
  switch (level) {
    case nac::EvidenceDetail::kHardware:
      return 0;  // never changes
    case nac::EvidenceDetail::kProgram:
      return program_epoch_;
    case nac::EvidenceDetail::kTables:
      return ((program_epoch_ + tables_epoch_) << 32) +
             switch_->program().tables_revision();
    case nac::EvidenceDetail::kProgState:
      return (program_epoch_ << 32) + switch_->registers().revision();
    case nac::EvidenceDetail::kPacket:
      return ~std::uint64_t{0};  // every packet differs: never cacheable
  }
  return 0;
}

}  // namespace pera::pera
