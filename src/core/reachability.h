// Prim3 — reachability checks for policy deployment (§4.1).
//
// A network-aware policy is only executable when every evidence producer
// can reach the evidence collector. Before a Relying Party deploys a
// policy, it checks the appraiser's reachability from every attesting
// element — over the NetKAT encoding of the deployment topology, so the
// check is the paper's reachability primitive, not an ad-hoc BFS.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nac/compiler.h"
#include "netkat/eval.h"
#include "netkat/topology.h"
#include "netsim/topology.h"

namespace pera::core {

/// NetKAT encoding of a netsim topology: nodes become `sw` values, each
/// adjacency gets a local port number, and the link policy is the union of
/// the directed hops.
struct NetkatTopology {
  netkat::PolicyPtr links;                       // the topology policy t
  netkat::PolicyPtr flood;                       // at any sw, try every port
  std::map<std::string, std::uint64_t> sw_ids;   // node name -> sw value

  [[nodiscard]] std::uint64_t sw_of(const std::string& name) const;
};

[[nodiscard]] NetkatTopology encode_topology(const netsim::Topology& topo);

/// Is `to` reachable from `from` under flood forwarding? (Connectivity in
/// the NetKAT semantics: eval((flood ; t)*) contains a packet at `to`.)
[[nodiscard]] bool reachable_in(const NetkatTopology& nt,
                                const std::string& from,
                                const std::string& to);

/// Per-element reachability report for a compiled policy's collector.
struct CollectorReachability {
  std::string collector;
  std::vector<std::string> reachable_from;
  std::vector<std::string> unreachable_from;

  [[nodiscard]] bool deployable() const { return unreachable_from.empty(); }
};

/// Check that `policy`'s appraiser is reachable from every attesting
/// element in `topo` (every switch/appliance node for wildcard policies,
/// only the pinned places otherwise).
[[nodiscard]] CollectorReachability check_collector_reachable(
    const netsim::Topology& topo, const nac::CompiledPolicy& policy);

}  // namespace pera::core
