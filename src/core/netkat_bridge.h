// Bridge between the PISA dataplane and NetKAT.
//
// §1 notes that RA is orthogonal to program verification: RA proves *which*
// program runs, verification proves the program *correct*. This module
// supplies the verification half for our stack: it translates a
// DataplaneProgram into a NetKAT policy (tables become priority-resolved
// if-then-else chains of masked tests; actions become field
// modifications), so dataplane programs can be checked against NetKAT
// specifications — and the translation itself is validated against the
// switch, packet by packet.
//
// Supported fragment: stateless programs whose actions only set fields,
// set the egress port, or drop (the canned router/firewall/ACL programs).
// Register ops and field-to-field copies raise BridgeError.
#pragma once

#include <stdexcept>

#include "dataplane/program.h"
#include "netkat/eval.h"

namespace pera::core {

class BridgeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// NetKAT field names used by the encoding:
///   "<header>.<field>"  — packet header fields
///   "valid.<header>"    — 1 when the header was parsed
///   "pt"                — ingress, then egress, port
///   "meta.user0/1"      — user metadata
///   "drop"              — 1 once the packet is dropped
namespace bridge_fields {
inline constexpr const char* kPort = "pt";
inline constexpr const char* kDrop = "drop";
}  // namespace bridge_fields

/// Abstract a parsed packet into a NetKAT packet over the bridge fields.
[[nodiscard]] netkat::Packet abstract_packet(
    const dataplane::ParsedPacket& pkt);

/// Translate one program into a NetKAT policy. Throws BridgeError on
/// unsupported constructs (stateful actions, field copies, arithmetic).
[[nodiscard]] netkat::PolicyPtr to_netkat(
    const dataplane::DataplaneProgram& program);

/// Translation validation: run `raw` through a fresh switch instance and
/// through the NetKAT model; true iff both agree on drop-vs-forward, the
/// egress port, and every header field value.
[[nodiscard]] bool behaviors_agree(
    const std::shared_ptr<dataplane::DataplaneProgram>& program,
    const dataplane::RawPacket& raw);

/// Check a dataplane program against a NetKAT specification on a packet
/// universe: the program's observable behaviour must be included in the
/// spec (every output the program produces, the spec allows).
[[nodiscard]] bool refines(
    const std::shared_ptr<dataplane::DataplaneProgram>& program,
    const netkat::PolicyPtr& spec,
    const std::vector<dataplane::RawPacket>& universe);

}  // namespace pera::core
