#include "core/nodes.h"

namespace pera::core {

using netsim::Message;
using netsim::Network;
using netsim::NodeId;
using netsim::TransitResult;

TransitResult SwitchNode::on_transit(Network& net, NodeId self, Message& msg) {
  if (msg.type != "data") return {};  // control traffic passes untouched

  FlowBundle bundle = FlowBundle::from_message(msg);
  const nac::PolicyHeader* hdr =
      bundle.policy ? &*bundle.policy : nullptr;
  pera::PeraResult res =
      switch_->process(bundle.raw, hdr, &bundle.carrier);

  // Out-of-band evidence leaves toward the appraiser immediately.
  for (const auto& oob : res.out_of_band) {
    const auto appraiser_id = net.topology().find(oob.to);
    if (!appraiser_id) continue;
    Message ev;
    ev.src = self;
    ev.dst = *appraiser_id;
    ev.reply_to = msg.reply_to != netsim::kNoNode ? msg.reply_to : msg.src;
    ev.type = "evidence";
    ev.flow_id = msg.flow_id;
    ev.payload = EvidenceMsg{oob.nonce, oob.evidence}.serialize();
    net.send(std::move(ev));
  }

  if (!res.forwarded) return TransitResult::dropped();
  bundle.raw = *res.forwarded;
  bundle.to_message(msg);
  return TransitResult{true, res.ra_latency};
}

void SwitchNode::on_deliver(Network& net, NodeId self, Message msg) {
  if (msg.type != "challenge") return;
  const Challenge ch = Challenge::deserialize(
      crypto::BytesView{msg.payload.data(), msg.payload.size()});

  const copland::EvidencePtr evidence = switch_->attest_challenge(
      ch.detail, ch.nonce, ch.hash_before_sign);

  // (3) out-of-band: evidence -> appraiser, result returns to the RP.
  // (4) in-band variant: evidence -> RP2 (the challenge's reply_to), which
  //     forwards to the appraiser itself.
  NodeId target;
  if (ch.in_band_reply) {
    target = msg.reply_to != netsim::kNoNode ? msg.reply_to : msg.src;
  } else {
    const auto id = net.topology().find(ch.appraiser);
    if (!id) return;
    target = *id;
  }
  Message ev;
  ev.src = self;
  ev.dst = target;
  ev.reply_to = msg.reply_to != netsim::kNoNode ? msg.reply_to : msg.src;
  ev.type = ch.in_band_reply ? "evidence-to-rp" : "evidence";
  ev.payload = EvidenceMsg{ch.nonce, copland::encode(evidence)}.serialize();
  net.send(std::move(ev));
}

void AppraiserNode::appraise_and_reply(Network& net, NodeId self,
                                       const copland::EvidencePtr& evidence,
                                       const crypto::Nonce& nonce,
                                       NodeId reply_to,
                                       bool enforce_freshness) {
  const std::optional<crypto::Nonce> expected =
      nonce.value.is_zero() ? std::nullopt : std::make_optional(nonce);
  const ra::AttestationResult res =
      appraiser_.appraise(evidence, expected, /*certify=*/true, net.now(),
                          enforce_freshness);
  if (!res.ok) ++failures_;
  if (res.certificate && reply_to != netsim::kNoNode) {
    Message out;
    out.src = self;
    out.dst = reply_to;
    out.type = "result";
    out.payload = res.certificate->serialize();
    net.send(std::move(out));
  }
}

void AppraiserNode::on_deliver(Network& net, NodeId self, Message msg) {
  if (msg.type == "evidence") {
    const EvidenceMsg em = EvidenceMsg::deserialize(
        crypto::BytesView{msg.payload.data(), msg.payload.size()});
    const copland::EvidencePtr evidence = copland::decode(
        crypto::BytesView{em.evidence.data(), em.evidence.size()});
    // Per-flow evidence reuses one nonce across packets; the flow_id tag
    // distinguishes flow evidence (no per-message freshness) from one-shot
    // challenge responses (strict freshness).
    appraise_and_reply(net, self, evidence, em.nonce, msg.reply_to,
                       /*enforce_freshness=*/msg.flow_id == 0);
    return;
  }
  if (msg.type == "carrier") {
    // Accumulated in-band evidence: fold records into one sequence and
    // appraise the composite.
    const EvidenceMsg em = EvidenceMsg::deserialize(
        crypto::BytesView{msg.payload.data(), msg.payload.size()});
    const nac::EvidenceCarrier carrier = nac::EvidenceCarrier::deserialize(
        crypto::BytesView{em.evidence.data(), em.evidence.size()});
    copland::EvidencePtr acc = copland::Evidence::empty();
    for (const auto& rec : carrier.records) {
      acc = copland::Evidence::extend(
          acc, copland::decode(crypto::BytesView{rec.evidence.data(),
                                                 rec.evidence.size()}));
    }
    appraise_and_reply(net, self, acc, em.nonce, msg.reply_to,
                       /*enforce_freshness=*/false);
    return;
  }
  if (msg.type == "retrieve") {
    const NonceMsg nm = NonceMsg::deserialize(
        crypto::BytesView{msg.payload.data(), msg.payload.size()});
    const auto cert = appraiser_.retrieve(nm.nonce);
    if (!cert) return;
    Message out;
    out.src = self;
    out.dst = msg.reply_to != netsim::kNoNode ? msg.reply_to : msg.src;
    out.type = "result";
    out.payload = cert->serialize();
    net.send(std::move(out));
    return;
  }
}

void HostNode::on_deliver(Network& net, NodeId self, Message msg) {
  if (msg.type == "data") {
    const FlowBundle bundle = FlowBundle::from_message(msg);
    ReceivedPacket rec;
    rec.latency = net.now() - msg.sent_at;
    rec.carrier_bytes =
        bundle.carrier.records.empty() ? 0 : bundle.carrier.wire_size();
    rec.carrier_records = bundle.carrier.records.size();
    received_.push_back(rec);

    if (carrier_sink_ && !bundle.carrier.records.empty()) {
      Message fwd;
      fwd.src = self;
      fwd.dst = *carrier_sink_;
      fwd.reply_to = self;
      fwd.type = "carrier";
      EvidenceMsg em;
      if (bundle.policy) em.nonce = bundle.policy->nonce;
      em.evidence = bundle.carrier.serialize();
      fwd.payload = em.serialize();
      net.send(std::move(fwd));
    }
    return;
  }
  if (msg.type == "evidence-to-rp") {
    // Expression (4): we are RP2; relay the evidence to the appraiser.
    if (!carrier_sink_) return;
    Message fwd;
    fwd.src = self;
    fwd.dst = *carrier_sink_;
    fwd.reply_to = self;
    fwd.type = "evidence";
    fwd.payload = msg.payload;
    net.send(std::move(fwd));
    return;
  }
  if (msg.type == "result") {
    const ra::Certificate cert = ra::Certificate::deserialize(
        crypto::BytesView{msg.payload.data(), msg.payload.size()});
    results_.push_back(cert);
    if (result_hook_) result_hook_(cert);
    return;
  }
}

}  // namespace pera::core
