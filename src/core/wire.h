// Message encodings for the RA protocol messages that ride over netsim.
//
// Message types used across the deployment:
//   "data"      — flow traffic: FlowBundle in (headers, payload)
//   "challenge" — RP -> switch direct attestation request (Fig. 2 ➀)
//   "evidence"  — attester -> appraiser evidence (Fig. 2 ➁, out-of-band)
//   "carrier"   — end host -> appraiser accumulated in-band evidence
//   "retrieve"  — RP2 -> appraiser certificate lookup by nonce
//   "result"    — appraiser -> RP attestation result (Fig. 2 ➃)
#pragma once

#include <optional>

#include "copland/evidence.h"
#include "crypto/nonce.h"
#include "dataplane/packet.h"
#include "nac/header.h"
#include "netsim/network.h"
#include "ra/certificate.h"

namespace pera::core {

/// A data packet bundled with its RA options header and in-band evidence.
struct FlowBundle {
  std::optional<nac::PolicyHeader> policy;
  nac::EvidenceCarrier carrier;
  dataplane::RawPacket raw;

  /// Encode into (msg.headers, msg.payload).
  void to_message(netsim::Message& msg) const;
  [[nodiscard]] static FlowBundle from_message(const netsim::Message& msg);
};

/// Fig. 2 ➀: a relying party's challenge to a switch.
struct Challenge {
  crypto::Nonce nonce{};
  nac::DetailMask detail = 0;
  // Note: `attest -> # -> !` (expression (3)) collapses the measurements,
  // which only works when the appraiser can reconstruct the expected
  // evidence bit-for-bit; the deployment default ships full evidence.
  bool hash_before_sign = false;
  std::string appraiser;   // where the switch should send evidence
  bool in_band_reply = false;  // (4): evidence goes to RP2 instead

  [[nodiscard]] crypto::Bytes serialize() const;
  [[nodiscard]] static Challenge deserialize(crypto::BytesView data);
};

/// Evidence in flight toward an appraiser.
struct EvidenceMsg {
  crypto::Nonce nonce{};
  crypto::Bytes evidence;  // copland::encode()

  [[nodiscard]] crypto::Bytes serialize() const;
  [[nodiscard]] static EvidenceMsg deserialize(crypto::BytesView data);
};

/// A nonce-only message (retrieve).
struct NonceMsg {
  crypto::Nonce nonce{};

  [[nodiscard]] crypto::Bytes serialize() const;
  [[nodiscard]] static NonceMsg deserialize(crypto::BytesView data);
};

}  // namespace pera::core
