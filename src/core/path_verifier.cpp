#include "core/path_verifier.h"

#include <algorithm>

namespace pera::core {

using copland::Evidence;
using copland::EvidenceKind;
using copland::EvidencePtr;

std::vector<std::string> PathVerdict::places() const {
  std::vector<std::string> out;
  out.reserve(hops.size());
  for (const auto& h : hops) out.push_back(h.place);
  return out;
}

namespace {

// Walk evidence in order, grouping measurements under the signature that
// covers them into per-place hops.
void collect_hops(const EvidencePtr& e, const crypto::KeyStore& keys,
                  std::vector<AttestedHop>& hops,
                  AttestedHop* current) {
  if (!e) return;
  switch (e->kind) {
    case EvidenceKind::kSignature: {
      AttestedHop hop;
      hop.place = e->place;
      const crypto::Verifier* v = keys.verifier_by_key_id(e->sig.key_id);
      hop.signature_ok =
          v != nullptr &&
          crypto::verify_any(*v, copland::digest(e->child), e->sig);
      collect_hops(e->child, keys, hops, &hop);
      hops.push_back(std::move(hop));
      return;
    }
    case EvidenceKind::kMeasurement:
      if (current != nullptr) {
        current->measurements[e->target] = e->value;
        if (current->place.empty()) current->place = e->place;
      } else {
        // Unsigned stray measurement: record as its own (unverified) hop.
        AttestedHop hop;
        hop.place = e->place;
        hop.measurements[e->target] = e->value;
        hop.signature_ok = false;
        hops.push_back(std::move(hop));
      }
      return;
    case EvidenceKind::kSeq:
    case EvidenceKind::kPar:
      collect_hops(e->left, keys, hops, current);
      collect_hops(e->right, keys, hops, current);
      return;
    case EvidenceKind::kFuncOut:
    case EvidenceKind::kHashed:
      collect_hops(e->child, keys, hops, current);
      return;
    case EvidenceKind::kEmpty:
    case EvidenceKind::kNonce:
      return;
  }
}

}  // namespace

PathVerdict PathVerifier::verify(const EvidencePtr& evidence) const {
  PathVerdict v;
  v.appraisal = copland::appraise(evidence, *goldens_, *keys_);
  collect_hops(evidence, *keys_, v.hops, nullptr);
  v.all_signatures_ok =
      !v.hops.empty() &&
      std::all_of(v.hops.begin(), v.hops.end(),
                  [](const AttestedHop& h) { return h.signature_ok; });
  v.all_measurements_ok = v.appraisal.ok;
  return v;
}

bool PathVerifier::crosses_in_order(const PathVerdict& verdict,
                                    const std::vector<std::string>& required) {
  if (!verdict.ok()) return false;
  std::size_t next = 0;
  for (const auto& hop : verdict.hops) {
    if (next < required.size() && hop.place == required[next]) ++next;
  }
  return next == required.size();
}

bool PathVerifier::matches_expected_path(
    const PathVerdict& verdict,
    const std::vector<std::string>& expected_places) {
  return verdict.ok() && verdict.places() == expected_places;
}

}  // namespace pera::core
