// Path-evidence verification — the consumer side of UC2 (authentication)
// and UC3 (authorization tags).
//
// Given the composite evidence a flow accumulated, PathVerifier extracts
// the attested (place, program) sequence, verifies every signature and
// measurement, and answers policy questions such as "did this flow cross
// firewall_v5 and the DPI appliance, in that order?" — the FlowTags-style
// decisions of UC3 and the path-as-auth-factor of UC2.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "copland/evidence.h"
#include "copland/testbed.h"
#include "crypto/keystore.h"

namespace pera::core {

/// One attested hop extracted from path evidence.
struct AttestedHop {
  std::string place;
  std::map<std::string, crypto::Digest> measurements;  // target -> value
  bool signature_ok = false;
};

struct PathVerdict {
  bool all_signatures_ok = false;
  bool all_measurements_ok = false;
  std::vector<AttestedHop> hops;
  copland::AppraisalResult appraisal;

  [[nodiscard]] bool ok() const {
    return all_signatures_ok && all_measurements_ok;
  }

  /// Place names in path order.
  [[nodiscard]] std::vector<std::string> places() const;
};

class PathVerifier {
 public:
  PathVerifier(const std::map<copland::ComponentId, crypto::Digest>& goldens,
               const crypto::KeyStore& keys)
      : goldens_(&goldens), keys_(&keys) {}

  /// Verify composite path evidence (chained or a folded sequence of
  /// pointwise records).
  [[nodiscard]] PathVerdict verify(const copland::EvidencePtr& evidence) const;

  /// UC3: does the verified path include all `required` places, in order?
  [[nodiscard]] static bool crosses_in_order(
      const PathVerdict& verdict, const std::vector<std::string>& required);

  /// UC2: a path-based authentication factor — the path must verify and
  /// match `expected_places` exactly.
  [[nodiscard]] static bool matches_expected_path(
      const PathVerdict& verdict,
      const std::vector<std::string>& expected_places);

 private:
  const std::map<copland::ComponentId, crypto::Digest>* goldens_;
  const crypto::KeyStore* keys_;
};

}  // namespace pera::core
