#include "core/deployment.h"

#include <stdexcept>

#include "core/reachability.h"

namespace pera::core {

using netsim::Message;
using netsim::NodeInfo;
using netsim::NodeKind;

Deployment::Deployment(netsim::Topology topo, DeploymentOptions options)
    : net_(std::move(topo)), keys_(options.seed) {
  const auto default_program =
      [](const NodeInfo& n) -> std::shared_ptr<dataplane::DataplaneProgram> {
    if (n.kind == NodeKind::kAppliance) return dataplane::make_acl();
    return dataplane::make_router();
  };
  const auto& program_for =
      options.program_for ? options.program_for : default_program;

  for (const NodeInfo& n : net_.topology().nodes()) {
    switch (n.kind) {
      case NodeKind::kSwitch:
      case NodeKind::kAppliance: {
        crypto::Signer& signer =
            options.use_xmss
                ? keys_.provision_xmss(n.name, options.xmss_height)
                : keys_.provision_hmac(n.name);
        auto sw = std::make_unique<pera::PeraSwitch>(
            n.name, program_for(n), signer, options.pera_config);
        auto node = std::make_unique<SwitchNode>(std::move(sw));
        net_.attach(n.id, node.get());
        switches_[n.name] = std::move(node);
        break;
      }
      case NodeKind::kAppraiser: {
        keys_.provision_hmac(n.name);
        appraiser_ = std::make_unique<AppraiserNode>(n.name, keys_);
        appraiser_name_ = n.name;
        net_.attach(n.id, appraiser_.get());
        break;
      }
      case NodeKind::kHost: {
        auto node = std::make_unique<HostNode>(
            n.name, options.seed ^ (std::uint64_t{n.id} << 32));
        net_.attach(n.id, node.get());
        hosts_[n.name] = std::move(node);
        break;
      }
    }
  }
  if (!appraiser_) {
    throw std::invalid_argument(
        "Deployment: topology has no appraiser node");
  }
  // Hosts forward carriers / relay evidence to the appraiser by default.
  const netsim::NodeId app_id = net_.topology().require(appraiser_name_);
  for (auto& [name, host] : hosts_) host->forward_carriers_to(app_id);
}

SwitchNode& Deployment::switch_node(const std::string& name) {
  const auto it = switches_.find(name);
  if (it == switches_.end()) {
    throw std::invalid_argument("no switch node '" + name + "'");
  }
  return *it->second;
}

HostNode& Deployment::host(const std::string& name) {
  const auto it = hosts_.find(name);
  if (it == hosts_.end()) {
    throw std::invalid_argument("no host node '" + name + "'");
  }
  return *it->second;
}

std::vector<std::string> Deployment::attesting_elements() const {
  std::vector<std::string> out;
  out.reserve(switches_.size());
  for (const auto& [name, node] : switches_) out.push_back(name);
  return out;
}

void Deployment::provision_goldens(
    const std::vector<std::string>& extra_properties) {
  for (auto& [name, node] : switches_) {
    const pera::MeasurementUnit& mu = node->pera().measurement();
    ra::Appraiser& app = appraiser_->appraiser();
    app.set_golden(name, "Hardware",
                   mu.measure(nac::EvidenceDetail::kHardware));
    app.set_golden(name, "Program",
                   mu.measure(nac::EvidenceDetail::kProgram));
    app.set_golden(name, "Tables", mu.measure(nac::EvidenceDetail::kTables));
    for (const auto& prop : extra_properties) {
      app.set_golden(name, prop, mu.measure(nac::EvidenceDetail::kProgram));
    }
  }
}

bool Deployment::validate_policy(const nac::CompiledPolicy& policy,
                                 bool enforce) const {
  const CollectorReachability rep =
      check_collector_reachable(net_.topology(), policy);
  if (!rep.deployable() && enforce) {
    std::string who;
    for (const auto& p : rep.unreachable_from) who += p + " ";
    throw std::runtime_error(
        "policy not deployable: collector '" + rep.collector +
        "' unreachable from " + who);
  }
  return rep.deployable();
}

ChallengeReport Deployment::run_out_of_band(const std::string& rp_host,
                                            const std::string& switch_name,
                                            nac::DetailMask detail,
                                            const std::string& rp2) {
  HostNode& rp = host(rp_host);
  const crypto::Nonce nonce = rp.relying_party().challenge();
  const netsim::NetStats before = net_.stats();
  const netsim::SimTime start = net_.now();
  const std::size_t results_before = rp.results().size();

  Challenge ch;
  ch.nonce = nonce;
  ch.detail = detail;
  ch.appraiser = appraiser_name_;
  ch.in_band_reply = false;

  Message msg;
  msg.src = net_.topology().require(rp_host);
  msg.dst = net_.topology().require(switch_name);
  msg.reply_to = msg.src;
  msg.type = "challenge";
  msg.payload = ch.serialize();
  net_.send(std::move(msg));
  net_.run();

  ChallengeReport report;
  report.completed = rp.results().size() > results_before;
  if (report.completed) {
    const ra::Certificate& cert = rp.results().back();
    const crypto::Verifier* v = keys_.verifier_for(appraiser_name_);
    report.accepted =
        v != nullptr && rp.relying_party().accept(cert, *v);
    report.rtt = net_.now() - start;
  }

  if (!rp2.empty()) {
    // RP2 retrieves the stored certificate by the (shared) nonce.
    HostNode& second = host(rp2);
    const std::size_t rp2_before = second.results().size();
    Message rmsg;
    rmsg.src = net_.topology().require(rp2);
    rmsg.dst = net_.topology().require(appraiser_name_);
    rmsg.reply_to = rmsg.src;
    rmsg.type = "retrieve";
    rmsg.payload = NonceMsg{nonce}.serialize();
    net_.send(std::move(rmsg));
    net_.run();
    if (second.results().size() > rp2_before) {
      const crypto::Verifier* v = keys_.verifier_for(appraiser_name_);
      report.completed =
          report.completed && second.results().back().verify(*v);
    } else {
      report.completed = false;
    }
  }

  const netsim::NetStats after = net_.stats();
  report.messages = after.messages_sent - before.messages_sent;
  report.bytes_on_wire = after.bytes_sent - before.bytes_sent;
  return report;
}

ChallengeReport Deployment::run_in_band(const std::string& rp1_host,
                                        const std::string& switch_name,
                                        const std::string& rp2_host,
                                        nac::DetailMask detail) {
  HostNode& rp1 = host(rp1_host);
  HostNode& rp2 = host(rp2_host);
  const crypto::Nonce nonce = rp1.relying_party().challenge();
  const netsim::NetStats before = net_.stats();
  const netsim::SimTime start = net_.now();
  const std::size_t rp2_results_before = rp2.results().size();

  Challenge ch;
  ch.nonce = nonce;
  ch.detail = detail;
  ch.appraiser = appraiser_name_;
  ch.in_band_reply = true;

  Message msg;
  msg.src = net_.topology().require(rp1_host);
  msg.dst = net_.topology().require(switch_name);
  msg.reply_to = net_.topology().require(rp2_host);
  msg.type = "challenge";
  msg.payload = ch.serialize();
  net_.send(std::move(msg));
  net_.run();

  ChallengeReport report;
  report.completed = rp2.results().size() > rp2_results_before;
  if (report.completed) {
    const crypto::Verifier* v = keys_.verifier_for(appraiser_name_);
    const ra::Certificate& cert = rp2.results().back();
    report.accepted = v != nullptr && cert.verify(*v) && cert.verdict;
    report.rtt = net_.now() - start;
  }
  const netsim::NetStats after = net_.stats();
  report.messages = after.messages_sent - before.messages_sent;
  report.bytes_on_wire = after.bytes_sent - before.bytes_sent;
  return report;
}

Deployment::RetryReport Deployment::run_out_of_band_with_retries(
    const std::string& rp_host, const std::string& switch_name,
    nac::DetailMask detail, netsim::SimTime timeout,
    std::size_t max_attempts) {
  HostNode& rp = host(rp_host);
  RetryReport report;
  const netsim::NetStats before = net_.stats();
  const netsim::SimTime start = net_.now();

  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++report.attempts;
    // Fresh nonce per attempt: a lost result must not strand the exchange
    // on the appraiser's replay protection.
    const crypto::Nonce nonce = rp.relying_party().challenge();
    const std::size_t results_before = rp.results().size();

    Challenge ch;
    ch.nonce = nonce;
    ch.detail = detail;
    ch.appraiser = appraiser_name_;

    Message msg;
    msg.src = net_.topology().require(rp_host);
    msg.dst = net_.topology().require(switch_name);
    msg.reply_to = msg.src;
    msg.type = "challenge";
    msg.payload = ch.serialize();
    net_.send(std::move(msg));
    net_.run(net_.now() + timeout);

    if (rp.results().size() > results_before) {
      const ra::Certificate& cert = rp.results().back();
      const crypto::Verifier* v = keys_.verifier_for(appraiser_name_);
      report.completed = true;
      report.accepted = v != nullptr && rp.relying_party().accept(cert, *v);
      break;
    }
  }
  report.rtt = net_.now() - start;
  const netsim::NetStats after = net_.stats();
  report.messages = after.messages_sent - before.messages_sent;
  report.bytes_on_wire = after.bytes_sent - before.bytes_sent;
  return report;
}

FlowReport Deployment::send_flow(const std::string& src,
                                 const std::string& dst,
                                 const nac::CompiledPolicy& policy,
                                 std::size_t packets, bool in_band,
                                 std::uint8_t sampling_log2,
                                 const dataplane::PacketSpec& pkt_spec) {
  HostNode& rp = host(src);
  const crypto::Nonce nonce = rp.relying_party().challenge();
  nac::PolicyHeader header =
      nac::make_header(policy, nonce, in_band, sampling_log2);
  if (header.appraiser.empty()) header.appraiser = appraiser_name_;
  return flow_impl(src, dst, header, packets, pkt_spec);
}

FlowReport Deployment::send_plain_flow(const std::string& src,
                                       const std::string& dst,
                                       std::size_t packets,
                                       const dataplane::PacketSpec& pkt_spec) {
  return flow_impl(src, dst, std::nullopt, packets, pkt_spec);
}

FlowReport Deployment::flow_impl(
    const std::string& src, const std::string& dst,
    const std::optional<nac::PolicyHeader>& header, std::size_t packets,
    const dataplane::PacketSpec& pkt_spec) {
  HostNode& dst_host = host(dst);
  const std::size_t recv_before = dst_host.received().size();
  const netsim::NetStats net_before = net_.stats();
  const std::uint64_t failures_before = appraiser_->failed_appraisals();
  const std::uint64_t appraisals_before =
      appraiser_->appraiser().appraisal_count();

  std::uint64_t attest_before = 0;
  std::uint64_t hits_before = 0;
  std::uint64_t misses_before = 0;
  for (auto& name : attesting_elements()) {
    const auto& s = switch_node(name).pera();
    attest_before += s.ra_stats().attestations;
    hits_before += s.cache().stats().hits;
    misses_before += s.cache().stats().misses;
  }

  const std::uint64_t flow_id = next_flow_id_++;
  for (std::size_t i = 0; i < packets; ++i) {
    FlowBundle bundle;
    bundle.policy = header;
    bundle.raw = dataplane::make_tcp_packet(pkt_spec);

    Message msg;
    msg.src = net_.topology().require(src);
    msg.dst = net_.topology().require(dst);
    msg.reply_to = msg.src;
    msg.type = "data";
    msg.flow_id = flow_id;
    bundle.to_message(msg);
    net_.send(std::move(msg));
  }
  net_.run();

  FlowReport report;
  report.packets_sent = packets;
  netsim::Summary latency;
  std::size_t evidence_bytes = 0;
  for (std::size_t i = recv_before; i < dst_host.received().size(); ++i) {
    const ReceivedPacket& r = dst_host.received()[i];
    latency.add(netsim::to_us(r.latency));
    evidence_bytes += r.carrier_bytes;
  }
  report.packets_delivered = dst_host.received().size() - recv_before;
  report.mean_latency_us = latency.mean();
  report.p99_latency_us = latency.percentile(0.99);
  report.evidence_bytes_inband = evidence_bytes;
  report.appraisal_failures =
      appraiser_->failed_appraisals() - failures_before;
  report.certificates =
      appraiser_->appraiser().appraisal_count() - appraisals_before;

  for (auto& name : attesting_elements()) {
    const auto& s = switch_node(name).pera();
    report.attestations += s.ra_stats().attestations;
    report.cache_hits += s.cache().stats().hits;
    report.cache_misses += s.cache().stats().misses;
  }
  report.attestations -= attest_before;
  report.cache_hits -= hits_before;
  report.cache_misses -= misses_before;

  const netsim::NetStats net_after = net_.stats();
  report.bytes_on_wire = net_after.bytes_sent - net_before.bytes_sent;
  report.oob_messages = net_after.messages_sent - net_before.messages_sent -
                        packets;
  return report;
}

}  // namespace pera::core
