#include "core/reachability.h"

#include <stdexcept>

namespace pera::core {

using netkat::Link;
using netkat::Policy;
using netkat::PolicyPtr;
using netkat::Predicate;

std::uint64_t NetkatTopology::sw_of(const std::string& name) const {
  const auto it = sw_ids.find(name);
  if (it == sw_ids.end()) {
    throw std::invalid_argument("NetkatTopology: unknown node '" + name + "'");
  }
  return it->second;
}

NetkatTopology encode_topology(const netsim::Topology& topo) {
  NetkatTopology out;
  // sw ids are 1-based so the zero-erasing canonical packet form never
  // confuses "at node 0" with "field absent".
  std::map<netsim::NodeId, std::uint64_t> ids;
  for (const auto& n : topo.nodes()) {
    const std::uint64_t id = n.id + 1;
    ids[n.id] = id;
    out.sw_ids[n.name] = id;
  }

  // Port numbering: the k-th adjacency of a node uses local port k+1.
  std::map<netsim::NodeId, std::uint64_t> next_port;
  std::map<std::pair<netsim::NodeId, netsim::NodeId>, std::uint64_t> port_of;
  const auto port_for = [&](netsim::NodeId a, netsim::NodeId b) {
    const auto key = std::make_pair(a, b);
    const auto it = port_of.find(key);
    if (it != port_of.end()) return it->second;
    const std::uint64_t p = ++next_port[a];
    port_of[key] = p;
    return p;
  };

  std::vector<Link> links;
  for (const auto& l : topo.links()) {
    if (!l.up) continue;  // failed links are not part of the fabric
    links.push_back(Link{ids[l.a], port_for(l.a, l.b), ids[l.b],
                         port_for(l.b, l.a)});
    links.push_back(Link{ids[l.b], port_for(l.b, l.a), ids[l.a],
                         port_for(l.a, l.b)});
  }
  out.links = netkat::topology_policy(links);

  // Flood program: at sw s, emit a copy on every local port.
  std::vector<PolicyPtr> floods;
  for (const auto& n : topo.nodes()) {
    const std::uint64_t ports = next_port[n.id];
    for (std::uint64_t p = 1; p <= ports; ++p) {
      floods.push_back(Policy::seq(
          Policy::filter(Predicate::test("sw", ids[n.id])),
          Policy::mod("pt", p)));
    }
  }
  out.flood = netkat::union_all(floods);
  return out;
}

bool reachable_in(const NetkatTopology& nt, const std::string& from,
                  const std::string& to) {
  netkat::Packet start;
  start.set("sw", nt.sw_of(from));
  return netkat::reachable(nt.flood, nt.links, start,
                           Predicate::test("sw", nt.sw_of(to)));
}

CollectorReachability check_collector_reachable(
    const netsim::Topology& topo, const nac::CompiledPolicy& policy) {
  CollectorReachability report;
  report.collector = policy.appraiser.empty() ? "Appraiser" : policy.appraiser;

  const NetkatTopology nt = encode_topology(topo);
  if (!nt.sw_ids.contains(report.collector)) {
    // No collector in the topology: nothing is deployable.
    for (const auto& n : topo.nodes()) {
      if (n.kind == netsim::NodeKind::kSwitch ||
          n.kind == netsim::NodeKind::kAppliance) {
        report.unreachable_from.push_back(n.name);
      }
    }
    return report;
  }

  // Which places produce evidence?
  std::vector<std::string> producers;
  if (policy.wildcard_count() > 0) {
    for (const auto& n : topo.nodes()) {
      if (n.kind == netsim::NodeKind::kSwitch ||
          n.kind == netsim::NodeKind::kAppliance) {
        producers.push_back(n.name);
      }
    }
  }
  for (const auto& hop : policy.hops) {
    if (!hop.wildcard && !hop.is_collector && !hop.place.empty() &&
        topo.find(hop.place).has_value()) {
      producers.push_back(hop.place);
    }
  }

  for (const auto& p : producers) {
    if (reachable_in(nt, p, report.collector)) {
      report.reachable_from.push_back(p);
    } else {
      report.unreachable_from.push_back(p);
    }
  }
  return report;
}

}  // namespace pera::core
