#include "core/netkat_bridge.h"

#include <algorithm>

namespace pera::core {

using dataplane::ActionDef;
using dataplane::DataplaneProgram;
using dataplane::KeySpec;
using dataplane::MatchKind;
using dataplane::Op;
using dataplane::OpKind;
using dataplane::Table;
using dataplane::TableEntry;
using netkat::Policy;
using netkat::PolicyPtr;
using netkat::Predicate;
using netkat::PredPtr;

netkat::Packet abstract_packet(const dataplane::ParsedPacket& pkt) {
  netkat::Packet out;
  out.set(bridge_fields::kPort, pkt.meta.ingress_port);
  out.set("meta.ingress_port", pkt.meta.ingress_port);
  out.set("meta.user0", pkt.meta.user0);
  out.set("meta.user1", pkt.meta.user1);
  for (const auto& h : pkt.headers()) {
    if (!h.valid) continue;
    out.set("valid." + h.spec->name, 1);
    for (std::size_t i = 0; i < h.spec->fields.size(); ++i) {
      out.set(h.spec->name + "." + h.spec->fields[i].name, h.values[i]);
    }
  }
  return out;
}

namespace {

std::uint64_t lpm_mask(unsigned width, unsigned plen) {
  const unsigned w = width == 0 || width > 64 ? 64 : width;
  const unsigned p = plen > w ? w : plen;
  if (p == 0) return 0;
  if (p >= 64) return ~0ULL;
  return ((std::uint64_t{1} << p) - 1) << (w - p);
}

std::string key_field_name(const KeySpec& spec) {
  // Metadata fields keep their meta. prefix; header fields use hdr.field.
  return spec.field.str();
}

// One entry's match condition over the bridge fields.
PredPtr entry_match(const Table& table, const TableEntry& e) {
  PredPtr acc = Predicate::tru();
  for (std::size_t i = 0; i < table.keys().size(); ++i) {
    const KeySpec& spec = table.keys()[i];
    const auto& m = e.keys[i];
    const std::string field = key_field_name(spec);
    // Header fields only match when the header was parsed.
    if (spec.field.header != "meta") {
      acc = Predicate::conj(
          acc, Predicate::test("valid." + spec.field.header, 1));
    }
    switch (spec.kind) {
      case MatchKind::kExact:
        acc = Predicate::conj(acc, Predicate::test(field, m.value));
        break;
      case MatchKind::kLpm:
        acc = Predicate::conj(
            acc, Predicate::test_masked(field, m.value,
                                        lpm_mask(spec.width, m.prefix_len)));
        break;
      case MatchKind::kTernary:
        acc = Predicate::conj(
            acc, Predicate::test_masked(field, m.value, m.mask));
        break;
    }
  }
  return acc;
}

// Translate an action body with entry-bound parameters.
PolicyPtr action_policy(const DataplaneProgram& program,
                        const std::string& action_name,
                        const std::vector<std::uint64_t>& params) {
  if (action_name.empty()) return Policy::id();
  const ActionDef* action = program.action(action_name);
  if (action == nullptr) {
    throw BridgeError("to_netkat: unknown action '" + action_name + "'");
  }
  PolicyPtr acc = Policy::id();
  for (const Op& op : action->ops) {
    switch (op.kind) {
      case OpKind::kSetField:
        acc = Policy::seq(acc, Policy::mod(op.dst.str(),
                                           op.a.resolve(params)));
        break;
      case OpKind::kSetEgressPort:
        acc = Policy::seq(
            acc, Policy::mod(bridge_fields::kPort, op.a.resolve(params)));
        break;
      case OpKind::kDrop:
        acc = Policy::seq(acc, Policy::mod(bridge_fields::kDrop, 1));
        break;
      case OpKind::kSetUserMeta:
        acc = Policy::seq(
            acc, Policy::mod(op.which_meta == 0 ? "meta.user0" : "meta.user1",
                             op.a.resolve(params)));
        break;
      case OpKind::kNoop:
        break;
      case OpKind::kCopyField:
      case OpKind::kAddToField:
      case OpKind::kRegWrite:
      case OpKind::kRegReadToMeta:
        throw BridgeError("to_netkat: action '" + action_name +
                          "' uses a construct outside the stateless "
                          "NetKAT fragment");
    }
  }
  return acc;
}

// Priority-resolve a table into an if-then-else chain:
//   m1;a1 + !m1;(m2;a2 + !m2;(... + default))
PolicyPtr table_policy(const DataplaneProgram& program, const Table& table) {
  // Order entries the way Table::lookup picks winners.
  std::vector<const TableEntry*> ordered;
  ordered.reserve(table.entries().size());
  for (const auto& e : table.entries()) ordered.push_back(&e);
  const auto specificity = [&table](const TableEntry* e) {
    unsigned total = 0;
    for (std::size_t i = 0; i < e->keys.size(); ++i) {
      if (table.keys()[i].kind == MatchKind::kLpm) {
        total += e->keys[i].prefix_len;
      }
    }
    return total;
  };
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const TableEntry* a, const TableEntry* b) {
                     if (a->priority != b->priority) {
                       return a->priority > b->priority;
                     }
                     return specificity(a) > specificity(b);
                   });

  PolicyPtr chain =
      action_policy(program, table.default_action(), table.default_params());
  for (auto it = ordered.rbegin(); it != ordered.rend(); ++it) {
    const TableEntry& e = **it;
    const PredPtr match = entry_match(table, e);
    const PolicyPtr hit =
        Policy::seq(Policy::filter(match),
                    action_policy(program, e.action, e.action_params));
    const PolicyPtr miss =
        Policy::seq(Policy::filter(Predicate::neg(match)), chain);
    chain = Policy::unite(hit, miss);
  }
  return chain;
}

}  // namespace

PolicyPtr to_netkat(const DataplaneProgram& program) {
  // Tables run in order; a dropped packet skips the rest (the switch
  // checks meta.drop before each table).
  PolicyPtr acc = Policy::id();
  const PredPtr not_dropped = Predicate::test(bridge_fields::kDrop, 0);
  for (const auto& table : program.tables()) {
    const PolicyPtr stage = Policy::unite(
        Policy::seq(Policy::filter(not_dropped), table_policy(program, *table)),
        Policy::filter(Predicate::neg(not_dropped)));
    acc = Policy::seq(acc, stage);
  }
  // Finally, dropped packets produce no output.
  return Policy::seq(acc, Policy::filter(not_dropped));
}

bool behaviors_agree(const std::shared_ptr<DataplaneProgram>& program,
                     const dataplane::RawPacket& raw) {
  dataplane::PisaSwitch sw(program);
  dataplane::ParsedPacket parsed;
  try {
    parsed = sw.parse(raw);
  } catch (const std::exception&) {
    return true;  // unparseable packets are outside the model
  }
  const netkat::Packet input = abstract_packet(parsed);

  sw.run_pipeline(parsed);
  const auto switch_out = sw.deparse(parsed);

  const netkat::PacketSet model_out = netkat::eval(to_netkat(*program), input);

  if (!switch_out.has_value()) return model_out.empty();
  if (model_out.size() != 1) return false;
  const netkat::Packet& m = *model_out.begin();
  if (m.get(bridge_fields::kPort) != switch_out->port) return false;
  // Every header field of the final packet must agree.
  for (const auto& h : parsed.headers()) {
    if (!h.valid) continue;
    for (std::size_t i = 0; i < h.spec->fields.size(); ++i) {
      const std::string name = h.spec->name + "." + h.spec->fields[i].name;
      if (m.get(name) != h.values[i]) return false;
    }
  }
  return true;
}

bool refines(const std::shared_ptr<DataplaneProgram>& program,
             const netkat::PolicyPtr& spec,
             const std::vector<dataplane::RawPacket>& universe) {
  dataplane::PisaSwitch sw(program);
  for (const auto& raw : universe) {
    dataplane::ParsedPacket parsed;
    try {
      parsed = sw.parse(raw);
    } catch (const std::exception&) {
      continue;
    }
    const netkat::Packet input = abstract_packet(parsed);
    const netkat::PacketSet allowed = netkat::eval(spec, input);

    dataplane::ParsedPacket run = parsed;
    sw.run_pipeline(run);
    const auto out = sw.deparse(run);
    if (!out.has_value()) continue;  // dropping is always allowed to refine

    const bool permitted = std::any_of(
        allowed.begin(), allowed.end(), [&](const netkat::Packet& p) {
          return p.get(bridge_fields::kPort) == out->port;
        });
    if (!permitted) return false;
  }
  return true;
}

}  // namespace pera::core
