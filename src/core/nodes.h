// Node behaviours binding the RA principals to netsim nodes:
//
//   SwitchNode    — a PERA switch on the packet path (attesting element)
//   AppraiserNode — runs ra::Appraiser; appraises, certifies, stores
//   HostNode      — end host / relying party: sources flows, receives
//                   results, forwards in-band carriers for appraisal
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "core/wire.h"
#include "netsim/network.h"
#include "pera/pera_switch.h"
#include "ra/roles.h"

namespace pera::core {

class SwitchNode final : public netsim::NodeBehavior {
 public:
  explicit SwitchNode(std::unique_ptr<pera::PeraSwitch> sw)
      : switch_(std::move(sw)) {}

  [[nodiscard]] pera::PeraSwitch& pera() { return *switch_; }

  netsim::TransitResult on_transit(netsim::Network& net, netsim::NodeId self,
                                   netsim::Message& msg) override;
  void on_deliver(netsim::Network& net, netsim::NodeId self,
                  netsim::Message msg) override;

 private:
  std::unique_ptr<pera::PeraSwitch> switch_;
};

class AppraiserNode final : public netsim::NodeBehavior {
 public:
  AppraiserNode(std::string name, crypto::KeyStore& keys)
      : appraiser_(std::move(name), keys) {}

  [[nodiscard]] ra::Appraiser& appraiser() { return appraiser_; }

  void on_deliver(netsim::Network& net, netsim::NodeId self,
                  netsim::Message msg) override;

  /// Count of carrier records whose appraisal failed.
  [[nodiscard]] std::uint64_t failed_appraisals() const { return failures_; }

 private:
  void appraise_and_reply(netsim::Network& net, netsim::NodeId self,
                          const copland::EvidencePtr& evidence,
                          const crypto::Nonce& nonce, netsim::NodeId reply_to,
                          bool enforce_freshness);

  ra::Appraiser appraiser_;
  std::uint64_t failures_ = 0;
};

/// What a host records about a received flow packet.
struct ReceivedPacket {
  netsim::SimTime latency = 0;
  std::size_t carrier_bytes = 0;
  std::size_t carrier_records = 0;
};

class HostNode final : public netsim::NodeBehavior {
 public:
  explicit HostNode(std::string name, std::uint64_t seed = 0x1209)
      : rp_(std::move(name), seed) {}

  [[nodiscard]] ra::RelyingParty& relying_party() { return rp_; }

  /// When set, received in-band carriers are forwarded to this appraiser
  /// node for appraisal (the RP2 role in expression (4)).
  void forward_carriers_to(netsim::NodeId appraiser) {
    carrier_sink_ = appraiser;
  }

  /// Callback invoked on every "result" certificate received.
  using ResultHook = std::function<void(const ra::Certificate&)>;
  void on_result(ResultHook hook) { result_hook_ = std::move(hook); }

  void on_deliver(netsim::Network& net, netsim::NodeId self,
                  netsim::Message msg) override;

  [[nodiscard]] const std::vector<ReceivedPacket>& received() const {
    return received_;
  }
  [[nodiscard]] const std::vector<ra::Certificate>& results() const {
    return results_;
  }

 private:
  ra::RelyingParty rp_;
  std::optional<netsim::NodeId> carrier_sink_;
  ResultHook result_hook_;
  std::vector<ReceivedPacket> received_;
  std::vector<ra::Certificate> results_;
};

}  // namespace pera::core
