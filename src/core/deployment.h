// Deployment: instantiate a full RA-capable network from a topology —
// PERA switches on every switch/appliance node, an appraiser, relying-
// party hosts, provisioned keys and golden values — and drive the Fig. 2
// attestation variants and policy-carrying flows over it.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "core/nodes.h"
#include "dataplane/builder.h"
#include "netsim/stats.h"

namespace pera::core {

struct DeploymentOptions {
  std::uint64_t seed = 42;
  pera::PeraConfig pera_config;
  /// Use hash-based public-key signatures instead of TPM-style HMAC keys.
  bool use_xmss = false;
  unsigned xmss_height = 8;
  /// Program loaded onto each switch/appliance node. Default: router
  /// everywhere, ACL on appliance nodes.
  std::function<std::shared_ptr<dataplane::DataplaneProgram>(
      const netsim::NodeInfo&)>
      program_for;
};

/// Outcome of one Fig. 2 attestation exchange.
struct ChallengeReport {
  bool completed = false;   // a result arrived
  bool accepted = false;    // signature+nonce+verdict all good at the RP
  netsim::SimTime rtt = 0;  // challenge -> result latency
  std::uint64_t messages = 0;
  std::uint64_t bytes_on_wire = 0;
};

/// Outcome of a policy-carrying flow.
struct FlowReport {
  std::size_t packets_sent = 0;
  std::size_t packets_delivered = 0;
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
  std::size_t evidence_bytes_inband = 0;
  std::size_t certificates = 0;
  std::uint64_t appraisal_failures = 0;
  std::uint64_t attestations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t oob_messages = 0;
};

class Deployment {
 public:
  Deployment(netsim::Topology topo, DeploymentOptions options = {});

  [[nodiscard]] netsim::Network& network() { return net_; }
  [[nodiscard]] crypto::KeyStore& keys() { return keys_; }
  [[nodiscard]] AppraiserNode& appraiser() { return *appraiser_; }
  [[nodiscard]] const std::string& appraiser_name() const {
    return appraiser_name_;
  }
  [[nodiscard]] SwitchNode& switch_node(const std::string& name);
  [[nodiscard]] HostNode& host(const std::string& name);

  /// All switch/appliance node names (attesting elements).
  [[nodiscard]] std::vector<std::string> attesting_elements() const;

  /// Provision the appraiser with golden values for every attesting
  /// element's hardware, program and tables (and any custom properties
  /// named in `extra_properties`).
  void provision_goldens(const std::vector<std::string>& extra_properties = {});

  /// Prim3 pre-deployment check: is the policy's collector reachable from
  /// every evidence producer in the current topology (including any link
  /// failures)? Throws std::runtime_error when not `deployable()` and
  /// `enforce` is true.
  [[nodiscard]] bool validate_policy(const nac::CompiledPolicy& policy,
                                     bool enforce = false) const;

  // --- Fig. 2 drivers -------------------------------------------------------
  /// Expression (3): RP challenges the switch; evidence goes out-of-band
  /// to the appraiser; the result returns to the RP. When `rp2` is given,
  /// it afterwards retrieves the stored certificate by nonce.
  ChallengeReport run_out_of_band(const std::string& rp_host,
                                  const std::string& switch_name,
                                  nac::DetailMask detail,
                                  const std::string& rp2 = "");

  /// Expression (4): evidence reaches RP2 in-band, who asks the appraiser.
  ChallengeReport run_in_band(const std::string& rp1_host,
                              const std::string& switch_name,
                              const std::string& rp2_host,
                              nac::DetailMask detail);

  /// Out-of-band attestation over a lossy network: retry with a fresh
  /// nonce after `timeout` until a result arrives or `max_attempts` is
  /// exhausted. `attempts` in the report counts challenges sent.
  struct RetryReport : ChallengeReport {
    std::size_t attempts = 0;
  };
  RetryReport run_out_of_band_with_retries(
      const std::string& rp_host, const std::string& switch_name,
      nac::DetailMask detail, netsim::SimTime timeout = 10 * netsim::kMillisecond,
      std::size_t max_attempts = 5);

  // --- policy-carrying flows -----------------------------------------------
  /// Send `packets` data packets from src to dst carrying `policy` and
  /// collect the full RA accounting.
  FlowReport send_flow(const std::string& src, const std::string& dst,
                       const nac::CompiledPolicy& policy, std::size_t packets,
                       bool in_band, std::uint8_t sampling_log2 = 0,
                       const dataplane::PacketSpec& pkt_spec = {});

  /// Baseline: the same flow with no RA policy at all.
  FlowReport send_plain_flow(const std::string& src, const std::string& dst,
                             std::size_t packets,
                             const dataplane::PacketSpec& pkt_spec = {});

 private:
  FlowReport flow_impl(const std::string& src, const std::string& dst,
                       const std::optional<nac::PolicyHeader>& header,
                       std::size_t packets,
                       const dataplane::PacketSpec& pkt_spec);

  netsim::Network net_;
  crypto::KeyStore keys_;
  std::map<std::string, std::unique_ptr<SwitchNode>> switches_;
  std::map<std::string, std::unique_ptr<HostNode>> hosts_;
  std::unique_ptr<AppraiserNode> appraiser_;
  std::string appraiser_name_;
  std::uint64_t next_flow_id_ = 1;
};

}  // namespace pera::core
