#include "core/wire.h"

#include <stdexcept>

#include "obs/obs.h"

namespace pera::core {

using crypto::Bytes;
using crypto::BytesView;

void FlowBundle::to_message(netsim::Message& msg) const {
  msg.headers.clear();
  const Bytes policy_bytes = policy ? policy->serialize() : Bytes{};
  crypto::append_u32(msg.headers, static_cast<std::uint32_t>(policy_bytes.size()));
  crypto::append(msg.headers, BytesView{policy_bytes.data(), policy_bytes.size()});
  const Bytes carrier_bytes = carrier.serialize();
  crypto::append_u32(msg.headers,
                     static_cast<std::uint32_t>(carrier_bytes.size()));
  crypto::append(msg.headers,
                 BytesView{carrier_bytes.data(), carrier_bytes.size()});

  msg.payload.clear();
  crypto::append_u32(msg.payload, raw.port);
  crypto::append(msg.payload, BytesView{raw.data.data(), raw.data.size()});
  PERA_OBS_COUNT("wire.flow_bundle.encoded_bytes",
                 msg.headers.size() + msg.payload.size());
  PERA_OBS_EVENT(obs::SpanKind::kWireEncode, "flow_bundle", 0,
                 msg.headers.size() + msg.payload.size());
}

FlowBundle FlowBundle::from_message(const netsim::Message& msg) {
  FlowBundle b;
  const BytesView hdr{msg.headers.data(), msg.headers.size()};
  std::size_t off = 0;
  const std::uint32_t policy_len = crypto::read_u32(hdr, off);
  off += 4;
  if (off + policy_len > hdr.size()) {
    throw std::invalid_argument("FlowBundle: truncated policy header");
  }
  if (policy_len > 0) {
    b.policy = nac::PolicyHeader::deserialize(hdr.subspan(off, policy_len));
  }
  off += policy_len;
  const std::uint32_t carrier_len = crypto::read_u32(hdr, off);
  off += 4;
  if (off + carrier_len != hdr.size()) {
    throw std::invalid_argument("FlowBundle: bad carrier length");
  }
  b.carrier = nac::EvidenceCarrier::deserialize(hdr.subspan(off, carrier_len));

  const BytesView pay{msg.payload.data(), msg.payload.size()};
  b.raw.port = crypto::read_u32(pay, 0);
  b.raw.data.assign(pay.begin() + 4, pay.end());
  PERA_OBS_COUNT("wire.flow_bundle.decoded_bytes",
                 msg.headers.size() + msg.payload.size());
  PERA_OBS_EVENT(obs::SpanKind::kWireDecode, "flow_bundle", 0,
                 msg.headers.size() + msg.payload.size());
  return b;
}

Bytes Challenge::serialize() const {
  Bytes out;
  crypto::append(out, nonce.value);
  out.push_back(detail);
  out.push_back(hash_before_sign ? 1 : 0);
  out.push_back(in_band_reply ? 1 : 0);
  crypto::append_u32(out, static_cast<std::uint32_t>(appraiser.size()));
  crypto::append(out, crypto::as_bytes(appraiser));
  PERA_OBS_COUNT("wire.challenge.encoded_bytes", out.size());
  PERA_OBS_EVENT(obs::SpanKind::kWireEncode, "challenge", 0, out.size());
  return out;
}

Challenge Challenge::deserialize(BytesView data) {
  if (data.size() < 32 + 3 + 4) {
    throw std::invalid_argument("Challenge: too short");
  }
  Challenge c;
  std::copy(data.begin(), data.begin() + 32, c.nonce.value.v.begin());
  c.detail = data[32];
  c.hash_before_sign = data[33] != 0;
  c.in_band_reply = data[34] != 0;
  const std::uint32_t len = crypto::read_u32(data, 35);
  if (39 + len != data.size()) {
    throw std::invalid_argument("Challenge: bad appraiser length");
  }
  c.appraiser.assign(reinterpret_cast<const char*>(data.data() + 39), len);
  return c;
}

Bytes EvidenceMsg::serialize() const {
  Bytes out;
  crypto::append(out, nonce.value);
  crypto::append_u32(out, static_cast<std::uint32_t>(evidence.size()));
  crypto::append(out, BytesView{evidence.data(), evidence.size()});
  PERA_OBS_COUNT("wire.evidence.encoded_bytes", out.size());
  PERA_OBS_EVENT(obs::SpanKind::kWireEncode, "evidence", 0, out.size());
  return out;
}

EvidenceMsg EvidenceMsg::deserialize(BytesView data) {
  if (data.size() < 36) throw std::invalid_argument("EvidenceMsg: too short");
  EvidenceMsg m;
  std::copy(data.begin(), data.begin() + 32, m.nonce.value.v.begin());
  const std::uint32_t len = crypto::read_u32(data, 32);
  if (36 + len != data.size()) {
    throw std::invalid_argument("EvidenceMsg: bad evidence length");
  }
  m.evidence.assign(data.begin() + 36, data.end());
  PERA_OBS_COUNT("wire.evidence.decoded_bytes", data.size());
  PERA_OBS_EVENT(obs::SpanKind::kWireDecode, "evidence", 0, data.size());
  return m;
}

Bytes NonceMsg::serialize() const {
  Bytes out;
  crypto::append(out, nonce.value);
  return out;
}

NonceMsg NonceMsg::deserialize(BytesView data) {
  if (data.size() != 32) throw std::invalid_argument("NonceMsg: bad size");
  NonceMsg m;
  std::copy(data.begin(), data.end(), m.nonce.value.v.begin());
  return m;
}

}  // namespace pera::core
