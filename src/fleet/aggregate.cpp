#include "fleet/aggregate.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/drbg.h"
#include "obs/obs.h"

namespace pera::fleet {

using crypto::Bytes;
using crypto::BytesView;
using crypto::Digest;

namespace {

constexpr std::size_t kMaxName = 1 << 12;       // place/region names
constexpr std::size_t kMaxEntries = 1 << 20;    // members per aggregate
constexpr std::size_t kMaxEvidence = 1 << 20;   // carried evidence bytes
constexpr std::size_t kMaxSig = 1 << 16;

void append_string(Bytes& out, const std::string& s) {
  crypto::append_u32(out, static_cast<std::uint32_t>(s.size()));
  crypto::append(out, crypto::as_bytes(s));
}

std::string read_string(BytesView data, std::size_t& off, std::size_t max_len,
                        const char* what) {
  const std::uint32_t len = crypto::read_u32(data, off);
  off += 4;
  if (len > max_len || off + len > data.size()) {
    throw std::invalid_argument(std::string(what) + ": bad string length");
  }
  std::string s(reinterpret_cast<const char*>(data.data() + off), len);
  off += len;
  return s;
}

Digest read_digest(BytesView data, std::size_t& off, const char* what) {
  if (off + 32 > data.size()) {
    throw std::invalid_argument(std::string(what) + ": truncated digest");
  }
  Digest d;
  std::copy(data.begin() + static_cast<std::ptrdiff_t>(off),
            data.begin() + static_cast<std::ptrdiff_t>(off) + 32, d.v.begin());
  off += 32;
  return d;
}

}  // namespace

const char* to_string(EntryOutcome o) {
  switch (o) {
    case EntryOutcome::kPass:
      return "pass";
    case EntryOutcome::kFail:
      return "fail";
    case EntryOutcome::kTimeout:
      return "timeout";
  }
  return "?";
}

Digest AggregateEntry::leaf_digest() const {
  crypto::Sha256 h;
  h.update("pera.fleet.entry.v1");
  Bytes hdr;
  crypto::append_u32(hdr, static_cast<std::uint32_t>(place.size()));
  h.update(BytesView{hdr.data(), hdr.size()});
  h.update(place);
  const std::uint8_t tag[2] = {static_cast<std::uint8_t>(outcome),
                               static_cast<std::uint8_t>(verdict ? 1 : 0)};
  h.update(BytesView{tag, 2});
  h.update(measurement_root);
  return h.finish();
}

Digest Aggregate::signing_payload() const {
  crypto::Sha256 h;
  h.update("pera.fleet.aggregate.v1");
  Bytes meta;
  append_string(meta, region);
  append_string(meta, appraiser);
  crypto::append_u64(meta, wave);
  h.update(BytesView{meta.data(), meta.size()});
  h.update(nonce.value);
  h.update(merkle_root);
  Bytes count;
  crypto::append_u32(count, static_cast<std::uint32_t>(entries.size()));
  h.update(BytesView{count.data(), count.size()});
  return h.finish();
}

Bytes Aggregate::serialize() const {
  Bytes out;
  append_string(out, region);
  append_string(out, appraiser);
  crypto::append_u64(out, wave);
  crypto::append(out, nonce.value);
  crypto::append(out, merkle_root);
  crypto::append_u32(out, static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    append_string(out, e.place);
    out.push_back(static_cast<std::uint8_t>(e.outcome));
    out.push_back(e.verdict ? 1 : 0);
    crypto::append_u32(out, e.attempts);
    crypto::append(out, e.measurement_root);
    crypto::append(out, e.evidence_digest);
    crypto::append_u32(out, static_cast<std::uint32_t>(e.evidence.size()));
    crypto::append(out, BytesView{e.evidence.data(), e.evidence.size()});
  }
  const Bytes sig = this->sig.serialize();
  crypto::append_u32(out, static_cast<std::uint32_t>(sig.size()));
  crypto::append(out, BytesView{sig.data(), sig.size()});
  PERA_OBS_COUNT("wire.fleet_aggregate.encoded_bytes", out.size());
  return out;
}

Aggregate Aggregate::deserialize(BytesView data) {
  Aggregate a;
  std::size_t off = 0;
  a.region = read_string(data, off, kMaxName, "Aggregate.region");
  a.appraiser = read_string(data, off, kMaxName, "Aggregate.appraiser");
  a.wave = crypto::read_u64(data, off);
  off += 8;
  a.nonce.value = read_digest(data, off, "Aggregate.nonce");
  a.merkle_root = read_digest(data, off, "Aggregate.merkle_root");
  const std::uint32_t count = crypto::read_u32(data, off);
  off += 4;
  if (count > kMaxEntries) {
    throw std::invalid_argument("Aggregate: entry count too large");
  }
  a.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    AggregateEntry e;
    e.place = read_string(data, off, kMaxName, "Aggregate.entry.place");
    if (off + 2 > data.size()) {
      throw std::invalid_argument("Aggregate: truncated entry");
    }
    const std::uint8_t outcome = data[off];
    if (outcome > static_cast<std::uint8_t>(EntryOutcome::kTimeout)) {
      throw std::invalid_argument("Aggregate: bad entry outcome");
    }
    e.outcome = static_cast<EntryOutcome>(outcome);
    e.verdict = data[off + 1] != 0;
    off += 2;
    e.attempts = crypto::read_u32(data, off);
    off += 4;
    e.measurement_root = read_digest(data, off, "Aggregate.entry.mroot");
    e.evidence_digest = read_digest(data, off, "Aggregate.entry.edigest");
    const std::uint32_t ev_len = crypto::read_u32(data, off);
    off += 4;
    if (ev_len > kMaxEvidence || off + ev_len > data.size()) {
      throw std::invalid_argument("Aggregate: bad evidence length");
    }
    e.evidence.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                      data.begin() + static_cast<std::ptrdiff_t>(off + ev_len));
    off += ev_len;
    a.entries.push_back(std::move(e));
  }
  const std::uint32_t sig_len = crypto::read_u32(data, off);
  off += 4;
  if (sig_len > kMaxSig || off + sig_len != data.size()) {
    throw std::invalid_argument("Aggregate: bad signature length");
  }
  a.sig = crypto::Signature::deserialize(data.subspan(off, sig_len));
  PERA_OBS_COUNT("wire.fleet_aggregate.decoded_bytes", data.size());
  return a;
}

Bytes WaveCommand::serialize() const {
  Bytes out;
  append_string(out, region);
  crypto::append_u64(out, wave);
  crypto::append(out, nonce.value);
  out.push_back(detail);
  out.push_back(carry_evidence ? 1 : 0);
  crypto::append_u32(out, static_cast<std::uint32_t>(members.size()));
  for (const auto& m : members) append_string(out, m);
  return out;
}

WaveCommand WaveCommand::deserialize(BytesView data) {
  WaveCommand c;
  std::size_t off = 0;
  c.region = read_string(data, off, kMaxName, "WaveCommand.region");
  c.wave = crypto::read_u64(data, off);
  off += 8;
  c.nonce.value = read_digest(data, off, "WaveCommand.nonce");
  if (off + 2 > data.size()) {
    throw std::invalid_argument("WaveCommand: truncated flags");
  }
  c.detail = data[off];
  c.carry_evidence = data[off + 1] != 0;
  off += 2;
  const std::uint32_t count = crypto::read_u32(data, off);
  off += 4;
  if (count > kMaxEntries) {
    throw std::invalid_argument("WaveCommand: member count too large");
  }
  c.members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    c.members.push_back(
        read_string(data, off, kMaxName, "WaveCommand.member"));
  }
  if (off != data.size()) {
    throw std::invalid_argument("WaveCommand: trailing bytes");
  }
  return c;
}

crypto::Nonce derive_member_nonce(const crypto::Nonce& wave_nonce,
                                  const std::string& place,
                                  std::uint64_t attempt) {
  crypto::Sha256 h;
  h.update("pera.fleet.member-nonce");
  h.update(wave_nonce.value);
  Bytes a;
  crypto::append_u64(a, attempt);
  h.update(BytesView{a.data(), a.size()});
  h.update(place);
  return crypto::Nonce{h.finish()};
}

Digest measurement_root_of(const copland::EvidencePtr& evidence) {
  const auto ms = copland::measurements_of(evidence);
  if (ms.empty()) return Digest{};
  crypto::Sha256 h;
  h.update("pera.fleet.measurements.v1");
  for (const auto* m : ms) {
    h.update(m->target);
    h.update(m->value);
  }
  return h.finish();
}

copland::EvidencePtr to_evidence(const Aggregate& agg) {
  std::vector<copland::EvidencePtr> leaves;
  leaves.reserve(agg.entries.size());
  for (const auto& e : agg.entries) {
    leaves.push_back(copland::Evidence::hashed(e.place, e.leaf_digest()));
  }
  const auto body = copland::Evidence::seq(
      copland::Evidence::nonce_ev(agg.nonce),
      copland::fold_par_canonical(std::move(leaves)));
  return copland::Evidence::signature(agg.appraiser, body, agg.sig);
}

EvidenceAggregator::EvidenceAggregator(std::string region,
                                       std::string appraiser,
                                       std::vector<std::string> members)
    : region_(std::move(region)), appraiser_(std::move(appraiser)) {
  set_members(std::move(members));
}

void EvidenceAggregator::set_members(std::vector<std::string> members) {
  std::sort(members.begin(), members.end());
  members_ = std::move(members);
  index_.clear();
  for (std::size_t i = 0; i < members_.size(); ++i) index_[members_[i]] = i;
  leaves_.assign(members_.size(), Digest{});
  tree_.assign(leaves_);
  entries_.assign(members_.size(), std::nullopt);
  recorded_ = 0;
}

void EvidenceAggregator::begin_wave(std::uint64_t wave,
                                    const crypto::Nonce& nonce) {
  wave_ = wave;
  nonce_ = nonce;
  entries_.assign(members_.size(), std::nullopt);
  recorded_ = 0;
}

void EvidenceAggregator::record(AggregateEntry entry) {
  const auto it = index_.find(entry.place);
  if (it == index_.end()) {
    throw std::invalid_argument("EvidenceAggregator: unknown member " +
                                entry.place);
  }
  const std::size_t i = it->second;
  if (!entries_[i]) ++recorded_;
  const Digest leaf = entry.leaf_digest();
  if (leaf != leaves_[i]) {
    leaves_[i] = leaf;
    tree_.set_leaf(i, leaf);
  }
  entries_[i] = std::move(entry);
}

Aggregate EvidenceAggregator::seal(crypto::Signer& signer) {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (entries_[i]) continue;
    AggregateEntry e;
    e.place = members_[i];
    e.outcome = EntryOutcome::kTimeout;
    record(std::move(e));
  }
  Aggregate agg;
  agg.region = region_;
  agg.appraiser = appraiser_;
  agg.wave = wave_;
  agg.nonce = nonce_;
  agg.entries.reserve(members_.size());
  for (const auto& e : entries_) agg.entries.push_back(*e);
  agg.merkle_root = tree_.root();
  agg.sig = signer.sign(agg.signing_payload());
  return agg;
}

AggregateCheck verify_aggregate(
    const Aggregate& agg, const std::vector<std::string>& expected_members,
    const crypto::Nonce& expected_nonce, std::uint64_t expected_wave,
    const VerifyOptions& opts) {
  AggregateCheck out;
  const auto fail = [&out](std::string reason) -> AggregateCheck {
    out.valid = false;
    out.reason = std::move(reason);
    PERA_OBS_COUNT("fleet.aggregate.rejected");
    return out;
  };

  if (opts.keys == nullptr) return fail("no key store");
  const crypto::Verifier* v = opts.keys->verifier_for(agg.appraiser);
  if (v == nullptr) return fail("unknown regional " + agg.appraiser);
  if (!crypto::verify_any(*v, agg.signing_payload(), agg.sig)) {
    return fail("bad regional signature");
  }
  if (agg.wave != expected_wave) return fail("wave mismatch");
  if (agg.nonce != expected_nonce) return fail("nonce mismatch");

  std::vector<std::string> expected = expected_members;
  std::sort(expected.begin(), expected.end());
  if (agg.entries.size() != expected.size()) {
    return fail("member count mismatch");
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (agg.entries[i].place != expected[i]) {
      return fail("member coverage mismatch at " + agg.entries[i].place);
    }
  }

  std::vector<Digest> leaves;
  leaves.reserve(agg.entries.size());
  for (const auto& e : agg.entries) leaves.push_back(e.leaf_digest());
  crypto::IncrementalMerkleTree recompute(std::move(leaves));
  if (recompute.root() != agg.merkle_root) return fail("merkle root mismatch");

  // Deterministic freshness pass over every carried evidence blob: decode,
  // digest check, and derived-nonce binding. A regional replaying an old
  // wave's evidence fails here on every aggregate, not only when audited.
  struct Decoded {
    std::size_t index;
    copland::EvidencePtr evidence;
    crypto::Nonce nonce;
  };
  std::vector<Decoded> decoded;
  for (std::size_t i = 0; i < agg.entries.size(); ++i) {
    const AggregateEntry& e = agg.entries[i];
    if (e.evidence.empty()) {
      if (opts.require_evidence && e.outcome == EntryOutcome::kPass) {
        out.blamed.push_back(e.place);
        return fail("pass entry without evidence: " + e.place);
      }
      continue;
    }
    copland::EvidencePtr ev;
    try {
      ev = copland::decode(BytesView{e.evidence.data(), e.evidence.size()});
    } catch (const std::exception&) {
      out.blamed.push_back(e.place);
      return fail("undecodable evidence: " + e.place);
    }
    if (copland::digest(ev) != e.evidence_digest) {
      out.blamed.push_back(e.place);
      return fail("evidence digest mismatch: " + e.place);
    }
    const std::uint32_t tries =
        std::min(std::max(e.attempts, std::uint32_t{1}), opts.max_attempts);
    std::optional<crypto::Nonce> matched;
    const auto nonce_nodes = copland::nonces_of(ev);
    for (std::uint32_t a = 1; a <= tries && !matched; ++a) {
      const crypto::Nonce want = derive_member_nonce(expected_nonce, e.place, a);
      for (const auto* n : nonce_nodes) {
        if (n->nonce == want) {
          matched = want;
          break;
        }
      }
    }
    if (!matched) {
      out.blamed.push_back(e.place);
      return fail("stale or unbound evidence nonce: " + e.place);
    }
    decoded.push_back(Decoded{i, std::move(ev), *matched});
  }

  // Seeded audit: re-appraise a sample of the carried evidence against
  // the root's own goldens; the regional's verdicts must agree.
  if (opts.root_appraiser != nullptr && opts.audit_entries > 0 &&
      !decoded.empty()) {
    crypto::Drbg rng(opts.audit_seed ^ agg.wave);
    std::vector<std::size_t> order(decoded.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform(i)]);
    }
    const std::size_t n_audit = std::min(opts.audit_entries, decoded.size());
    for (std::size_t k = 0; k < n_audit; ++k) {
      const Decoded& d = decoded[order[k]];
      const AggregateEntry& e = agg.entries[d.index];
      const ra::AttestationResult res = opts.root_appraiser->appraise(
          d.evidence, d.nonce, /*certify=*/false, /*now=*/0,
          /*enforce_freshness=*/false);
      ++out.audited;
      PERA_OBS_COUNT("fleet.audit.entries");
      if (res.ok != e.verdict) {
        out.blamed.push_back(e.place);
        return fail("audit verdict mismatch: " + e.place);
      }
    }
  }

  for (const auto& e : agg.entries) {
    out.per_switch[e.place] = PerSwitchVerdict{e.outcome, e.verdict};
  }
  out.valid = true;
  return out;
}

}  // namespace pera::fleet
