// Evidence composition trees for delegated appraisal.
//
// Per wave, a regional appraiser runs one attestation round against each
// member, appraises the evidence locally, and folds the per-switch
// outcomes into ONE signed Aggregate: a Merkle tree over per-member leaf
// digests plus the wave nonce, signed with the regional's device key. The
// root verifies a single signature + Merkle recompute per region per
// wave instead of `fanout` certificates, recovers per-switch verdicts
// from the entries, and spot-audits carried raw evidence against its own
// golden values to keep the regional honest.
//
// Freshness is layered:
//  * member evidence binds a *derived* nonce
//    H(wave_nonce ‖ attempt ‖ place) — the root can re-derive it during
//    audits without another message, so a regional replaying last wave's
//    evidence is caught deterministically;
//  * the regional's signature covers (region ‖ appraiser ‖ wave ‖ nonce ‖
//    merkle_root ‖ count), binding the whole composition to the wave.
//
// Leaf digests are nonce-INDEPENDENT (place ‖ outcome ‖ verdict ‖
// measurement_root): a member whose state did not change between waves
// keeps its leaf, so the regional's incremental Merkle tree re-hashes
// O(changed members · log fanout) per wave, not O(fanout).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "copland/evidence.h"
#include "crypto/incremental_merkle.h"
#include "crypto/keystore.h"
#include "crypto/nonce.h"
#include "crypto/signer.h"
#include "nac/detail.h"
#include "ra/roles.h"

namespace pera::fleet {

/// How one member's round ended, as recorded in the aggregate.
enum class EntryOutcome : std::uint8_t {
  kPass = 0,
  kFail = 1,
  kTimeout = 2,
};

[[nodiscard]] const char* to_string(EntryOutcome o);

/// One member's slot in a composition tree.
struct AggregateEntry {
  std::string place;
  EntryOutcome outcome = EntryOutcome::kTimeout;
  bool verdict = false;
  std::uint32_t attempts = 0;
  /// Digest over the evidence's measurement values in order (zero when no
  /// evidence arrived). Nonce-independent: stable across waves while the
  /// member's measured state is stable.
  crypto::Digest measurement_root{};
  /// copland::digest of the member's evidence (zero when none).
  crypto::Digest evidence_digest{};
  /// Raw encoded evidence, carried for root-side audits (may be empty —
  /// e.g. timeouts, or transports that cannot carry evidence).
  crypto::Bytes evidence;

  /// The Merkle leaf: H("pera.fleet.entry.v1" ‖ place ‖ outcome ‖
  /// verdict ‖ measurement_root).
  [[nodiscard]] crypto::Digest leaf_digest() const;
};

/// One signed composition tree: everything the root needs per region per
/// wave.
struct Aggregate {
  std::string region;
  std::string appraiser;  // the regional that signed
  std::uint64_t wave = 0;
  crypto::Nonce nonce{};  // the root's wave nonce
  std::vector<AggregateEntry> entries;  // sorted by place
  crypto::Digest merkle_root{};
  crypto::Signature sig;

  /// The digest the regional signs: H("pera.fleet.aggregate.v1" ‖ region
  /// ‖ appraiser ‖ wave ‖ nonce ‖ merkle_root ‖ count).
  [[nodiscard]] crypto::Digest signing_payload() const;

  [[nodiscard]] crypto::Bytes serialize() const;
  /// Throws std::invalid_argument on malformed input (fuzzed surface).
  [[nodiscard]] static Aggregate deserialize(crypto::BytesView data);
};

/// The root's wave instruction to a regional appraiser.
struct WaveCommand {
  std::string region;
  std::uint64_t wave = 0;
  crypto::Nonce nonce{};
  nac::DetailMask detail = 0;
  bool carry_evidence = true;  // entries must ship raw evidence for audits
  std::vector<std::string> members;

  [[nodiscard]] crypto::Bytes serialize() const;
  /// Throws std::invalid_argument on malformed input (fuzzed surface).
  [[nodiscard]] static WaveCommand deserialize(crypto::BytesView data);
};

/// The nonce a member's attempt binds: H("pera.fleet.member-nonce" ‖
/// wave_nonce ‖ attempt ‖ place). Derivable by regional and root alike.
[[nodiscard]] crypto::Nonce derive_member_nonce(const crypto::Nonce& wave_nonce,
                                                const std::string& place,
                                                std::uint64_t attempt);

/// Digest over the measurement values of `evidence` in pre-order (zero
/// when it has none) — the nonce-independent state fingerprint leaves are
/// built from.
[[nodiscard]] crypto::Digest measurement_root_of(
    const copland::EvidencePtr& evidence);

/// Render an aggregate as a Copland evidence term: the regional's
/// signature over seq(wave nonce, canonical par-fold of the per-member
/// leaf digests). Structural/composition view — authoritative
/// verification is verify_aggregate().
[[nodiscard]] copland::EvidencePtr to_evidence(const Aggregate& agg);

/// Builds a region's composition tree across waves, re-hashing only the
/// members whose leaf changed (O(Δ) via IncrementalMerkleTree).
class EvidenceAggregator {
 public:
  EvidenceAggregator(std::string region, std::string appraiser,
                     std::vector<std::string> members);

  /// Replace the member set (rehome/split). Resets the tree.
  void set_members(std::vector<std::string> members);
  [[nodiscard]] const std::vector<std::string>& members() const {
    return members_;
  }

  /// Start a wave: all slots become pending; leaves persist from the
  /// previous wave.
  void begin_wave(std::uint64_t wave, const crypto::Nonce& nonce);

  /// Record one member's entry for the current wave. Throws
  /// std::invalid_argument for unknown members.
  void record(AggregateEntry entry);

  [[nodiscard]] std::size_t recorded() const { return recorded_; }
  [[nodiscard]] bool complete() const { return recorded_ == members_.size(); }

  /// Build and sign the aggregate for the current wave. Missing members
  /// are filled with kTimeout entries, so seal() is always total.
  [[nodiscard]] Aggregate seal(crypto::Signer& signer);

  [[nodiscard]] const crypto::IncrementalMerkleTree::Stats& tree_stats()
      const {
    return tree_.stats();
  }

 private:
  std::string region_;
  std::string appraiser_;
  std::vector<std::string> members_;  // sorted
  std::map<std::string, std::size_t> index_;
  crypto::IncrementalMerkleTree tree_;
  std::vector<std::optional<AggregateEntry>> entries_;
  std::vector<crypto::Digest> leaves_;
  std::uint64_t wave_ = 0;
  crypto::Nonce nonce_{};
  std::size_t recorded_ = 0;
};

/// Per-switch verdict recovered from a valid aggregate.
struct PerSwitchVerdict {
  EntryOutcome outcome = EntryOutcome::kTimeout;
  bool verdict = false;
};

struct VerifyOptions {
  /// Must hold the regional's verifier.
  const crypto::KeyStore* keys = nullptr;
  /// Root-side appraiser holding golden values; audited evidence is
  /// re-appraised against it (non-const: appraisal counts). nullptr
  /// disables audits.
  ra::Appraiser* root_appraiser = nullptr;
  /// Carried-evidence entries audited per aggregate (seeded choice).
  std::size_t audit_entries = 2;
  std::uint64_t audit_seed = 0;
  /// Attempts tried when re-deriving a member nonce.
  std::uint32_t max_attempts = 8;
  /// Reject kPass entries that carry no evidence (set when the wave
  /// command demanded carried evidence): a regional cannot vouch for a
  /// member without something auditable.
  bool require_evidence = false;
};

struct AggregateCheck {
  bool valid = false;
  std::string reason;  // first failure, empty when valid
  std::size_t audited = 0;
  /// Audited places whose evidence failed re-verification — where blame
  /// lands when a composition tree lies.
  std::vector<std::string> blamed;
  std::map<std::string, PerSwitchVerdict> per_switch;
};

/// Root-side verification of one aggregate: regional signature, wave and
/// nonce binding, exact member coverage, Merkle recompute, derived-nonce
/// freshness of every carried evidence blob, and a seeded audit that
/// re-appraises a sample against the root's goldens.
[[nodiscard]] AggregateCheck verify_aggregate(
    const Aggregate& agg, const std::vector<std::string>& expected_members,
    const crypto::Nonce& expected_nonce, std::uint64_t expected_wave,
    const VerifyOptions& opts);

}  // namespace pera::fleet
