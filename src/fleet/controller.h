// Fleet-scale hierarchical appraisal, assembled.
//
// Two decorators complete the delegation chain over any deployment:
//
//  * RegionalNode rides a regional appraiser's switch slot. It stays a
//    normal attesting element (the root's direct challenges reach the
//    displaced SwitchNode), and additionally serves "wave-cmd": it runs
//    one paced attestation round per member (RegionSession + token
//    bucket), appraises the evidence locally against a copy of the
//    goldens, folds outcomes into an incremental composition tree, and
//    returns ONE signed Aggregate to the root.
//
//  * FleetController rides the root host. It partitions the fleet
//    (DelegationTree), launches staggered per-region waves
//    (WaveScheduler), keeps a trust machine per member AND per regional,
//    verifies each aggregate (signature, Merkle, nonce freshness, seeded
//    evidence audits), recovers per-switch verdicts, and on regional
//    failure probes members directly, splits chronically failing
//    regions, and re-homes a quarantined regional's domains onto a
//    sibling followed by an immediate bulk re-attestation wave.
//
// Root appraisal load is strictly bounded: direct rounds (regionals +
// probes) pass an admission gate of at most `fanout` concurrent rounds,
// and each regional's member window is capped the same way — fan-out is
// bounded at every tier.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "ctrl/reroute.h"
#include "ctrl/transport.h"
#include "ctrl/trust.h"
#include "fleet/aggregate.h"
#include "fleet/delegation.h"
#include "fleet/wave.h"

namespace pera::fleet {

struct FleetConfig {
  /// Fan-out bound: members per region, concurrent member rounds per
  /// regional, and concurrent direct rounds at the root.
  std::size_t fanout = 32;
  /// Detail attested per wave and per direct round.
  nac::DetailMask detail = nac::EvidenceDetail::kHardware |
                           nac::EvidenceDetail::kProgram |
                           nac::EvidenceDetail::kTables;
  WaveConfig wave;
  /// Regional -> member rounds.
  ctrl::TransportConfig transport;
  /// Root -> regional direct rounds and probes.
  ctrl::TransportConfig root_transport;
  ctrl::TrustPolicy trust;
  /// Root-side deadline for a region's aggregate after the wave fires.
  netsim::SimTime wave_timeout = 150 * netsim::kMillisecond;
  /// Token-bucket admission for member rounds at each regional.
  double admit_rate = 4000.0;  // rounds per second
  double admit_burst = 16.0;
  /// Carried-evidence entries the root re-appraises per aggregate.
  std::size_t audit_entries = 2;
  /// Entries ship raw evidence (required for audits; netsim default).
  bool carry_evidence = true;
  /// Keep a direct re-attestation round on each regional per wave.
  bool attest_regionals = true;
  /// Consecutive aggregate failures before a region is split in half.
  int split_after_failures = 2;
  std::size_t min_split_size = 4;
  bool quarantine_reroutes = true;
};

/// The delegated appraiser riding one regional's node slot.
class RegionalNode final : public netsim::NodeBehavior {
 public:
  RegionalNode(core::Deployment& dep, const std::string& place,
               const FleetConfig& config, std::uint64_t seed);
  ~RegionalNode() override;

  RegionalNode(const RegionalNode&) = delete;
  RegionalNode& operator=(const RegionalNode&) = delete;

  /// Displace the switch's behaviour (restored on destruction).
  void attach();

  netsim::TransitResult on_transit(netsim::Network& net, netsim::NodeId self,
                                   netsim::Message& msg) override;
  void on_deliver(netsim::Network& net, netsim::NodeId self,
                  netsim::Message msg) override;

  /// Adversary hook: while set, this regional fabricates passing entries
  /// for `member` (replaying the last honest evidence) instead of
  /// actually challenging it.
  void forge_member(const std::string& member, bool forge);

  [[nodiscard]] std::uint64_t waves_served() const { return waves_served_; }
  [[nodiscard]] std::uint64_t aggregates_sent() const {
    return aggregates_sent_;
  }
  [[nodiscard]] std::uint64_t forged_entries() const { return forged_entries_; }
  [[nodiscard]] std::size_t peak_inflight() const { return peak_inflight_; }
  [[nodiscard]] const ctrl::EvidenceTransport& transport() const {
    return transport_;
  }
  /// Composition-tree work counters for `region` (O(Δ) assertions).
  [[nodiscard]] const crypto::IncrementalMerkleTree::Stats* tree_stats(
      const std::string& region) const;

 private:
  struct RegionCtx {
    std::unique_ptr<EvidenceAggregator> aggregator;
    std::unique_ptr<RegionSession> session;
    std::uint64_t wave = 0;
    crypto::Nonce nonce{};
    nac::DetailMask detail = 0;
    bool carry = true;
    netsim::NodeId reply_to = netsim::kNoNode;
  };
  struct Stash {
    crypto::Bytes evidence;
    crypto::Digest evidence_digest{};
    crypto::Digest measurement_root{};
  };
  struct LastGood {
    crypto::Bytes evidence;
    crypto::Digest evidence_digest{};
    crypto::Digest measurement_root{};
  };

  void sync_reference_values();
  void handle_wave(netsim::Network& net, const netsim::Message& msg);
  void handle_evidence(netsim::Network& net, const netsim::Message& msg);
  void start_member_round(const std::string& region,
                          const std::string& member);
  void finish_member_round(const std::string& member,
                           const ctrl::RoundOutcome& out);
  void seal_and_send(const std::string& region);

  core::Deployment* dep_;
  std::string place_;
  netsim::NodeId self_;
  FleetConfig config_;
  netsim::NodeBehavior* inner_;
  bool attached_ = false;
  ra::Appraiser appraiser_;  // local goldens copy
  TokenBucket bucket_;
  ctrl::EvidenceTransport transport_;
  std::map<std::string, RegionCtx> regions_;
  std::map<std::string, std::string> member_region_;
  std::map<std::string, crypto::Nonce> member_wave_nonce_;
  std::map<crypto::Digest, Stash> stash_;  // by result nonce, transient
  std::map<std::string, LastGood> last_good_;
  std::set<std::string> forged_;
  std::uint64_t waves_served_ = 0;
  std::uint64_t aggregates_sent_ = 0;
  std::uint64_t forged_entries_ = 0;
  std::uint64_t stale_completions_ = 0;
  std::size_t peak_inflight_ = 0;
};

struct FleetStats {
  std::uint64_t waves_launched = 0;
  std::uint64_t aggregates_received = 0;
  std::uint64_t aggregates_valid = 0;
  std::uint64_t aggregates_invalid = 0;
  std::uint64_t aggregates_timeout = 0;
  std::uint64_t aggregates_late = 0;
  std::uint64_t entries_applied = 0;
  std::uint64_t rounds_subsumed = 0;
  std::uint64_t probe_rounds = 0;
  std::uint64_t region_splits = 0;
  std::uint64_t domains_rehomed = 0;
};

/// One entry of the fleet-wide trust-transition timeline.
struct FleetTimelineEntry {
  std::string place;
  ctrl::TrustTransition transition;
};

class FleetController final : public netsim::NodeBehavior {
 public:
  FleetController(core::Deployment& dep, const std::string& host,
                  DelegationTree tree, FleetConfig config,
                  std::uint64_t seed);
  ~FleetController() override;

  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  /// Attach root + regionals and start launching waves.
  void start();
  void stop();

  netsim::TransitResult on_transit(netsim::Network& net, netsim::NodeId self,
                                   netsim::Message& msg) override;
  void on_deliver(netsim::Network& net, netsim::NodeId self,
                  netsim::Message msg) override;

  [[nodiscard]] const DelegationTree& tree() const { return tree_; }
  [[nodiscard]] const FleetStats& stats() const { return stats_; }
  [[nodiscard]] WaveScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const ctrl::EvidenceTransport& transport() const {
    return transport_;
  }
  [[nodiscard]] const ctrl::QuarantineEnforcer& quarantine() const {
    return enforcer_;
  }
  [[nodiscard]] RegionalNode& regional(const std::string& place);
  [[nodiscard]] const ctrl::TrustStateMachine& trust(
      const std::string& place) const;
  /// A regional's *delegation* trust, fed by aggregate outcomes only.
  /// Device trust (direct rounds) and delegation trust are separate
  /// machines so a pass on one channel can never erase failures on the
  /// other; either one quarantining triggers failover.
  [[nodiscard]] const ctrl::TrustStateMachine& delegation_trust(
      const std::string& place) const;
  [[nodiscard]] const std::vector<FleetTimelineEntry>& timeline() const {
    return timeline_;
  }
  [[nodiscard]] std::optional<netsim::SimTime> first_transition(
      const std::string& place, ctrl::TrustState state) const;
  /// Latest appraisal verdict per member, recovered from valid
  /// aggregates (flat-appraisal parity checks).
  [[nodiscard]] const std::map<std::string, bool>& last_verdicts() const {
    return last_verdicts_;
  }
  /// High-water mark of concurrent direct rounds at the root (gated at
  /// config.fanout).
  [[nodiscard]] std::size_t peak_root_inflight() const {
    return peak_root_inflight_;
  }

  using TransitionHook = std::function<void(const std::string& place,
                                            const ctrl::TrustTransition&)>;
  void on_transition(TransitionHook hook) { hook_ = std::move(hook); }

 private:
  struct PendingWave {
    std::uint64_t wave = 0;
    crypto::Nonce nonce{};
    std::string appraiser;
    std::vector<std::string> members;
  };

  void fire_wave(const std::string& region, std::uint64_t wave);
  void handle_aggregate(netsim::Network& net, const netsim::Message& msg);
  void on_wave_timeout(const std::string& region, std::uint64_t wave);
  void issue_direct_round(const std::string& place);
  void start_direct_round(const std::string& place);
  void probe_region(const std::string& region,
                    const std::vector<std::string>& members);
  void handle_regional_quarantine(const std::string& place);
  void feed(const std::string& place, ctrl::Outcome o);
  void feed_delegation(const std::string& place, ctrl::Outcome o);
  [[nodiscard]] bool is_regional(const std::string& place) const {
    return regionals_.contains(place);
  }

  core::Deployment* dep_;
  std::string host_name_;
  netsim::NodeId self_;
  FleetConfig config_;
  std::uint64_t seed_;
  netsim::NodeBehavior* inner_;
  bool attached_ = false;
  DelegationTree tree_;
  ctrl::EvidenceTransport transport_;
  WaveScheduler scheduler_;
  ctrl::QuarantineEnforcer enforcer_;
  crypto::Drbg wave_nonce_rng_;
  std::map<std::string, std::unique_ptr<RegionalNode>> regionals_;
  std::map<std::string, std::unique_ptr<ctrl::TrustStateMachine>> machines_;
  /// Per-regional delegation trust (aggregate valid/invalid/timeout).
  std::map<std::string, std::unique_ptr<ctrl::TrustStateMachine>> delegation_;
  std::map<std::string, PendingWave> pending_;
  std::map<std::string, int> failure_streak_;  // per region
  std::map<std::string, bool> last_verdicts_;
  std::vector<FleetTimelineEntry> timeline_;
  TransitionHook hook_;
  FleetStats stats_;
  std::size_t root_inflight_ = 0;
  std::size_t peak_root_inflight_ = 0;
  std::deque<std::string> direct_queue_;
};

}  // namespace pera::fleet
