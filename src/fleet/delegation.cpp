#include "fleet/delegation.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace pera::fleet {

DelegationTree DelegationTree::build(const std::vector<std::string>& members,
                                     const std::vector<std::string>& regionals,
                                     DelegationConfig config) {
  if (regionals.empty()) {
    throw std::invalid_argument("DelegationTree: no regional appraisers");
  }
  if (config.fanout == 0) config.fanout = 1;
  DelegationTree t;
  t.config_ = config;
  for (std::size_t i = 0; i < members.size(); i += config.fanout) {
    Region r;
    r.name = "g" + std::to_string(t.next_region_id_++);
    r.appraiser = regionals[(i / config.fanout) % regionals.size()];
    const std::size_t end = std::min(i + config.fanout, members.size());
    r.members.assign(members.begin() + static_cast<std::ptrdiff_t>(i),
                     members.begin() + static_cast<std::ptrdiff_t>(end));
    std::sort(r.members.begin(), r.members.end());
    t.index_members(r);
    t.regions_.emplace(r.name, std::move(r));
  }
  return t;
}

void DelegationTree::index_members(const Region& r) {
  for (const auto& m : r.members) {
    if (member_region_.contains(m)) {
      throw std::invalid_argument("DelegationTree: duplicate member " + m);
    }
    member_region_[m] = r.name;
  }
}

std::vector<const Region*> DelegationTree::regions() const {
  std::vector<const Region*> out;
  out.reserve(regions_.size());
  for (const auto& [name, r] : regions_) out.push_back(&r);
  return out;
}

const Region& DelegationTree::region(const std::string& name) const {
  const auto it = regions_.find(name);
  if (it == regions_.end()) {
    throw std::invalid_argument("DelegationTree: unknown region " + name);
  }
  return it->second;
}

const Region* DelegationTree::region_of_member(const std::string& member) const {
  const auto it = member_region_.find(member);
  if (it == member_region_.end()) return nullptr;
  return &regions_.at(it->second);
}

std::vector<std::string> DelegationTree::all_members() const {
  std::vector<std::string> out;
  out.reserve(member_region_.size());
  for (const auto& [m, r] : member_region_) out.push_back(m);
  return out;  // map iteration order is already sorted
}

std::vector<std::string> DelegationTree::appraisers() const {
  std::set<std::string> uniq;
  for (const auto& [name, r] : regions_) uniq.insert(r.appraiser);
  return {uniq.begin(), uniq.end()};
}

std::size_t DelegationTree::rehome(const std::string& from,
                                   const std::string& to) {
  std::size_t moved = 0;
  for (auto& [name, r] : regions_) {
    if (r.appraiser == from) {
      r.appraiser = to;
      ++moved;
    }
  }
  return moved;
}

std::optional<std::pair<std::string, std::string>> DelegationTree::split(
    const std::string& name, std::size_t min_size) {
  const auto it = regions_.find(name);
  if (it == regions_.end()) {
    throw std::invalid_argument("DelegationTree: unknown region " + name);
  }
  Region& old = it->second;
  if (min_size == 0) min_size = 1;
  if (old.members.size() < 2 * min_size) return std::nullopt;

  const std::size_t half = old.members.size() / 2;
  Region lo;
  lo.name = "g" + std::to_string(next_region_id_++);
  lo.appraiser = old.appraiser;
  lo.members.assign(old.members.begin(),
                    old.members.begin() + static_cast<std::ptrdiff_t>(half));
  Region hi;
  hi.name = "g" + std::to_string(next_region_id_++);
  hi.appraiser = old.appraiser;
  hi.members.assign(old.members.begin() + static_cast<std::ptrdiff_t>(half),
                    old.members.end());

  for (const auto& m : old.members) member_region_.erase(m);
  regions_.erase(it);
  index_members(lo);
  index_members(hi);
  auto result = std::make_pair(lo.name, hi.name);
  regions_.emplace(lo.name, std::move(lo));
  regions_.emplace(hi.name, std::move(hi));
  return result;
}

std::optional<std::string> DelegationTree::sibling_of(
    const std::string& appraiser,
    const std::vector<std::string>& excluding) const {
  const std::vector<std::string> ring = appraisers();
  if (ring.empty()) return std::nullopt;
  const std::set<std::string> skip(excluding.begin(), excluding.end());
  // Start just after `appraiser` in the sorted ring and walk once around.
  const auto start = std::upper_bound(ring.begin(), ring.end(), appraiser);
  const std::size_t base = static_cast<std::size_t>(start - ring.begin());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const std::string& cand = ring[(base + i) % ring.size()];
    if (cand == appraiser || skip.contains(cand)) continue;
    return cand;
  }
  return std::nullopt;
}

std::string policy_term(const Region& r) {
  std::string members;
  for (const auto& m : r.members) {
    if (!members.empty()) members += ", ";
    members += m;
  }
  return "@" + r.appraiser + " [(forall p in {" + members +
         "}: @p (attest -> # -> !)) -> compose -> !]";
}

std::vector<std::string> fleet_switch_names(std::size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back("sw" + std::to_string(i));
  return out;
}

std::vector<std::string> fleet_regional_names(std::size_t n_switches,
                                              std::size_t fanout) {
  if (fanout == 0) fanout = 1;
  const std::size_t regions = (n_switches + fanout - 1) / fanout;
  std::vector<std::string> out;
  out.reserve(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    out.push_back("r" + std::to_string(r));
  }
  return out;
}

}  // namespace pera::fleet
