#include "fleet/controller.h"

#include <algorithm>
#include <stdexcept>

#include "core/wire.h"
#include "obs/obs.h"

namespace pera::fleet {

namespace {
/// Deterministic per-place seed derivation (stable across platforms).
std::uint64_t place_seed(std::uint64_t seed, const std::string& name) {
  const crypto::Digest d = crypto::sha256(name);
  return seed ^ crypto::read_u64(crypto::BytesView{d.v.data(), d.v.size()}, 0);
}
}  // namespace

// --- RegionalNode ----------------------------------------------------------

RegionalNode::RegionalNode(core::Deployment& dep, const std::string& place,
                           const FleetConfig& config, std::uint64_t seed)
    : dep_(&dep),
      place_(place),
      self_(dep.network().topology().require(place)),
      config_(config),
      inner_(dep.network().behavior_of(self_)),
      appraiser_(place, dep.keys()),
      bucket_(config.admit_rate, config.admit_burst),
      transport_(dep.network(), self_, place, dep.keys(), config.transport,
                 place_seed(seed, place)) {
  sync_reference_values();

  // Member rounds bind derived nonces so the root can audit freshness
  // without holding per-member round state.
  transport_.set_nonce_source(
      [this](const std::string& member, std::size_t attempt) {
        const auto it = member_wave_nonce_.find(member);
        const crypto::Nonce wave_nonce =
            it == member_wave_nonce_.end() ? crypto::Nonce{} : it->second;
        return derive_member_nonce(wave_nonce, member, attempt);
      });
}

void RegionalNode::sync_reference_values() {
  // The delegated appraiser judges with the root's reference values: a
  // copy of the goldens (and policy) provisioned out-of-band. Re-synced
  // at every wave command so goldens provisioned or rotated after this
  // node was built still reach the delegated tier.
  ra::Appraiser& root = dep_->appraiser().appraiser();
  for (const auto& [cid, golden] : root.goldens()) {
    appraiser_.set_golden(cid.first, cid.second, golden);
  }
  if (root.policy()) appraiser_.set_policy(*root.policy());
}

RegionalNode::~RegionalNode() {
  if (attached_) dep_->network().attach(self_, inner_);
}

void RegionalNode::attach() {
  if (attached_) return;
  dep_->network().attach(self_, this);
  attached_ = true;
}

netsim::TransitResult RegionalNode::on_transit(netsim::Network& net,
                                               netsim::NodeId self,
                                               netsim::Message& msg) {
  if (inner_ != nullptr) return inner_->on_transit(net, self, msg);
  return {};
}

void RegionalNode::on_deliver(netsim::Network& net, netsim::NodeId self,
                              netsim::Message msg) {
  if (msg.type == "wave-cmd") {
    handle_wave(net, msg);
    return;
  }
  if (msg.type == "evidence") {
    handle_evidence(net, msg);
    return;
  }
  // Everything else — including the root's direct "challenge" rounds
  // against this regional — goes to the displaced SwitchNode.
  if (inner_ != nullptr) inner_->on_deliver(net, self, std::move(msg));
}

void RegionalNode::forge_member(const std::string& member, bool forge) {
  if (forge) {
    forged_.insert(member);
  } else {
    forged_.erase(member);
  }
}

const crypto::IncrementalMerkleTree::Stats* RegionalNode::tree_stats(
    const std::string& region) const {
  const auto it = regions_.find(region);
  if (it == regions_.end() || !it->second.aggregator) return nullptr;
  return &it->second.aggregator->tree_stats();
}

void RegionalNode::handle_wave(netsim::Network& net,
                               const netsim::Message& msg) {
  WaveCommand cmd;
  try {
    cmd = WaveCommand::deserialize(
        crypto::BytesView{msg.payload.data(), msg.payload.size()});
  } catch (const std::exception&) {
    PERA_OBS_COUNT("fleet.wave.malformed");
    return;
  }
  (void)net;
  sync_reference_values();
  RegionCtx& ctx = regions_[cmd.region];
  std::vector<std::string> sorted = cmd.members;
  std::sort(sorted.begin(), sorted.end());
  if (!ctx.aggregator || ctx.aggregator->members() != sorted) {
    // First wave for this region here (or a membership change after a
    // rehome/split): fresh composition tree, full build on first seal.
    ctx.aggregator =
        std::make_unique<EvidenceAggregator>(cmd.region, place_, cmd.members);
  }
  if (ctx.session && !ctx.session->finished()) {
    ctx.session->abandon();
    PERA_OBS_COUNT("fleet.wave.overrun");
  }
  ctx.wave = cmd.wave;
  ctx.nonce = cmd.nonce;
  ctx.detail = cmd.detail;
  ctx.carry = cmd.carry_evidence;
  ctx.reply_to = msg.reply_to != netsim::kNoNode ? msg.reply_to : msg.src;
  ctx.aggregator->begin_wave(cmd.wave, cmd.nonce);
  ++waves_served_;
  PERA_OBS_COUNT("fleet.wave.served");

  const std::string region = cmd.region;
  ctx.session = std::make_unique<RegionSession>(
      cmd.members, RegionSession::Config{config_.fanout, &bucket_},
      [this] { return dep_->network().now(); },
      [this](netsim::SimTime delay, std::function<void()> fn) {
        dep_->network().events().schedule_in(delay, std::move(fn));
      },
      [this, region](const std::string& member) {
        start_member_round(region, member);
      },
      [this, region] { seal_and_send(region); });
  ctx.session->run();
}

void RegionalNode::start_member_round(const std::string& region,
                                      const std::string& member) {
  const auto it = regions_.find(region);
  if (it == regions_.end()) return;
  RegionCtx& ctx = it->second;
  member_region_[member] = region;
  member_wave_nonce_[member] = ctx.nonce;

  if (forged_.contains(member)) {
    // The compromised-regional adversary: vouch for the member without
    // challenging it, replaying the last honest evidence. The stale
    // derived nonce is what the root's freshness pass catches.
    AggregateEntry e;
    e.place = member;
    e.outcome = EntryOutcome::kPass;
    e.verdict = true;
    e.attempts = 1;
    const auto lg = last_good_.find(member);
    if (lg != last_good_.end()) {
      e.measurement_root = lg->second.measurement_root;
      e.evidence_digest = lg->second.evidence_digest;
      if (ctx.carry) e.evidence = lg->second.evidence;
    }
    ++forged_entries_;
    PERA_OBS_COUNT("fleet.entries.forged");
    ctx.aggregator->record(std::move(e));
    ctx.session->complete(member);
    return;
  }

  transport_.begin_round(
      member, ctx.detail,
      [this](const std::string& p, const ctrl::RoundOutcome& out) {
        finish_member_round(p, out);
      });
}

void RegionalNode::finish_member_round(const std::string& member,
                                       const ctrl::RoundOutcome& out) {
  const auto rit = member_region_.find(member);
  if (rit == member_region_.end()) {
    ++stale_completions_;
    return;
  }
  const auto cit = regions_.find(rit->second);
  if (cit == regions_.end()) {
    ++stale_completions_;
    return;
  }
  RegionCtx& ctx = cit->second;
  const auto nit = member_wave_nonce_.find(member);
  if (nit == member_wave_nonce_.end() || !(nit->second == ctx.nonce)) {
    // A completion from an abandoned (overrun) wave: the new wave owns
    // the member's slot now.
    ++stale_completions_;
    PERA_OBS_COUNT("fleet.round.stale");
    return;
  }

  AggregateEntry e;
  e.place = member;
  e.attempts = static_cast<std::uint32_t>(out.attempts);
  if (!out.completed) {
    e.outcome = EntryOutcome::kTimeout;
  } else {
    e.verdict = out.verdict;
    e.outcome = out.verdict ? EntryOutcome::kPass : EntryOutcome::kFail;
    const auto sit = stash_.find(out.nonce.value);
    if (sit != stash_.end()) {
      e.measurement_root = sit->second.measurement_root;
      e.evidence_digest = sit->second.evidence_digest;
      if (ctx.carry) e.evidence = sit->second.evidence;
      if (out.verdict) {
        last_good_[member] = LastGood{sit->second.evidence,
                                      sit->second.evidence_digest,
                                      sit->second.measurement_root};
      }
    }
  }
  ctx.aggregator->record(std::move(e));
  if (ctx.session) ctx.session->complete(member);
}

void RegionalNode::handle_evidence(netsim::Network& net,
                                   const netsim::Message& msg) {
  core::EvidenceMsg em;
  copland::EvidencePtr ev;
  try {
    em = core::EvidenceMsg::deserialize(
        crypto::BytesView{msg.payload.data(), msg.payload.size()});
    ev = copland::decode(
        crypto::BytesView{em.evidence.data(), em.evidence.size()});
  } catch (const std::exception&) {
    PERA_OBS_COUNT("fleet.evidence.malformed");
    return;
  }
  const ra::AttestationResult res = appraiser_.appraise(
      ev, em.nonce, /*certify=*/false, static_cast<std::int64_t>(net.now()),
      /*enforce_freshness=*/true);
  crypto::Signer* signer = dep_->keys().signer_for(place_);
  if (signer == nullptr) return;
  ra::Certificate cert;
  cert.appraiser = place_;
  cert.nonce = em.nonce;
  cert.evidence_digest = copland::digest(ev);
  cert.verdict = res.ok;
  cert.issued_at = static_cast<std::int64_t>(net.now());
  cert.sig = signer->sign(cert.signing_payload());

  // Stash the raw evidence under the result's nonce BEFORE feeding the
  // transport: on_result completes the round synchronously, and the
  // completion handler recovers the evidence for the aggregate entry.
  stash_[em.nonce.value] = Stash{em.evidence, cert.evidence_digest,
                                 measurement_root_of(ev)};
  transport_.on_result(cert, net.now());
  stash_.erase(em.nonce.value);
}

void RegionalNode::seal_and_send(const std::string& region) {
  const auto it = regions_.find(region);
  if (it == regions_.end()) return;
  RegionCtx& ctx = it->second;
  crypto::Signer* signer = dep_->keys().signer_for(place_);
  if (signer == nullptr || !ctx.aggregator) return;
  if (ctx.session) {
    peak_inflight_ = std::max(peak_inflight_, ctx.session->peak_inflight());
  }
  const Aggregate agg = ctx.aggregator->seal(*signer);
  ++aggregates_sent_;
  PERA_OBS_COUNT("fleet.aggregate.sent");
  if (ctx.reply_to == netsim::kNoNode) return;
  netsim::Message out;
  out.src = self_;
  out.dst = ctx.reply_to;
  out.reply_to = self_;
  out.type = "aggregate";
  out.payload = agg.serialize();
  dep_->network().send(std::move(out));
}

// --- FleetController -------------------------------------------------------

FleetController::FleetController(core::Deployment& dep,
                                 const std::string& host, DelegationTree tree,
                                 FleetConfig config, std::uint64_t seed)
    : dep_(&dep),
      host_name_(host),
      self_(dep.network().topology().require(host)),
      config_(config),
      seed_(seed),
      inner_(dep.network().behavior_of(self_)),
      tree_(std::move(tree)),
      transport_(dep.network(), self_, dep.appraiser_name(), dep.keys(),
                 config.root_transport, seed),
      scheduler_(dep.network().events(), config.wave, seed + 1),
      enforcer_(dep.network()),
      wave_nonce_rng_(seed ^ 0xF1EE7A11D0C5ULL) {
  if (config_.fanout == 0) config_.fanout = 1;

  const auto make_machine = [this](const std::string& place,
                                   bool apply_enforcer) {
    auto machine =
        std::make_unique<ctrl::TrustStateMachine>(place, config_.trust);
    machine->on_transition([this, apply_enforcer](
                               const ctrl::TrustStateMachine& m,
                               const ctrl::TrustTransition& t) {
      timeline_.push_back({m.place(), t});
      if (apply_enforcer && config_.quarantine_reroutes) {
        enforcer_.apply(m.place(), t);
      }
      if (is_regional(m.place()) && t.to == ctrl::TrustState::kQuarantined) {
        // Failover runs from a fresh event so it never re-enters the
        // machine mid-record.
        const std::string place = m.place();
        dep_->network().events().schedule_in(
            1, [this, place] { handle_regional_quarantine(place); });
      }
      if (hook_) hook_(m.place(), t);
    });
    return machine;
  };
  const auto add_machine = [&](const std::string& place) {
    machines_.emplace(place, make_machine(place, /*apply_enforcer=*/true));
  };

  for (const auto& appraiser : tree_.appraisers()) {
    regionals_.emplace(appraiser,
                       std::make_unique<RegionalNode>(
                           dep, appraiser, config_, place_seed(seed, appraiser)));
    add_machine(appraiser);
    // Delegation trust: aggregate outcomes only, no data-plane reroute (a
    // lying delegate may still forward packets fine — and vice versa, a
    // direct-round pass must not launder aggregate failures).
    delegation_.emplace(appraiser,
                        make_machine(appraiser, /*apply_enforcer=*/false));
  }
  for (const auto& member : tree_.all_members()) add_machine(member);
  for (const Region* r : tree_.regions()) scheduler_.add_region(r->name);
  PERA_OBS_GAUGE("fleet.switches.monitored",
                 static_cast<std::int64_t>(machines_.size()));
  PERA_OBS_GAUGE("fleet.regions",
                 static_cast<std::int64_t>(tree_.region_count()));
}

FleetController::~FleetController() {
  if (attached_) dep_->network().attach(self_, inner_);
}

void FleetController::start() {
  if (!attached_) {
    dep_->network().attach(self_, this);
    attached_ = true;
  }
  for (auto& [name, rn] : regionals_) rn->attach();
  scheduler_.start([this](const std::string& region, std::uint64_t wave) {
    fire_wave(region, wave);
  });
}

void FleetController::stop() { scheduler_.stop(); }

void FleetController::fire_wave(const std::string& region,
                                std::uint64_t wave) {
  const Region& r = tree_.region(region);
  PendingWave p;
  p.wave = wave;
  p.nonce = crypto::Nonce{wave_nonce_rng_.digest()};
  p.appraiser = r.appraiser;
  p.members = r.members;

  WaveCommand cmd;
  cmd.region = region;
  cmd.wave = wave;
  cmd.nonce = p.nonce;
  cmd.detail = config_.detail;
  cmd.carry_evidence = config_.carry_evidence;
  cmd.members = r.members;

  pending_[region] = std::move(p);
  ++stats_.waves_launched;

  netsim::Message msg;
  msg.src = self_;
  msg.dst = dep_->network().topology().require(r.appraiser);
  msg.reply_to = self_;
  msg.type = "wave-cmd";
  msg.payload = cmd.serialize();
  dep_->network().send(std::move(msg));

  if (config_.attest_regionals) issue_direct_round(r.appraiser);

  dep_->network().events().schedule_in(
      config_.wave_timeout,
      [this, region, wave] { on_wave_timeout(region, wave); });
}

netsim::TransitResult FleetController::on_transit(netsim::Network& net,
                                                  netsim::NodeId self,
                                                  netsim::Message& msg) {
  if (inner_ != nullptr) return inner_->on_transit(net, self, msg);
  return {};
}

void FleetController::on_deliver(netsim::Network& net, netsim::NodeId self,
                                 netsim::Message msg) {
  if (msg.type == "aggregate") {
    handle_aggregate(net, msg);
    return;
  }
  if (msg.type == "result") {
    const ra::Certificate cert = ra::Certificate::deserialize(
        crypto::BytesView{msg.payload.data(), msg.payload.size()});
    if (transport_.on_result(cert, net.now())) return;
  }
  if (inner_ != nullptr) inner_->on_deliver(net, self, std::move(msg));
}

void FleetController::handle_aggregate(netsim::Network& net,
                                       const netsim::Message& msg) {
  (void)net;
  Aggregate agg;
  try {
    agg = Aggregate::deserialize(
        crypto::BytesView{msg.payload.data(), msg.payload.size()});
  } catch (const std::exception&) {
    PERA_OBS_COUNT("fleet.aggregate.malformed");
    return;
  }
  ++stats_.aggregates_received;
  PERA_OBS_COUNT("fleet.aggregate.received");

  const auto it = pending_.find(agg.region);
  if (it == pending_.end() || it->second.wave != agg.wave) {
    ++stats_.aggregates_late;
    PERA_OBS_COUNT("fleet.aggregate.late");
    return;
  }
  const PendingWave p = std::move(it->second);
  pending_.erase(it);

  VerifyOptions opts;
  opts.keys = &dep_->keys();
  opts.root_appraiser = &dep_->appraiser().appraiser();
  opts.audit_entries = config_.audit_entries;
  opts.audit_seed = seed_;
  opts.max_attempts =
      static_cast<std::uint32_t>(config_.transport.max_attempts);
  opts.require_evidence = config_.carry_evidence;
  const AggregateCheck check =
      verify_aggregate(agg, p.members, p.nonce, p.wave, opts);

  if (check.valid) {
    ++stats_.aggregates_valid;
    PERA_OBS_COUNT("fleet.aggregate.valid");
    failure_streak_[agg.region] = 0;
    feed_delegation(p.appraiser, ctrl::Outcome::kPass);
    for (const auto& e : agg.entries) {
      ++stats_.entries_applied;
      PERA_OBS_COUNT("fleet.entries.applied");
      if (e.outcome != EntryOutcome::kTimeout) {
        last_verdicts_[e.place] = e.verdict;
      }
      // A live direct probe round against this member is settled by the
      // aggregate (and must not later be double-counted as a duplicate
      // or timeout); its completion handler feeds the trust machine.
      ctrl::RoundOutcome sub;
      sub.completed = e.outcome != EntryOutcome::kTimeout;
      sub.verdict = e.verdict;
      const std::size_t subsumed = transport_.subsume_round(e.place, sub);
      stats_.rounds_subsumed += subsumed;
      if (subsumed == 0) {
        feed(e.place, e.outcome == EntryOutcome::kPass ? ctrl::Outcome::kPass
                      : e.outcome == EntryOutcome::kFail
                          ? ctrl::Outcome::kFail
                          : ctrl::Outcome::kTimeout);
      }
    }
    return;
  }

  // The composition tree itself is bad: that is failure evidence about
  // the REGIONAL, and the members' verdicts are unusable — probe them
  // directly while the regional's trust drains.
  ++stats_.aggregates_invalid;
  PERA_OBS_COUNT("fleet.aggregate.invalid");
  PERA_OBS_EVENT(obs::SpanKind::kAppraise, "fleet.aggregate." + agg.region, 0,
                 0);
  feed_delegation(p.appraiser, ctrl::Outcome::kFail);
  const int streak = ++failure_streak_[agg.region];
  probe_region(agg.region, p.members);
  if (streak >= config_.split_after_failures) {
    if (const auto halves = tree_.split(agg.region, config_.min_split_size)) {
      ++stats_.region_splits;
      PERA_OBS_COUNT("fleet.region.split");
      scheduler_.remove_region(agg.region);
      scheduler_.add_region(halves->first);
      scheduler_.add_region(halves->second);
      failure_streak_.erase(agg.region);
    }
  }
}

void FleetController::on_wave_timeout(const std::string& region,
                                      std::uint64_t wave) {
  const auto it = pending_.find(region);
  if (it == pending_.end() || it->second.wave != wave) return;
  const PendingWave p = std::move(it->second);
  pending_.erase(it);
  ++stats_.aggregates_timeout;
  PERA_OBS_COUNT("fleet.aggregate.timeout");
  feed_delegation(p.appraiser, ctrl::Outcome::kTimeout);
  ++failure_streak_[region];
  probe_region(region, p.members);
}

void FleetController::issue_direct_round(const std::string& place) {
  if (root_inflight_ >= config_.fanout) {
    direct_queue_.push_back(place);
    return;
  }
  start_direct_round(place);
}

void FleetController::start_direct_round(const std::string& place) {
  ++root_inflight_;
  peak_root_inflight_ = std::max(peak_root_inflight_, root_inflight_);
  PERA_OBS_GAUGE("fleet.root.inflight",
                 static_cast<std::int64_t>(root_inflight_));
  transport_.begin_round(
      place, config_.detail,
      [this](const std::string& p, const ctrl::RoundOutcome& out) {
        if (root_inflight_ > 0) --root_inflight_;
        if (out.completed) last_verdicts_[p] = out.verdict;
        feed(p, !out.completed       ? ctrl::Outcome::kTimeout
               : out.verdict ? ctrl::Outcome::kPass
                             : ctrl::Outcome::kFail);
        while (!direct_queue_.empty() && root_inflight_ < config_.fanout) {
          const std::string next = direct_queue_.front();
          direct_queue_.pop_front();
          start_direct_round(next);
        }
      });
}

void FleetController::probe_region(const std::string& region,
                                   const std::vector<std::string>& members) {
  (void)region;
  stats_.probe_rounds += members.size();
  PERA_OBS_COUNT("fleet.probe.rounds", members.size());
  for (const auto& m : members) issue_direct_round(m);
}

void FleetController::handle_regional_quarantine(const std::string& place) {
  std::vector<std::string> moved_regions;
  for (const Region* r : tree_.regions()) {
    if (r->appraiser == place) moved_regions.push_back(r->name);
  }
  if (moved_regions.empty()) return;

  std::vector<std::string> sick;
  for (const auto& [name, rn] : regionals_) {
    const auto mit = machines_.find(name);
    const auto dit = delegation_.find(name);
    const bool device_bad =
        mit != machines_.end() &&
        mit->second->state() == ctrl::TrustState::kQuarantined;
    const bool delegation_bad =
        dit != delegation_.end() &&
        dit->second->state() == ctrl::TrustState::kQuarantined;
    if (device_bad || delegation_bad) sick.push_back(name);
  }
  const auto sibling = tree_.sibling_of(place, sick);
  if (!sibling) {
    PERA_OBS_COUNT("fleet.rehome.no_sibling");
    return;
  }

  const std::size_t moved = tree_.rehome(place, *sibling);
  stats_.domains_rehomed += moved;
  PERA_OBS_COUNT("fleet.domain.rehomed", moved);

  const netsim::SimTime now = dep_->network().now();
  for (const auto& rname : moved_regions) {
    // The quarantined regional vouched for these members; their evidence
    // chain is broken. Treat that as failure evidence until the bulk
    // wave through the new home re-establishes trust member by member.
    for (const auto& m : tree_.region(rname).members) {
      auto& machine = *machines_.at(m);
      while (machine.state() != ctrl::TrustState::kQuarantined) {
        machine.record(ctrl::Outcome::kFail, now);
      }
    }
    scheduler_.trigger_now(rname);
  }
}

void FleetController::feed(const std::string& place, ctrl::Outcome o) {
  const auto it = machines_.find(place);
  if (it == machines_.end()) return;
  it->second->record(o, dep_->network().now());
}

void FleetController::feed_delegation(const std::string& place,
                                      ctrl::Outcome o) {
  const auto it = delegation_.find(place);
  if (it == delegation_.end()) return;
  it->second->record(o, dep_->network().now());
}

RegionalNode& FleetController::regional(const std::string& place) {
  const auto it = regionals_.find(place);
  if (it == regionals_.end()) {
    throw std::invalid_argument("FleetController: unknown regional " + place);
  }
  return *it->second;
}

const ctrl::TrustStateMachine& FleetController::trust(
    const std::string& place) const {
  const auto it = machines_.find(place);
  if (it == machines_.end()) {
    throw std::invalid_argument("FleetController: unknown place " + place);
  }
  return *it->second;
}

const ctrl::TrustStateMachine& FleetController::delegation_trust(
    const std::string& place) const {
  const auto it = delegation_.find(place);
  if (it == delegation_.end()) {
    throw std::invalid_argument("FleetController: unknown regional " + place);
  }
  return *it->second;
}

std::optional<netsim::SimTime> FleetController::first_transition(
    const std::string& place, ctrl::TrustState state) const {
  for (const auto& e : timeline_) {
    if (e.place == place && e.transition.to == state) return e.transition.at;
  }
  return std::nullopt;
}

}  // namespace pera::fleet
