// Fleet partitioning for hierarchical appraisal.
//
// A DelegationTree splits the attesting fleet into regions, each served
// by a *regional appraiser* — itself an attested place (the root keeps a
// trust machine and a direct re-attestation track for every regional).
// The root appraises only regionals plus one signed aggregate per region
// per wave; every tier's fan-out is bounded by the configured fanout, so
// appraisal load stays flat as the fleet grows from 100 to 10k+ switches.
//
// The delegation policy per region is the Copland ∀-place phrase
// rendered by policy_term(): the regional runs `@p (attest -> # -> !)`
// against every member p, composes the results, and signs the aggregate.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pera::fleet {

/// One delegation domain: a named set of member switches appraised by a
/// regional appraiser on the root's behalf.
struct Region {
  std::string name;
  std::string appraiser;             // the regional appraiser's place
  std::vector<std::string> members;  // sorted by name
};

struct DelegationConfig {
  /// Upper bound on members per region and on concurrent appraisal load
  /// per appraiser at every tier.
  std::size_t fanout = 32;
};

class DelegationTree {
 public:
  /// Partition `members` (in caller order) into regions of at most
  /// `config.fanout`, assigning region i to regionals[i % regionals.size()].
  /// Throws std::invalid_argument when regionals is empty.
  [[nodiscard]] static DelegationTree build(
      const std::vector<std::string>& members,
      const std::vector<std::string>& regionals, DelegationConfig config);

  [[nodiscard]] const DelegationConfig& config() const { return config_; }

  /// Regions in name order.
  [[nodiscard]] std::vector<const Region*> regions() const;
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }

  [[nodiscard]] const Region& region(const std::string& name) const;
  [[nodiscard]] const Region* region_of_member(const std::string& member) const;

  /// All member places across all regions, sorted.
  [[nodiscard]] std::vector<std::string> all_members() const;

  /// All distinct regional appraisers, sorted.
  [[nodiscard]] std::vector<std::string> appraisers() const;

  /// Re-home every region served by `from` onto `to` (failover after
  /// `from` is quarantined). Returns the number of regions moved.
  std::size_t rehome(const std::string& from, const std::string& to);

  /// Split a region into two halves (blast-radius reduction after
  /// repeated aggregate failures); both halves keep the appraiser. No-op
  /// (nullopt) when the region has fewer than 2 * min_size members.
  std::optional<std::pair<std::string, std::string>> split(
      const std::string& name, std::size_t min_size);

  /// Deterministic failover target: the next appraiser after `appraiser`
  /// in the sorted appraiser ring, skipping everything in `excluding`.
  /// Nullopt when no healthy sibling exists.
  [[nodiscard]] std::optional<std::string> sibling_of(
      const std::string& appraiser,
      const std::vector<std::string>& excluding = {}) const;

 private:
  void index_members(const Region& r);

  DelegationConfig config_;
  std::map<std::string, Region> regions_;
  std::map<std::string, std::string> member_region_;  // member -> region name
  std::size_t next_region_id_ = 0;
};

/// Render the region's delegation policy as a Copland phrase: the root
/// asks the regional to attest every member place and sign the composite.
[[nodiscard]] std::string policy_term(const Region& r);

/// Switch names matching netsim::topo::fleet ("sw0".."swN-1").
[[nodiscard]] std::vector<std::string> fleet_switch_names(std::size_t n);

/// Regional appraiser names matching netsim::topo::fleet ("r0"..), one
/// per ceil(n_switches / fanout) region.
[[nodiscard]] std::vector<std::string> fleet_regional_names(
    std::size_t n_switches, std::size_t fanout);

}  // namespace pera::fleet
