// Storm-free re-attestation waves.
//
// WaveScheduler layers per-region waves on ctrl::ReattestScheduler: one
// jittered periodic track per region, staggered starts, so 10k switches
// never hit the appraisal tier in one synchronized burst. RegionSession
// paces the member rounds *within* a wave — a sliding window bounded by
// max_inflight plus token-bucket admission — and is transport-agnostic
// (the same session drives netsim rounds and socket-backend rounds).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ctrl/scheduler.h"
#include "netsim/event.h"

namespace pera::fleet {

/// Deterministic token bucket in simulated (or wall) nanoseconds.
class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per second up to `burst`.
  TokenBucket(double rate_per_sec, double burst);

  /// Take one token if available at `now`.
  [[nodiscard]] bool try_take(netsim::SimTime now);

  /// Delay from `now` until a token will be available (0 when one is).
  [[nodiscard]] netsim::SimTime next_ready(netsim::SimTime now);

  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  void refill(netsim::SimTime now);

  double rate_;
  double burst_;
  double tokens_;
  netsim::SimTime last_ = 0;
};

struct WaveConfig {
  /// Wave period per region.
  netsim::SimTime interval = 250 * netsim::kMillisecond;
  /// Seeded per-fire scaling in [1 - jitter, 1 + jitter].
  double jitter = 0.1;
  /// Spread each region's first wave uniformly over the interval.
  bool stagger_start = true;
};

/// Fires one callback per (region, wave) on a jittered, staggered
/// schedule. Regions can be retired (rehome/split) and added while
/// running; retired regions' queued events no-op.
class WaveScheduler {
 public:
  using Fire = std::function<void(const std::string& region,
                                  std::uint64_t wave)>;

  WaveScheduler(netsim::EventQueue& events, WaveConfig config,
                std::uint64_t seed);

  void add_region(const std::string& region);
  void remove_region(const std::string& region);

  void start(Fire fire);
  void stop();

  /// Fire an immediate out-of-cycle wave (bulk re-attestation after a
  /// failover). No-op for unknown/retired regions or when stopped.
  void trigger_now(const std::string& region);

  [[nodiscard]] bool running() const { return inner_.running(); }
  [[nodiscard]] std::uint64_t waves_of(const std::string& region) const;
  [[nodiscard]] std::uint64_t total_waves() const { return total_; }
  [[nodiscard]] const WaveConfig& config() const { return config_; }

 private:
  ctrl::ReattestScheduler inner_;
  WaveConfig config_;
  Fire fire_;
  std::set<std::string> live_;
  std::map<std::string, std::uint64_t> waves_;
  std::uint64_t total_ = 0;
};

/// Paces one wave's member rounds: at most `max_inflight` concurrent
/// rounds, each admitted through an optional shared token bucket. The
/// caller supplies time, timers and the round starter, so the session is
/// oblivious to whether rounds ride netsim or a real socket.
class RegionSession {
 public:
  struct Config {
    std::size_t max_inflight = 32;
    TokenBucket* bucket = nullptr;  // optional, not owned
  };

  using Now = std::function<netsim::SimTime()>;
  using ScheduleIn = std::function<void(netsim::SimTime delay,
                                        std::function<void()> fn)>;
  using StartRound = std::function<void(const std::string& member)>;
  using Finished = std::function<void()>;

  RegionSession(std::vector<std::string> members, Config config, Now now,
                ScheduleIn schedule_in, StartRound start_round,
                Finished finished);

  /// Begin pumping rounds. Idempotent.
  void run();

  /// Report one member's round complete (frees an inflight slot).
  void complete(const std::string& member);

  /// Stop admitting new rounds; pending timers become no-ops.
  void abandon() { abandoned_ = true; }

  [[nodiscard]] std::size_t inflight() const { return inflight_; }
  [[nodiscard]] std::size_t peak_inflight() const { return peak_inflight_; }
  [[nodiscard]] std::size_t started() const { return next_; }
  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] bool finished() const { return finished_flag_; }

 private:
  void pump();

  std::vector<std::string> members_;
  Config config_;
  Now now_;
  ScheduleIn schedule_in_;
  StartRound start_round_;
  Finished on_finished_;
  std::size_t next_ = 0;
  std::size_t inflight_ = 0;
  std::size_t peak_inflight_ = 0;
  std::size_t completed_ = 0;
  bool waiting_for_token_ = false;
  bool finished_flag_ = false;
  bool abandoned_ = false;
};

}  // namespace pera::fleet
