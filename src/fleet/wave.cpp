#include "fleet/wave.h"

#include <algorithm>

#include "obs/obs.h"

namespace pera::fleet {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(std::max(rate_per_sec, 1e-9)),
      burst_(std::max(burst, 1.0)),
      tokens_(burst_) {}

void TokenBucket::refill(netsim::SimTime now) {
  if (now <= last_) return;
  const double elapsed_s =
      static_cast<double>(now - last_) / static_cast<double>(netsim::kSecond);
  tokens_ = std::min(burst_, tokens_ + rate_ * elapsed_s);
  last_ = now;
}

bool TokenBucket::try_take(netsim::SimTime now) {
  refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

netsim::SimTime TokenBucket::next_ready(netsim::SimTime now) {
  refill(now);
  if (tokens_ >= 1.0) return 0;
  const double deficit = 1.0 - tokens_;
  return static_cast<netsim::SimTime>(
      deficit / rate_ * static_cast<double>(netsim::kSecond)) + 1;
}

namespace {
ctrl::SchedulerConfig wave_scheduler_config(const WaveConfig& cfg) {
  // One track per region, riding the tables-level cadence slot.
  ctrl::SchedulerConfig sc;
  sc.cadence.tables = cfg.interval;
  sc.levels = nac::mask_of(nac::EvidenceDetail::kTables);
  sc.jitter = cfg.jitter;
  sc.stagger_start = cfg.stagger_start;
  return sc;
}
}  // namespace

WaveScheduler::WaveScheduler(netsim::EventQueue& events, WaveConfig config,
                             std::uint64_t seed)
    : inner_(events, wave_scheduler_config(config), seed), config_(config) {}

void WaveScheduler::add_region(const std::string& region) {
  if (live_.contains(region)) return;
  live_.insert(region);
  waves_.emplace(region, 0);
  inner_.add_switch(region);
}

void WaveScheduler::remove_region(const std::string& region) {
  // The inner track keeps firing; the live_ filter turns it into a no-op.
  live_.erase(region);
}

void WaveScheduler::start(Fire fire) {
  fire_ = std::move(fire);
  inner_.start([this](const std::string& region, nac::EvidenceDetail) {
    if (!live_.contains(region)) return;
    const std::uint64_t wave = ++waves_[region];
    ++total_;
    PERA_OBS_COUNT("fleet.waves.launched");
    fire_(region, wave);
  });
}

void WaveScheduler::stop() { inner_.stop(); }

void WaveScheduler::trigger_now(const std::string& region) {
  if (!inner_.running() || !fire_ || !live_.contains(region)) return;
  const std::uint64_t wave = ++waves_[region];
  ++total_;
  PERA_OBS_COUNT("fleet.waves.launched");
  PERA_OBS_COUNT("fleet.waves.triggered");
  fire_(region, wave);
}

std::uint64_t WaveScheduler::waves_of(const std::string& region) const {
  const auto it = waves_.find(region);
  return it == waves_.end() ? 0 : it->second;
}

RegionSession::RegionSession(std::vector<std::string> members, Config config,
                             Now now, ScheduleIn schedule_in,
                             StartRound start_round, Finished finished)
    : members_(std::move(members)),
      config_(config),
      now_(std::move(now)),
      schedule_in_(std::move(schedule_in)),
      start_round_(std::move(start_round)),
      on_finished_(std::move(finished)) {
  if (config_.max_inflight == 0) config_.max_inflight = 1;
}

void RegionSession::run() {
  if (abandoned_ || finished_flag_) return;
  if (members_.empty()) {
    finished_flag_ = true;
    if (on_finished_) on_finished_();
    return;
  }
  pump();
}

void RegionSession::pump() {
  if (abandoned_ || finished_flag_) return;
  while (next_ < members_.size() && inflight_ < config_.max_inflight) {
    if (config_.bucket != nullptr && !config_.bucket->try_take(now_())) {
      if (!waiting_for_token_) {
        waiting_for_token_ = true;
        const netsim::SimTime delay =
            std::max<netsim::SimTime>(config_.bucket->next_ready(now_()), 1);
        schedule_in_(delay, [this] {
          waiting_for_token_ = false;
          pump();
        });
      }
      return;
    }
    ++inflight_;
    peak_inflight_ = std::max(peak_inflight_, inflight_);
    const std::string member = members_[next_++];
    start_round_(member);
  }
}

void RegionSession::complete(const std::string& member) {
  (void)member;
  if (abandoned_ || finished_flag_) return;
  if (inflight_ > 0) --inflight_;
  ++completed_;
  if (completed_ >= members_.size()) {
    finished_flag_ = true;
    if (on_finished_) on_finished_();
    return;
  }
  pump();
}

}  // namespace pera::fleet
