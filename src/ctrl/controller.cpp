#include "ctrl/controller.h"

#include <stdexcept>

#include "obs/obs.h"

namespace pera::ctrl {

AttestationController::AttestationController(core::Deployment& dep,
                                             const std::string& host,
                                             ControllerConfig config,
                                             std::uint64_t seed)
    : dep_(&dep),
      host_name_(host),
      self_(dep.network().topology().require(host)),
      config_(config),
      inner_(dep.network().behavior_of(self_)),
      transport_(dep.network(), self_, dep.appraiser_name(), dep.keys(),
                 config.transport, seed),
      scheduler_(dep.network().events(), config.scheduler, seed + 1),
      enforcer_(dep.network()) {
  for (const auto& place : dep.attesting_elements()) {
    auto machine = std::make_unique<TrustStateMachine>(place, config_.trust);
    machine->on_transition([this](const TrustStateMachine& m,
                                  const TrustTransition& t) {
      timeline_.push_back({m.place(), t});
      if (config_.quarantine_reroutes) enforcer_.apply(m.place(), t);
      if (hook_) hook_(m.place(), t);
    });
    machines_.emplace(place, std::move(machine));
    scheduler_.add_switch(place);
  }
  PERA_OBS_GAUGE("ctrl.switches.monitored",
                 static_cast<double>(machines_.size()));
}

AttestationController::~AttestationController() {
  // Give the node slot back so the deployment keeps working after the
  // controller is torn down.
  if (attached_) dep_->network().attach(self_, inner_);
}

void AttestationController::start() {
  if (!attached_) {
    dep_->network().attach(self_, this);
    attached_ = true;
  }
  scheduler_.start([this](const std::string& place, nac::EvidenceDetail level) {
    issue_round(place, level);
  });
}

void AttestationController::stop() { scheduler_.stop(); }

void AttestationController::issue_round(const std::string& place,
                                        nac::EvidenceDetail level) {
  // A level-L round attests every configured level of equal or higher
  // inertia (the detail bits are ordered by inertia, hardware lowest).
  // Low-inertia heartbeats thereby re-check program identity too, so a
  // program swap trips consecutive failures at the *fastest* configured
  // cadence instead of being diluted by still-passing tables rounds.
  const auto cumulative = static_cast<nac::DetailMask>(
      config_.scheduler.levels &
      static_cast<nac::DetailMask>((nac::mask_of(level) << 1) - 1));
  // Asymmetric trust feed: a *failure* at any detail level is evidence of
  // compromise and always reaches the trust machine, but a *pass* from a
  // partial round (e.g. the hardware-only heartbeat) proves nothing about
  // the levels it did not attest — only full-detail passes may reset the
  // failure streak or reinstate a quarantined switch.
  const bool full = cumulative == config_.scheduler.levels;
  transport_.begin_round(
      place, cumulative,
      [this, full](const std::string& p, const RoundOutcome& out) {
        Outcome o;
        if (!out.completed) {
          o = Outcome::kTimeout;
          ++timed_out_;
          PERA_OBS_COUNT("ctrl.round.timeout");
        } else if (out.verdict) {
          o = Outcome::kPass;
          ++passed_;
          PERA_OBS_COUNT("ctrl.round.pass");
          if (!full) {
            PERA_OBS_COUNT("ctrl.round.partial_pass");
            return;
          }
        } else {
          o = Outcome::kFail;
          ++failed_;
          PERA_OBS_COUNT("ctrl.round.fail");
        }
        machines_.at(p)->record(o, dep_->network().now());
      });
}

netsim::TransitResult AttestationController::on_transit(netsim::Network& net,
                                                        netsim::NodeId self,
                                                        netsim::Message& msg) {
  if (inner_ != nullptr) return inner_->on_transit(net, self, msg);
  return {};
}

void AttestationController::on_deliver(netsim::Network& net,
                                       netsim::NodeId self,
                                       netsim::Message msg) {
  if (msg.type == "result") {
    const ra::Certificate cert = ra::Certificate::deserialize(
        crypto::BytesView{msg.payload.data(), msg.payload.size()});
    if (transport_.on_result(cert, net.now())) return;
    // Not our nonce — a certificate for whatever the host itself asked for.
  }
  if (inner_ != nullptr) inner_->on_deliver(net, self, std::move(msg));
}

const TrustStateMachine& AttestationController::trust(
    const std::string& place) const {
  const auto it = machines_.find(place);
  if (it == machines_.end()) {
    throw std::invalid_argument("AttestationController: unknown place " +
                                place);
  }
  return *it->second;
}

std::optional<netsim::SimTime> AttestationController::first_transition(
    const std::string& place, TrustState state) const {
  for (const auto& e : timeline_) {
    if (e.place == place && e.transition.to == state) return e.transition.at;
  }
  return std::nullopt;
}

}  // namespace pera::ctrl
