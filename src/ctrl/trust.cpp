#include "ctrl/trust.h"

#include <stdexcept>

#include "obs/obs.h"

namespace pera::ctrl {

const char* to_string(TrustState s) {
  switch (s) {
    case TrustState::kTrusted: return "Trusted";
    case TrustState::kSuspect: return "Suspect";
    case TrustState::kQuarantined: return "Quarantined";
    case TrustState::kReinstated: return "Reinstated";
  }
  return "?";
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kPass: return "pass";
    case Outcome::kFail: return "appraisal failed";
    case Outcome::kTimeout: return "transport timeout";
  }
  return "?";
}

TrustStateMachine::TrustStateMachine(std::string place, TrustPolicy policy)
    : place_(std::move(place)), policy_(policy) {
  if (policy_.quarantine_after < 1 || policy_.reinstate_after < 1) {
    throw std::invalid_argument(
        "TrustPolicy: hysteresis thresholds must be >= 1");
  }
}

void TrustStateMachine::move_to(TrustState to, netsim::SimTime now,
                                std::string reason) {
  const TrustTransition t{now, state_, to, std::move(reason)};
  state_ = to;
  transitions_.push_back(t);
  PERA_OBS_COUNT("ctrl.trust.transitions");
  PERA_OBS_COUNT(std::string("ctrl.trust.to.") + to_string(to));
  PERA_OBS_EVENT(obs::SpanKind::kTrustTransition, place_, 0,
                 static_cast<std::uint64_t>(to));
  if (hook_) hook_(*this, t);
}

TrustState TrustStateMachine::record(Outcome outcome, netsim::SimTime now) {
  ++outcomes_;
  const bool pass = outcome == Outcome::kPass;
  if (pass) {
    fails_ = 0;
    ++passes_;
  } else {
    passes_ = 0;
    ++fails_;
  }
  const auto failure_reason = [&] {
    return std::string(to_string(outcome)) + " (" + std::to_string(fails_) +
           " consecutive)";
  };
  switch (state_) {
    case TrustState::kTrusted:
      if (!pass) {
        // quarantine_after == 1 skips the Suspect dwell entirely.
        move_to(fails_ >= policy_.quarantine_after ? TrustState::kQuarantined
                                                   : TrustState::kSuspect,
                now, failure_reason());
      }
      break;
    case TrustState::kSuspect:
      if (pass) {
        move_to(TrustState::kTrusted, now, "appraisal passed");
      } else if (fails_ >= policy_.quarantine_after) {
        move_to(TrustState::kQuarantined, now, failure_reason());
      }
      break;
    case TrustState::kQuarantined:
      if (pass && passes_ >= policy_.reinstate_after) {
        move_to(TrustState::kReinstated, now,
                "appraisal passed (" + std::to_string(passes_) +
                    " consecutive while quarantined)");
      }
      break;
    case TrustState::kReinstated:
      if (pass) {
        move_to(TrustState::kTrusted, now, "probation round passed");
      } else {
        move_to(fails_ >= policy_.quarantine_after ? TrustState::kQuarantined
                                                   : TrustState::kSuspect,
                now, failure_reason() + " during probation");
      }
      break;
  }
  return state_;
}

}  // namespace pera::ctrl
