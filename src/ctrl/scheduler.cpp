#include "ctrl/scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace pera::ctrl {

namespace {

constexpr nac::EvidenceDetail kAllLevels[] = {
    nac::EvidenceDetail::kHardware,   nac::EvidenceDetail::kProgram,
    nac::EvidenceDetail::kTables,     nac::EvidenceDetail::kProgState,
    nac::EvidenceDetail::kPacket,
};

}  // namespace

ReattestScheduler::ReattestScheduler(netsim::EventQueue& events,
                                     SchedulerConfig config, std::uint64_t seed)
    : events_(&events), config_(config), root_rng_(seed) {
  config_.jitter = std::clamp(config_.jitter, 0.0, 0.99);
}

void ReattestScheduler::add_switch(const std::string& place) {
  for (const auto level : kAllLevels) {
    if (!nac::has_detail(config_.levels, level)) continue;
    auto track = std::make_unique<Track>(Track{
        place, level, root_rng_.fork(place + "/" + nac::to_string(level))});
    tracks_.push_back(std::move(track));
    if (running_) arm(tracks_.size() - 1, /*first=*/true);
  }
  PERA_OBS_GAUGE("ctrl.scheduler.tracks", static_cast<double>(tracks_.size()));
}

void ReattestScheduler::start(Issue issue) {
  if (running_) throw std::logic_error("ReattestScheduler: already running");
  running_ = true;
  ++generation_;
  issue_ = std::move(issue);
  for (std::size_t i = 0; i < tracks_.size(); ++i) arm(i, /*first=*/true);
}

void ReattestScheduler::stop() {
  running_ = false;
  ++generation_;  // queued events carry the old generation and no-op
}

netsim::SimTime ReattestScheduler::jittered(netsim::SimTime interval,
                                            crypto::Drbg& rng) const {
  const double scale =
      1.0 - config_.jitter + 2.0 * config_.jitter * rng.uniform01();
  const auto out =
      static_cast<netsim::SimTime>(static_cast<double>(interval) * scale);
  return std::max<netsim::SimTime>(out, 1);
}

void ReattestScheduler::arm(std::size_t track, bool first) {
  Track& t = *tracks_[track];
  const netsim::SimTime interval = config_.cadence.interval_for(t.level);
  netsim::SimTime delay;
  if (first && config_.stagger_start) {
    // First fire uniform in [0, interval): decorrelates a fleet provisioned
    // at the same instant.
    delay = static_cast<netsim::SimTime>(
        t.rng.uniform(static_cast<std::uint64_t>(std::max<netsim::SimTime>(
            interval, 1))));
  } else {
    delay = jittered(interval, t.rng);
  }
  const std::uint64_t gen = generation_;
  events_->schedule_in(delay, [this, track, gen] {
    if (gen != generation_ || !running_) return;
    Track& tr = *tracks_[track];
    ++issued_;
    PERA_OBS_COUNT("ctrl.scheduler.rounds");
    if (issue_) issue_(tr.place, tr.level);
    arm(track, /*first=*/false);
  });
}

}  // namespace pera::ctrl
