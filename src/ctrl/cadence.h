// Operator-facing re-attestation cadence configuration: one small
// key = value format read by both sides of the system — the detect->react
// control plane (ReattestScheduler) and the V7 staleness-window check in
// the static verifier — so what the operator deploys and what the verifier
// reasons about cannot drift apart.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "ctrl/scheduler.h"
#include "nac/detail.h"
#include "netsim/time.h"
#include "pera/tuning.h"

namespace pera::ctrl {

/// A parsed cadence specification: per-level re-attestation intervals,
/// which levels are scheduled at all, and the staleness budget the V7
/// check holds worst-case observation windows against.
struct CadenceSpec {
  pera::ReattestCadence cadence;
  nac::DetailMask levels = nac::EvidenceDetail::kHardware |
                           nac::EvidenceDetail::kProgram |
                           nac::EvidenceDetail::kTables;
  std::optional<netsim::SimTime> staleness_budget;
};

/// Parse a duration with an ns/us/ms/s suffix ("250ms", "2s", "1500us").
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] netsim::SimTime parse_duration(std::string_view text);

/// Parse a cadence config. Lines are `key = value`; '#' starts a comment.
/// Keys:
///   hardware / program / tables / state / packet = DURATION
///       explicit per-level re-attestation interval
///   levels = Hardware+Program+Tables
///       which levels get a periodic track (omitted levels are never
///       re-attested — the V7 check treats their windows as unbounded)
///   budget = DURATION
///       staleness budget for the V7 check
///   pps / table_updates_per_second / register_writes_per_packet / hops
///       workload figures; when any is present the base cadence is
///       derived via pera::recommend_cadence, then explicit per-level
///       keys override.
/// Throws std::invalid_argument naming the offending line on error.
[[nodiscard]] CadenceSpec parse_cadence(std::string_view text);

/// Build the re-attestation scheduler configuration from a parsed spec,
/// so a config file drives the live control plane exactly as verified.
[[nodiscard]] SchedulerConfig scheduler_config_from(const CadenceSpec& spec);

}  // namespace pera::ctrl
