// The attestation control plane, assembled: a controller co-located with a
// host node that continuously re-attests every attesting element
// (ReattestScheduler), moves each one through the trust lifecycle
// (TrustStateMachine) on round outcomes carried by the retrying
// EvidenceTransport, and — on quarantine — steers data traffic around the
// switch (QuarantineEnforcer) until it proves itself again.
//
// The controller is a NodeBehavior *decorator*: it takes over its host
// node's slot in the network, consumes the attestation results whose
// nonces it owns, and delegates everything else (flow packets, other
// results) to the original HostNode behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "ctrl/reroute.h"
#include "ctrl/scheduler.h"
#include "ctrl/transport.h"
#include "ctrl/trust.h"

namespace pera::ctrl {

struct ControllerConfig {
  TrustPolicy trust;
  TransportConfig transport;
  SchedulerConfig scheduler;
  /// Feed Quarantined/Reinstated transitions into data-plane rerouting.
  bool quarantine_reroutes = true;
};

/// One entry of the trust-transition timeline, across all switches.
struct TimelineEntry {
  std::string place;
  TrustTransition transition;
};

class AttestationController final : public netsim::NodeBehavior {
 public:
  /// Runs on `host` (an existing deployment host, e.g. "client"). The
  /// controller monitors every attesting element of the deployment.
  AttestationController(core::Deployment& dep, const std::string& host,
                        ControllerConfig config, std::uint64_t seed);
  ~AttestationController() override;

  AttestationController(const AttestationController&) = delete;
  AttestationController& operator=(const AttestationController&) = delete;

  /// Attach to the host node and begin continuous re-attestation.
  void start();

  /// Stop issuing rounds (in-flight rounds still complete or time out).
  void stop();

  netsim::TransitResult on_transit(netsim::Network& net, netsim::NodeId self,
                                   netsim::Message& msg) override;
  void on_deliver(netsim::Network& net, netsim::NodeId self,
                  netsim::Message msg) override;

  [[nodiscard]] const TrustStateMachine& trust(const std::string& place) const;
  [[nodiscard]] const std::vector<TimelineEntry>& timeline() const {
    return timeline_;
  }
  [[nodiscard]] const EvidenceTransport& transport() const {
    return transport_;
  }
  [[nodiscard]] ReattestScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const QuarantineEnforcer& quarantine() const {
    return enforcer_;
  }
  [[nodiscard]] std::uint64_t rounds_passed() const { return passed_; }
  [[nodiscard]] std::uint64_t rounds_failed() const { return failed_; }
  [[nodiscard]] std::uint64_t rounds_timed_out() const { return timed_out_; }

  /// When `place` first entered `state` (detection-latency measurements).
  [[nodiscard]] std::optional<netsim::SimTime> first_transition(
      const std::string& place, TrustState state) const;

  /// Observe every transition (after timeline/reroute bookkeeping).
  using TransitionHook =
      std::function<void(const std::string& place, const TrustTransition&)>;
  void on_transition(TransitionHook hook) { hook_ = std::move(hook); }

 private:
  void issue_round(const std::string& place, nac::EvidenceDetail level);

  core::Deployment* dep_;
  std::string host_name_;
  netsim::NodeId self_;
  ControllerConfig config_;
  netsim::NodeBehavior* inner_;  // the displaced HostNode behaviour
  bool attached_ = false;
  EvidenceTransport transport_;
  ReattestScheduler scheduler_;
  QuarantineEnforcer enforcer_;
  std::map<std::string, std::unique_ptr<TrustStateMachine>> machines_;
  std::vector<TimelineEntry> timeline_;
  TransitionHook hook_;
  std::uint64_t passed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t timed_out_ = 0;
};

}  // namespace pera::ctrl
