#include "ctrl/transport.h"

#include <algorithm>

#include "core/wire.h"
#include "obs/obs.h"

namespace pera::ctrl {

void SimBackend::send_challenge(const std::string& place,
                                const core::Challenge& ch) {
  netsim::Message msg;
  msg.src = self_;
  msg.dst = net_->topology().require(place);
  msg.reply_to = self_;
  msg.type = "challenge";
  msg.payload = ch.serialize();
  net_->send(std::move(msg));
}

void SimBackend::schedule_in(netsim::SimTime delay, std::function<void()> fn) {
  net_->events().schedule_in(delay, std::move(fn));
}

EvidenceTransport::EvidenceTransport(netsim::Network& net, netsim::NodeId self,
                                     std::string appraiser,
                                     crypto::KeyStore& keys,
                                     TransportConfig config, std::uint64_t seed)
    : owned_backend_(std::make_unique<SimBackend>(net, self)),
      backend_(owned_backend_.get()),
      appraiser_(std::move(appraiser)),
      keys_(&keys),
      config_(config),
      nonces_(seed),
      jitter_rng_(seed ^ 0x9E3779B97F4A7C15ULL) {
  if (config_.max_attempts < 1) config_.max_attempts = 1;
}

EvidenceTransport::EvidenceTransport(TransportBackend& backend,
                                     std::string appraiser,
                                     crypto::KeyStore& keys,
                                     TransportConfig config, std::uint64_t seed)
    : backend_(&backend),
      appraiser_(std::move(appraiser)),
      keys_(&keys),
      config_(config),
      nonces_(seed),
      jitter_rng_(seed ^ 0x9E3779B97F4A7C15ULL) {
  if (config_.max_attempts < 1) config_.max_attempts = 1;
}

netsim::SimTime EvidenceTransport::backoff_delay(std::size_t attempt) {
  // attempt is 1-based: the delay inserted before attempt+1.
  netsim::SimTime d = config_.backoff_base;
  for (std::size_t i = 1; i < attempt && d < config_.backoff_cap; ++i) d *= 2;
  d = std::min(d, config_.backoff_cap);
  const double jitter = std::clamp(config_.jitter, 0.0, 1.0);
  const double scale = 1.0 - jitter + 2.0 * jitter * jitter_rng_.uniform01();
  const auto jittered = static_cast<netsim::SimTime>(
      static_cast<double>(d) * scale);
  return std::max<netsim::SimTime>(jittered, 1);
}

void EvidenceTransport::begin_round(const std::string& place,
                                    nac::DetailMask detail, Completion done) {
  const std::uint64_t id = next_round_++;
  Round round;
  round.place = place;
  round.detail = detail;
  round.done = std::move(done);
  round.started_at = backend_->now();
  rounds_.emplace(id, std::move(round));
  ++live_;
  ++stats_.rounds;
  PERA_OBS_COUNT("ctrl.transport.rounds");
  attempt(id);
}

void EvidenceTransport::attempt(std::uint64_t round_id) {
  const auto it = rounds_.find(round_id);
  if (it == rounds_.end() || it->second.finished) return;
  Round& round = it->second;

  ++round.attempts;
  ++stats_.challenges_sent;
  if (round.attempts > 1) {
    ++stats_.retries;
    PERA_OBS_COUNT("ctrl.transport.retries");
  }
  PERA_OBS_COUNT("ctrl.transport.challenges");

  // Fresh nonce per attempt: the appraiser's replay protection must never
  // block a legitimate retry whose predecessor's *result* was lost.
  const crypto::Nonce nonce = nonce_source_
                                  ? nonce_source_(round.place, round.attempts)
                                  : nonces_.issue();
  nonce_to_round_[nonce.value] = round_id;
  round.nonces.push_back(nonce.value);

  core::Challenge ch;
  ch.nonce = nonce;
  ch.detail = round.detail;
  ch.appraiser = appraiser_;
  backend_->send_challenge(round.place, ch);

  const std::size_t this_attempt = round.attempts;
  backend_->schedule_in(config_.timeout, [this, round_id, this_attempt] {
    const auto rit = rounds_.find(round_id);
    if (rit == rounds_.end() || rit->second.finished) return;
    Round& r = rit->second;
    if (r.attempts != this_attempt) return;  // a newer attempt owns the timer
    if (r.attempts >= config_.max_attempts) {
      ++stats_.rounds_timed_out;
      PERA_OBS_COUNT("ctrl.transport.round_timeout");
      RoundOutcome out;
      out.attempts = r.attempts;
      out.rtt = backend_->now() - r.started_at;
      finish(round_id, r, out);
      return;
    }
    backend_->schedule_in(backoff_delay(r.attempts),
                          [this, round_id] { attempt(round_id); });
  });
}

void EvidenceTransport::finish(std::uint64_t round_id, Round& round,
                               const RoundOutcome& outcome) {
  round.finished = true;
  --live_;
  completed_.push_back(round_id);
  evict_completed();
  if (round.done) round.done(round.place, outcome);
}

void EvidenceTransport::evict_completed() {
  const std::size_t keep = std::max<std::size_t>(config_.completed_retention, 1);
  while (completed_.size() > keep) {
    const std::uint64_t victim = completed_.front();
    completed_.pop_front();
    const auto it = rounds_.find(victim);
    if (it == rounds_.end()) continue;
    for (const crypto::Digest& n : it->second.nonces) {
      nonce_to_round_.erase(n);
    }
    rounds_.erase(it);
  }
}

bool EvidenceTransport::on_result(const ra::Certificate& cert,
                                  netsim::SimTime now) {
  const auto nit = nonce_to_round_.find(cert.nonce.value);
  if (nit == nonce_to_round_.end()) return false;  // not our nonce

  const std::uint64_t round_id = nit->second;
  const auto rit = rounds_.find(round_id);
  if (rit == rounds_.end() || rit->second.finished) {
    // A late original after a retry completed the round, or a replay of a
    // certificate we already consumed: suppressed exactly once each.
    ++stats_.duplicates_suppressed;
    PERA_OBS_COUNT("ctrl.transport.duplicates");
    return true;
  }
  Round& round = rit->second;

  const crypto::Verifier* v = keys_->verifier_for(appraiser_);
  if (v == nullptr || !cert.verify(*v)) {
    // A forged result must not complete the round — keep waiting; the
    // attempt's timeout still governs.
    ++stats_.bad_signatures;
    PERA_OBS_COUNT("ctrl.transport.bad_signature");
    return true;
  }

  RoundOutcome out;
  out.completed = true;
  out.verdict = cert.verdict;
  out.attempts = round.attempts;
  out.rtt = now - round.started_at;
  out.nonce = cert.nonce;
  finish(round_id, round, out);
  return true;
}

std::size_t EvidenceTransport::subsume_round(const std::string& place,
                                             const RoundOutcome& outcome) {
  // Collect first: finish() appends to the retention deque, whose
  // eviction erases old rounds_ entries — never mutate while iterating.
  std::vector<std::uint64_t> live;
  for (const auto& [id, round] : rounds_) {
    if (!round.finished && round.place == place) live.push_back(id);
  }
  for (const std::uint64_t id : live) {
    const auto it = rounds_.find(id);
    if (it == rounds_.end() || it->second.finished) continue;
    Round& round = it->second;
    RoundOutcome out = outcome;
    out.attempts = round.attempts;
    out.rtt = backend_->now() - round.started_at;
    ++stats_.rounds_subsumed;
    PERA_OBS_COUNT("ctrl.transport.subsumed");
    finish(id, round, out);
  }
  return live.size();
}

}  // namespace pera::ctrl
