// Reliable-enough delivery of out-of-band attestation rounds over a lossy
// netsim::Network.
//
// One "round" is the expression (3) exchange driven from the controller:
// challenge -> switch, evidence -> appraiser, result -> controller. Any of
// the three legs can be lost. The transport retries with a fresh nonce per
// attempt (a lost result must never strand the exchange on the appraiser's
// replay protection), waits `timeout` per attempt, backs off exponentially
// (bounded, with seeded jitter) between attempts, and suppresses duplicate
// results — a late original arriving after a retry already completed the
// round, or a replayed certificate, is counted and dropped, never fed to
// the trust machine twice.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/wire.h"
#include "crypto/keystore.h"
#include "crypto/nonce.h"
#include "nac/detail.h"
#include "netsim/network.h"
#include "ra/certificate.h"

namespace pera::ctrl {

struct TransportConfig {
  /// Wait per attempt before declaring it lost.
  netsim::SimTime timeout = 20 * netsim::kMillisecond;
  /// Challenges sent per round before giving up (1 = no retries).
  std::size_t max_attempts = 4;
  /// Extra delay before retry k (1-based) is min(base * 2^(k-1), cap),
  /// scaled by a seeded jitter in [1 - jitter, 1 + jitter].
  netsim::SimTime backoff_base = 5 * netsim::kMillisecond;
  netsim::SimTime backoff_cap = 100 * netsim::kMillisecond;
  double jitter = 0.2;
  /// Finished rounds kept for duplicate suppression. A late or replayed
  /// result for one of the last `completed_retention` completed rounds is
  /// still recognized (and counted as a duplicate); older rounds are
  /// evicted together with their nonce index entries, so the per-round
  /// state the transport holds is bounded for any number of rounds.
  std::size_t completed_retention = 64;
};

/// Where challenges go and how retry timers fire. The transport's round
/// logic (fresh nonce per attempt, backoff, duplicate suppression) is
/// backend-independent; only delivery and time differ:
///  * SimBackend (below) — netsim messages and simulated time, used by
///    the controller; behavior is bit-identical to the pre-split
///    transport.
///  * net::SocketBackend (net/backend.h) — a real relying-party socket
///    session to the appraiser server, wall-clock timers.
class TransportBackend {
 public:
  virtual ~TransportBackend() = default;

  /// Deliver one challenge toward `place`.
  virtual void send_challenge(const std::string& place,
                              const core::Challenge& ch) = 0;

  /// Run `fn` after `delay` (nanoseconds; simulated or wall time).
  virtual void schedule_in(netsim::SimTime delay,
                           std::function<void()> fn) = 0;

  [[nodiscard]] virtual netsim::SimTime now() = 0;
};

/// The netsim delivery path: challenges become "challenge" messages with
/// reply_to = self; timers ride the simulation's event queue.
class SimBackend final : public TransportBackend {
 public:
  SimBackend(netsim::Network& net, netsim::NodeId self)
      : net_(&net), self_(self) {}

  void send_challenge(const std::string& place,
                      const core::Challenge& ch) override;
  void schedule_in(netsim::SimTime delay, std::function<void()> fn) override;
  [[nodiscard]] netsim::SimTime now() override { return net_->now(); }

 private:
  netsim::Network* net_;
  netsim::NodeId self_;
};

/// How one round ended.
struct RoundOutcome {
  bool completed = false;  // a signature-valid result arrived in time
  bool verdict = false;    // the appraiser's verdict (when completed)
  std::size_t attempts = 0;
  netsim::SimTime rtt = 0;  // first challenge -> accepted result
  /// The nonce of the attempt that completed the round (all-zero on
  /// timeout or external subsumption). Delegated appraisers use it to
  /// associate the stashed evidence with the finished round.
  crypto::Nonce nonce{};
};

struct TransportStats {
  std::uint64_t rounds = 0;
  std::uint64_t challenges_sent = 0;
  std::uint64_t retries = 0;
  std::uint64_t rounds_timed_out = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t bad_signatures = 0;
  /// Live rounds completed externally via subsume_round (an aggregate
  /// answered for the place before its own per-switch result did).
  std::uint64_t rounds_subsumed = 0;
};

class EvidenceTransport {
 public:
  using Completion =
      std::function<void(const std::string& place, const RoundOutcome&)>;

  /// `self` is the controller's node; results must be routed back to it
  /// (the transport stamps challenges with reply_to = self). `keys` must
  /// hold the appraiser's verifier. Convenience: wraps an owned
  /// SimBackend — the classic netsim transport.
  EvidenceTransport(netsim::Network& net, netsim::NodeId self,
                    std::string appraiser, crypto::KeyStore& keys,
                    TransportConfig config, std::uint64_t seed);

  /// Backend-explicit form: run rounds over any delivery substrate (e.g.
  /// net::SocketBackend). `backend` must outlive the transport.
  EvidenceTransport(TransportBackend& backend, std::string appraiser,
                    crypto::KeyStore& keys, TransportConfig config,
                    std::uint64_t seed);

  /// Start one attestation round against `place` for `detail`. `done`
  /// fires exactly once, after a valid result or after retries exhaust.
  void begin_round(const std::string& place, nac::DetailMask detail,
                   Completion done);

  /// Feed a delivered "result" certificate. Returns true when the
  /// certificate's nonce belongs to this transport (completing a live
  /// round, or suppressed as a duplicate/bad signature); false when the
  /// nonce was never ours and the message should go to whoever else
  /// shares the node.
  bool on_result(const ra::Certificate& cert, netsim::SimTime now);

  /// Complete every live round against `place` with `outcome`, without a
  /// matching certificate: a delegated (aggregate) appraisal already
  /// settled the place, so the per-switch rounds it subsumes must finish
  /// now — and must NOT be counted as duplicates (they never produced a
  /// result of their own). A late per-switch result arriving afterwards
  /// is still recognized through the retention window and suppressed as
  /// a duplicate exactly once. Returns the number of rounds completed.
  std::size_t subsume_round(const std::string& place,
                            const RoundOutcome& outcome);

  /// Derive attempt nonces instead of drawing them from the internal
  /// registry — delegated rounds bind member nonces to the wave nonce so
  /// the root can audit freshness (fleet::derive_member_nonce). `fn` is
  /// called with (place, attempt) per challenge; it must be collision-
  /// free across live rounds.
  using NonceSource =
      std::function<crypto::Nonce(const std::string& place,
                                  std::size_t attempt)>;
  void set_nonce_source(NonceSource fn) { nonce_source_ = std::move(fn); }

  [[nodiscard]] const TransportStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t live_rounds() const { return live_; }

  /// Size of the nonce → round index (live + retained rounds' nonces).
  /// Bounded by completed_retention; exposed for the bound regression
  /// test.
  [[nodiscard]] std::size_t nonce_index_size() const {
    return nonce_to_round_.size();
  }
  /// Rounds currently tracked (live + retained).
  [[nodiscard]] std::size_t tracked_rounds() const { return rounds_.size(); }

 private:
  struct Round {
    std::string place;
    nac::DetailMask detail = 0;
    Completion done;
    std::size_t attempts = 0;
    netsim::SimTime started_at = 0;
    bool finished = false;
    /// Every nonce issued for this round — erased from the index when the
    /// round is evicted from the retention window.
    std::vector<crypto::Digest> nonces;
  };

  void attempt(std::uint64_t round_id);
  void finish(std::uint64_t round_id, Round& round,
              const RoundOutcome& outcome);
  void evict_completed();
  [[nodiscard]] netsim::SimTime backoff_delay(std::size_t attempt);

  std::unique_ptr<TransportBackend> owned_backend_;
  TransportBackend* backend_;
  std::string appraiser_;
  crypto::KeyStore* keys_;
  TransportConfig config_;
  crypto::NonceRegistry nonces_;
  NonceSource nonce_source_;
  crypto::Drbg jitter_rng_;
  std::map<crypto::Digest, std::uint64_t> nonce_to_round_;
  std::map<std::uint64_t, Round> rounds_;
  /// Completed round ids, oldest first, capped at completed_retention.
  std::deque<std::uint64_t> completed_;
  std::uint64_t next_round_ = 1;
  std::size_t live_ = 0;
  TransportStats stats_;
};

}  // namespace pera::ctrl
