// Reliable-enough delivery of out-of-band attestation rounds over a lossy
// netsim::Network.
//
// One "round" is the expression (3) exchange driven from the controller:
// challenge -> switch, evidence -> appraiser, result -> controller. Any of
// the three legs can be lost. The transport retries with a fresh nonce per
// attempt (a lost result must never strand the exchange on the appraiser's
// replay protection), waits `timeout` per attempt, backs off exponentially
// (bounded, with seeded jitter) between attempts, and suppresses duplicate
// results — a late original arriving after a retry already completed the
// round, or a replayed certificate, is counted and dropped, never fed to
// the trust machine twice.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "crypto/keystore.h"
#include "crypto/nonce.h"
#include "nac/detail.h"
#include "netsim/network.h"
#include "ra/certificate.h"

namespace pera::ctrl {

struct TransportConfig {
  /// Wait per attempt before declaring it lost.
  netsim::SimTime timeout = 20 * netsim::kMillisecond;
  /// Challenges sent per round before giving up (1 = no retries).
  std::size_t max_attempts = 4;
  /// Extra delay before retry k (1-based) is min(base * 2^(k-1), cap),
  /// scaled by a seeded jitter in [1 - jitter, 1 + jitter].
  netsim::SimTime backoff_base = 5 * netsim::kMillisecond;
  netsim::SimTime backoff_cap = 100 * netsim::kMillisecond;
  double jitter = 0.2;
};

/// How one round ended.
struct RoundOutcome {
  bool completed = false;  // a signature-valid result arrived in time
  bool verdict = false;    // the appraiser's verdict (when completed)
  std::size_t attempts = 0;
  netsim::SimTime rtt = 0;  // first challenge -> accepted result
};

struct TransportStats {
  std::uint64_t rounds = 0;
  std::uint64_t challenges_sent = 0;
  std::uint64_t retries = 0;
  std::uint64_t rounds_timed_out = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t bad_signatures = 0;
};

class EvidenceTransport {
 public:
  using Completion =
      std::function<void(const std::string& place, const RoundOutcome&)>;

  /// `self` is the controller's node; results must be routed back to it
  /// (the transport stamps challenges with reply_to = self). `keys` must
  /// hold the appraiser's verifier.
  EvidenceTransport(netsim::Network& net, netsim::NodeId self,
                    std::string appraiser, crypto::KeyStore& keys,
                    TransportConfig config, std::uint64_t seed);

  /// Start one attestation round against `place` for `detail`. `done`
  /// fires exactly once, after a valid result or after retries exhaust.
  void begin_round(const std::string& place, nac::DetailMask detail,
                   Completion done);

  /// Feed a delivered "result" certificate. Returns true when the
  /// certificate's nonce belongs to this transport (completing a live
  /// round, or suppressed as a duplicate/bad signature); false when the
  /// nonce was never ours and the message should go to whoever else
  /// shares the node.
  bool on_result(const ra::Certificate& cert, netsim::SimTime now);

  [[nodiscard]] const TransportStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t live_rounds() const { return live_; }

 private:
  struct Round {
    std::string place;
    nac::DetailMask detail = 0;
    Completion done;
    std::size_t attempts = 0;
    netsim::SimTime started_at = 0;
    bool finished = false;
  };

  void attempt(std::uint64_t round_id);
  void finish(Round& round, const RoundOutcome& outcome);
  [[nodiscard]] netsim::SimTime backoff_delay(std::size_t attempt);

  netsim::Network* net_;
  netsim::NodeId self_;
  std::string appraiser_;
  crypto::KeyStore* keys_;
  TransportConfig config_;
  crypto::NonceRegistry nonces_;
  crypto::Drbg jitter_rng_;
  std::map<crypto::Digest, std::uint64_t> nonce_to_round_;
  std::map<std::uint64_t, Round> rounds_;
  std::uint64_t next_round_ = 1;
  std::size_t live_ = 0;
  TransportStats stats_;
};

}  // namespace pera::ctrl
