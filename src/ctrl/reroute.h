// Quarantine enforcement: trust verdicts -> data-plane routing.
//
// The enforcer is the bridge between the per-switch TrustStateMachine and
// netsim's quarantine-aware forwarding: entering Quarantined pulls the
// switch out of data-plane paths (control traffic still reaches it, so it
// can be re-attested); leaving Quarantined puts it back.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ctrl/trust.h"
#include "netsim/network.h"

namespace pera::ctrl {

struct RerouteStats {
  std::uint64_t quarantines = 0;
  std::uint64_t reinstatements = 0;
};

class QuarantineEnforcer {
 public:
  explicit QuarantineEnforcer(netsim::Network& net) : net_(&net) {}

  /// Apply one trust transition for `place`. Only the Quarantined boundary
  /// matters: entering it steers data traffic away, leaving it (to
  /// Reinstated or anywhere else) restores the switch.
  void apply(const std::string& place, const TrustTransition& t);

  [[nodiscard]] bool is_quarantined(const std::string& place) const {
    return quarantined_.contains(place);
  }
  [[nodiscard]] std::vector<std::string> quarantined() const {
    return {quarantined_.begin(), quarantined_.end()};
  }
  [[nodiscard]] const RerouteStats& stats() const { return stats_; }

 private:
  netsim::Network* net_;
  std::set<std::string> quarantined_;
  RerouteStats stats_;
};

}  // namespace pera::ctrl
