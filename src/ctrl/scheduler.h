// Continuous re-attestation scheduling on the deterministic event queue.
//
// One periodic track per (switch, inertia level): high-inertia levels
// (hardware, program) re-attest on slow heartbeats, low-inertia levels
// (tables) near the churn rate — the intervals default to the tuning
// advisor's recommendation (pera::recommend_cadence). Each fire applies
// seeded jitter so a fleet of switches provisioned at the same instant
// never synchronizes its attestation bursts against the appraiser.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "nac/detail.h"
#include "netsim/event.h"
#include "pera/tuning.h"

namespace pera::ctrl {

struct SchedulerConfig {
  /// Per-inertia-level re-attestation intervals (sim ns). The default is
  /// the §5.2 tuning advisor's cadence for a nominal workload.
  pera::ReattestCadence cadence =
      pera::recommend_cadence(pera::WorkloadProfile{});
  /// Which levels get a periodic track per switch.
  nac::DetailMask levels = nac::EvidenceDetail::kHardware |
                           nac::EvidenceDetail::kProgram |
                           nac::EvidenceDetail::kTables;
  /// Each period is scaled by a seeded factor in [1 - jitter, 1 + jitter].
  double jitter = 0.1;
  /// Spread each track's first round uniformly over its interval instead
  /// of bursting every track at start().
  bool stagger_start = true;
};

class ReattestScheduler {
 public:
  /// `issue` is called once per due round.
  using Issue =
      std::function<void(const std::string& place, nac::EvidenceDetail level)>;

  ReattestScheduler(netsim::EventQueue& events, SchedulerConfig config,
                    std::uint64_t seed);

  /// Register an attesting element (one track per configured level).
  /// Tracks added while running are armed immediately.
  void add_switch(const std::string& place);

  /// Begin issuing rounds. Throws std::logic_error when already running.
  void start(Issue issue);

  /// Stop issuing. Events already queued become no-ops, so a simulation
  /// run() drains instead of ticking forever.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t rounds_issued() const { return issued_; }
  [[nodiscard]] std::size_t track_count() const { return tracks_.size(); }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

 private:
  struct Track {
    std::string place;
    nac::EvidenceDetail level;
    crypto::Drbg rng;
  };

  void arm(std::size_t track, bool first);
  [[nodiscard]] netsim::SimTime jittered(netsim::SimTime interval,
                                         crypto::Drbg& rng) const;

  netsim::EventQueue* events_;
  SchedulerConfig config_;
  crypto::Drbg root_rng_;
  std::vector<std::unique_ptr<Track>> tracks_;
  Issue issue_;
  bool running_ = false;
  std::uint64_t generation_ = 0;  // stale queued events no-op via this
  std::uint64_t issued_ = 0;
};

}  // namespace pera::ctrl
