#include "ctrl/cadence.h"

#include <cctype>
#include <stdexcept>
#include <vector>

namespace pera::ctrl {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_number(std::string_view text, std::string_view what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(text), &used);
    if (used != text.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("cadence: bad " + std::string(what) +
                                " value '" + std::string(text) + "'");
  }
}

nac::DetailMask parse_levels(std::string_view text) {
  nac::DetailMask mask = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find_first_of("+,", start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view name = trim(text.substr(start, end - start));
    if (!name.empty()) {
      // detail_from_target maps unknown names to kProgram; a typoed level
      // name silently widening the program track would be a config
      // footgun, so recognize explicitly.
      static const struct {
        const char* name;
        nac::EvidenceDetail level;
      } kNames[] = {
          {"Hardware", nac::EvidenceDetail::kHardware},
          {"Program", nac::EvidenceDetail::kProgram},
          {"Tables", nac::EvidenceDetail::kTables},
          {"State", nac::EvidenceDetail::kProgState},
          {"ProgState", nac::EvidenceDetail::kProgState},
          {"Packet", nac::EvidenceDetail::kPacket},
      };
      bool found = false;
      for (const auto& entry : kNames) {
        if (name == entry.name) {
          mask = mask | entry.level;
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::invalid_argument("cadence: unknown detail level '" +
                                    std::string(name) + "'");
      }
    }
    start = end + 1;
  }
  return mask;
}

}  // namespace

netsim::SimTime parse_duration(std::string_view text) {
  text = trim(text);
  std::size_t digits = 0;
  while (digits < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[digits])) != 0 ||
          text[digits] == '.')) {
    ++digits;
  }
  const std::string_view number = text.substr(0, digits);
  const std::string_view unit = trim(text.substr(digits));
  if (number.empty()) {
    throw std::invalid_argument("bad duration '" + std::string(text) + "'");
  }
  const double value = parse_number(number, "duration");
  double scale = 0;
  if (unit == "ns") {
    scale = 1;
  } else if (unit == "us") {
    scale = netsim::kMicrosecond;
  } else if (unit == "ms") {
    scale = netsim::kMillisecond;
  } else if (unit == "s") {
    scale = netsim::kSecond;
  } else {
    throw std::invalid_argument("bad duration unit in '" + std::string(text) +
                                "' (expected ns/us/ms/s)");
  }
  return static_cast<netsim::SimTime>(value * scale);
}

CadenceSpec parse_cadence(std::string_view text) {
  CadenceSpec spec;
  pera::WorkloadProfile workload;
  bool workload_seen = false;

  struct Override {
    netsim::SimTime pera::ReattestCadence::* field;
    netsim::SimTime value;
  };
  std::vector<Override> overrides;

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("cadence line " + std::to_string(line_no) +
                                  ": expected key = value, got '" +
                                  std::string(line) + "'");
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));

    if (key == "hardware") {
      overrides.push_back(
          {&pera::ReattestCadence::hardware, parse_duration(value)});
    } else if (key == "program") {
      overrides.push_back(
          {&pera::ReattestCadence::program, parse_duration(value)});
    } else if (key == "tables") {
      overrides.push_back(
          {&pera::ReattestCadence::tables, parse_duration(value)});
    } else if (key == "state") {
      overrides.push_back(
          {&pera::ReattestCadence::prog_state, parse_duration(value)});
    } else if (key == "packet") {
      overrides.push_back(
          {&pera::ReattestCadence::packet, parse_duration(value)});
    } else if (key == "levels") {
      spec.levels = parse_levels(value);
    } else if (key == "budget") {
      spec.staleness_budget = parse_duration(value);
    } else if (key == "pps") {
      workload.packets_per_second = parse_number(value, "pps");
      workload_seen = true;
    } else if (key == "table_updates_per_second") {
      workload.table_updates_per_second =
          parse_number(value, "table_updates_per_second");
      workload_seen = true;
    } else if (key == "register_writes_per_packet") {
      workload.register_writes_per_packet =
          parse_number(value, "register_writes_per_packet");
      workload_seen = true;
    } else if (key == "hops") {
      workload.path_hops =
          static_cast<std::size_t>(parse_number(value, "hops"));
      workload_seen = true;
    } else {
      throw std::invalid_argument("cadence line " + std::to_string(line_no) +
                                  ": unknown key '" + std::string(key) + "'");
    }
  }

  if (workload_seen) spec.cadence = pera::recommend_cadence(workload);
  for (const auto& o : overrides) spec.cadence.*o.field = o.value;
  return spec;
}

SchedulerConfig scheduler_config_from(const CadenceSpec& spec) {
  SchedulerConfig config;
  config.cadence = spec.cadence;
  config.levels = spec.levels;
  return config;
}

}  // namespace pera::ctrl
