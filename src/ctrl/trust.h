// Per-switch trust lifecycle for the attestation control plane.
//
// Every attesting element carries a TrustStateMachine fed by appraisal
// outcomes from the continuous re-attestation loop:
//
//           pass                    fail
//   Trusted ----> Trusted   Trusted ----> Suspect
//   Suspect --pass--> Trusted
//   Suspect --fail x N (consecutive, incl. the first)--> Quarantined
//   Quarantined --pass x M (consecutive)--> Reinstated
//   Reinstated --pass--> Trusted      Reinstated --fail--> Suspect
//
// The N/M hysteresis is the point: over a lossy network a single dropped
// evidence message (a kTimeout outcome) must not flap a switch out of the
// data plane, and a quarantined switch must prove itself M times before
// traffic returns to it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netsim/time.h"

namespace pera::ctrl {

enum class TrustState : std::uint8_t {
  kTrusted = 0,
  kSuspect = 1,
  kQuarantined = 2,
  kReinstated = 3,
};

[[nodiscard]] const char* to_string(TrustState s);

/// One re-attestation round's result, as the trust machine sees it.
/// kTimeout (transport gave up) is failure *evidence* — it counts toward
/// quarantine, which is why the hysteresis threshold exists.
enum class Outcome : std::uint8_t { kPass, kFail, kTimeout };

[[nodiscard]] const char* to_string(Outcome o);

struct TrustPolicy {
  /// Consecutive failures (bad appraisal or transport timeout) before a
  /// switch is quarantined. 1 = quarantine on the first failure.
  int quarantine_after = 3;
  /// Consecutive passes while quarantined before reinstatement.
  int reinstate_after = 2;
};

struct TrustTransition {
  netsim::SimTime at = 0;
  TrustState from = TrustState::kTrusted;
  TrustState to = TrustState::kTrusted;
  std::string reason;
};

class TrustStateMachine {
 public:
  explicit TrustStateMachine(std::string place, TrustPolicy policy = {});

  /// Feed one appraisal outcome at simulated time `now`; returns the
  /// (possibly new) state. Publishes ctrl.trust.* counters and a
  /// kTrustTransition span on every state change.
  TrustState record(Outcome outcome, netsim::SimTime now);

  [[nodiscard]] const std::string& place() const { return place_; }
  [[nodiscard]] TrustState state() const { return state_; }
  [[nodiscard]] const TrustPolicy& policy() const { return policy_; }
  [[nodiscard]] int consecutive_failures() const { return fails_; }
  [[nodiscard]] int consecutive_passes() const { return passes_; }
  [[nodiscard]] std::uint64_t outcomes_recorded() const { return outcomes_; }

  /// Every transition ever made, oldest first.
  [[nodiscard]] const std::vector<TrustTransition>& transitions() const {
    return transitions_;
  }

  /// Called on each transition, after it is recorded.
  using TransitionHook =
      std::function<void(const TrustStateMachine&, const TrustTransition&)>;
  void on_transition(TransitionHook hook) { hook_ = std::move(hook); }

 private:
  void move_to(TrustState to, netsim::SimTime now, std::string reason);

  std::string place_;
  TrustPolicy policy_;
  TrustState state_ = TrustState::kTrusted;
  int fails_ = 0;    // consecutive
  int passes_ = 0;   // consecutive
  std::uint64_t outcomes_ = 0;
  std::vector<TrustTransition> transitions_;
  TransitionHook hook_;
};

}  // namespace pera::ctrl
