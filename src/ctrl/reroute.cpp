#include "ctrl/reroute.h"

#include "obs/obs.h"

namespace pera::ctrl {

void QuarantineEnforcer::apply(const std::string& place,
                               const TrustTransition& t) {
  const bool entering = t.to == TrustState::kQuarantined;
  const bool leaving =
      t.from == TrustState::kQuarantined && t.to != TrustState::kQuarantined;
  if (entering && !quarantined_.contains(place)) {
    quarantined_.insert(place);
    net_->set_node_quarantined(place, true);
    ++stats_.quarantines;
    PERA_OBS_COUNT("ctrl.quarantine.enter");
  } else if (leaving && quarantined_.contains(place)) {
    quarantined_.erase(place);
    net_->set_node_quarantined(place, false);
    ++stats_.reinstatements;
    PERA_OBS_COUNT("ctrl.quarantine.exit");
  } else {
    return;
  }
  PERA_OBS_GAUGE("ctrl.quarantine.active",
                 static_cast<double>(quarantined_.size()));
}

}  // namespace pera::ctrl
