#include "copland/pretty.h"

#include <stdexcept>

namespace pera::copland {

namespace {

// Precedence levels, loosest first. Parenthesize a child whenever its
// level is looser than (or, for non-associative positions, equal to) the
// context it is printed in.
enum Level : int {
  kLvlBody = 0,    // forall
  kLvlPath = 1,    // *=>
  kLvlGuard = 2,   // |>
  kLvlBranch = 3,  // -<- etc.
  kLvlPipe = 4,    // ->
  kLvlAtom = 5,
};

int level_of(const Term& t) {
  switch (t.kind) {
    case TermKind::kForall: return kLvlBody;
    case TermKind::kPathStar: return kLvlPath;
    case TermKind::kGuard: return kLvlGuard;
    case TermKind::kBranch: return kLvlBranch;
    case TermKind::kPipe: return kLvlPipe;
    default: return kLvlAtom;
  }
}

void print(const TermPtr& t, int context_level, std::string& out);

void print_child(const TermPtr& t, int context_level, std::string& out) {
  const bool need_parens = level_of(*t) < context_level;
  if (need_parens) out += '(';
  print(t, need_parens ? kLvlBody : context_level, out);
  if (need_parens) out += ')';
}

void print(const TermPtr& t, [[maybe_unused]] int context_level,
           std::string& out) {
  if (!t) throw std::invalid_argument("pretty: null term");
  switch (t->kind) {
    case TermKind::kNil:
      out += "{}";
      return;
    case TermKind::kAtom:
      out += t->target;
      return;
    case TermKind::kMeasure:
      out += t->asp + " " + t->place + " " + t->target;
      return;
    case TermKind::kSign:
      out += '!';
      return;
    case TermKind::kHash:
      out += '#';
      return;
    case TermKind::kAtPlace:
      out += "@" + t->place + " [";
      print(t->child, kLvlBody, out);
      out += ']';
      return;
    case TermKind::kFunc: {
      out += t->func;
      out += '(';
      for (std::size_t i = 0; i < t->args.size(); ++i) {
        if (i > 0) out += ", ";
        print(t->args[i], kLvlBody, out);
      }
      out += ')';
      return;
    }
    case TermKind::kPipe:
      print_child(t->left, kLvlPipe, out);
      out += " -> ";
      // Right side must not be another pipe without parens (we print
      // left-assoc chains flat by keeping left at the same level).
      print_child(t->right, kLvlPipe + 1, out);
      return;
    case TermKind::kBranch: {
      print_child(t->left, kLvlBranch, out);
      out += ' ';
      out += t->pass_left ? '+' : '-';
      out += t->branch == BranchKind::kSeq ? '<' : '~';
      out += t->pass_right ? '+' : '-';
      out += ' ';
      print_child(t->right, kLvlBranch + 1, out);
      return;
    }
    case TermKind::kGuard:
      out += t->test;
      out += " |> ";
      print_child(t->child, kLvlGuard + 1, out);
      return;
    case TermKind::kPathStar:
      print_child(t->left, kLvlPath, out);
      out += " *=> ";
      print_child(t->right, kLvlPath + 1, out);
      return;
    case TermKind::kForall: {
      out += "forall ";
      for (std::size_t i = 0; i < t->vars.size(); ++i) {
        if (i > 0) out += ", ";
        out += t->vars[i];
      }
      out += " : ";
      print(t->child, kLvlPath, out);
      return;
    }
  }
}

}  // namespace

std::string to_string(const TermPtr& t) {
  std::string out;
  print(t, kLvlBody, out);
  return out;
}

std::string to_string(const Request& r) {
  std::string out = "*" + r.relying_party;
  if (!r.params.empty()) {
    out += '<';
    for (std::size_t i = 0; i < r.params.size(); ++i) {
      if (i > 0) out += ", ";
      out += r.params[i];
    }
    out += '>';
  }
  out += " : ";
  out += to_string(r.body);
  return out;
}

}  // namespace pera::copland
