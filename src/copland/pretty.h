// Pretty-printer for Copland terms. Output re-parses to a structurally
// equal term (round-trip property, exercised by tests).
#pragma once

#include <string>

#include "copland/ast.h"

namespace pera::copland {

/// Render a term in the ASCII concrete syntax.
[[nodiscard]] std::string to_string(const TermPtr& t);

/// Render a full request: `*RP<params> : term`.
[[nodiscard]] std::string to_string(const Request& r);

}  // namespace pera::copland
