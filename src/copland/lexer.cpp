#include "copland/lexer.h"

#include <cctype>

#include "copland/parser.h"

namespace pera::copland {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool is_flag(char c) { return c == '+' || c == '-'; }

}  // namespace

std::string to_string(TokKind k) {
  switch (k) {
    case TokKind::kStar: return "'*'";
    case TokKind::kColon: return "':'";
    case TokKind::kAt: return "'@'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLAngle: return "'<'";
    case TokKind::kRAngle: return "'>'";
    case TokKind::kComma: return "','";
    case TokKind::kArrow: return "'->'";
    case TokKind::kBang: return "'!'";
    case TokKind::kHashSym: return "'#'";
    case TokKind::kNilBraces: return "'{}'";
    case TokKind::kBranch: return "branch operator";
    case TokKind::kPathStar: return "'*=>'";
    case TokKind::kGuard: return "'|>'";
    case TokKind::kForall: return "'forall'";
    case TokKind::kIdent: return "identifier";
    case TokKind::kEnd: return "end of input";
  }
  return "?";
}

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const auto push = [&](TokKind k, std::string text, std::size_t pos) {
    out.push_back(Token{k, std::move(text), pos});
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // '//' line comments (used by .copland policy files for headers).
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    const std::size_t pos = i;
    // Multi-char tokens first.
    if (c == '*' && i + 2 < src.size() && src[i + 1] == '=' &&
        src[i + 2] == '>') {
      push(TokKind::kPathStar, "*=>", pos);
      i += 3;
      continue;
    }
    if (c == '|' && i + 1 < src.size() && src[i + 1] == '>') {
      push(TokKind::kGuard, "|>", pos);
      i += 2;
      continue;
    }
    if (is_flag(c) && i + 2 < src.size() &&
        (src[i + 1] == '<' || src[i + 1] == '~') && is_flag(src[i + 2])) {
      push(TokKind::kBranch, std::string(src.substr(i, 3)), pos);
      i += 3;
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '>') {
      push(TokKind::kArrow, "->", pos);
      i += 2;
      continue;
    }
    if (c == '{' && i + 1 < src.size() && src[i + 1] == '}') {
      push(TokKind::kNilBraces, "{}", pos);
      i += 2;
      continue;
    }
    switch (c) {
      case '*': push(TokKind::kStar, "*", pos); ++i; continue;
      case ':': push(TokKind::kColon, ":", pos); ++i; continue;
      case '@': push(TokKind::kAt, "@", pos); ++i; continue;
      case '[': push(TokKind::kLBracket, "[", pos); ++i; continue;
      case ']': push(TokKind::kRBracket, "]", pos); ++i; continue;
      case '(': push(TokKind::kLParen, "(", pos); ++i; continue;
      case ')': push(TokKind::kRParen, ")", pos); ++i; continue;
      case '<': push(TokKind::kLAngle, "<", pos); ++i; continue;
      case '>': push(TokKind::kRAngle, ">", pos); ++i; continue;
      case ',': push(TokKind::kComma, ",", pos); ++i; continue;
      case '!': push(TokKind::kBang, "!", pos); ++i; continue;
      case '#': push(TokKind::kHashSym, "#", pos); ++i; continue;
      default: break;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < src.size() && ident_cont(src[j])) ++j;
      std::string text(src.substr(i, j - i));
      if (text == "forall") {
        push(TokKind::kForall, std::move(text), pos);
      } else {
        push(TokKind::kIdent, std::move(text), pos);
      }
      i = j;
      continue;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", pos);
  }
  out.push_back(Token{TokKind::kEnd, "", src.size()});
  return out;
}

}  // namespace pera::copland
